"""Figure 10: TSP on AS/AH/HS: AH and HS comparable, AS falls off as communication latency stops being amortized.

Regenerates the artifact via the experiment registry (id: ``fig10``)
and archives the rows under ``benchmarks/results/fig10.txt``.
"""

from _common import bench_experiment


def test_fig10(benchmark):
    bench_experiment(benchmark, "fig10")
