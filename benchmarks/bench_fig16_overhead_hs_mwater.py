"""Figure 16: Software-overhead sweep for M-Water on HS: with diffs already coalesced per node, the fixed cost dominates.

Regenerates the artifact via the experiment registry (id: ``fig16``)
and archives the rows under ``benchmarks/results/fig16.txt``.
"""

from _common import bench_experiment


def test_fig16(benchmark):
    bench_experiment(benchmark, "fig16")
