"""Figure 4: Small SOR (paper: 1000x1000, chosen to fit the SGI L2 at 8 processors): TreadMarks remains competitive.

Regenerates the artifact via the experiment registry (id: ``fig4``)
and archives the rows under ``benchmarks/results/fig4.txt``.
"""

from _common import bench_experiment


def test_fig4(benchmark):
    bench_experiment(benchmark, "fig4")
