"""Figure 5: TSP, 19-city-equivalent instance: the SGI's immediately-visible bound prunes better, so it leads TreadMarks.

Regenerates the artifact via the experiment registry (id: ``fig5``)
and archives the rows under ``benchmarks/results/fig5.txt``.
"""

from _common import bench_experiment


def test_fig5(benchmark):
    bench_experiment(benchmark, "fig5")
