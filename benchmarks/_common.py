"""Shared benchmark plumbing.

Every benchmark regenerates one artifact of the paper (a table or a
figure) through the experiment registry, times it with
pytest-benchmark, prints the regenerated rows/series, and archives
them under ``benchmarks/results/<exp_id>.txt`` so the output survives
pytest's capture.
"""

from __future__ import annotations

import os

from repro.harness.experiments import REGISTRY, Report, Scale, run_experiment

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_experiment(benchmark, exp_id: str,
                     scale: Scale = Scale.BENCH) -> Report:
    """Run one registry experiment under pytest-benchmark."""
    holder = {}

    def run() -> None:
        holder["report"] = run_experiment(exp_id, scale)

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = holder["report"]
    text = report.text()
    note = REGISTRY[exp_id].shape_note
    body = f"{text}\n[expected shape: {note}]\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{exp_id}.txt")
    with open(path, "w") as fh:
        fh.write(body)
    print()
    print(body)
    return report
