"""Shared benchmark plumbing.

Every benchmark regenerates one artifact of the paper (a table or a
figure) through the experiment registry, times it with
pytest-benchmark, prints the regenerated rows/series, and archives
them under ``benchmarks/results/<exp_id>.txt`` so the output survives
pytest's capture.

The standalone wall-clock scripts (``bench_parallel_runner.py``,
``bench_trace_overhead.py``, ``bench_check_overhead.py``) write their
``BENCH_*.json`` reports through :func:`write_bench_json`, which
stamps every file with :func:`bench_meta` — host, code revision,
package/cache versions, generation time.  Wall-clock numbers are
meaningless without knowing what hardware and which commit produced
them; ``repro-harness report`` refuses to treat un-stamped BENCH
files as comparable.
"""

from __future__ import annotations

import datetime
import json
import os
from typing import Any, Dict

import repro
from repro.harness.experiments import REGISTRY, Report, Scale, run_experiment
from repro.ledger import git_revision, host_meta

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_meta() -> Dict[str, Any]:
    """The provenance stamp every BENCH_*.json carries under ``meta``.

    Mirrors the fields a ledger record carries (``code``, ``host``,
    ``repro_version``) so a BENCH report can be correlated with the
    ledger records of the runs it timed.
    """
    from repro.harness.cache import CACHE_VERSION
    return {
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "code": git_revision(),
        "host": host_meta(),
        "repro_version": getattr(repro, "__version__", "0"),
        "cache_version": CACHE_VERSION,
    }


def write_bench_json(path: str, payload: Dict[str, Any]) -> None:
    """Write one BENCH report, stamped with :func:`bench_meta`."""
    payload = dict(payload)
    payload["meta"] = bench_meta()
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.normpath(path)}")


def bench_experiment(benchmark, exp_id: str,
                     scale: Scale = Scale.BENCH) -> Report:
    """Run one registry experiment under pytest-benchmark."""
    holder = {}

    def run() -> None:
        holder["report"] = run_experiment(exp_id, scale)

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = holder["report"]
    text = report.text()
    note = REGISTRY[exp_id].shape_note
    body = f"{text}\n[expected shape: {note}]\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{exp_id}.txt")
    with open(path, "w") as fh:
        fh.write(body)
    print()
    print(body)
    return report
