"""The recovery artifact: crash-stop failures, degraded completion.

Runs the ``failure-sweep`` experiment — SOR and TSP on the two
software-DSM simulated machines (AS, HS), crash-stopping the last DSM
node at each configured fraction of the clean run — and pins the two
numbers the recovery subsystem promises:

* **Detection latency** is bounded: every declared failure is
  detected strictly after the crash and no later than the keepalive
  backstop (``detect_cycles`` after the crash, plus a small event
  slack).  An unbounded detection time would mean survivors can hang
  on a dead node.
* **Degraded overhead** is bounded: the degraded speedup retains at
  least ``--min-retained`` of the clean speedup.  Losing one node out
  of n costs the node's share of the work plus the detection stall —
  it must not collapse the run.

Every crashed cell must also *complete* degraded (``failed_nodes``
non-empty, result verified) — a cell that never declared its crash is
a detection failure, not a fast run.

Writes ``BENCH_recovery.json`` at the repo root and archives the
report rows under ``benchmarks/results/failure-sweep.txt``.  Exits
non-zero if a bar is missed.  Run with::

    PYTHONPATH=src python benchmarks/bench_recovery.py \
        [--scale test|bench] [--jobs N] [--min-retained F]
"""

from __future__ import annotations

import argparse
import os
import time

from _common import RESULTS_DIR, write_bench_json
from repro.harness.experiments import (REGISTRY, current_failure_options,
                                       run_experiment)
from repro.harness.parallel import run_context, shutdown_pool
from repro.harness.workloads import Scale

OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_recovery.json")

#: Degraded speedup must retain at least this fraction of the clean
#: speedup.  Deliberately loose: a mid-run crash on a
#: barrier-structured program stalls every survivor for the full
#: detection window, so the floor only guards against collapse.
MIN_RETAINED = 0.10

#: Detection may land this many cycles past the keepalive backstop
#: (event-queue granularity; the backstop event itself is exact).
DETECT_SLACK = 1_000


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=[s.value for s in Scale],
                        default=Scale.TEST.value,
                        help="problem-size scale (default: test; bench "
                             "sweeps to 64 processors and takes "
                             "proportionally longer)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel simulation workers (0 = all "
                             "cores; default: 1)")
    parser.add_argument("--min-retained", type=float,
                        default=MIN_RETAINED, metavar="F",
                        help="fail if any cell's degraded/clean speedup "
                             "ratio drops below this (default: "
                             "%(default)s)")
    args = parser.parse_args()
    scale = Scale(args.scale)
    opts = current_failure_options()

    start = time.perf_counter()
    with run_context(jobs=args.jobs):
        report = run_experiment("failure-sweep", scale)
    shutdown_pool()
    elapsed = time.perf_counter() - start

    text = report.text()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "failure-sweep.txt"), "w") as fh:
        fh.write(f"{text}\n[expected shape: "
                 f"{REGISTRY['failure-sweep'].shape_note}]\n")

    ok = True
    worst_latency = 0
    worst_retained = None
    incomplete = []
    cells = {}
    for workload, machines in report.data.items():
        for mname, tags in machines.items():
            for tag, cell in tags.items():
                key = f"{mname}/{workload}/crash@{tag}"
                degraded = cell["degraded"]
                if not degraded.get("failed_nodes"):
                    incomplete.append(key)
                    continue
                latencies = [det - cra for det, cra in
                             zip(degraded["detected_at"],
                                 degraded["crashed_at"])]
                worst_latency = max(worst_latency, max(latencies))
                retained = (cell["speedup"] / cell["clean_speedup"]
                            if cell["clean_speedup"] > 0 else 0.0)
                if worst_retained is None or retained < worst_retained[1]:
                    worst_retained = (key, retained)
                cells[key] = {
                    "speedup": round(cell["speedup"], 4),
                    "clean_speedup": round(cell["clean_speedup"], 4),
                    "retained": round(retained, 4),
                    "detection_latencies": latencies,
                    "detected_via": degraded["detected_via"],
                    "pages_rehomed": cell["pages_rehomed"],
                    "pages_lost": cell["pages_lost"],
                    "locks_regenerated": cell["locks_regenerated"],
                    "barrier_reconfigs": cell["barrier_reconfigs"],
                }

    latency_bar = opts.detect_cycles + DETECT_SLACK
    bench = {
        "grid": f"{list(opts.machines)} x {list(opts.workloads)} x "
                f"crash fracs {list(opts.fracs)}, scale {scale.value}",
        "elapsed_s": round(elapsed, 2),
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "detect_cycles": opts.detect_cycles,
        "cells": cells,
        "detection_latency": {
            "what": "worst crash-to-declaration latency (sim cycles)",
            "worst": worst_latency,
            "bar": latency_bar,
        },
        "degraded_overhead": {
            "what": "worst degraded/clean speedup ratio",
            "worst_cell": worst_retained[0] if worst_retained else None,
            "retained": round(worst_retained[1], 4) if worst_retained
            else None,
            "bar": args.min_retained,
        },
        "incomplete_cells": incomplete,
    }
    write_bench_json(OUT_PATH, bench)

    if incomplete:
        print(f"COMPLETION BAR MISSED: {len(incomplete)} crashed "
              f"cell(s) never declared the failure: {incomplete}")
        ok = False
    else:
        print(f"completion: all {len(cells)} crashed cells finished "
              f"degraded and verified")
    if worst_latency <= 0 or worst_latency > latency_bar:
        print(f"DETECTION BAR MISSED: worst latency {worst_latency} "
              f"cycles outside (0, {latency_bar}]")
        ok = False
    else:
        print(f"detection: worst latency {worst_latency} cycles "
              f"(bar {latency_bar})")
    if worst_retained is None or worst_retained[1] < args.min_retained:
        retained = worst_retained[1] if worst_retained else float("nan")
        print(f"OVERHEAD BAR MISSED: worst retained speedup "
              f"{retained:.3f} < {args.min_retained}")
        ok = False
    else:
        print(f"overhead: worst retained speedup {worst_retained[1]:.3f} "
              f"at {worst_retained[0]} (bar {args.min_retained})")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
