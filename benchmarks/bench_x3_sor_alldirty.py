"""Sections 2.3/2.4.2: SOR control experiment where every point changes every iteration, equalizing data movement between TreadMarks and the SGI.

Regenerates the artifact via the experiment registry (id: ``x3``)
and archives the rows under ``benchmarks/results/x3.txt``.
"""

from _common import bench_experiment


def test_x3(benchmark):
    bench_experiment(benchmark, "x3")
