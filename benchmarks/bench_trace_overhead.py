"""Wall-clock overhead of the tracing layer.

Times fixed bench-scale SOR and TSP runs in three configurations:

* ``off``      — no tracer (the NULL_TRACER fast path),
* ``metrics``  — breakdown accounting only (``keep_spans=False``),
* ``full``     — spans + instants retained for Chrome export.

Writes ``BENCH_trace_overhead.json`` at the repo root.  The acceptance
bar is that the *disabled* path costs <5% over the seed baseline; the
script also verifies that tracing never changes simulated cycles.

Run with::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py
"""

from __future__ import annotations

import os
import time

from _common import write_bench_json
from repro.harness.workloads import Scale, make_app
from repro.machines.dec_treadmarks import DecTreadMarksMachine
from repro.machines.sgi import SgiMachine
from repro.trace.tracer import Tracer

REPEATS = 9
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_trace_overhead.json")

WORKLOADS = [
    ("treadmarks", DecTreadMarksMachine, "sor_small", 4),
    ("treadmarks", DecTreadMarksMachine, "tsp18", 4),
    ("sgi", SgiMachine, "sor_small", 4),
]


def _time_run(machine_cls, app_name, nprocs, tracer_factory):
    """Best wall-clock seconds over REPEATS runs; also the cycles.

    The minimum is the standard estimator for microbenchmarks: every
    sample above it is the same work plus scheduler noise.
    """
    samples = []
    cycles = None
    # One untimed warmup so the first timed sample is not paying for
    # allocator/cache warmup.
    machine_cls().run(make_app(app_name, Scale.BENCH), nprocs,
                      tracer=tracer_factory())
    for _ in range(REPEATS):
        machine = machine_cls()
        app = make_app(app_name, Scale.BENCH)
        tracer = tracer_factory()
        start = time.perf_counter()
        result = machine.run(app, nprocs, tracer=tracer)
        samples.append(time.perf_counter() - start)
        if cycles is None:
            cycles = result.cycles
        elif result.cycles != cycles:
            raise AssertionError(
                f"non-deterministic cycles for {app_name}: "
                f"{result.cycles} != {cycles}")
    return min(samples), cycles


def main() -> int:
    configs = {
        "off": lambda: None,
        "metrics": lambda: Tracer(keep_spans=False),
        "full": lambda: Tracer(keep_spans=True),
    }
    report = {"repeats": REPEATS, "scale": "bench", "runs": []}
    for label, machine_cls, app_name, nprocs in WORKLOADS:
        entry = {"machine": label, "app": app_name, "nprocs": nprocs}
        cycles_seen = {}
        for config, factory in configs.items():
            seconds, cycles = _time_run(machine_cls, app_name, nprocs,
                                        factory)
            entry[f"seconds_{config}"] = round(seconds, 6)
            cycles_seen[config] = cycles
        if len(set(cycles_seen.values())) != 1:
            raise AssertionError(
                f"tracing changed simulated cycles: {cycles_seen}")
        entry["cycles"] = cycles_seen["off"]
        entry["overhead_metrics"] = round(
            entry["seconds_metrics"] / entry["seconds_off"] - 1, 4)
        entry["overhead_full"] = round(
            entry["seconds_full"] / entry["seconds_off"] - 1, 4)
        report["runs"].append(entry)
        print(f"{label:12s} {app_name:10s} off={entry['seconds_off']:.4f}s "
              f"metrics=+{entry['overhead_metrics']:.1%} "
              f"full=+{entry['overhead_full']:.1%}")

    write_bench_json(OUT_PATH, report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
