"""Table 1: Single-processor execution times on the DECstation (with and without TreadMarks) and the SGI 4D/480. The DSM must add ~nothing at one processor; the SGI must lag only when the working set exceeds its 1 MB L2.

Regenerates the artifact via the experiment registry (id: ``t1``)
and archives the rows under ``benchmarks/results/t1.txt``.
"""

from _common import bench_experiment


def test_t1(benchmark):
    bench_experiment(benchmark, "t1")
