"""Figure 11: M-Water on AS/AH/HS: only AH keeps improving; AS peaks at a small processor count, HS mid-range.

Regenerates the artifact via the experiment registry (id: ``fig11``)
and archives the rows under ``benchmarks/results/fig11.txt``.
"""

from _common import bench_experiment


def test_fig11(benchmark):
    bench_experiment(benchmark, "fig11")
