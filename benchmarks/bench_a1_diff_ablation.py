"""DESIGN.md A1: Ablation: run-length diffs versus whole-page transfers on the fault path.

Regenerates the artifact via the experiment registry (id: ``a1``)
and archives the rows under ``benchmarks/results/a1.txt``.
"""

from _common import bench_experiment


def test_a1(benchmark):
    bench_experiment(benchmark, "a1")
