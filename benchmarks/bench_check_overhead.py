"""Wall-clock overhead of the consistency-checking layer.

Times fixed bench-scale workloads in three configurations:

* ``off``     — checkers never constructed (the ``is not None`` path),
* ``online``  — invariant checkers armed (``checking()``),
* ``history`` — plus LRC history recording and post-run replay.

Writes ``BENCH_check_overhead.json`` at the repo root.  The acceptance
bar is that the *disabled* path is free — hook sites cost one ``None``
test each — and the script verifies that checking never changes
simulated cycles.

Run with::

    PYTHONPATH=src python benchmarks/bench_check_overhead.py
"""

from __future__ import annotations

import contextlib
import os
import time

from _common import write_bench_json
from repro.check import checking
from repro.harness.workloads import Scale, make_app
from repro.machines.all_hardware import AllHardwareMachine
from repro.machines.dec_treadmarks import DecTreadMarksMachine
from repro.machines.sgi import SgiMachine

REPEATS = 9
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_check_overhead.json")

WORKLOADS = [
    ("treadmarks", DecTreadMarksMachine, "sor_small", 4),
    ("treadmarks", DecTreadMarksMachine, "tsp18", 4),
    ("sgi", SgiMachine, "sor_small", 4),
    ("ah", AllHardwareMachine, "sor_small", 4),
]


def _time_run(machine_cls, app_name, nprocs, check_ctx):
    """Best wall-clock seconds over REPEATS runs; also the cycles.

    The minimum is the standard estimator for microbenchmarks: every
    sample above it is the same work plus scheduler noise.
    """
    samples = []
    cycles = None
    with check_ctx():
        # One untimed warmup so the first timed sample is not paying
        # for allocator/cache warmup.
        machine_cls().run(make_app(app_name, Scale.BENCH), nprocs)
        for _ in range(REPEATS):
            machine = machine_cls()
            app = make_app(app_name, Scale.BENCH)
            start = time.perf_counter()
            result = machine.run(app, nprocs)
            samples.append(time.perf_counter() - start)
            if cycles is None:
                cycles = result.cycles
            elif result.cycles != cycles:
                raise AssertionError(
                    f"non-deterministic cycles for {app_name}: "
                    f"{result.cycles} != {cycles}")
    return min(samples), cycles


def main() -> int:
    configs = {
        "off": contextlib.nullcontext,
        "online": checking,
        "history": lambda: checking(history=True),
    }
    report = {"repeats": REPEATS, "scale": "bench", "runs": []}
    for label, machine_cls, app_name, nprocs in WORKLOADS:
        entry = {"machine": label, "app": app_name, "nprocs": nprocs}
        cycles_seen = {}
        for config, ctx in configs.items():
            seconds, cycles = _time_run(machine_cls, app_name, nprocs,
                                        ctx)
            entry[f"seconds_{config}"] = round(seconds, 6)
            cycles_seen[config] = cycles
        if len(set(cycles_seen.values())) != 1:
            raise AssertionError(
                f"checking changed simulated cycles: {cycles_seen}")
        entry["cycles"] = cycles_seen["off"]
        entry["overhead_online"] = round(
            entry["seconds_online"] / entry["seconds_off"] - 1, 4)
        entry["overhead_history"] = round(
            entry["seconds_history"] / entry["seconds_off"] - 1, 4)
        report["runs"].append(entry)
        print(f"{label:12s} {app_name:10s} off={entry['seconds_off']:.4f}s "
              f"online=+{entry['overhead_online']:.1%} "
              f"history=+{entry['overhead_history']:.1%}")

    write_bench_json(OUT_PATH, report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
