"""Figure 2: ILINK speedups on the BAD-like input: fine grain and a high barrier rate widen the SGI-TreadMarks gap.

Regenerates the artifact via the experiment registry (id: ``fig2``)
and archives the rows under ``benchmarks/results/fig2.txt``.
"""

from _common import bench_experiment


def test_fig2(benchmark):
    bench_experiment(benchmark, "fig2")
