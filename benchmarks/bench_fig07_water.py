"""Figure 7: Original Water (one lock per force update): TreadMarks collapses under the message rate; the SGI scales.

Regenerates the artifact via the experiment registry (id: ``fig7``)
and archives the rows under ``benchmarks/results/fig7.txt``.
"""

from _common import bench_experiment


def test_fig7(benchmark):
    bench_experiment(benchmark, "fig7")
