"""Figure 13: Total data at the largest simulated machine, HS versus AS, split into miss, consistency, and header bytes.

Regenerates the artifact via the experiment registry (id: ``fig13``)
and archives the rows under ``benchmarks/results/fig13.txt``.
"""

from _common import bench_experiment


def test_fig13(benchmark):
    bench_experiment(benchmark, "fig13")
