"""Section 2.4.3: TSP with an eager release on the bound lock: pushing the bound at release time removes most of the redundant work.

Regenerates the artifact via the experiment registry (id: ``x1``)
and archives the rows under ``benchmarks/results/x1.txt``.
"""

from _common import bench_experiment


def test_x1(benchmark):
    bench_experiment(benchmark, "x1")
