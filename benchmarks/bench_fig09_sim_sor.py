"""Figure 9: SOR on the simulated AS/AH/HS machines up to 64 processors: AH and HS near-linear, AS sub-linear.

Regenerates the artifact via the experiment registry (id: ``fig9``)
and archives the rows under ``benchmarks/results/fig9.txt``.
"""

from _common import bench_experiment


def test_fig9(benchmark):
    bench_experiment(benchmark, "fig9")
