"""Figure 6: TSP, 18-city-equivalent instance: a smaller problem raises the sync-to-compute ratio and widens the gap slightly.

Regenerates the artifact via the experiment registry (id: ``fig6``)
and archives the rows under ``benchmarks/results/fig6.txt``.
"""

from _common import bench_experiment


def test_fig6(benchmark):
    bench_experiment(benchmark, "fig6")
