"""Before/after wall-clock for the batched-op engine core and the pool.

Two measurements against the pinned pre-batching baseline
(``benchmarks/results/engine_baseline.json``, measured at the commit
named inside it):

* ``tsp18`` — the serial hot path: TreadMarks running the bench-scale
  TSP instance on 4 processors.  Batched (OpBlock) issue plus the
  memoized bound computations must beat the per-op baseline by at
  least ``MIN_TSP_SPEEDUP``.
* ``fig3_grid`` — the 8-run Figure-3-style grid (TreadMarks + SGI,
  SOR, 1-8 processors), serial vs the persistent process pool.  The
  pool must not lose to serial: ``effective_workers`` clamps to the
  cores actually present, so on a single-core box the pool degenerates
  to the in-process path and the ratio sits at ~1.0 by construction;
  on a real multi-core box it wins outright.  CI pins a floor via
  ``--min-pool-speedup``.

Both configurations must produce identical summaries (the runner's
determinism contract) — asserted before any number is reported.

Writes ``BENCH_engine.json`` at the repo root and exits non-zero if a
bar is missed.  Run with::

    PYTHONPATH=src python benchmarks/bench_engine.py [--min-pool-speedup F]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from _common import write_bench_json
from repro.harness.parallel import (RunPlan, effective_workers,
                                    execute_plan, shutdown_pool)
from repro.harness.workloads import Scale, make_app
from repro.machines import make_machine

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "results",
                             "engine_baseline.json")
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_engine.json")

POOL_JOBS = 4
PROCS = (1, 2, 4, 8)
ROUNDS = 3
MIN_TSP_SPEEDUP = 1.5


def best_of(fn, rounds: int = ROUNDS):
    """Smallest wall-clock over ``rounds`` runs, plus the last result."""
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def tsp18_hot_path():
    machine = make_machine("treadmarks")
    app = make_app("tsp18", Scale.BENCH)
    return machine.run(app, 4)


def fig3_plan() -> RunPlan:
    plan = RunPlan()
    for name in ("treadmarks", "sgi"):
        for p in PROCS:
            plan.add(make_machine(name), make_app("sor_small", Scale.BENCH), p)
    return plan


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--min-pool-speedup", type=float, default=0.85,
                        help="fail below this pool-vs-serial ratio "
                             "(CI floor; ~1.0 on any box thanks to the "
                             "cores clamp, >1 on multi-core)")
    args = parser.parse_args()

    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)

    tsp_after, _ = best_of(tsp18_hot_path)
    tsp_before = baseline["tsp18_bench_treadmarks_p4_s"]
    tsp_speedup = tsp_before / tsp_after

    # Interleave the two configurations round by round so slow drift
    # (page cache, frequency scaling) hits both legs evenly.
    serial_s = pool_s = float("inf")
    serial_results = pool_results = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        serial_results = execute_plan(fig3_plan(), jobs=1, cache=None)
        serial_s = min(serial_s, time.perf_counter() - start)
        start = time.perf_counter()
        pool_results = execute_plan(fig3_plan(), jobs=POOL_JOBS,
                                    cache=None)
        pool_s = min(pool_s, time.perf_counter() - start)
    shutdown_pool()

    serial_sums = [r.summary() for r in serial_results]
    pool_sums = [r.summary() for r in pool_results]
    if serial_sums != pool_sums:
        raise AssertionError("pool and serial summaries disagree")

    pool_vs_serial = serial_s / pool_s
    workers = effective_workers(POOL_JOBS, len(fig3_plan()))

    report = {
        "baseline": baseline,
        "cpu_count": os.cpu_count(),
        "rounds": ROUNDS,
        "tsp18": {
            "what": "treadmarks x tsp18 (bench scale) x 4 procs, serial",
            "before_s": round(tsp_before, 4),
            "after_s": round(tsp_after, 4),
            "speedup": round(tsp_speedup, 2),
            "bar": MIN_TSP_SPEEDUP,
        },
        "fig3_grid": {
            "what": "fig3-style: (treadmarks, sgi) x sor_small x "
                    f"procs {list(PROCS)}, scale bench",
            "runs": len(fig3_plan()),
            "pool_jobs": POOL_JOBS,
            "workers_effective": workers,
            "serial_s": round(serial_s, 4),
            "pool_s": round(pool_s, 4),
            "pool_vs_serial": round(pool_vs_serial, 2),
            "bar": args.min_pool_speedup,
            "serial_vs_baseline": round(
                baseline["fig3_grid_serial_s"] / serial_s, 2),
        },
        "determinism": "pool and serial produced identical summaries",
    }

    print(f"tsp18 hot path: {tsp_before:.3f}s -> {tsp_after:.3f}s  "
          f"(x{tsp_speedup:.2f}, bar x{MIN_TSP_SPEEDUP})")
    print(f"fig3 grid: serial {serial_s:.3f}s, pool {pool_s:.3f}s "
          f"({workers} effective workers, x{pool_vs_serial:.2f} vs "
          f"serial, bar x{args.min_pool_speedup})")

    write_bench_json(OUT_PATH, report)

    ok = (tsp_speedup >= MIN_TSP_SPEEDUP
          and pool_vs_serial >= args.min_pool_speedup)
    if not ok:
        print("ENGINE BENCH BAR MISSED")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
