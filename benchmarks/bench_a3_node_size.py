"""DESIGN.md A3: Ablation: HS node-size sweep — message reduction versus intra-node serialization.

Regenerates the artifact via the experiment registry (id: ``a3``)
and archives the rows under ``benchmarks/results/a3.txt``.
"""

from _common import bench_experiment


def test_a3(benchmark):
    bench_experiment(benchmark, "a3")
