"""DESIGN.md A2: Ablation: lazy versus eager release across applications — eager helps unsynchronized readers, hurts lock-heavy codes.

Regenerates the artifact via the experiment registry (id: ``a2``)
and archives the rows under ``benchmarks/results/a2.txt``.
"""

from _common import bench_experiment


def test_a2(benchmark):
    bench_experiment(benchmark, "a2")
