"""Figure 14: Software-overhead sweep for SOR on AS: the fixed per-message cost dominates.

Regenerates the artifact via the experiment registry (id: ``fig14``)
and archives the rows under ``benchmarks/results/fig14.txt``.
"""

from _common import bench_experiment


def test_fig14(benchmark):
    bench_experiment(benchmark, "fig14")
