"""The ablation artifact: per-mechanism importance over the DSM.

Runs the ``ablation-sweep`` experiment — every TreadMarks mechanism
switched off one at a time (and, with ``--one-only``, switched on one
at a time) on the AS and HS machines over SOR, TSP, and M-Water — and
distils two claims the protocol design rests on:

* **Diffs earn their keep.**  Shipping RLE diffs instead of whole
  pages is the paper's core bandwidth argument (§2.4.2): with diffs
  ablated, M-Water must move at least ``--min-diff-bytes-ratio`` times
  the bytes of the full protocol on some software machine.

* **Nothing is dead weight.**  Every swept mechanism must register a
  nonzero leave-one-out importance score on at least one
  (machine, workload) cell — a mechanism whose removal changes no
  metric anywhere is untested freight, and the sweep would be the
  place to find out.

Writes ``BENCH_ablation.json`` at the repo root and archives the
ranked report under ``benchmarks/results/ablation-sweep.txt``.  Exits
non-zero if a bar is missed.  Run with::

    PYTHONPATH=src python benchmarks/bench_ablation.py \
        [--scale test|bench] [--jobs N] [--min-diff-bytes-ratio F]
"""

from __future__ import annotations

import argparse
import os
import time

from _common import RESULTS_DIR, write_bench_json
from repro.harness.experiments import (REGISTRY, ablation_sweep_options,
                                       current_ablation_options,
                                       run_experiment)
from repro.harness.parallel import run_context, shutdown_pool
from repro.harness.workloads import Scale

OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_ablation.json")

MIN_DIFF_BYTES_RATIO = 1.3


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=[s.value for s in Scale],
                        default=Scale.TEST.value,
                        help="problem-size scale (default: test; bench "
                             "sweeps to 64 processors and takes "
                             "proportionally longer)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel simulation workers (0 = all "
                             "cores; default: 1)")
    parser.add_argument("--one-only", action="store_true",
                        help="also sweep the one-only grid (each "
                             "mechanism alone against everything off)")
    parser.add_argument("--min-diff-bytes-ratio", type=float,
                        default=MIN_DIFF_BYTES_RATIO, metavar="F",
                        help="fail unless ablating diffs multiplies "
                             "M-Water's bytes on some software machine "
                             "by this factor (default: %(default)s)")
    args = parser.parse_args()
    scale = Scale(args.scale)
    grids = ("loo", "only") if args.one_only else ("loo",)

    start = time.perf_counter()
    with ablation_sweep_options(grids=grids):
        opts = current_ablation_options()
        with run_context(jobs=args.jobs):
            report = run_experiment("ablation-sweep", scale)
    shutdown_pool()
    elapsed = time.perf_counter() - start

    text = report.text()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "ablation-sweep.txt"), "w") as fh:
        fh.write(f"{text}\n[expected shape: "
                 f"{REGISTRY['ablation-sweep'].shape_note}]\n")

    top = report.data["top_procs"]
    cells = report.data["cells"]
    ranking = report.data["ranking"]

    # Bar 1: diffs move the bytes needle on M-Water.  Peak ablated/full
    # bytes ratio over the swept machines' mwater cells.
    diff_ratio = 0.0
    diff_cell = None
    for key, grids_cell in cells.items():
        if not key.endswith("/mwater"):
            continue
        cell = grids_cell.get("loo", {}).get("diffs")
        if cell and cell["full"]["bytes"] > 0:
            ratio = cell["ablated"]["bytes"] / cell["full"]["bytes"]
            if ratio > diff_ratio:
                diff_ratio, diff_cell = ratio, key

    # Bar 2: every swept mechanism scores nonzero somewhere.
    dead = [e["mechanism"] for e in ranking if e["score"] <= 0.0]
    swept = {e["mechanism"] for e in ranking}
    dead += [m for m in report.data["mechanisms"] if m not in swept]

    bench = {
        "grid": f"{list(opts.machines)} x {list(opts.workloads)} x "
                f"{len(opts.mechanisms)} mechanisms x {list(grids)}, "
                f"scale {scale.value}, {top} procs",
        "elapsed_s": round(elapsed, 2),
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "top_procs": top,
        "cells": cells,
        "ranking": ranking,
        "diff_bytes": {
            "what": "peak ablated/full total-bytes ratio with diffs "
                    "off, M-Water cells",
            "cell": diff_cell,
            "ratio": round(diff_ratio, 4),
            "bar": args.min_diff_bytes_ratio,
        },
        "dead_mechanisms": {
            "what": "mechanisms with zero leave-one-out importance "
                    "on every swept cell",
            "dead": dead,
            "bar": "must be empty",
        },
    }
    write_bench_json(OUT_PATH, bench)

    ok = True
    if diff_ratio < args.min_diff_bytes_ratio:
        print(f"DIFF BYTES BAR MISSED: ablated/full x{diff_ratio:.3f} "
              f"< x{args.min_diff_bytes_ratio}")
        ok = False
    else:
        print(f"diff bytes: {diff_cell} ships x{diff_ratio:.3f} the "
              f"bytes without diffs (bar x{args.min_diff_bytes_ratio})")
    if dead:
        print(f"DEAD MECHANISM BAR MISSED: zero importance everywhere "
              f"for {', '.join(sorted(dead))}")
        ok = False
    else:
        print(f"mechanisms: all {len(ranking)} swept mechanisms score "
              "nonzero on some cell")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
