"""Wall-clock benefit of the parallel runner and the result cache.

Executes the Figure-3-style grid (TreadMarks vs SGI, SOR, 1-8
processors) in four configurations:

* ``serial``   — ``jobs=1``, no cache (the pre-parallel baseline),
* ``pool``     — ``jobs=4`` process-pool fan-out, no cache,
* ``cold``     — ``jobs=4`` writing a fresh content-addressed cache,
* ``warm``     — same grid again, served entirely from that cache.

Every configuration must produce identical summaries — the runner's
determinism contract — and the script asserts it before reporting.

Honest-numbers note: pool speedup scales with *available cores*, so
``cpu_count`` is recorded in the report.  On a single-core container
the pool adds process-spawn overhead instead of helping; the warm
cache is the configuration whose speedup is hardware-independent
(near-zero simulated work — the acceptance bar).

Writes ``BENCH_parallel_runner.json`` at the repo root.  Run with::

    PYTHONPATH=src python benchmarks/bench_parallel_runner.py
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from _common import write_bench_json
from repro.harness.cache import ResultCache
from repro.harness.parallel import RunPlan, execute_plan
from repro.harness.workloads import Scale, make_app
from repro.machines.dec_treadmarks import DecTreadMarksMachine
from repro.machines.sgi import SgiMachine

POOL_JOBS = 4
PROCS = (1, 2, 4, 8)
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_parallel_runner.json")


def build_plan() -> RunPlan:
    plan = RunPlan()
    for machine_cls in (DecTreadMarksMachine, SgiMachine):
        for p in PROCS:
            plan.add(machine_cls(), make_app("sor_small", Scale.BENCH), p)
    return plan


def timed(jobs: int, cache) -> tuple:
    start = time.perf_counter()
    results = execute_plan(build_plan(), jobs=jobs, cache=cache)
    return time.perf_counter() - start, [r.summary() for r in results]


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="bench-cache-")
    try:
        seconds = {}
        summaries = {}
        seconds["serial"], summaries["serial"] = timed(1, None)
        seconds["pool"], summaries["pool"] = timed(POOL_JOBS, None)
        cache = ResultCache(cache_dir)
        seconds["cold"], summaries["cold"] = timed(POOL_JOBS, cache)
        cold_stats = dict(cache.stats())
        seconds["warm"], summaries["warm"] = timed(POOL_JOBS, cache)
        warm_stats = {k: v - cold_stats[k]
                      for k, v in cache.stats().items()}
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    if any(s != summaries["serial"] for s in summaries.values()):
        raise AssertionError("configurations disagree on summaries")
    if warm_stats["misses"] or warm_stats["stores"]:
        raise AssertionError(f"warm pass was not all-hits: {warm_stats}")

    report = {
        "grid": "fig3-style: (treadmarks, sgi) x sor_small x "
                f"procs {list(PROCS)}, scale bench",
        "runs": len(build_plan()),
        "pool_jobs": POOL_JOBS,
        "cpu_count": os.cpu_count(),
        "seconds": {k: round(v, 4) for k, v in seconds.items()},
        "speedup_vs_serial": {
            k: round(seconds["serial"] / v, 2)
            for k, v in seconds.items() if k != "serial"},
        "cold_cache_stats": cold_stats,
        "warm_cache_stats": warm_stats,
        "determinism": "all configurations produced identical summaries",
    }
    for key, secs in seconds.items():
        print(f"{key:8s} {secs:8.3f}s  "
              f"(x{seconds['serial'] / secs:.2f} vs serial)")
    print(f"cold cache: {cold_stats}; warm cache: {warm_stats}")

    write_bench_json(OUT_PATH, report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
