"""Figure 3: Large SOR (paper: 2000x1000): TreadMarks above the SGI — the grid thrashes the SGI L2 and its shared bus saturates, while each DECstation streams from private memory and diffs stay tiny.

Regenerates the artifact via the experiment registry (id: ``fig3``)
and archives the rows under ``benchmarks/results/fig3.txt``.
"""

from _common import bench_experiment


def test_fig3(benchmark):
    bench_experiment(benchmark, "fig3")
