"""Table 2: 8-processor TreadMarks execution statistics: barriers/s, remote locks/s, messages/s and Kbytes/s for all eight workloads. The synchronization-rate ordering across applications is the quantity under test.

Regenerates the artifact via the experiment registry (id: ``t2``)
and archives the rows under ``benchmarks/results/t2.txt``.
"""

from _common import bench_experiment


def test_t2(benchmark):
    bench_experiment(benchmark, "t2")
