"""Robustness: TreadMarks speedup decay under injected message loss.

Regenerates the artifact via the experiment registry (id:
``fault-sweep``) and archives the rows under
``benchmarks/results/fault-sweep.txt``.
"""

from _common import bench_experiment


def test_fault_sweep(benchmark):
    bench_experiment(benchmark, "fault-sweep")
