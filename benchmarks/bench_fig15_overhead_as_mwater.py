"""Figure 15: Software-overhead sweep for M-Water on AS: fixed and per-word costs matter about equally.

Regenerates the artifact via the experiment registry (id: ``fig15``)
and archives the rows under ``benchmarks/results/fig15.txt``.
"""

from _common import bench_experiment


def test_fig15(benchmark):
    bench_experiment(benchmark, "fig15")
