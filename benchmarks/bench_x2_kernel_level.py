"""Section 2.4.4: Kernel-level TreadMarks: halved messaging costs barely move the barrier applications but sharply improve M-Water.

Regenerates the artifact via the experiment registry (id: ``x2``)
and archives the rows under ``benchmarks/results/x2.txt``.
"""

from _common import bench_experiment


def test_x2(benchmark):
    bench_experiment(benchmark, "x2")
