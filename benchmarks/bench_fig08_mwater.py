"""Figure 8: M-Water (accumulate locally, one locked update per molecule): TreadMarks recovers real speedup; the SGI is nearly unchanged versus Water.

Regenerates the artifact via the experiment registry (id: ``fig8``)
and archives the rows under ``benchmarks/results/fig8.txt``.
"""

from _common import bench_experiment


def test_fig8(benchmark):
    bench_experiment(benchmark, "fig8")
