"""Section 2.2 / 2.4.4: minimum remote lock acquisition time and
8-processor barrier time, user-level vs kernel-level TreadMarks.

Regenerates the artifact via the experiment registry (id: ``x4``)
and archives the rows under ``benchmarks/results/x4.txt``.
"""

from _common import bench_experiment


def test_x4(benchmark):
    bench_experiment(benchmark, "x4")
