"""Figure 1: ILINK speedups on the CLP-like input: the SGI leads TreadMarks by the smallest ILINK margin (coarse grain, ~0.5 barriers/s).

Regenerates the artifact via the experiment registry (id: ``fig1``)
and archives the rows under ``benchmarks/results/fig1.txt``.
"""

from _common import bench_experiment


def test_fig1(benchmark):
    bench_experiment(benchmark, "fig1")
