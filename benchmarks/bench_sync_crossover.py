"""The sync-crossover artifact: lock x barrier x machine sweep.

Runs the ``sync-sweep`` experiment — TSP-18 and M-Water across every
lock algorithm (token, mcs, ticket, combining) crossed with every
barrier algorithm (central, tree, combining) on the three simulated
machines (AS, AH, HS) — and distils the *crossover* question: how far
does the best synchronization policy move a software machine toward
the all-hardware machine's default speedup?

The acceptance bar is the point of the whole subsystem: at least one
non-default policy on a software machine must beat the token+central
baseline by ``--min-crossover-gain`` (the tree barrier on AS M-Water
is the expected winner — it removes the central manager's O(n)
handler serialization, the precise cost that separates AS from AH in
the paper's Figure 11).  AH itself must stay nearly flat across
policies (``--max-ah-spread``): hardware synchronization was never
the bottleneck, so policy choice should barely matter there.

Writes ``BENCH_sync_crossover.json`` at the repo root and archives
the report rows under ``benchmarks/results/sync-sweep.txt``.  Exits
non-zero if a bar is missed.  Run with::

    PYTHONPATH=src python benchmarks/bench_sync_crossover.py \
        [--scale test|bench] [--jobs N] [--min-crossover-gain F]
"""

from __future__ import annotations

import argparse
import os
import time

from _common import RESULTS_DIR, write_bench_json
from repro.harness.experiments import (REGISTRY, current_sync_options,
                                       run_experiment)
from repro.harness.parallel import run_context, shutdown_pool
from repro.harness.workloads import Scale

OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_sync_crossover.json")

MIN_CROSSOVER_GAIN = 1.02
MAX_AH_SPREAD = 1.05


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=[s.value for s in Scale],
                        default=Scale.TEST.value,
                        help="problem-size scale (default: test; bench "
                             "sweeps to 64 processors and takes "
                             "proportionally longer)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel simulation workers (0 = all "
                             "cores; default: 1)")
    parser.add_argument("--min-crossover-gain", type=float,
                        default=MIN_CROSSOVER_GAIN, metavar="F",
                        help="fail unless some software-machine policy "
                             "beats its token+central baseline by this "
                             "factor (default: %(default)s)")
    parser.add_argument("--max-ah-spread", type=float,
                        default=MAX_AH_SPREAD, metavar="F",
                        help="fail if AH's best/worst policy speedup "
                             "ratio exceeds this (default: %(default)s)")
    args = parser.parse_args()
    scale = Scale(args.scale)
    opts = current_sync_options()

    start = time.perf_counter()
    with run_context(jobs=args.jobs):
        report = run_experiment("sync-sweep", scale)
    shutdown_pool()
    elapsed = time.perf_counter() - start

    text = report.text()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "sync-sweep.txt"), "w") as fh:
        fh.write(f"{text}\n[expected shape: "
                 f"{REGISTRY['sync-sweep'].shape_note}]\n")

    top = report.data["top_procs"]
    summary = report.data["summary"]
    cells = report.data["cells"]

    # Bar 1: the crossover shift.  Best gain over every software
    # (machine, workload) pair in the sweep.
    software = {key: s for key, s in summary.items()
                if not key.endswith("/ah")}
    best_key, best = max(software.items(), key=lambda kv: kv[1]["gain"]) \
        if software else (None, None)

    # Bar 2: AH stays flat — policy choice must not matter where
    # synchronization runs in hardware.
    ah_spread = 0.0
    for workload, machines in cells.items():
        ah = machines.get("ah")
        if not ah:
            continue
        speedups = [c["speedups"][str(top)] for c in ah.values()]
        if min(speedups) > 0:
            ah_spread = max(ah_spread, max(speedups) / min(speedups))

    bench = {
        "grid": f"{list(opts.machines)} x {list(opts.workloads)} x "
                f"{len(opts.locks)} locks x {len(opts.barriers)} "
                f"barriers, scale {scale.value}, up to {top} procs",
        "elapsed_s": round(elapsed, 2),
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "top_procs": top,
        "cells": cells,
        "summary": summary,
        "crossover": {
            "what": "best software-machine policy vs its token+central "
                    "baseline",
            "best_cell": best_key,
            "best_policy": best["best_policy"] if best else None,
            "gain": round(best["gain"], 4) if best else None,
            "bar": args.min_crossover_gain,
        },
        "ah_flatness": {
            "what": "max best/worst policy speedup ratio on AH",
            "spread": round(ah_spread, 4),
            "bar": args.max_ah_spread,
        },
    }
    write_bench_json(OUT_PATH, bench)

    ok = True
    if best is None or best["gain"] < args.min_crossover_gain:
        gain = best["gain"] if best else float("nan")
        print(f"CROSSOVER BAR MISSED: best software gain x{gain:.3f} "
              f"< x{args.min_crossover_gain}")
        ok = False
    else:
        print(f"crossover: {best_key} via {best['best_policy']} "
              f"x{best['gain']:.3f} (bar x{args.min_crossover_gain})")
    if ah_spread > args.max_ah_spread:
        print(f"AH FLATNESS BAR MISSED: policy spread x{ah_spread:.3f} "
              f"> x{args.max_ah_spread}")
        ok = False
    else:
        print(f"ah flatness: policy spread x{ah_spread:.3f} "
              f"(bar x{args.max_ah_spread})")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
