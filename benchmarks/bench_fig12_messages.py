"""Figure 12: Total messages at the largest simulated machine, HS versus AS, split into miss and synchronization messages.

Regenerates the artifact via the experiment registry (id: ``fig12``)
and archives the rows under ``benchmarks/results/fig12.txt``.
"""

from _common import bench_experiment


def test_fig12(benchmark):
    bench_experiment(benchmark, "fig12")
