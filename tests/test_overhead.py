"""Software messaging-overhead model and presets."""

from repro.net.overhead import (OVERHEAD_SWEEP, OverheadPreset,
                                SoftwareOverhead)


def test_send_cost_scales_with_words():
    ov = SoftwareOverhead(fixed_send_cycles=1000, per_word_cycles=4)
    assert ov.send_cost(0) == 1000
    assert ov.send_cost(4) == 1004
    assert ov.send_cost(4096) == 1000 + 1024 * 4


def test_recv_includes_handler_dispatch():
    ov = SoftwareOverhead(fixed_recv_cycles=1000, per_word_cycles=4,
                          handler_dispatch_cycles=500)
    assert ov.recv_cost(0) == 1500
    assert ov.recv_cost(40) == 1500 + 10 * 4


def test_page_operation_costs():
    ov = SoftwareOverhead()
    assert ov.twin_cost(4096) == 1024 * ov.twin_per_word_cycles
    assert ov.diff_create_cost(4096) == \
        ov.diff_fixed_cycles + 1024 * ov.diff_per_word_cycles
    assert ov.diff_apply_cost(400) == 100 * ov.diff_apply_per_word_cycles
    assert ov.fault_cost() == \
        ov.fault_trap_cycles + ov.handler_dispatch_cycles


def test_with_fixed_and_per_word():
    base = OverheadPreset.SIM_BASE.build()
    low = base.with_fixed(100)
    assert low.fixed_send_cycles == low.fixed_recv_cycles == 100
    assert low.per_word_cycles == base.per_word_cycles
    cheap = base.with_per_word(1)
    assert cheap.per_word_cycles == 1
    assert cheap.fixed_send_cycles == base.fixed_send_cycles


def test_kernel_cheaper_than_user():
    user = OverheadPreset.USER_LEVEL.build()
    kernel = OverheadPreset.KERNEL_LEVEL.build()
    assert kernel.send_cost(64) < user.send_cost(64)
    assert kernel.recv_cost(64) < user.recv_cost(64)


def test_sweep_strictly_cheaper():
    costs = [p.build().send_cost(256) for p in OVERHEAD_SWEEP]
    assert costs == sorted(costs, reverse=True)
    assert len(set(costs)) == len(costs)


def test_scaled():
    base = OverheadPreset.SIM_BASE.build()
    half = base.scaled(0.5)
    assert half.fixed_send_cycles == base.fixed_send_cycles // 2
    assert half.per_word_cycles == base.per_word_cycles  # not scaled
