"""The numpy-backed shared store."""

import numpy as np
import pytest

from repro.errors import AddressError
from repro.mem.layout import AddressSpace, Geometry
from repro.mem.store import SharedStore


@pytest.fixture
def store():
    space = AddressSpace(Geometry(4096, 64))
    space.alloc("a", 4096)
    space.alloc("b", 8192)
    return SharedStore(space)


def test_views_are_typed_and_shared(store):
    fa = store.view("a", np.float64)
    assert fa.size == 512
    fa[0] = 3.25
    raw = store.raw("a")
    assert np.frombuffer(raw[:8].tobytes(), np.float64)[0] == 3.25


def test_views_cached(store):
    assert store.view("a") is store.view("a")
    assert store.view("a", np.int32) is not store.view("a", np.float64)


def test_regions_do_not_alias(store):
    store.view("a", np.uint8)[:] = 1
    assert store.view("b", np.uint8).sum() == 0


def test_count_changed_bytes(store):
    vals = np.arange(16, dtype=np.float64)
    assert store.count_changed_bytes("a", 0, vals) > 0
    store.write("a", 0, vals)
    assert store.count_changed_bytes("a", 0, vals) == 0
    vals2 = vals.copy()
    vals2[3] += 1.0
    changed = store.count_changed_bytes("a", 0, vals2)
    assert 1 <= changed <= 8


def test_write_returns_changed_and_persists(store):
    vals = np.full(8, 7.0)
    changed = store.write("a", 64, vals)
    assert changed == store.write("a", 64, np.zeros(8)) > 0
    assert store.write("a", 64, np.zeros(8)) == 0


def test_read_copies(store):
    store.write("a", 0, np.full(4, 9.0))
    snapshot = store.read("a", 0, 32)
    store.write("a", 0, np.zeros(4))
    assert np.frombuffer(snapshot.tobytes(), np.float64)[0] == 9.0


def test_bounds_checked(store):
    with pytest.raises(AddressError):
        store.write("a", 4090, np.zeros(2))
    with pytest.raises(AddressError):
        store.read("a", 4096, 1)


def test_checksum_changes_with_content(store):
    c0 = store.checksum("a")
    store.write("a", 0, np.full(4, 5.0))
    c1 = store.checksum("a")
    assert c0 != c1
    # Position-sensitive: same bytes elsewhere give a different sum.
    store.write("a", 0, np.zeros(4))
    store.write("a", 32, np.full(4, 5.0))
    assert store.checksum("a") not in (c0, c1)
