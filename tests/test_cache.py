"""Content-addressed result cache: fingerprints, storage, invalidation."""

import dataclasses
import json

import pytest

from repro.harness.cache import (ResultCache, app_fingerprint_data,
                                 default_cache_dir, run_key)
from repro.harness.workloads import Scale, make_app
from repro.machines import (AllSoftwareMachine, DecTreadMarksMachine,
                            HybridMachine, SgiMachine)
from repro.machines.params import DecAtmParams, SgiParams
from repro.net.overhead import OverheadPreset


# ======================================================================
# fingerprints
# ======================================================================
def test_fingerprint_stable_across_instances():
    app = make_app("sor_small", Scale.TEST)
    assert (run_key(DecTreadMarksMachine(), app, 2) ==
            run_key(DecTreadMarksMachine(), app, 2))
    assert (DecTreadMarksMachine().fingerprint(2) ==
            DecTreadMarksMachine().fingerprint(2))


def test_fingerprint_covers_all_machines():
    app = make_app("sor_small", Scale.TEST)
    machines = [DecTreadMarksMachine(), SgiMachine(),
                AllSoftwareMachine(), HybridMachine()]
    keys = {run_key(m, app, 4) for m in machines}
    assert len(keys) == len(machines)


def test_machine_param_change_invalidates():
    """Editing any value in machines/params.py must change the key."""
    app = make_app("sor_small", Scale.TEST)
    base = run_key(DecTreadMarksMachine(), app, 4)
    slower_net = DecAtmParams(user_bandwidth_bits=10e6)
    assert run_key(DecTreadMarksMachine(slower_net), app, 4) != base

    sgi_base = run_key(SgiMachine(), app, 4)
    bigger_l2 = dataclasses.replace(SgiParams(), l2_bytes=2 * 1024 * 1024)
    assert run_key(SgiMachine(bigger_l2), app, 4) != sgi_base


def test_machine_variant_changes_key_above_one_proc():
    app = make_app("sor_small", Scale.TEST)
    base = run_key(DecTreadMarksMachine(), app, 4)
    assert run_key(DecTreadMarksMachine(kernel_level=True), app, 4) != base
    assert run_key(DecTreadMarksMachine(use_diffs=False), app, 4) != base
    assert run_key(DecTreadMarksMachine(eager_locks="all"), app, 4) != base


def test_software_variants_share_one_proc_baseline():
    """At one node the DSM engages no remote machinery (Table 1), so
    every software variant shares one cached baseline."""
    app = make_app("sor_small", Scale.TEST)
    base = run_key(DecTreadMarksMachine(), app, 1)
    for variant in (DecTreadMarksMachine(kernel_level=True),
                    DecTreadMarksMachine(use_diffs=False),
                    DecTreadMarksMachine(eager_locks="all")):
        assert run_key(variant, app, 1) == base
    assert (run_key(AllSoftwareMachine(), app, 1) ==
            run_key(AllSoftwareMachine(
                overhead_preset=OverheadPreset.KERNEL_LEVEL), app, 1))
    # ... but not across genuinely different local machines.
    assert run_key(AllSoftwareMachine(), app, 1) != base
    assert run_key(SgiMachine(), app, 1) != base


def test_workload_scale_changes_key():
    machine = DecTreadMarksMachine()
    keys = {run_key(machine, make_app("sor_small", scale), 2)
            for scale in (Scale.TEST, Scale.BENCH)}
    assert len(keys) == 2


def test_seed_and_params_change_key():
    machine, app = DecTreadMarksMachine(), make_app("tsp19", Scale.TEST)
    base = run_key(machine, app, 2)
    assert run_key(machine, app, 2, seed=7) != base
    assert run_key(machine, app, 2, params={"x": 1}) != base


def test_app_fingerprint_reflects_configuration():
    a = app_fingerprint_data(make_app("sor_small", Scale.TEST))
    b = app_fingerprint_data(make_app("sor_small", Scale.BENCH))
    assert a["class"] == b["class"] == "SorApp"
    assert a["state"] != b["state"]


# ======================================================================
# storage
# ======================================================================
@pytest.fixture
def cached_run():
    machine = DecTreadMarksMachine()
    app = make_app("sor_small", Scale.TEST)
    return (run_key(machine, app, 2), machine.run(app, 2))


def test_cache_put_get_roundtrip(tmp_path, cached_run):
    key, result = cached_run
    cache = ResultCache(str(tmp_path))
    assert cache.get(key) is None          # cold
    cache.put(key, result)
    restored = cache.get(key)
    assert restored is not None
    assert restored.summary() == result.summary()
    assert restored.cycles == result.cycles
    assert restored.events == result.events
    assert restored.counters.as_dict() == result.counters.as_dict()
    assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}


def test_cache_entry_is_valid_json(tmp_path, cached_run):
    key, result = cached_run
    cache = ResultCache(str(tmp_path))
    cache.put(key, result)
    with open(cache.path_for(key)) as fh:
        payload = json.load(fh)
    assert payload["key"] == key
    assert payload["result"]["machine"] == "treadmarks"


def test_cache_tolerates_corrupt_entry(tmp_path, cached_run):
    key, result = cached_run
    cache = ResultCache(str(tmp_path))
    cache.put(key, result)
    with open(cache.path_for(key), "w") as fh:
        fh.write("{not json")
    assert cache.get(key) is None
    cache.put(key, result)                 # overwrite repairs it
    assert cache.get(key).summary() == result.summary()


def test_default_cache_dir_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert default_cache_dir() == ".repro-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
    assert default_cache_dir() == "/tmp/somewhere"


def test_format_stats_greppable(tmp_path):
    line = ResultCache(str(tmp_path)).format_stats()
    assert "hits=0" in line and "misses=0" in line
