"""Intervals, write notices, and the interval log."""

import pytest

from repro.dsm.interval import (INTERVAL_HEADER_BYTES, NOTICE_RUN_BYTES,
                                Interval, IntervalLog)
from repro.dsm.vectorclock import VectorClock


def make_interval(node, index, pages, width=3):
    vc = [0] * width
    vc[node] = index
    return Interval(node, index, tuple(vc), dict.fromkeys(pages, 100))


def test_notice_runs_contiguous_pages_compress():
    iv = make_interval(0, 1, range(10, 260))
    assert iv.num_notices == 250
    assert iv.notice_runs() == 1
    assert iv.wire_bytes() == INTERVAL_HEADER_BYTES + NOTICE_RUN_BYTES


def test_notice_runs_scattered_pages_do_not_compress():
    iv = make_interval(0, 1, [1, 3, 5, 7])
    assert iv.notice_runs() == 4
    assert iv.wire_bytes() == \
        INTERVAL_HEADER_BYTES + 4 * NOTICE_RUN_BYTES


def test_empty_interval():
    iv = Interval(0, 1, (1, 0, 0))
    assert iv.notice_runs() == 0
    assert iv.wire_bytes() == INTERVAL_HEADER_BYTES


def test_diff_pending_tracking():
    iv = make_interval(0, 1, [5])
    assert iv.diff_pending(5)
    iv.diffs_made.add(5)
    assert not iv.diff_pending(5)
    assert not iv.diff_pending(99)  # never dirtied


def test_log_enforces_order():
    log = IntervalLog(2)
    log.append(make_interval(0, 1, [1], width=2))
    with pytest.raises(ValueError):
        log.append(make_interval(0, 3, [2], width=2))
    log.append(make_interval(0, 2, [2], width=2))
    assert log.node_count(0) == 2
    assert log.node_count(1) == 0
    assert log.get(0, 2).pages == {2: 100}


def test_newer_than_selects_unseen_intervals():
    log = IntervalLog(2)
    for i in (1, 2, 3):
        log.append(make_interval(0, i, [i], width=2))
    log.append(make_interval(1, 1, [9], width=2))

    seen = VectorClock(entries=[1, 0])
    upto = VectorClock(entries=[3, 1])
    got = [(iv.node, iv.index) for iv in log.newer_than(seen, upto)]
    assert got == [(0, 2), (0, 3), (1, 1)]


def test_newer_than_clamps_to_log_length():
    log = IntervalLog(2)
    log.append(make_interval(0, 1, [1], width=2))
    seen = VectorClock(entries=[0, 0])
    upto = VectorClock(entries=[5, 5])   # beyond what exists
    got = list(log.newer_than(seen, upto))
    assert len(got) == 1


def test_notices_between_and_consistency_bytes():
    log = IntervalLog(2)
    log.append(make_interval(0, 1, [1, 2, 3], width=2))
    seen = VectorClock(entries=[0, 0])
    upto = VectorClock(entries=[1, 0])
    assert log.notices_between(seen, upto) == 3
    expected = (upto.wire_bytes() + INTERVAL_HEADER_BYTES +
                NOTICE_RUN_BYTES)  # pages 1..3 are one run
    assert log.consistency_bytes(seen, upto) == expected


def test_equal_clocks_nothing_new():
    log = IntervalLog(2)
    log.append(make_interval(0, 1, [1], width=2))
    vc = VectorClock(entries=[1, 0])
    assert log.notices_between(vc, vc) == 0
