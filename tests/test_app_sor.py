"""SOR application: numerics, partitioning, traffic character."""

import numpy as np
import pytest

from repro.apps.sor import SorApp
from repro.errors import ConfigurationError
from repro.machines import DecTreadMarksMachine, SgiMachine


def run(app, nprocs, machine=None):
    return (machine or DecTreadMarksMachine()).run(app, nprocs)


def test_validation():
    with pytest.raises(ConfigurationError):
        SorApp(rows=1, cols=10)
    with pytest.raises(ConfigurationError):
        SorApp(init="bogus")


def test_relaxation_converges_toward_boundary_value():
    app = SorApp(rows=16, cols=16, iterations=40)
    r = run(app, 2)
    assert 0 < r.app_output["interior_max"] <= 1.0
    # After many iterations heat has propagated inward.
    assert r.app_output["interior_max"] > 0.5


def test_result_independent_of_nprocs():
    checks = []
    for nprocs in (1, 2, 4):
        app = SorApp(rows=24, cols=16, iterations=5)
        checks.append(run(app, nprocs).app_output["checksum"])
    assert checks[0] == pytest.approx(checks[1])
    assert checks[0] == pytest.approx(checks[2])


def test_result_independent_of_machine():
    results = []
    for machine in (DecTreadMarksMachine(), SgiMachine()):
        app = SorApp(rows=24, cols=16, iterations=5)
        results.append(machine.run(app, 4).app_output["checksum"])
    assert results[0] == pytest.approx(results[1])


def test_matches_sequential_reference():
    """The banded parallel relaxation equals a straightforward one."""
    rows, cols, iters = 12, 10, 4
    app = SorApp(rows=rows, cols=cols, iterations=iters)
    r = run(app, 3)

    grid = np.zeros((rows + 2, cols))
    grid[0, :] = grid[-1, :] = 1.0
    grid[:, 0] = grid[:, -1] = 1.0
    for _ in range(iters):
        for phase in range(2):
            new = grid.copy()
            for i in range(1, rows + 1):
                start = 1 + ((i + phase) % 2)
                for j in range(start, cols - 1, 2):
                    new[i, j] = 0.25 * (grid[i - 1, j] + grid[i + 1, j] +
                                        grid[i, j - 1] + grid[i, j + 1])
            grid = new
    assert r.app_output["checksum"] == pytest.approx(float(grid.sum()))


def test_zero_init_moves_less_dsm_data_than_random():
    quiet = DecTreadMarksMachine().run(
        SorApp(rows=64, cols=64, iterations=4), 4)
    noisy = DecTreadMarksMachine().run(
        SorApp(rows=64, cols=64, iterations=4, init="random"), 4)
    assert quiet.counters.miss_data_bytes < noisy.counters.miss_data_bytes


def test_barrier_count():
    app = SorApp(rows=32, cols=32, iterations=6)
    r = run(app, 4)
    assert r.counters.barriers == 2 * 6  # two phases per iteration


def test_more_procs_than_rows():
    app = SorApp(rows=2, cols=8, iterations=2)
    r = run(app, 6)   # 4 processors have empty bands
    assert r.cycles > 0
    assert r.counters.barriers == 4


def test_names():
    assert SorApp(rows=100, cols=50).name == "sor-100x50"
    assert "alldirty" in SorApp(init="random").name
