"""Cross-machine integration: the *values* an application computes
must not depend on the machine model (for data-race-free programs),
while the *timing and traffic* must.
"""

import pytest

from repro.apps import IlinkApp, SorApp, TspApp, WaterApp
from repro.machines import (AllHardwareMachine, AllSoftwareMachine,
                            DecTreadMarksMachine, HybridMachine, SgiMachine)

MACHINES = [DecTreadMarksMachine, SgiMachine, AllSoftwareMachine,
            AllHardwareMachine, HybridMachine]


@pytest.mark.parametrize("app_factory,key,tolerance", [
    (lambda: SorApp(rows=24, cols=16, iterations=4), "checksum", 0),
    (lambda: IlinkApp("clp", iterations=2, genarray_kbytes=8),
     "checksum", 0),
    (lambda: TspApp(cities=8, leaf_cutoff=5), "optimal_length", 0),
    (lambda: WaterApp(molecules=10, steps=2, modified=True),
     "pos_checksum", 1e-6),
])
def test_identical_results_on_all_machines(app_factory, key, tolerance):
    values = []
    for factory in MACHINES:
        result = factory().run(app_factory(), 4)
        values.append(result.app_output[key])
    reference = values[0]
    for value in values[1:]:
        if tolerance:
            assert value == pytest.approx(reference, rel=tolerance)
        else:
            assert value == pytest.approx(reference)


def test_timing_differs_between_machines():
    app = SorApp(rows=48, cols=32, iterations=4)
    seconds = {f.__name__: f().run(app, 4).seconds for f in MACHINES}
    assert len(set(seconds.values())) >= 3, seconds


def test_hardware_machines_silent_on_network():
    app = SorApp(rows=24, cols=16, iterations=2)
    for factory in (SgiMachine, AllHardwareMachine):
        r = factory().run(app, 4)
        assert r.counters.total_messages == 0


def test_software_machines_message_on_sharing():
    app = SorApp(rows=24, cols=16, iterations=2)
    for factory in (DecTreadMarksMachine, AllSoftwareMachine):
        r = factory().run(app, 4)
        assert r.counters.total_messages > 0


def test_treadmarks_single_proc_overhead_nil():
    """Table 1's key observation: the DSM costs ~nothing at 1 proc."""
    app = SorApp(rows=48, cols=32, iterations=3)
    r = DecTreadMarksMachine().run(app, 1)
    assert r.counters.total_messages == 0
    assert r.counters.twins_created == 0
    assert r.counters.diffs_created == 0
