"""Hardware lock and barrier gadgets."""

import pytest

from repro.errors import ProtocolError
from repro.hw.sync import HwBarrier, HwLockTable
from repro.sim.engine import Engine
from repro.sim.resource import Resource


@pytest.fixture
def engine():
    return Engine()


def make_locks(engine, serializer=None):
    return HwLockTable(engine, acquire_cycles=40, release_cycles=20,
                       handoff_cycles=60, local_cycles=5,
                       serializer=serializer)


def test_first_acquire_local_cost(engine):
    locks = make_locks(engine)
    times = []
    locks.acquire(0, 0, times.append)
    engine.run()
    assert times == [5]


def test_reacquire_by_last_owner_cheap(engine):
    locks = make_locks(engine)
    times = []
    locks.acquire(0, 0, lambda t: None)
    engine.run()
    locks.release(0, 0, lambda t: None)
    engine.run()
    locks.acquire(0, 0, times.append)
    engine.run()
    assert times[0] - engine.now <= 0
    stats = locks.stats()[0]
    assert stats["acquires"] == 2
    assert stats["contended"] == 0


def test_migration_charges_serializer(engine):
    bus = Resource("bus")
    locks = make_locks(engine, serializer=bus)
    locks.acquire(0, 0, lambda t: None)
    engine.run()
    locks.release(0, 0, lambda t: None)
    engine.run()
    busy_before = bus.total_busy
    locks.acquire(0, 1, lambda t: None)   # different proc: migrates
    engine.run()
    assert bus.total_busy == busy_before + 40


def test_contended_fifo_handoff(engine):
    locks = make_locks(engine)
    order = []

    def worker(proc):
        def granted(t):
            order.append(proc)
            engine.schedule(100, locks.release, 0, proc, lambda t2: None)
        return granted

    for proc in (0, 1, 2):
        locks.acquire(0, proc, worker(proc))
    engine.run()
    assert order == [0, 1, 2]
    assert locks.stats()[0]["contended"] == 2


def test_release_by_wrong_proc_rejected(engine):
    locks = make_locks(engine)
    locks.acquire(0, 0, lambda t: None)
    engine.run()
    with pytest.raises(ProtocolError):
        locks.release(0, 1, lambda t: None)
    with pytest.raises(ProtocolError):
        locks.release(7, 0, lambda t: None)  # never held


def test_barrier_releases_all_at_once(engine):
    barrier = HwBarrier(engine, 4, arrive_cycles=10, depart_cycles=10)
    done = []
    for proc in range(3):
        barrier.arrive(0, proc, lambda t, p=proc: done.append(p))
    engine.run()
    assert done == []
    barrier.arrive(0, 3, lambda t: done.append(3))
    engine.run()
    assert sorted(done) == [0, 1, 2, 3]
    assert barrier.completed == 1


def test_barrier_double_arrival_rejected(engine):
    barrier = HwBarrier(engine, 2, arrive_cycles=1, depart_cycles=1)
    barrier.arrive(0, 0, lambda t: None)
    with pytest.raises(ProtocolError):
        barrier.arrive(0, 0, lambda t: None)


def test_barrier_cost_linear_in_procs(engine):
    bus = Resource("bus")
    barrier = HwBarrier(engine, 4, arrive_cycles=10, depart_cycles=10,
                        serializer=bus)
    for proc in range(4):
        barrier.arrive(0, proc, lambda t: None)
    engine.run()
    # 4 arrivals + 4 departures serialized through the counter line.
    assert bus.total_busy == 8 * 10


def test_barrier_episodes_reusable(engine):
    barrier = HwBarrier(engine, 2, arrive_cycles=1, depart_cycles=1)
    seq = []

    def again(proc):
        def first(_t):
            seq.append(("first", proc))
            barrier.arrive(0, proc,
                           lambda t: seq.append(("second", proc)))
        return first

    barrier.arrive(0, 0, again(0))
    barrier.arrive(0, 1, again(1))
    engine.run()
    assert barrier.completed == 2
    assert len(seq) == 4
