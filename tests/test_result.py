"""RunResult rates and SpeedupSeries."""

import pytest

from repro.stats.counters import Counters, DataKind, MsgKind
from repro.stats.result import RunResult, SpeedupSeries


def make_result(nprocs=4, cycles=40_000_000, **counter_values):
    counters = Counters()
    for name, value in counter_values.items():
        setattr(counters, name, value)
    return RunResult("m", "a", nprocs, cycles, 40e6, counters)


def test_seconds():
    assert make_result().seconds == pytest.approx(1.0)


def test_rates():
    r = make_result(barriers=10, remote_lock_acquires=40)
    r.counters.count_message(MsgKind.DIFF_REQUEST, 1024,
                             DataKind.MISS, 0)
    assert r.barriers_per_sec == pytest.approx(10.0)
    assert r.remote_locks_per_sec == pytest.approx(40.0)
    assert r.messages_per_sec == pytest.approx(1.0)
    assert r.kbytes_per_sec == pytest.approx(1.0)


def test_summary_keys():
    s = make_result().summary()
    for key in ("machine", "app", "nprocs", "seconds",
                "barriers_per_sec", "messages_per_sec"):
        assert key in s


def test_speedup_series():
    series = SpeedupSeries("m", "a", base_seconds=8.0)
    for nprocs, cycles in [(1, 320_000_000), (2, 160_000_000),
                           (4, 100_000_000)]:
        series.add(make_result(nprocs=nprocs, cycles=cycles))
    sp = series.speedups()
    assert sp[1] == pytest.approx(1.0)
    assert sp[2] == pytest.approx(2.0)
    assert sp[4] == pytest.approx(3.2)
    assert series.peak() == (4, pytest.approx(3.2))
    assert series.at(2).nprocs == 2
    assert series.at(16) is None


def test_speedup_series_empty_peak():
    assert SpeedupSeries("m", "a", 1.0).peak() == (0, 0.0)


# ======================================================================
# JSON round-tripping (the result cache's storage format)
# ======================================================================
def make_traced_result():
    """A RunResult carrying counters, outputs, and a time breakdown."""
    from repro.trace.breakdown import TimeBreakdown
    from repro.trace.tracer import Category

    b = TimeBreakdown()
    b.add(0, Category.COMPUTE, 700)
    b.add(0, Category.MISS, 200)
    b.add(1, Category.COMPUTE, 600)
    b.add(1, Category.SYNC, 100)
    b.add_overlay(Category.PROTOCOL, 50)
    b.close(1000, 2, {0: 900, 1: 700})
    r = make_result(nprocs=2, cycles=1000, barriers=3)
    r.counters.count_message(MsgKind.DIFF_REQUEST, 512,
                             DataKind.MISS, 0)
    r.app_output["residual"] = 0.5
    r.params["pages"] = 7
    r.events = 1234
    r.breakdown = b
    return r


def test_runresult_json_roundtrip():
    import json

    r = make_traced_result()
    wire = json.loads(json.dumps(r.to_jsonable()))   # through real JSON
    back = RunResult.from_jsonable(wire)
    assert back.summary() == r.summary()
    assert back.cycles == r.cycles and back.events == r.events
    assert back.counters.as_dict() == r.counters.as_dict()
    assert back.counters.messages == r.counters.messages
    assert back.app_output == r.app_output
    assert back.params == r.params


def test_runresult_breakdown_roundtrip():
    r = make_traced_result()
    back = RunResult.from_jsonable(r.to_jsonable())
    assert back.breakdown is not None
    assert back.breakdown.per_proc == r.breakdown.per_proc
    assert back.breakdown.overlay == r.breakdown.overlay
    assert back.breakdown.fractions() == r.breakdown.fractions()
    assert (back.breakdown.software_overhead_fraction() ==
            r.breakdown.software_overhead_fraction())
    # per_proc keys survive as ints (JSON would stringify them)
    assert all(isinstance(p, int) for p in back.breakdown.per_proc)


def test_runresult_roundtrip_without_breakdown():
    r = make_result()
    back = RunResult.from_jsonable(r.to_jsonable())
    assert back.breakdown is None
    assert back.summary() == r.summary()


def test_speedup_series_json_roundtrip():
    import json

    series = SpeedupSeries("m", "a", base_seconds=8.0)
    for nprocs, cycles in [(1, 320_000_000), (2, 160_000_000)]:
        series.add(make_result(nprocs=nprocs, cycles=cycles))
    wire = json.loads(json.dumps(series.to_jsonable()))
    back = SpeedupSeries.from_jsonable(wire)
    assert back.machine == "m" and back.app == "a"
    assert back.speedups() == series.speedups()
    assert [r.summary() for r in back.points] == \
           [r.summary() for r in series.points]
