"""RunResult rates and SpeedupSeries."""

import pytest

from repro.stats.counters import Counters, DataKind, MsgKind
from repro.stats.result import RunResult, SpeedupSeries


def make_result(nprocs=4, cycles=40_000_000, **counter_values):
    counters = Counters()
    for name, value in counter_values.items():
        setattr(counters, name, value)
    return RunResult("m", "a", nprocs, cycles, 40e6, counters)


def test_seconds():
    assert make_result().seconds == pytest.approx(1.0)


def test_rates():
    r = make_result(barriers=10, remote_lock_acquires=40)
    r.counters.count_message(MsgKind.DIFF_REQUEST, 1024,
                             DataKind.MISS, 0)
    assert r.barriers_per_sec == pytest.approx(10.0)
    assert r.remote_locks_per_sec == pytest.approx(40.0)
    assert r.messages_per_sec == pytest.approx(1.0)
    assert r.kbytes_per_sec == pytest.approx(1.0)


def test_summary_keys():
    s = make_result().summary()
    for key in ("machine", "app", "nprocs", "seconds",
                "barriers_per_sec", "messages_per_sec"):
        assert key in s


def test_speedup_series():
    series = SpeedupSeries("m", "a", base_seconds=8.0)
    for nprocs, cycles in [(1, 320_000_000), (2, 160_000_000),
                           (4, 100_000_000)]:
        series.add(make_result(nprocs=nprocs, cycles=cycles))
    sp = series.speedups()
    assert sp[1] == pytest.approx(1.0)
    assert sp[2] == pytest.approx(2.0)
    assert sp[4] == pytest.approx(3.2)
    assert series.peak() == (4, pytest.approx(3.2))
    assert series.at(2).nprocs == 2
    assert series.at(16) is None


def test_speedup_series_empty_peak():
    assert SpeedupSeries("m", "a", 1.0).peak() == (0, 0.0)
