"""The SyncPolicy value object and the parse_sync spec grammar."""

import pytest

from repro.errors import ConfigurationError
from repro.sync import (BARRIER_ALGORITHMS, DEFAULT_SYNC, LOCK_ALGORITHMS,
                        SyncPolicy, parse_sync)


def test_default_policy():
    assert DEFAULT_SYNC.lock == "token"
    assert DEFAULT_SYNC.barrier == "central"
    assert DEFAULT_SYNC.is_default
    assert parse_sync(None) == DEFAULT_SYNC


def test_algorithm_inventories():
    assert set(LOCK_ALGORITHMS) == {"token", "mcs", "ticket", "combining"}
    assert set(BARRIER_ALGORITHMS) == {"central", "tree", "combining"}


def test_parse_full_spec():
    policy = parse_sync("mcs+tree")
    assert policy == SyncPolicy(lock="mcs", barrier="tree")
    assert not policy.is_default


def test_parse_lock_only_and_barrier_only():
    assert parse_sync("ticket") == SyncPolicy(lock="ticket")
    assert parse_sync("+tree") == SyncPolicy(barrier="tree")


def test_parse_radix_suffix():
    policy = parse_sync("mcs+tree@r8")
    assert policy.tree_radix == 8
    assert policy.label() == "mcs+tree@r8"


def test_parse_passthrough_and_mapping():
    policy = SyncPolicy(lock="mcs")
    assert parse_sync(policy) is policy
    assert parse_sync({"lock": "mcs", "barrier": "tree"}) == \
        SyncPolicy(lock="mcs", barrier="tree")


def test_labels():
    assert DEFAULT_SYNC.label() == "token+central"
    assert SyncPolicy(lock="mcs").label() == "mcs+central"
    assert SyncPolicy(barrier="tree").label() == "token+tree"
    # The radix only shows when a tree barrier actually uses it.
    assert SyncPolicy(tree_radix=8).label() == "token+central"


def test_label_round_trips_through_parse():
    for lock in LOCK_ALGORITHMS:
        for barrier in BARRIER_ALGORITHMS:
            policy = SyncPolicy(lock=lock, barrier=barrier)
            assert parse_sync(policy.label()) == policy


@pytest.mark.parametrize("bad", [
    "spinlock", "mcs+ring", "mcs+tree@r1", "mcs+tree@rx",
    "mcs+tree+extra", 17,
])
def test_invalid_specs_rejected(bad):
    with pytest.raises(ConfigurationError):
        parse_sync(bad)


def test_invalid_policy_fields_rejected():
    with pytest.raises(ConfigurationError):
        SyncPolicy(lock="nope")
    with pytest.raises(ConfigurationError):
        SyncPolicy(barrier="nope")
    with pytest.raises(ConfigurationError):
        SyncPolicy(tree_radix=1)
