"""Direct-mapped cache: bulk accesses, states, evictions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem.directcache import (DirectMappedCache, EXCLUSIVE, INVALID,
                                   MODIFIED, SHARED)


@pytest.fixture
def cache():
    # 16 sets of 64-byte lines.
    return DirectMappedCache(1024, 64)


def test_validation():
    with pytest.raises(ConfigurationError):
        DirectMappedCache(1000, 64)
    with pytest.raises(ConfigurationError):
        DirectMappedCache(0, 64)
    with pytest.raises(ConfigurationError):
        DirectMappedCache(64, 0)


def test_cold_read_all_misses(cache):
    res = cache.read(0, 10)
    assert res.misses == 10 and res.hits == 0
    assert list(res.miss_lines) == list(range(10))
    assert all(cache.state_of(l) == SHARED for l in range(10))


def test_warm_read_all_hits(cache):
    cache.read(0, 10)
    res = cache.read(0, 10)
    assert res.hits == 10 and res.misses == 0


def test_write_marks_modified_and_reports_upgrades(cache):
    cache.read(0, 4)
    res = cache.write(0, 4)
    assert res.hits == 4
    assert res.upgrades == 4          # SHARED -> MODIFIED needs the bus
    assert cache.state_of(2) == MODIFIED
    res2 = cache.write(0, 4)
    assert res2.upgrades == 0         # already MODIFIED: silent


def test_exclusive_upgrade_is_silent(cache):
    cache.read(0, 2)
    cache.promote(np.array([0, 1]), EXCLUSIVE)
    res = cache.write(0, 2)
    assert res.hits == 2 and res.upgrades == 0
    assert cache.state_of(0) == MODIFIED


def test_conflict_eviction_clean(cache):
    cache.read(0, 1)
    res = cache.read(16, 17)   # same set (16 % 16 == 0)
    assert res.misses == 1
    assert list(res.evicted_clean_lines) == [0]
    assert cache.state_of(0) == INVALID
    assert cache.state_of(16) == SHARED


def test_conflict_eviction_dirty(cache):
    cache.write(3, 4)
    res = cache.read(19, 20)
    assert list(res.evicted_dirty_lines) == [3]
    assert res.writebacks == 1


def test_range_longer_than_cache(cache):
    res = cache.read(0, 40)    # 40 lines through 16 sets
    assert res.misses == 40
    assert cache.resident_count() == 16
    # Final residents are the last 16 lines.
    assert sorted(cache.resident_lines()) == list(range(24, 40))


def test_long_dirty_range_self_evicts_with_writebacks(cache):
    res = cache.write(0, 40)
    # 24 lines were displaced by the tail of the same access, all dirty.
    assert res.misses == 40
    assert res.writebacks == 24
    assert cache.dirty_count() == 16


def test_invalidate_range(cache):
    cache.read(0, 8)
    cache.write(4, 6)
    present, dirty = cache.invalidate_range(2, 6)
    assert present == 4 and dirty == 2
    assert cache.state_of(3) == INVALID
    assert cache.state_of(6) == SHARED


def test_invalidate_lines(cache):
    cache.write(0, 4)
    present, dirty = cache.invalidate_lines(np.array([1, 2, 99]))
    assert present == 2 and dirty == 2


def test_downgrade_range(cache):
    cache.write(0, 4)
    present, dirty = cache.downgrade_range(0, 4)
    assert present == 4 and dirty == 4
    assert all(cache.state_of(l) == SHARED for l in range(4))
    # Second downgrade finds nothing dirty.
    present, dirty = cache.downgrade_range(0, 4)
    assert present == 4 and dirty == 0


def test_probe_lines(cache):
    cache.read(0, 2)
    cache.write(5, 6)
    present, dirty = cache.probe_lines(np.array([0, 1, 5, 9]))
    assert list(present) == [True, True, True, False]
    assert list(dirty) == [False, False, True, False]


def test_flush(cache):
    cache.write(0, 5)
    assert cache.flush() == 5
    assert cache.resident_count() == 0


def test_empty_ranges_noop(cache):
    assert cache.read(5, 5).misses == 0
    assert cache.invalidate_range(5, 5) == (0, 0)
    assert cache.downgrade_range(5, 5) == (0, 0)
    assert cache.present_in_range(5, 5) == 0


def test_present_in_range(cache):
    cache.read(0, 4)
    assert cache.present_in_range(0, 8) == 4


def test_downgrade_lines(cache):
    import numpy as np
    cache.write(0, 3)
    present, dirty = cache.downgrade_lines(np.array([0, 2, 9]))
    assert present == 2 and dirty == 2
    assert cache.state_of(0) == SHARED
    assert cache.state_of(1) == MODIFIED  # untouched
    # Idempotent: nothing dirty the second time.
    present, dirty = cache.downgrade_lines(np.array([0, 2]))
    assert present == 2 and dirty == 0
    # Empty input is a no-op.
    assert cache.downgrade_lines(np.empty(0, dtype=np.int64)) == (0, 0)
