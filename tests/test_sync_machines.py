"""Sync policies threaded through the machines: fingerprints,
naming, determinism, and end-to-end correctness."""

import pytest

from repro import Scale, make_app, make_machine
from repro.errors import ConfigurationError
from repro.harness.parallel import RunPlan, execute_plan
from repro.sync import DEFAULT_SYNC, SyncPolicy

ALL_MACHINES = ("treadmarks", "sgi", "as", "ah", "hs")

# One policy exercising each non-default algorithm family.
PROBE_POLICIES = ("mcs+tree", "ticket+central", "combining+combining")


def test_make_machine_parses_sync_specs():
    machine = make_machine("as", sync="mcs+tree")
    assert machine.sync == SyncPolicy(lock="mcs", barrier="tree")
    assert machine.name == "as-mcs+tree"
    with pytest.raises(ConfigurationError):
        make_machine("as", sync="mcs+ring")


def test_default_policy_leaves_name_and_fingerprint_alone():
    """`sync=None`, explicit default policy, and the pre-sync
    constructor surface are one and the same machine — old cache
    entries and goldens stay valid."""
    for name in ALL_MACHINES:
        plain = make_machine(name)
        explicit = make_machine(name, sync="token+central")
        assert plain.sync == DEFAULT_SYNC
        assert explicit.name == plain.name
        for nprocs in (1, 8):
            assert explicit.fingerprint(nprocs) == \
                plain.fingerprint(nprocs), name


def test_non_default_policy_forks_the_fingerprint():
    for name in ALL_MACHINES:
        plain = make_machine(name)
        swept = make_machine(name, sync="mcs+tree")
        assert swept.fingerprint(8) != plain.fingerprint(8), name


def test_software_machines_share_the_uniprocessor_baseline():
    """On AS/HS/TreadMarks one processor is one node: no remote sync
    machinery engages, so every policy shares the 1-proc baseline
    (one simulation, one cache entry, for the whole sweep)."""
    for name in ("treadmarks", "as", "hs"):
        plain = make_machine(name)
        for spec in PROBE_POLICIES:
            swept = make_machine(name, sync=spec)
            assert swept.fingerprint(1) == plain.fingerprint(1), \
                (name, spec)


def test_hardware_machines_fork_at_one_processor():
    """AH/SGI synchronization hardware differs even at 1 processor
    (a combining barrier's release is a flag write + refetch), so
    their fingerprints must not alias across policies."""
    for name in ("ah", "sgi"):
        plain = make_machine(name)
        swept = make_machine(name, sync="combining+combining")
        assert swept.fingerprint(1) != plain.fingerprint(1), name


def test_tree_radix_is_fingerprint_relevant():
    r4 = make_machine("as", sync="mcs+tree")
    r8 = make_machine("as", sync="mcs+tree@r8")
    assert r4.fingerprint(8) != r8.fingerprint(8)


@pytest.mark.parametrize("name", ALL_MACHINES)
@pytest.mark.parametrize("spec", PROBE_POLICIES)
def test_apps_verify_under_every_policy(name, spec, lockcounter):
    """Synchronization algorithms change timing, never results."""
    machine = make_machine(name, sync=spec)
    result = machine.run(lockcounter, 4)
    assert result.app_output == {"count": 4 * lockcounter.increments}


@pytest.mark.parametrize("name", ALL_MACHINES)
def test_policy_changes_timing_not_results(name, pingpong):
    baseline = make_machine(name).run(pingpong, 4)
    for spec in PROBE_POLICIES:
        result = make_machine(name, sync=spec).run(pingpong, 4)
        assert result.app_output == baseline.app_output, (name, spec)


def test_sync_sweep_cells_serial_equals_pool():
    """The determinism pin for sweep cells: a policy grid fanned out
    over worker processes reproduces the serial run byte-for-byte."""
    plan = RunPlan()
    app = make_app("tsp18", Scale.TEST)
    for spec in ("token+central", "mcs+tree", "combining+combining"):
        for nprocs in (1, 4):
            plan.add(make_machine("as", sync=spec), app, nprocs)
    serial = [r.summary() for r in execute_plan(plan, jobs=1)]
    pooled = [r.summary() for r in execute_plan(plan, jobs=2)]
    assert serial == pooled


def test_run_to_run_determinism_with_policies():
    app = make_app("mwater", Scale.TEST)
    machine = make_machine("hs", sync="ticket+tree")
    first = machine.run(app, 4)
    second = make_machine("hs", sync="ticket+tree").run(app, 4)
    assert first.summary() == second.summary()
