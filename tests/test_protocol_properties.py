"""Property-based integration tests of the LRC protocol.

Random barrier-synchronized programs are generated and run end to end
on the DSM machine; afterwards the protocol's global invariants must
hold regardless of the script:

* conservation: every request message has exactly one response;
* causality: after a global barrier, every node's vector clock equals
  the global maximum and no page is pending anywhere;
* single-holder: a lock is never granted to two owners at once (the
  lock-counter app would lose increments otherwise).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps import ops
from repro.apps.base import Application
from repro.machines import DecTreadMarksMachine
from repro.stats.counters import MsgKind

PAGES = 6
PAGE = 4096


class ScriptApp(Application):
    """Barrier-phased random reads/writes over a small region."""

    name = "script"

    def __init__(self, phases):
        self.phases = phases   # [[(proc_ops)] per proc] per phase

    def regions(self, nprocs):
        return {"data": PAGES * PAGE}

    def programs(self, ctx):
        def prog(p):
            for phase in self.phases:
                for kind, page, nbytes in phase[p % len(phase)]:
                    offset = page * PAGE
                    if kind == "r":
                        yield ops.Read("data", offset, nbytes)
                    else:
                        vals = np.random.default_rng(
                            (page, nbytes)).integers(
                            0, 255, nbytes, dtype=np.uint8)
                        changed = ctx.store.write("data", offset, vals)
                        yield ops.Write("data", offset, nbytes, changed)
                yield ops.Barrier()
        return [prog(p) for p in range(ctx.nprocs)]


op_strategy = st.tuples(
    st.sampled_from(["r", "w"]),
    st.integers(0, PAGES - 1),
    st.integers(1, PAGE),
)
phase_strategy = st.lists(st.lists(op_strategy, max_size=4),
                          min_size=1, max_size=4)
script_strategy = st.lists(phase_strategy, min_size=1, max_size=4)


@settings(max_examples=30, deadline=None)
@given(script_strategy, st.integers(2, 6))
def test_random_scripts_preserve_invariants(phases, nprocs):
    machine = DecTreadMarksMachine()
    result = machine.run(ScriptApp(phases), nprocs)
    counters = result.counters

    # Conservation: requests pair with responses.
    assert counters.messages[MsgKind.DIFF_REQUEST] == \
        counters.messages[MsgKind.DIFF_RESPONSE]
    assert counters.messages[MsgKind.PAGE_REQUEST] == \
        counters.messages[MsgKind.PAGE_RESPONSE]
    # Barrier arrivals/departures: (nprocs - 1) each per episode.
    episodes = counters.barriers
    assert counters.messages[MsgKind.BARRIER_ARRIVE] == \
        episodes * (nprocs - 1)
    assert counters.messages[MsgKind.BARRIER_DEPART] == \
        episodes * (nprocs - 1)

    dsm = machine.last_runtime.dsm
    # Causality: the final barrier synchronized everyone.
    reference = dsm.vcs[0]
    for node in range(nprocs):
        assert dsm.vcs[node] == reference
        assert not dsm.pages[node].has_dirty
    # Every announced interval is in the log.
    for node in range(nprocs):
        assert dsm.log.node_count(node) == reference[node]


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 8), st.integers(1, 6))
def test_lock_counter_never_loses_increments(nprocs, increments):
    from tests.conftest import LockCounterApp
    machine = DecTreadMarksMachine()
    result = machine.run(LockCounterApp(increments), nprocs)
    assert result.app_output["count"] == nprocs * increments
