"""Per-node page tables: validity, twins, dirty tracking, pending diffs."""

import numpy as np

from repro.dsm.pagetable import NodePages


def test_starts_warm():
    table = NodePages(0, 16)
    assert table.is_valid(7)
    assert list(table.invalid_in(0, 16)) == []


def test_invalid_in_reports_global_page_numbers():
    table = NodePages(0, 16)
    table.apply_notice(5, creator=1, wire_bytes=10, interval_index=1)
    table.apply_notice(9, creator=1, wire_bytes=10, interval_index=1)
    assert list(table.invalid_in(4, 12)) == [5, 9]
    assert list(table.invalid_in(6, 9)) == []


def test_own_notices_ignored():
    table = NodePages(2, 8)
    invalidated = table.apply_notice(3, creator=2, wire_bytes=10,
                                     interval_index=1)
    assert not invalidated
    assert table.is_valid(3)


def test_apply_notice_reports_first_invalidation_only():
    table = NodePages(0, 8)
    assert table.apply_notice(3, 1, 10, 1) is True
    assert table.apply_notice(3, 1, 12, 2) is False
    pend = table.begin_fault(3)
    assert pend.by_creator == {1: 22}
    assert pend.intervals == [(1, 1), (1, 2)]


def test_pending_accumulates_per_creator():
    table = NodePages(0, 8)
    table.apply_notice(3, 1, 10, 1)
    table.apply_notice(3, 2, 20, 1)
    pend = table.begin_fault(3)
    assert pend.by_creator == {1: 10, 2: 20}
    assert pend.total_bytes == 30


def test_begin_fault_clears_pending():
    table = NodePages(0, 8)
    table.apply_notice(3, 1, 10, 1)
    table.begin_fault(3)
    assert table.begin_fault(3).by_creator == {}


def test_revalidate():
    table = NodePages(0, 8)
    table.apply_notice(3, 1, 10, 1)
    assert not table.is_valid(3)
    table.revalidate(3)
    assert table.is_valid(3)


def test_record_write_twins_once_until_consumed():
    table = NodePages(0, 8)
    assert table.record_write(2, 100) is True     # first write: twin
    assert table.record_write(2, 50) is False     # still twinned
    dirty = table.take_dirty(page_bytes=4096)
    assert dirty == {2: 150}
    # Twin persists across interval end...
    assert table.record_write(2, 10) is False
    # ...until diff creation consumes it.
    table.consume_twin(2)
    assert table.record_write(2, 10) is True


def test_take_dirty_caps_at_page_size():
    table = NodePages(0, 8)
    table.record_write(1, 10_000)
    assert table.take_dirty(4096) == {1: 4096}


def test_take_dirty_resets():
    table = NodePages(0, 8)
    table.record_write(1, 10)
    assert table.has_dirty
    table.take_dirty(4096)
    assert not table.has_dirty
    assert table.take_dirty(4096) == {}


def test_stats():
    table = NodePages(0, 8)
    table.apply_notice(3, 1, 10, 1)
    table.record_write(5, 10)
    s = table.stats()
    assert s["valid_pages"] == 7
    assert s["invalid_pages"] == 1
    assert s["dirty_pages"] == 1
    assert s["pending_pages"] == 1
