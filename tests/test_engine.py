"""The discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine
from repro.sim.task import OpHandler, ProcTask


def test_events_run_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(30, seen.append, "c")
    engine.schedule(10, seen.append, "a")
    engine.schedule(20, seen.append, "b")
    engine.run()
    assert seen == ["a", "b", "c"]
    assert engine.now == 30


def test_ties_broken_fifo():
    engine = Engine()
    seen = []
    for tag in ("first", "second", "third"):
        engine.schedule(5, seen.append, tag)
    engine.run()
    assert seen == ["first", "second", "third"]


def test_schedule_from_callback():
    engine = Engine()
    seen = []

    def outer():
        seen.append(engine.now)
        engine.schedule(7, inner)

    def inner():
        seen.append(engine.now)

    engine.schedule(3, outer)
    engine.run()
    assert seen == [3, 10]


def test_cannot_schedule_into_past():
    engine = Engine()
    engine.now = 100
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule_at(50, lambda: None)


def test_run_until_stops_early():
    engine = Engine()
    seen = []
    engine.schedule(10, seen.append, "early")
    engine.schedule(100, seen.append, "late")
    engine.run(until=50)
    assert seen == ["early"]
    assert engine.now == 50
    engine.run()
    assert seen == ["early", "late"]


def test_deadlock_detection():
    engine = Engine()

    class NeverResume(OpHandler):
        def handle(self, task, op):
            pass  # drop the op: the task never resumes

    def prog():
        yield "op"

    task = ProcTask(engine, 0, prog(), NeverResume())
    task.start()
    with pytest.raises(DeadlockError) as err:
        engine.run()
    assert task in err.value.blocked


def test_event_count_tracked():
    engine = Engine()
    for _ in range(5):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_processed == 5


def test_run_not_reentrant():
    engine = Engine()
    captured = {}

    def reenter():
        try:
            engine.run()
        except SimulationError as exc:
            captured["error"] = exc

    engine.schedule(1, reenter)
    engine.run()
    assert "error" in captured
