"""The discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine
from repro.sim.task import OpHandler, ProcTask


def test_events_run_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(30, seen.append, "c")
    engine.schedule(10, seen.append, "a")
    engine.schedule(20, seen.append, "b")
    engine.run()
    assert seen == ["a", "b", "c"]
    assert engine.now == 30


def test_ties_broken_fifo():
    engine = Engine()
    seen = []
    for tag in ("first", "second", "third"):
        engine.schedule(5, seen.append, tag)
    engine.run()
    assert seen == ["first", "second", "third"]


def test_schedule_from_callback():
    engine = Engine()
    seen = []

    def outer():
        seen.append(engine.now)
        engine.schedule(7, inner)

    def inner():
        seen.append(engine.now)

    engine.schedule(3, outer)
    engine.run()
    assert seen == [3, 10]


def test_cannot_schedule_into_past():
    engine = Engine()
    engine.now = 100
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule_at(50, lambda: None)


def test_run_until_stops_early():
    engine = Engine()
    seen = []
    engine.schedule(10, seen.append, "early")
    engine.schedule(100, seen.append, "late")
    engine.run(until=50)
    assert seen == ["early"]
    assert engine.now == 50
    engine.run()
    assert seen == ["early", "late"]


def test_run_until_pinned_semantics():
    """The documented ``until`` contract, pinned in full:

    the stop leaves ``now`` exactly at the horizon, the first
    strictly-later event queued (not popped), and the engine
    re-runnable — repeatedly.
    """
    engine = Engine()
    seen = []
    engine.schedule(100, seen.append, "late")
    engine.run(until=50)
    assert engine.now == 50
    assert seen == []
    assert not engine.empty()          # the event was not consumed
    engine.run(until=99)               # re-runnable to a later horizon
    assert engine.now == 99
    assert seen == []
    engine.run(until=100)
    assert seen == ["late"]


def test_run_until_event_at_horizon_runs():
    engine = Engine()
    seen = []
    engine.schedule(50, seen.append, "at-horizon")
    engine.schedule(51, seen.append, "after")
    engine.run(until=50)
    assert seen == ["at-horizon"]
    assert engine.now == 50


def test_deadlock_detected_even_with_until():
    """A drained queue with blocked tasks is a deadlock regardless of
    whether a horizon was given (stopping *at* the horizon is not)."""
    engine = Engine()

    class NeverResume(OpHandler):
        def handle(self, task, op):
            pass

    def prog():
        yield "op"

    task = ProcTask(engine, 0, prog(), NeverResume())
    task.start()
    # The queue drains (the only event is the task's first step at 0)
    # long before the horizon: that is a genuine deadlock.
    with pytest.raises(DeadlockError):
        engine.run(until=10_000)


def test_no_deadlock_when_stopped_at_horizon():
    engine = Engine()

    class ResumeLater(OpHandler):
        def handle(self, task, op):
            task.resume(engine.now + 100)

    def prog():
        yield "op"

    task = ProcTask(engine, 0, prog(), ResumeLater())
    task.start()
    engine.run(until=50)  # task still blocked, but only at the horizon
    assert not task.finished
    engine.run()
    assert task.finished


def test_deadlock_detection():
    engine = Engine()

    class NeverResume(OpHandler):
        def handle(self, task, op):
            pass  # drop the op: the task never resumes

    def prog():
        yield "op"

    task = ProcTask(engine, 0, prog(), NeverResume())
    task.start()
    with pytest.raises(DeadlockError) as err:
        engine.run()
    assert task in err.value.blocked


def test_event_count_tracked():
    engine = Engine()
    for _ in range(5):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_processed == 5


def test_run_not_reentrant():
    engine = Engine()
    captured = {}

    def reenter():
        try:
            engine.run()
        except SimulationError as exc:
            captured["error"] = exc

    engine.schedule(1, reenter)
    engine.run()
    assert "error" in captured
