"""DsmRuntime details: local cache costs, eager bound mode, naming."""

import numpy as np
import pytest

from repro.apps import ops
from repro.apps.base import Application
from repro.dsm.bound import BoundMode
from repro.machines import AllSoftwareMachine, DecTreadMarksMachine
from repro.net.overhead import OverheadPreset


class ReadHeavy(Application):
    """One processor re-reads a block; the second one just barriers."""

    name = "readheavy"

    def __init__(self, repeats=3, nbytes=8192):
        self.repeats = repeats
        self.nbytes = nbytes

    def regions(self, nprocs):
        return {"blob": self.nbytes}

    def programs(self, ctx):
        def reader():
            for _ in range(self.repeats):
                yield ops.Read("blob", 0, self.nbytes)

        def idler():
            if False:
                yield  # pragma: no cover
        progs = [reader()]
        progs += [idler() for _ in range(ctx.nprocs - 1)]
        return progs


def test_repeated_reads_hit_local_cache():
    machine = DecTreadMarksMachine()
    cold = machine.run(ReadHeavy(repeats=1), 1)
    warm = machine.run(ReadHeavy(repeats=3), 1)
    # Two extra warm passes cost far less than the cold pass.
    assert warm.cycles < 2 * cold.cycles
    assert warm.counters.cache_hits > 0


def test_working_set_larger_than_cache_keeps_missing():
    machine = DecTreadMarksMachine()
    big = machine.params.cache.cache_bytes * 2
    r = machine.run(ReadHeavy(repeats=2, nbytes=big), 1)
    # Both passes miss (the block does not fit): miss count ~ 2 passes.
    lines = big // machine.params.cache.line_bytes
    assert r.counters.cache_misses_local >= 2 * lines * 0.9


def test_eager_machine_uses_eager_bound_mode(lockcounter):
    machine = DecTreadMarksMachine(eager_locks="all")
    machine.run(lockcounter, 2)
    assert machine.last_runtime.bound.mode is BoundMode.EAGER
    assert machine.last_runtime.bound.push_latency > 0


def test_lazy_machine_uses_lazy_bound_mode(lockcounter):
    machine = DecTreadMarksMachine()
    machine.run(lockcounter, 2)
    assert machine.last_runtime.bound.mode is BoundMode.LAZY


def test_as_overhead_preset_in_name():
    assert AllSoftwareMachine().name == "as"
    cheap = AllSoftwareMachine(overhead_preset=OverheadPreset.SHRIMP)
    assert "shrimp" in cheap.name


def test_overhead_preset_changes_runtime(lockcounter):
    base = AllSoftwareMachine().run(lockcounter, 8)
    cheap = AllSoftwareMachine(
        overhead_preset=OverheadPreset.SHRIMP_BCOPY).run(lockcounter, 8)
    assert cheap.seconds < base.seconds


class BadOp(Application):
    name = "badop"

    def regions(self, nprocs):
        return {"x": 8}

    def programs(self, ctx):
        def prog():
            yield object()
        return [prog() for _ in range(ctx.nprocs)]


def test_unknown_op_rejected():
    from repro.errors import SimulationError
    with pytest.raises(SimulationError):
        DecTreadMarksMachine().run(BadOp(), 1)


class WrongCount(Application):
    name = "wrongcount"

    def regions(self, nprocs):
        return {"x": 8}

    def programs(self, ctx):
        return []   # wrong: must be nprocs programs


def test_program_count_mismatch_rejected():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        DecTreadMarksMachine().run(WrongCount(), 2)
