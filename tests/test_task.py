"""Generator tasks and operation dispatch."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.task import OpHandler, ProcTask


class Echo(OpHandler):
    """Resumes after `op` cycles, returning op*2."""

    def __init__(self, engine):
        self.engine = engine

    def handle(self, task, op):
        task.resume(self.engine.now + op, op * 2)


def test_values_flow_back_into_generator():
    engine = Engine()
    results = []

    def prog():
        results.append((yield 5))
        results.append((yield 10))

    task = ProcTask(engine, 0, prog(), Echo(engine))
    task.start()
    engine.run()
    assert results == [10, 20]
    assert task.finished
    assert task.finish_time == 15


def test_tasks_interleave_by_simulated_time():
    engine = Engine()
    trace = []

    class Tracer(OpHandler):
        def handle(self, task, op):
            trace.append((engine.now, task.proc_id))
            task.resume(engine.now + op)

    def prog(delays):
        for d in delays:
            yield d

    t0 = ProcTask(engine, 0, prog([10, 10]), Tracer())
    t1 = ProcTask(engine, 1, prog([5, 5, 5]), Tracer())
    t0.start()
    t1.start()
    engine.run()
    # Task 1's 5-cycle steps land between task 0's 10-cycle steps.
    assert (5, 1) in trace and (10, 0) in trace


def _gen(*ops_to_yield):
    def prog():
        for op in ops_to_yield:
            yield op
    return prog()


def test_double_start_rejected():
    engine = Engine()
    task = ProcTask(engine, 0, _gen(), Echo(engine))
    task.start()
    with pytest.raises(SimulationError):
        task.start()


def test_resume_without_pending_op_rejected():
    engine = Engine()
    task = ProcTask(engine, 0, _gen(1), Echo(engine))
    with pytest.raises(SimulationError):
        task.resume(0)


def test_resume_after_finish_rejected():
    engine = Engine()
    task = ProcTask(engine, 0, _gen(), Echo(engine))
    task.start()
    engine.run()
    assert task.finished
    with pytest.raises(SimulationError):
        task.resume(10)


def test_ops_issued_counted():
    engine = Engine()
    task = ProcTask(engine, 0, _gen(1, 2, 3), Echo(engine))
    task.start()
    engine.run()
    assert task.ops_issued == 3


def test_start_offset():
    engine = Engine()
    task = ProcTask(engine, 3, _gen(7), Echo(engine))
    task.start(at=100)
    engine.run()
    assert task.finish_time == 107
