"""TSP application: optimality, pruning, bound staleness."""

import math

import pytest

from repro.apps.tsp import TspApp
from repro.errors import ConfigurationError
from repro.machines import DecTreadMarksMachine, SgiMachine


def test_validation():
    with pytest.raises(ConfigurationError):
        TspApp(cities=3)
    with pytest.raises(ConfigurationError):
        TspApp(cities=8, leaf_cutoff=1)


def test_finds_optimum_on_every_machine():
    lengths = set()
    for machine in (DecTreadMarksMachine(), SgiMachine()):
        for nprocs in (1, 4):
            app = TspApp(cities=9, leaf_cutoff=6)
            r = machine.run(app, nprocs)
            # verify() asserts the parallel tour equals the exact
            # sequential optimum; collect to check consistency too.
            lengths.add(round(r.app_output["optimal_length"], 9))
    assert len(lengths) == 1


def test_optimum_matches_bruteforce():
    import itertools
    app = TspApp(cities=7, leaf_cutoff=5)
    dist = app._distances()
    best = math.inf
    for perm in itertools.permutations(range(1, 7)):
        tour = (0,) + perm
        length = sum(dist[tour[i], tour[(i + 1) % 7]] for i in range(7))
        best = min(best, length)
    r = DecTreadMarksMachine().run(app, 2)
    assert r.app_output["optimal_length"] == pytest.approx(best)


def test_lower_bound_admissible():
    app = TspApp(cities=8)
    dist = app._distances()
    min_edge = app._min_edges(dist)
    _exp, best, tour = app._solve_local(dist, min_edge, (0,), 0.0,
                                        math.inf)
    # The root lower bound can never exceed the optimal tour length.
    assert app._lower_bound(dist, min_edge, (0,), 0.0) <= best + 1e-9
    assert len(tour) == 8


def test_parallel_expansions_at_least_sequential_work():
    app = TspApp(cities=9, leaf_cutoff=6)
    r1 = DecTreadMarksMachine().run(app, 1)
    assert r1.app_output["parallel_expansions"] >= \
        0.9 * r1.app_output["sequential_expansions"]


def test_lock_traffic_present():
    app = TspApp(cities=9, leaf_cutoff=6)
    r = DecTreadMarksMachine().run(app, 4)
    assert r.counters.remote_lock_acquires > 0
    assert r.counters.barriers == 0     # TSP uses only locks


def test_determinism():
    app = TspApp(cities=9, leaf_cutoff=6)
    a = DecTreadMarksMachine().run(app, 4)
    b = DecTreadMarksMachine().run(app, 4)
    assert a.cycles == b.cycles
    assert a.app_output["parallel_expansions"] == \
        b.app_output["parallel_expansions"]


def test_distance_matrix_seeded():
    a = TspApp(cities=8, coord_seed=5)._distances()
    b = TspApp(cities=8, coord_seed=5)._distances()
    c = TspApp(cities=8, coord_seed=6)._distances()
    assert (a == b).all()
    assert (a != c).any()
