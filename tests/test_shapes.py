"""Coarse shape assertions — the paper's qualitative claims, checked
at small scale so they run in CI.

These are the invariants DESIGN.md promises; the full-size versions
live in the benchmarks.
"""

import pytest

from repro.apps import SorApp, TspApp, WaterApp
from repro.harness.runner import speedup_series
from repro.machines import (AllHardwareMachine, AllSoftwareMachine,
                            DecTreadMarksMachine, HybridMachine, SgiMachine)


def sp8(machine, app):
    series = speedup_series(machine, app, (1, 8))
    return series.speedups()[8]


# -- §2.4.4: Water vs M-Water on TreadMarks -----------------------------
def test_water_collapses_on_treadmarks_mwater_recovers():
    tm = DecTreadMarksMachine()
    water = sp8(tm, WaterApp(molecules=48, steps=1))
    mwater = sp8(tm, WaterApp(molecules=48, steps=1, modified=True))
    assert mwater > 2 * water


def test_water_vs_mwater_nearly_identical_on_sgi():
    sgi = SgiMachine()
    water = sp8(sgi, WaterApp(molecules=48, steps=1))
    mwater = sp8(sgi, WaterApp(molecules=48, steps=1, modified=True))
    assert water == pytest.approx(mwater, rel=0.5)
    assert water > 1.5


# -- §2.4.2: SOR data movement ------------------------------------------
def test_sor_diffs_move_less_data_than_hardware_lines():
    """TreadMarks communicates only changed words; the SGI moves whole
    lines.  With the zero-interior initialization the DSM's miss data
    is far below the hardware's coherence traffic for the same run."""
    app = SorApp(rows=96, cols=96, iterations=4)
    tm = DecTreadMarksMachine().run(app, 8)
    sgi = SgiMachine().run(SorApp(rows=96, cols=96, iterations=4), 8)
    assert tm.counters.miss_data_bytes < sgi.counters.bus_data_bytes


# -- §2.4.3: TSP bound staleness ----------------------------------------
def test_lazy_bound_is_stale_eager_is_fresher():
    app_lazy = TspApp(cities=10, leaf_cutoff=7, coord_seed=3)
    app_eager = TspApp(cities=10, leaf_cutoff=7, coord_seed=3)
    lazy = DecTreadMarksMachine().run(app_lazy, 8)
    eager = DecTreadMarksMachine(
        eager_locks=frozenset({1})).run(app_eager, 8)
    # Same optimum either way; the work may differ.
    assert lazy.app_output["optimal_length"] == pytest.approx(
        eager.app_output["optimal_length"])


# -- §3: HS traffic reduction -------------------------------------------
def test_hs_sends_fraction_of_as_messages():
    app = SorApp(rows=96, cols=96, iterations=3)
    as_r = AllSoftwareMachine().run(app, 16)
    hs_r = HybridMachine().run(SorApp(rows=96, cols=96, iterations=3), 16)
    assert hs_r.counters.total_messages < 0.5 * as_r.counters.total_messages
    assert hs_r.counters.total_bytes < as_r.counters.total_bytes


def test_ah_and_hs_beat_as_at_scale_for_sor():
    app_args = dict(rows=128, cols=128, iterations=3)
    results = {}
    for name, machine in [("ah", AllHardwareMachine()),
                          ("hs", HybridMachine()),
                          ("as", AllSoftwareMachine())]:
        results[name] = sp8(machine, SorApp(**app_args))
    assert results["ah"] > results["as"]


# -- §2.4.4 in-text: kernel-level TreadMarks ----------------------------
def test_kernel_level_helps_mwater_more_than_sor():
    app = WaterApp(molecules=48, steps=1, modified=True)
    user = sp8(DecTreadMarksMachine(), app)
    kernel = sp8(DecTreadMarksMachine(kernel_level=True),
                 WaterApp(molecules=48, steps=1, modified=True))
    mwater_gain = kernel / user

    # SOR must be big enough that its communication rate is low (the
    # paper's full-size runs); 96x96 would be barrier-bound too.
    sor_user = sp8(DecTreadMarksMachine(),
                   SorApp(rows=512, cols=512, iterations=3))
    sor_kernel = sp8(DecTreadMarksMachine(kernel_level=True),
                     SorApp(rows=512, cols=512, iterations=3))
    sor_gain = sor_kernel / sor_user
    assert mwater_gain > sor_gain


# -- A1: diffs vs whole pages -------------------------------------------
def test_whole_page_transfer_moves_more_data():
    app = SorApp(rows=96, cols=96, iterations=3)
    with_diffs = DecTreadMarksMachine().run(app, 8)
    without = DecTreadMarksMachine(use_diffs=False).run(
        SorApp(rows=96, cols=96, iterations=3), 8)
    assert without.counters.miss_data_bytes > \
        2 * with_diffs.counters.miss_data_bytes
