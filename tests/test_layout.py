"""Address space, regions, and page/line geometry."""

import pytest

from repro.errors import AddressError, ConfigurationError
from repro.mem.layout import AddressSpace, Geometry, Region


def test_geometry_validation():
    with pytest.raises(ConfigurationError):
        Geometry(page_bytes=1000)          # not a power of two
    with pytest.raises(ConfigurationError):
        Geometry(line_bytes=48)
    with pytest.raises(ConfigurationError):
        Geometry(page_bytes=64, line_bytes=128)  # line > page


def test_page_span():
    g = Geometry(4096, 64)
    assert g.page_span(0, 1) == (0, 1)
    assert g.page_span(0, 4096) == (0, 1)
    assert g.page_span(0, 4097) == (0, 2)
    assert g.page_span(4095, 2) == (0, 2)
    assert g.page_span(8192, 100) == (2, 3)


def test_line_span():
    g = Geometry(4096, 64)
    assert g.line_span(0, 64) == (0, 1)
    assert g.line_span(63, 2) == (0, 2)
    assert g.line_span(128, 200) == (2, 6)


def test_span_rejects_empty():
    g = Geometry(4096, 64)
    with pytest.raises(AddressError):
        g.page_span(0, 0)
    with pytest.raises(AddressError):
        g.line_span(0, -5)


def test_counts():
    g = Geometry(4096, 64)
    assert g.pages_in(1) == 1
    assert g.pages_in(4096) == 1
    assert g.pages_in(4097) == 2
    assert g.lines_in(65) == 2
    assert g.lines_per_page() == 64


def test_alloc_page_aligned_and_disjoint():
    space = AddressSpace(Geometry(4096, 64))
    a = space.alloc("a", 100)
    b = space.alloc("b", 5000)
    assert a.base == 0 and a.nbytes == 4096
    assert b.base == 4096 and b.nbytes == 8192
    assert space.total_bytes == 3 * 4096
    assert space.total_pages == 3
    assert space.total_lines == 3 * 64


def test_alloc_rejects_duplicates_and_empty():
    space = AddressSpace()
    space.alloc("a", 1)
    with pytest.raises(ConfigurationError):
        space.alloc("a", 1)
    with pytest.raises(ConfigurationError):
        space.alloc("b", 0)


def test_region_bounds_checked():
    region = Region("r", 4096, 4096)
    assert region.addr(0) == 4096
    assert region.addr(4095, 1) == 8191
    with pytest.raises(AddressError):
        region.addr(4096, 1)
    with pytest.raises(AddressError):
        region.addr(-1)
    with pytest.raises(AddressError):
        region.addr(4000, 200)


def test_space_lookup():
    space = AddressSpace()
    space.alloc("x", 10)
    assert "x" in space
    assert "y" not in space
    with pytest.raises(AddressError):
        space["y"]
    addr, nbytes = space.span("x", 4, 2)
    assert (addr, nbytes) == (4, 2)
