"""EXPERIMENTS.md generation."""

import os

from repro.harness.experiments import REGISTRY
from repro.harness.experiments_md import (PAPER_CLAIMS, RUN_GRIDS, build,
                                          main)


def test_claims_cover_registry():
    assert set(PAPER_CLAIMS) == set(REGISTRY)


def test_run_grids_cover_registry():
    # Every experiment gets a real row in the figure-to-experiment
    # map, not the "—" placeholder.
    assert set(RUN_GRIDS) == set(REGISTRY)


def test_sync_sweep_documented(tmp_path):
    # The sync-sweep chapter must name the design space's axes and
    # appear in the mapping table like every paper artifact.
    claim = PAPER_CLAIMS["sync-sweep"]
    for algorithm in ("token", "mcs", "ticket", "combining",
                      "central", "tree"):
        assert algorithm in claim, algorithm
    results = tmp_path / "results"
    results.mkdir()
    text = build(str(results))
    assert "## sync-sweep —" in text
    assert "| `sync-sweep` |" in text
    assert "4 locks x 3 barriers" in text


def test_build_with_results(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "t1.txt").write_text("== t1: demo ==\nrow\n")
    text = build(str(results))
    assert "# EXPERIMENTS" in text
    assert "== t1: demo ==" in text
    assert "no archived result" in text      # for the missing ones
    assert "Known deviations" in text
    for exp_id in REGISTRY:
        assert f"## {exp_id} —" in text


def test_main_writes_file(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    out = tmp_path / "EXP.md"
    assert main([str(results), str(out)]) == 0
    assert os.path.exists(out)
    assert "paper vs. measured" in out.read_text()
