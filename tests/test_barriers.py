"""The centralized barrier manager."""

import pytest

from repro.dsm.barriers import BarrierManager
from repro.errors import ProtocolError
from repro.stats.counters import MsgKind


def make_barrier(atm, **kwargs):
    defaults = dict(
        manager_node=0,
        arrive_payload=lambda node: 32,
        depart_payload=lambda node: 48,
        on_all_arrived=lambda: None,
        on_depart=lambda node: None,
        local_cycles=50,
    )
    defaults.update(kwargs)
    return BarrierManager(atm, atm.num_nodes, **defaults)


def test_nobody_departs_before_all_arrive(atm, engine):
    barrier = make_barrier(atm)
    departed = []
    for node in (0, 1, 2):
        barrier.arrive(0, node, lambda t, n=node: departed.append(n))
    engine.run()
    assert departed == []          # node 3 never arrived
    barrier.arrive(0, 3, lambda t: departed.append(3))
    engine.run()
    assert sorted(departed) == [0, 1, 2, 3]
    assert barrier.completed == 1


def test_message_counts(atm, engine, counters):
    barrier = make_barrier(atm)
    for node in range(4):
        barrier.arrive(0, node, lambda t: None)
    engine.run()
    # 3 non-manager arrivals + 3 departures (manager is local).
    assert counters.messages[MsgKind.BARRIER_ARRIVE] == 3
    assert counters.messages[MsgKind.BARRIER_DEPART] == 3


def test_double_arrival_rejected(atm, engine):
    barrier = make_barrier(atm)
    barrier.arrive(0, 1, lambda t: None)
    with pytest.raises(ProtocolError):
        barrier.arrive(0, 1, lambda t: None)


def test_hooks_called_in_order(atm, engine):
    events = []
    barrier = make_barrier(
        atm,
        on_all_arrived=lambda: events.append("merged"),
        on_depart=lambda node: events.append(("depart", node)),
    )
    for node in range(4):
        barrier.arrive(0, node, lambda t: None)
    engine.run()
    assert events[0] == "merged"
    assert {e for e in events[1:]} == {("depart", n) for n in range(4)}


def test_successive_episodes(atm, engine):
    barrier = make_barrier(atm)
    log = []

    def make_prog(node):
        def after_first(_t):
            log.append(("first", node))
            barrier.arrive(0, node,
                           lambda t: log.append(("second", node)))
        return after_first

    for node in range(4):
        barrier.arrive(0, node, make_prog(node))
    engine.run()
    assert barrier.completed == 2
    firsts = [e for e in log if e[0] == "first"]
    seconds = [e for e in log if e[0] == "second"]
    assert len(firsts) == 4 and len(seconds) == 4
    # No node's second departure may precede another's first.
    assert log.index(seconds[0]) > log.index(firsts[-1])


def test_distinct_barrier_ids_independent(atm, engine):
    barrier = make_barrier(atm)
    departed = []
    for node in range(4):
        barrier.arrive(7, node, lambda t, n=node: departed.append(n))
    engine.run()
    assert len(departed) == 4
    assert barrier.completed == 1


def test_single_node_barrier_trivial(engine, counters):
    from repro.net.atm import AtmNetwork
    from repro.net.overhead import OverheadPreset
    net = AtmNetwork(engine, 1, bandwidth_bytes_per_sec=1e6,
                     switch_latency_cycles=1, clock_hz=1e6,
                     overhead=OverheadPreset.SIM_BASE.build(),
                     counters=counters)
    barrier = BarrierManager(
        net, 1, manager_node=0,
        arrive_payload=lambda n: 0, depart_payload=lambda n: 0,
        on_all_arrived=lambda: None, on_depart=lambda n: None)
    done = []
    barrier.arrive(0, 0, done.append)
    engine.run()
    assert len(done) == 1
    assert counters.total_messages == 0
