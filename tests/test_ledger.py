"""Provenance-ledger semantics: append-only, concurrent-safe, stable ids.

The ledger's value is entirely in its guarantees: records are never
rewritten, concurrent writers never interleave partial lines, a cache
hit appends a new attempt instead of mutating the producing record,
and the run_id of a given simulation point is the same whether it ran
serially, on the pool, or was served from a warm cache.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import ConsistencyViolation
from repro.harness.cache import ResultCache, run_key
from repro.harness.parallel import RunPlan, execute_plan
from repro.harness.workloads import Scale, make_app
from repro.ledger import (Ledger, ledger_session, make_run_id, run_scope)
from repro.machines import DecTreadMarksMachine, SgiMachine
from repro.trace.export import metrics_record


@pytest.fixture
def app():
    return make_app("sor_small", Scale.TEST)


def _plan():
    plan = RunPlan()
    for machine_cls in (DecTreadMarksMachine, SgiMachine):
        for p in (1, 2):
            plan.add(machine_cls(), make_app("sor_small", Scale.TEST), p)
    return plan


# ======================================================================
# Append-only file semantics
# ======================================================================
def test_append_never_rewrites_existing_bytes(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    ledger = Ledger(path)
    for i in range(3):
        ledger.append({"key": f"k{i}", "attempt": 1, "i": i})
    with open(path, "rb") as fh:
        snapshot = fh.read()
    for i in range(3, 5):
        ledger.append({"key": f"k{i}", "attempt": 1, "i": i})
    with open(path, "rb") as fh:
        grown = fh.read()
    assert grown.startswith(snapshot)
    assert len(ledger) == 5
    assert [r["i"] for r in ledger.records()] == list(range(5))


def test_reader_skips_torn_final_line(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    ledger = Ledger(path)
    ledger.append({"key": "whole", "attempt": 1})
    with open(path, "a") as fh:
        fh.write('{"key": "torn", "att')      # killed mid-write
    assert [r["key"] for r in Ledger(path).records()] == ["whole"]


def _hammer(args):
    """One concurrent writer: append ``count`` records tagged ``tag``."""
    path, tag, count = args
    ledger = Ledger(path)
    # A payload long enough that interleaved partial writes would tear.
    pad = "x" * 500
    for i in range(count):
        ledger.append({"key": f"{tag}", "attempt": i + 1,
                       "writer": tag, "i": i, "pad": pad})
    return tag


def test_concurrent_writers_never_interleave(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    writers, per_writer = 4, 40
    with ProcessPoolExecutor(max_workers=writers) as pool:
        list(pool.map(_hammer,
                      [(path, f"w{n}", per_writer)
                       for n in range(writers)]))
    # Every line must parse — raw readthrough, not the tolerant
    # Ledger.records() (which would mask interleaving as torn lines).
    with open(path) as fh:
        records = [json.loads(line) for line in fh]
    assert len(records) == writers * per_writer
    for n in range(writers):
        mine = [r for r in records if r["writer"] == f"w{n}"]
        assert sorted(r["i"] for r in mine) == list(range(per_writer))


# ======================================================================
# Run identity
# ======================================================================
def test_next_run_id_counts_existing_records(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    key = "ab" * 32
    Ledger(path).append({"key": key, "attempt": 2})
    run_id, attempt = Ledger(path).next_run_id(key)
    assert attempt == 3
    assert run_id == make_run_id(key, 3) == f"{key[:16]}.0003"


def test_run_id_stable_across_serial_and_pool(tmp_path, app):
    expected = {make_run_id(run_key(spec.machine, spec.app, spec.nprocs,
                                    seed=spec.seed, params=spec.params),
                            1)
                for spec in _plan().specs}
    by_mode = {}
    for mode, jobs in (("serial", 1), ("pool", 2)):
        ledger = Ledger(str(tmp_path / f"{mode}.jsonl"))
        results = execute_plan(_plan(), jobs=jobs, ledger=ledger)
        by_mode[mode] = {r.run_id for r in results}
        assert {rec["run_id"] for rec in ledger.records()} == expected
    assert by_mode["serial"] == by_mode["pool"] == expected


def test_warm_cache_appends_hit_records(tmp_path, app):
    ledger = Ledger(str(tmp_path / "ledger.jsonl"))
    cache = ResultCache(str(tmp_path / "cache"))
    cold = execute_plan(_plan(), jobs=1, cache=cache, ledger=ledger)
    warm = execute_plan(_plan(), jobs=1, cache=cache, ledger=ledger)
    records = list(ledger.records())
    misses = [r for r in records if r["path"] == "miss"]
    hits = [r for r in records if r["path"] == "hit"]
    assert len(misses) == len(hits) == len(_plan())
    for hit in hits:
        assert hit["attempt"] == 2
        assert hit["executor"] == "cache"
        producer = next(m for m in misses if m["key"] == hit["key"])
        assert hit["produced_by"] == producer["run_id"]
        assert hit["cycles"] == producer["cycles"]
    # Served results are re-stamped with the *hit's* identity, and
    # nothing else about them may differ (the determinism contract).
    assert {r.run_id for r in warm} == {h["run_id"] for h in hits}
    assert [r.summary() for r in cold] == [r.summary() for r in warm]


# ======================================================================
# Direct Machine.run and downstream correlation
# ======================================================================
def test_direct_run_appends_record_and_stamps_result(tmp_path, app):
    ledger = Ledger(str(tmp_path / "ledger.jsonl"))
    with ledger_session(ledger):
        result = DecTreadMarksMachine().run(app, 2)
    (record,) = ledger.records()
    assert record["path"] == "fresh"
    assert record["executor"] == "direct"
    assert record["run_id"] == result.run_id
    assert record["cycles"] == result.cycles
    assert record["machine"] == result.machine
    assert record["nprocs"] == 2
    assert record["pid"] == os.getpid()
    # run_id is identity, not measurement: summaries stay id-free.
    assert "run_id" not in result.summary()


def test_no_ledger_means_no_run_id(app):
    result = DecTreadMarksMachine().run(app, 1)
    assert result.run_id is None
    assert "run_id" not in metrics_record(result)


def test_metrics_record_carries_run_id(tmp_path, app):
    ledger = Ledger(str(tmp_path / "ledger.jsonl"))
    with ledger_session(ledger):
        result = DecTreadMarksMachine().run(app, 1)
    assert metrics_record(result)["run_id"] == result.run_id
    assert result.run_id is not None


def test_consistency_violation_carries_run_id():
    with run_scope("deadbeefdeadbeef.0007"):
        exc = ConsistencyViolation("stale read observed")
    assert exc.run_id == "deadbeefdeadbeef.0007"
    assert "[run deadbeefdeadbeef.0007]" in str(exc)
    assert ConsistencyViolation("outside any run").run_id is None
