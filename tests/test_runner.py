"""Speedup-curve helpers."""

import pytest

from repro.harness.runner import compare_machines, speedup_series
from repro.machines import DecTreadMarksMachine, SgiMachine


def test_speedup_series_baseline_is_one(pingpong):
    series = speedup_series(DecTreadMarksMachine(), pingpong, (1, 2, 4))
    sp = series.speedups()
    assert sp[1] == pytest.approx(1.0)
    assert set(sp) == {1, 2, 4}


def test_speedup_series_reuses_base_result(pingpong):
    machine = DecTreadMarksMachine()
    base = machine.run(pingpong, 1)
    series = speedup_series(machine, pingpong, (1, 2),
                            base_result=base)
    assert series.base_seconds == base.seconds
    assert series.at(1) is base


def test_compare_machines_keys(pingpong):
    out = compare_machines([DecTreadMarksMachine(), SgiMachine()],
                           pingpong, (1, 2))
    assert set(out) == {"treadmarks", "sgi"}
    for series in out.values():
        assert series.at(2) is not None
