"""The repro.check subsystem: online invariants, history, injected bugs.

The checkers must (a) stay silent on correct protocol
implementations, (b) cost nothing — not even a cycle of simulated
time — and (c) catch deliberately injected protocol bugs with a
structured :class:`~repro.errors.ConsistencyViolation` naming the
offending event.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.check import (CheckConfig, ConsistencyViolation,
                         active_check_config, checking)
from repro.check.events import make_event
from repro.check.history import verify_lrc_history
from repro.dsm.pagetable import NodePages
from repro.dsm.protocol import TreadMarksDsm
from repro.hw.directory import DirectorySystem
from repro.machines import (AllHardwareMachine, AllSoftwareMachine,
                            DecTreadMarksMachine, HybridMachine,
                            SgiMachine)
from repro.machines.params import HsParams
from repro.mem.directcache import DirectMappedCache

from tests.conftest import LockCounterApp, PingPongApp


def five_machines():
    return [DecTreadMarksMachine(), SgiMachine(), AllSoftwareMachine(),
            AllHardwareMachine(), HybridMachine(HsParams(procs_per_node=2))]


# ----------------------------------------------------------------------
# enablement and zero-cost guarantees
# ----------------------------------------------------------------------

def test_checking_disabled_by_default(monkeypatch):
    # The suite itself may run under REPRO_CHECK=1 (one CI leg does);
    # "default" means the environment carries no opt-in.
    monkeypatch.delenv("REPRO_CHECK", raising=False)
    assert active_check_config() is None


def test_checking_context_arms_and_restores(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK", raising=False)
    with checking() as cfg:
        assert active_check_config() is cfg
        assert cfg.label() == "on"
        import os
        assert os.environ["REPRO_CHECK"] == "1"
        with checking(history=True) as inner:
            assert active_check_config() is inner
            assert inner.label() == "history"
            assert os.environ["REPRO_CHECK"] == "history"
        assert active_check_config() is cfg
    assert active_check_config() is None


def test_env_var_arms_checkers(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")
    assert active_check_config() == CheckConfig(history=False)
    monkeypatch.setenv("REPRO_CHECK", "history")
    assert active_check_config() == CheckConfig(history=True)
    for off in ("", "0", "off", "false", "no"):
        monkeypatch.setenv("REPRO_CHECK", off)
        assert active_check_config() is None


def test_checkers_not_built_when_disabled():
    result = DecTreadMarksMachine().run(PingPongApp(), 4)
    assert result.cycles > 0  # ran; nothing to assert about checkers


@pytest.mark.parametrize("machine_factory", [
    DecTreadMarksMachine, SgiMachine, AllSoftwareMachine,
    AllHardwareMachine, lambda: HybridMachine(HsParams(procs_per_node=2)),
])
def test_checked_run_is_cycle_identical(machine_factory):
    """Checkers observe; they never change simulated time."""
    app = PingPongApp()
    plain = machine_factory().run(app, 4)
    with checking(history=True):
        checked = machine_factory().run(app, 4)
    assert checked.cycles == plain.cycles
    assert checked.app_output == plain.app_output


def test_checking_forks_the_cache_fingerprint(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK", raising=False)
    machine = DecTreadMarksMachine()
    plain = machine.fingerprint_data(4)
    with checking():
        online = machine.fingerprint_data(4)
    with checking(history=True):
        history = machine.fingerprint_data(4)
    assert plain != online != history
    assert plain != history


# ----------------------------------------------------------------------
# clean runs stay silent
# ----------------------------------------------------------------------

@pytest.mark.parametrize("app_factory", [PingPongApp, LockCounterApp])
def test_all_machines_pass_checked_runs(app_factory):
    app = app_factory()
    with checking(history=True):
        for machine in five_machines():
            machine.run(app, 4)  # raises ConsistencyViolation on a bug


# ----------------------------------------------------------------------
# injected protocol bugs are caught and attributed
# ----------------------------------------------------------------------

def test_skipped_invalidation_is_caught(monkeypatch):
    """A write notice that leaves the page valid (skipped
    invalidation) trips the checker at the notice_applied event."""
    original = NodePages.apply_notice

    def buggy(self, page, creator, wire_bytes, interval_index):
        was_valid = original(self, page, creator, wire_bytes,
                             interval_index)
        self.valid[page] = True          # "forget" the invalidation
        return was_valid

    monkeypatch.setattr(NodePages, "apply_notice", buggy)
    with checking(), pytest.raises(ConsistencyViolation) as err:
        DecTreadMarksMachine().run(PingPongApp(), 4)
    violation = err.value
    assert violation.event is not None
    assert violation.event.kind == "notice_applied"
    assert "missed invalidation" in violation.reason
    assert violation.now is not None
    assert violation.trail  # replayable slice of preceding events


def test_skipped_diff_application_is_caught(monkeypatch):
    """Finishing a fault while diff responses are outstanding is the
    ISSUE's canonical injected bug: the checker names fault_done."""
    original = TreadMarksDsm._diff_arrived

    def buggy(self, job, creator, wire_bytes, time):
        if job.outstanding > 1:
            # Skip the remaining diffs and declare the fault done.
            self._finish_fault(job, time)
            return
        original(self, job, creator, wire_bytes, time)

    monkeypatch.setattr(TreadMarksDsm, "_diff_arrived", buggy)
    # LockCounterApp makes several nodes dirty the same page between
    # synchronizations, so some fault has >= 2 pending diff sources.
    with checking(), pytest.raises(ConsistencyViolation) as err:
        DecTreadMarksMachine().run(LockCounterApp(), 4)
    assert err.value.event.kind == "fault_done"
    assert "outstanding" in err.value.reason


def test_missed_snoop_downgrade_is_caught(monkeypatch):
    """A read miss that leaves a peer's MODIFIED copy intact breaks
    single-writer-multiple-reader on the bus."""
    monkeypatch.setattr(DirectMappedCache, "downgrade_lines",
                        lambda self, lines: (0, 0))
    with checking(), pytest.raises(ConsistencyViolation) as err:
        SgiMachine().run(PingPongApp(), 2)
    assert err.value.event.kind == "swmr_check"
    assert "SWMR" in err.value.reason


def test_eager_eviction_deregistration_is_caught(monkeypatch):
    """Regression guard for the fixed directory bug: deregistering
    every evicted line — ignoring that a bulk access may refetch a
    victim in a later chunk — leaves a resident copy unregistered,
    and the checker says exactly that."""

    def buggy(self, proc, res):
        for evicted in (res.evicted_dirty_lines, res.evicted_clean_lines):
            if evicted.size:
                mine = evicted[self.owner[evicted] == proc]
                self.owner[mine] = -1
                self.sharers[evicted] &= ~self._bit(proc)

    monkeypatch.setattr(DirectorySystem, "_handle_evictions", buggy)
    from tests.test_directory import make_system
    with checking():
        system, _ = make_system(cache_lines=8)
        system.write(1, 15, 34, now=0)
        with pytest.raises(ConsistencyViolation) as err:
            system.write(1, 24, 33, now=10_000)
    assert err.value.event.kind == "directory_check"
    assert "not registered in the sharer set" in err.value.reason


# ----------------------------------------------------------------------
# the LRC history checker
# ----------------------------------------------------------------------

def _fail_collector(failures):
    def fail(reason, event=None):
        failures.append((reason, event))
    return fail


def test_history_checker_accepts_applied_interval():
    history = [
        ("interval", 0, 1, (5,), (1, 0)),
        ("apply", 1, 5, ((0, 1),)),
        ("read", 1, 5, 6, (1, 1)),
    ]
    failures = []
    checks = verify_lrc_history(history, _fail_collector(failures))
    assert checks > 0
    assert failures == []


def test_history_checker_flags_stale_read():
    """A read whose clock covers interval 0:1 but never applied its
    diff returns stale data — the post-run replay catches it."""
    history = [
        ("interval", 0, 1, (5,), (1, 0)),
        ("read", 1, 5, 6, (1, 1)),       # no ("apply", 1, 5, ...) first
    ]
    failures = []
    verify_lrc_history(history, _fail_collector(failures))
    assert failures
    reason, event = failures[0]
    assert "stale read" in reason
    assert event.kind == "history_read"


def test_history_checker_accepts_eager_updates():
    """Eager-pushed pages are applied without a fault; the history
    records them as ("eager", ...) and the replay honours them."""
    history = [
        ("interval", 0, 1, (5,), (1, 0)),
        ("eager", 1, 5, (0, 1)),
        ("read", 1, 5, 6, (1, 1)),
    ]
    failures = []
    verify_lrc_history(history, _fail_collector(failures))
    assert failures == []


def test_history_checker_ignores_unreachable_intervals():
    """An interval outside the reader's happens-before past imposes
    nothing (the reader's clock has not covered it)."""
    history = [
        ("interval", 0, 1, (5,), (1, 0)),
        ("read", 1, 5, 6, (0, 1)),       # vc[0] == 0 < interval index 1
    ]
    failures = []
    verify_lrc_history(history, _fail_collector(failures))
    assert failures == []


def test_dsm_checker_records_and_verifies_history():
    with checking(history=True):
        machine = DecTreadMarksMachine()
        result = machine.run(PingPongApp(), 4)
    assert result.cycles > 0


# ----------------------------------------------------------------------
# ConsistencyViolation structure
# ----------------------------------------------------------------------

def test_violation_carries_event_time_and_trail():
    event = make_event("fault_done", 123.0, 2, page=7, outstanding=1)
    trail = (make_event("fault_begin", 100.0, 2, page=7),)
    violation = ConsistencyViolation("it broke", event=event, now=123.0,
                                     trail=trail)
    assert violation.event is event
    assert violation.now == 123.0
    assert violation.trail == trail
    text = str(violation)
    assert "it broke" in text
    assert "fault_done" in text
    assert "cycle 123" in text
    assert "1 preceding protocol events" in text


def test_protocol_event_formatting():
    event = make_event("notice_applied", 42.0, 1, page=3, creator=0)
    assert event.kind == "notice_applied"
    assert event.node == 1
    assert event.page == 3
    assert dict(event.details)["creator"] == 0
    assert "notice_applied" in str(event)
    assert "@t=42" in str(event)
