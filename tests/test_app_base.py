"""Application base class helpers and the run context."""

import numpy as np
import pytest

from repro.apps.base import (AppContext, Application, chunk_ranges,
                             interleaved)
from repro.errors import ConfigurationError
from repro.mem.layout import AddressSpace
from repro.mem.store import SharedStore


def test_chunk_ranges_cover_everything():
    for total in (0, 1, 7, 8, 100):
        for parts in (1, 3, 8):
            chunks = chunk_ranges(total, parts)
            assert len(chunks) == parts
            flat = [i for c in chunks for i in c]
            assert flat == list(range(total))
            sizes = [len(c) for c in chunks]
            assert max(sizes) - min(sizes) <= 1


def test_chunk_ranges_rejects_zero_parts():
    with pytest.raises(ConfigurationError):
        chunk_ranges(10, 0)


def test_interleaved():
    assert list(interleaved(10, 3, 0)) == [0, 3, 6, 9]
    assert list(interleaved(10, 3, 2)) == [2, 5, 8]
    assert list(interleaved(2, 5, 4)) == []


def test_context_rng_streams_deterministic():
    space = AddressSpace()
    space.alloc("x", 8)
    ctx = AppContext(SharedStore(space), 2, seed=99)
    a = ctx.rng(0).random(4)
    b = AppContext(SharedStore(space), 2, seed=99).rng(0).random(4)
    c = ctx.rng(1).random(4)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_application_defaults():
    class Minimal(Application):
        def regions(self, nprocs):
            return {}

        def programs(self, ctx):
            return []

    app = Minimal()
    app.check_nprocs(1)
    with pytest.raises(ConfigurationError):
        app.check_nprocs(0)
    assert app.verify(None) == {}
    assert "Minimal" in repr(app)


def test_application_base_abstract_hooks():
    app = Application()
    with pytest.raises(NotImplementedError):
        app.regions(1)
    with pytest.raises(NotImplementedError):
        app.programs(None)
