"""The drift-detecting report pass: regenerate, diff, resume.

Runs ``run_report`` against a hermetic root (its own goldens, cache,
and ledger under tmp) and pins the three behaviours the CI job leans
on: a clean tree reports no drift, a perturbed golden produces a
structured non-ok diff, and a re-run resumes entirely from the cache
(ledger shows only hit records — nothing re-simulates).
"""

from __future__ import annotations

import json

import pytest

from repro.harness.cache import ResultCache
from repro.harness.parallel import run_context
from repro.harness.report import (GOLDEN_FIGURES, GOLDEN_SPEEDUPS, Drift,
                                  diff_values, run_report)
from repro.harness.workloads import Scale
from repro.ledger import Ledger, ledger_session

FIGURES = ("fig6",)          # small: one machine pair, TSP-18


@pytest.fixture(scope="module")
def report_root(tmp_path_factory):
    """A hermetic root whose goldens were written by the report itself."""
    root = tmp_path_factory.mktemp("report-root")
    cache = ResultCache(str(root / "cache"))
    ledger = Ledger(str(root / "cache" / "ledger.jsonl"))
    with ledger_session(ledger), run_context(cache=cache, ledger=ledger):
        outcome = run_report(figures=FIGURES, scale=Scale.TEST,
                             root=str(root), write=True,
                             log=lambda _msg: None)
    assert outcome.written
    return root


def _run(root, **kwargs):
    cache = ResultCache(str(root / "cache"))
    ledger = Ledger(str(root / "cache" / "ledger.jsonl"))
    with ledger_session(ledger), run_context(cache=cache, ledger=ledger):
        outcome = run_report(figures=FIGURES, scale=Scale.TEST,
                             root=str(root), log=lambda _msg: None,
                             **kwargs)
    return outcome, cache, ledger


def test_clean_tree_reports_no_drift(report_root):
    outcome, _cache, _ledger = _run(report_root)
    assert outcome.ok
    assert outcome.drifts == []
    assert GOLDEN_SPEEDUPS in outcome.artifacts
    assert f"{GOLDEN_FIGURES}#test/fig6" in outcome.artifacts
    doc = outcome.drift_document()
    assert doc["ok"] and doc["drift_count"] == 0


def test_rerun_resumes_from_cache(report_root):
    """A killed/repeated pass re-simulates nothing: all cache hits."""
    before = len(Ledger(str(report_root / "cache" / "ledger.jsonl")))
    outcome, cache, ledger = _run(report_root)
    assert outcome.ok
    assert cache.stats()["misses"] == 0
    assert cache.stats()["hits"] > 0
    appended = list(ledger.records())[before:]
    assert len(appended) == ledger.appended > 0
    assert {r["path"] for r in appended} == {"hit"}
    assert all(r["executor"] == "cache" and "produced_by" in r
               for r in appended)


def test_perturbed_golden_yields_structured_drift(report_root):
    path = report_root / GOLDEN_SPEEDUPS
    committed = path.read_text()
    data = json.loads(committed)
    series = sorted(data)[0]
    nproc = sorted(data[series]["cycles"])[0]
    data[series]["cycles"][nproc] += 1
    try:
        path.write_text(json.dumps(data))
        outcome, _cache, _ledger = _run(report_root)
    finally:
        path.write_text(committed)
    assert not outcome.ok
    (drift,) = outcome.drifts
    assert drift.artifact == GOLDEN_SPEEDUPS
    assert drift.key == f"{series}.cycles.{nproc}"
    assert drift.expected == drift.actual + 1
    doc = outcome.drift_document()
    assert doc["drift_count"] == 1
    assert doc["drifts"][0]["key"] == drift.key
    assert not doc["ok"]


def test_missing_golden_is_drift(report_root):
    figures_path = report_root / GOLDEN_FIGURES
    committed = figures_path.read_text()
    try:
        figures_path.unlink()
        outcome, _cache, _ledger = _run(report_root)
    finally:
        figures_path.write_text(committed)
    assert not outcome.ok
    assert any(d.artifact.startswith(GOLDEN_FIGURES)
               for d in outcome.drifts)


def test_diff_values_walks_nested_structures():
    expected = {"a": {"b": [1, 2, 3]}, "c": 1.0}
    actual = {"a": {"b": [1, 9, 3]}, "d": True}
    drifts = diff_values("art", expected, actual)
    as_dicts = {d.key: (d.expected, d.actual) for d in drifts}
    assert as_dicts == {
        "a.b[1]": (2, 9),
        "c": (1.0, None),
        "d": (None, True),
    }
    assert all(isinstance(d, Drift) and d.artifact == "art"
               for d in drifts)
    assert diff_values("art", expected, expected) == []
