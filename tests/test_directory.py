"""Directory-based coherence over the crossbar."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.directory import DirectorySystem, popcount
from repro.mem.directcache import DirectMappedCache, MODIFIED
from repro.net.crossbar import CrossbarNetwork
from repro.sim.engine import Engine
from repro.stats.counters import Counters

LINE = 64
LINES_PER_PAGE = 64
TOTAL_LINES = 8 * LINES_PER_PAGE


def make_system(nprocs=4, cache_lines=16):
    counters = Counters()
    engine = Engine()
    caches = [DirectMappedCache(cache_lines * LINE, LINE, name=f"c{i}")
              for i in range(nprocs)]
    xbar = CrossbarNetwork(engine, nprocs, bandwidth_bytes_per_sec=200e6,
                           latency_cycles=10, clock_hz=100e6,
                           counters=counters)
    system = DirectorySystem(
        caches, xbar, counters,
        total_lines=TOTAL_LINES, lines_per_page=LINES_PER_PAGE,
        line_bytes=LINE, local_miss_cycles=20,
        remote_clean_cycles=90, remote_dirty_cycles=130)
    return system, counters


def test_popcount():
    values = np.array([0, 1, 3, 0xFF, 2**63], dtype=np.uint64)
    assert list(popcount(values)) == [0, 1, 2, 8, 1]


def test_too_many_procs_rejected():
    counters = Counters()
    engine = Engine()
    caches = [DirectMappedCache(LINE, LINE) for _ in range(65)]
    xbar = CrossbarNetwork(engine, 65, bandwidth_bytes_per_sec=1e6,
                           latency_cycles=1, clock_hz=1e6,
                           counters=counters)
    with pytest.raises(Exception):
        DirectorySystem(caches, xbar, counters, total_lines=10,
                        lines_per_page=1, line_bytes=LINE)


def test_first_touch_homing():
    system, counters = make_system()
    system.read(2, 0, 4, now=0)
    assert list(system.home_of(np.arange(4))) == [2, 2, 2, 2]
    # Re-reads by others keep the established home.
    system.read(1, 0, 4, now=100)
    assert list(system.home_of(np.arange(4))) == [2, 2, 2, 2]


def test_local_vs_remote_latency():
    system, _ = make_system()
    t_first = system.read(0, 0, 4, now=0) - 0
    system.caches[0].flush()
    t_local = system.read(0, 0, 4, now=0) - 0
    system.caches[1].flush()
    t_remote_end = system.read(1, 0, 4, now=0)
    assert t_local <= t_first  # same class (local once homed)
    assert t_remote_end > t_local  # remote-clean costs 90 > 20


def test_dirty_remote_costs_most_and_flushes_owner():
    system, counters = make_system()
    system.write(0, 0, 1, now=0)
    assert system.owner[0] == 0
    end = system.read(1, 0, 1, now=1000)
    assert end - 1000 >= 130
    assert system.owner[0] == -1
    assert system.caches[0].state_of(0) != MODIFIED
    assert counters.cache_to_cache == 1


def test_write_invalidates_all_sharers():
    system, counters = make_system()
    for proc in (0, 1, 2):
        system.read(proc, 0, 4, now=0)
    system.write(3, 0, 4, now=100)
    for proc in (0, 1, 2):
        assert system.caches[proc].present_in_range(0, 4) == 0
    assert counters.invalidations >= 8  # two other sharers x 4 lines
    assert (system.sharers[np.arange(4)] ==
            np.uint64(1) << np.uint64(3)).all()
    assert (system.owner[np.arange(4)] == 3).all()


def test_eviction_deregisters():
    system, _ = make_system(cache_lines=4)
    system.write(0, 0, 4, now=0)
    # Reading 4 conflicting lines evicts the dirty ones.
    system.read(0, 4, 8, now=100)
    assert (system.owner[np.arange(4)] == -1).all()
    system.check_invariants()


def test_bulk_refetch_in_one_access_keeps_registration():
    """A bulk access longer than the cache may evict a line in one
    chunk and refetch it in a later chunk of the same access (with 8
    sets, write(15, 34) evicts line 32 when line 24 fills set 0, then
    write(24, 33)'s second chunk refetches it).  The refetched copy
    ends the access resident, so it must stay directory-registered —
    a deregistered-but-resident copy would be invisible to later
    invalidations.
    """
    system, _ = make_system(cache_lines=8)
    system.write(1, 15, 34, now=0)
    system.write(1, 24, 33, now=10_000)
    assert system.caches[1].state_of(32) == MODIFIED
    assert system.owner[32] == 1
    assert system.sharers[32] == np.uint64(1) << np.uint64(1)
    system.check_invariants()
    # The interim eviction's writeback must still invalidate cleanly:
    # another writer takes the line over in full.
    system.write(2, 32, 33, now=20_000)
    assert system.caches[1].state_of(32) != MODIFIED
    assert system.owner[32] == 2


def test_directory_invariants_after_random_script(rng):
    system, _ = make_system()
    now = 0
    for _ in range(100):
        proc = int(rng.integers(4))
        first = int(rng.integers(0, 30))
        length = int(rng.integers(1, 10))
        if rng.random() < 0.5:
            now = system.read(proc, first, first + length, now)
        else:
            now = system.write(proc, first, first + length, now)
    system.check_invariants()
    # A MODIFIED cache line must be directory-owned by that cache.
    for proc, cache in enumerate(system.caches):
        mask = cache.states == MODIFIED
        lines = cache.tags[mask]
        assert (system.owner[lines] == proc).all()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.booleans(),
                          st.integers(0, 30), st.integers(1, 8)),
                min_size=1, max_size=40))
def test_single_writer_property(script):
    """No line is ever MODIFIED in two caches at once."""
    system, _ = make_system()
    now = 0
    for proc, write, first, length in script:
        if write:
            now = system.write(proc, first, first + length, now)
        else:
            now = system.read(proc, first, first + length, now)
    states = np.stack([c.states for c in system.caches])
    tags = np.stack([c.tags for c in system.caches])
    for line in range(31 + 8):
        holders = 0
        for p in range(4):
            s = line % system.caches[p].num_sets
            if tags[p, s] == line and states[p, s] == MODIFIED:
                holders += 1
        assert holders <= 1
