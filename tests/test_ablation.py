"""Mechanism ablations threaded through the machines: spec grammar,
identity pins, fingerprint discipline, correctness under every
single-mechanism-off configuration, and sweep determinism."""

import itertools

import pytest

from repro import Scale, make_app, make_machine
from repro.ablate import (ALL_ON, DEFAULT_ABLATION, MECHANISMS,
                          AblationSpec, leave_one_out, one_only,
                          parse_ablation)
from repro.check.checker import checking
from repro.errors import ConfigurationError
from repro.harness.cache import ResultCache, run_key
from repro.harness.parallel import RunPlan, execute_plan

SOFTWARE_MACHINES = ("treadmarks", "as", "hs")
ALL_MACHINES = ("treadmarks", "sgi", "as", "ah", "hs")


# ======================================================================
# the spec and its grammar
# ======================================================================
def test_spec_defaults_and_label():
    assert ALL_ON.is_default
    assert ALL_ON is DEFAULT_ABLATION or ALL_ON == DEFAULT_ABLATION
    assert ALL_ON.label() == "full"
    assert ALL_ON.off_mechanisms() == ()
    spec = AblationSpec.without("twins", "diffs")
    assert not spec.is_default
    assert spec.label() == "no-twins+diffs"  # MECHANISMS declaration order
    assert spec.off_mechanisms() == ("twins", "diffs")


def test_only_inverts_without():
    spec = AblationSpec.only("twins")
    assert spec.on_mechanisms() == ("twins",)
    assert set(spec.off_mechanisms()) == set(MECHANISMS) - {"twins"}


def test_parse_ablation_grammar():
    assert parse_ablation(None) == ALL_ON
    assert parse_ablation("full") == ALL_ON
    assert parse_ablation("no-twins") == AblationSpec.without("twins")
    assert parse_ablation("no-twins+diffs") == \
        AblationSpec.without("diffs", "twins")
    assert parse_ablation("only-twins") == AblationSpec.only("twins")
    assert parse_ablation({"twins": False}) == \
        AblationSpec.without("twins")
    spec = AblationSpec.without("backoff")
    assert parse_ablation(spec) is spec


def test_parse_ablation_rejects_unknown_mechanism():
    with pytest.raises(ConfigurationError):
        parse_ablation("no-telepathy")
    with pytest.raises(ConfigurationError):
        parse_ablation({"telepathy": False})
    with pytest.raises(ConfigurationError):
        AblationSpec.without("telepathy")


def test_grid_builders_cover_every_mechanism():
    loo = leave_one_out()
    assert [s.off_mechanisms() for s in loo] == [(m,) for m in MECHANISMS]
    only = one_only()
    assert [s.on_mechanisms() for s in only] == [(m,) for m in MECHANISMS]


# ======================================================================
# identity pins: all-on is byte-identical to the pre-ablation machine
# ======================================================================
def test_all_on_leaves_name_and_fingerprint_alone():
    """`ablate=None`, the explicit all-on spec, and the pre-ablation
    constructor surface are one and the same machine — old cache
    entries and goldens stay valid."""
    for name in ALL_MACHINES:
        plain = make_machine(name)
        explicit = make_machine(name, ablate="full")
        assert explicit.name == plain.name
        for nprocs in (1, 8):
            assert explicit.fingerprint(nprocs) == \
                plain.fingerprint(nprocs), name


@pytest.mark.parametrize("name", SOFTWARE_MACHINES)
def test_all_on_runs_summary_identical(name, pingpong):
    plain = make_machine(name).run(pingpong, 4)
    explicit = make_machine(name, ablate=AblationSpec.all_on()).run(
        pingpong, 4)
    assert explicit.summary() == plain.summary()


def test_off_toggle_forks_name_and_fingerprint():
    for name in SOFTWARE_MACHINES:
        plain = make_machine(name)
        ablated = make_machine(name, ablate="no-twins")
        assert ablated.name == f"{plain.name}-no-twins"
        assert ablated.fingerprint(8) != plain.fingerprint(8), name


def test_software_ablations_share_the_uniprocessor_baseline():
    """At one node the DSM engages no mechanisms at all, so every
    ablation shares the 1-proc baseline (one simulation, one cache
    entry, for the whole sweep)."""
    for name in SOFTWARE_MACHINES:
        plain = make_machine(name)
        for spec in leave_one_out():
            ablated = make_machine(name, ablate=spec)
            assert ablated.fingerprint(1) == plain.fingerprint(1), \
                (name, spec.label())


def test_distinct_specs_never_collide():
    """Cache-key discipline: pairwise over the leave-one-out grid
    plus full, no two specs may alias a fingerprint."""
    app = make_app("sor_sim", Scale.TEST)
    specs = [ALL_ON] + leave_one_out()
    keys = {}
    for spec in specs:
        key = run_key(make_machine("as", ablate=spec), app, 8)
        keys[spec.label()] = key
    for (la, ka), (lb, kb) in itertools.combinations(keys.items(), 2):
        assert ka != kb, (la, lb)
    assert len(set(keys.values())) == len(specs)


def test_hardware_machines_reject_ablations():
    for name in ("sgi", "ah"):
        make_machine(name, ablate="full")  # default is fine
        with pytest.raises(ConfigurationError):
            make_machine(name, ablate="no-twins")


# ======================================================================
# correctness: ablations change traffic and timing, never results
# ======================================================================
@pytest.mark.parametrize("name", SOFTWARE_MACHINES)
@pytest.mark.parametrize("mech", MECHANISMS)
def test_apps_verify_under_every_single_off(name, mech, pingpong):
    """Every single-mechanism-off config must produce the results of
    the full protocol, with the online checker armed."""
    baseline = make_machine(name).run(pingpong, 4)
    with checking(history=True):
        result = make_machine(
            name, ablate=AblationSpec.without(mech)).run(pingpong, 4)
    assert result.app_output == baseline.app_output, (name, mech)


@pytest.mark.parametrize("name", SOFTWARE_MACHINES)
def test_locks_verify_with_everything_off(name, lockcounter):
    """The harshest point of the grid: every mechanism off at once."""
    spec = AblationSpec.without(*MECHANISMS)
    with checking(history=True):
        result = make_machine(name, ablate=spec).run(lockcounter, 4)
    assert result.app_output == {"count": 4 * lockcounter.increments}


# ======================================================================
# mechanisms actually disengage (counters prove the fork)
# ======================================================================
def test_no_twins_ships_whole_pages(pingpong):
    full = make_machine("as").run(pingpong, 4)
    ablated = make_machine("as", ablate="no-twins").run(pingpong, 4)
    assert full.counters.twins_created > 0
    assert ablated.counters.twins_created == 0
    assert ablated.counters.pages_shipped_whole > 0
    assert ablated.counters.diffs_created == 0


def test_no_diffs_inflates_bytes(pingpong):
    full = make_machine("as").run(pingpong, 4)
    ablated = make_machine("as", ablate="no-diffs").run(pingpong, 4)
    assert ablated.counters.total_bytes > full.counters.total_bytes


def test_no_lazy_release_pushes_eagerly(lockcounter):
    full = make_machine("as").run(lockcounter, 4)
    ablated = make_machine("as", ablate="no-lazy_release").run(
        lockcounter, 4)
    assert full.counters.eager_releases == 0
    assert ablated.counters.eager_releases > 0


def test_no_lazy_fetch_prefetches(pingpong):
    ablated = make_machine("as", ablate="no-lazy_fetch").run(pingpong, 4)
    assert ablated.counters.eager_fetches > 0


def test_no_piggyback_sends_standalone_notices(pingpong):
    from repro.stats.counters import MsgKind
    full = make_machine("as").run(pingpong, 4)
    ablated = make_machine("as", ablate="no-piggyback").run(pingpong, 4)
    assert full.counters.messages.get(MsgKind.WRITE_NOTICE, 0) == 0
    assert ablated.counters.messages.get(MsgKind.WRITE_NOTICE, 0) > 0


# ======================================================================
# sweep determinism: serial == pool == warm cache
# ======================================================================
def test_ablation_cells_serial_equals_pool_equals_cache(tmp_path):
    app = make_app("sor_sim", Scale.TEST)
    specs = ("full", "no-twins", "no-diffs")

    def plan():
        p = RunPlan()
        for spec in specs:
            for nprocs in (1, 4):
                p.add(make_machine("as", ablate=spec), app, nprocs)
        return p

    serial = [r.summary() for r in execute_plan(plan(), jobs=1)]
    pooled = [r.summary() for r in execute_plan(plan(), jobs=2)]
    assert serial == pooled

    cache = ResultCache(str(tmp_path))
    cold = [r.summary() for r in execute_plan(plan(), jobs=1,
                                              cache=cache)]
    warm = [r.summary() for r in execute_plan(plan(), jobs=1,
                                              cache=cache)]
    assert cold == serial
    assert warm == serial
    # The three 1-proc cells share one cached baseline entry, so the
    # warm pass hits 4 distinct keys (3 specs at 4 procs + 1 baseline).
    assert cache.stats()["hits"] >= 4


# ======================================================================
# the fuzzer's ablation leg
# ======================================================================
def test_generate_ablation_program_is_seeded():
    from repro.check.fuzz import generate_ablation_program
    a = generate_ablation_program((3, 1))
    b = generate_ablation_program((3, 1))
    c = generate_ablation_program((3, 2))
    assert a == b
    assert a != c
    assert a["ablate"] and set(a["ablate"]) <= set(MECHANISMS)
    assert a["ablate"] == sorted(a["ablate"])


def test_shrinker_minimizes_the_toggle_set():
    """A failure that only needs one toggle must shrink to exactly
    that toggle (and toggle drops are tried before structural cuts)."""
    from repro.check.fuzz import (_variants, generate_ablation_program,
                                  shrink_program)
    program = generate_ablation_program((5, 0))
    program["ablate"] = ["diffs", "lazy_release", "twins"]

    first = next(iter(_variants(program)))
    assert first.get("ablate", []) != program["ablate"]

    minimal = shrink_program(
        program, lambda p: "twins" in (p.get("ablate") or ()))
    assert minimal["ablate"] == ["twins"]


def test_fuzz_differential_covers_ablated_legs(lockcounter):
    from repro.check.fuzz import generate_ablation_program, run_program
    program = generate_ablation_program((9, 0))
    program["ablate"] = ["lazy_release"]
    outcome = run_program(program, jobs=1, history=True)
    assert outcome.ok, outcome.reason
    labels = [v.machine for v in outcome.verdicts]
    assert "treadmarks-no-lazy_release" in labels
    assert "as-no-lazy_release" in labels
    assert "hs2-no-lazy_release" in labels
