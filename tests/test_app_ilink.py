"""Synthetic ILINK: presets, load imbalance, determinism."""

import pytest

from repro.apps.base import AppContext
from repro.apps.ilink import IlinkApp, PRESETS
from repro.errors import ConfigurationError
from repro.machines import DecTreadMarksMachine, SgiMachine
from repro.mem.layout import AddressSpace
from repro.mem.store import SharedStore


def test_unknown_preset_rejected():
    with pytest.raises(ConfigurationError):
        IlinkApp("nonsense")


def test_preset_overrides():
    app = IlinkApp("clp", iterations=3, genarray_kbytes=8)
    assert app.iterations == 3
    assert app.genarray_bytes == 8 * 1024
    assert app.sigma == PRESETS["clp"]["sigma"]


def test_results_identical_across_nprocs_and_machines():
    checks = set()
    for machine in (DecTreadMarksMachine(), SgiMachine()):
        for nprocs in (1, 2, 5):
            app = IlinkApp("clp", iterations=3, genarray_kbytes=8)
            r = machine.run(app, nprocs)
            checks.add(round(r.app_output["checksum"], 12))
    assert len(checks) == 1


def test_weights_deterministic_and_imbalanced():
    app = IlinkApp("bad", iterations=2)
    space = AddressSpace()
    for name, size in app.regions(4).items():
        space.alloc(name, size)
    ctx = AppContext(SharedStore(space), 4)
    w1 = app._weights(ctx, 0)
    w2 = app._weights(ctx, 0)
    w3 = app._weights(ctx, 1)
    assert (w1 == w2).all()
    assert (w1 != w3).any()
    assert w1.size == app.units_total
    # Lognormal sigma=0.75 gives real spread.
    assert w1.max() / w1.min() > 1.5


def test_bad_preset_more_barrier_and_message_traffic():
    clp = DecTreadMarksMachine().run(IlinkApp("clp", iterations=3), 4)
    bad = DecTreadMarksMachine().run(IlinkApp("bad", iterations=3), 4)
    assert bad.barriers_per_sec > clp.barriers_per_sec
    assert bad.messages_per_sec > clp.messages_per_sec


def test_barriers_one_per_iteration():
    r = DecTreadMarksMachine().run(IlinkApp("clp", iterations=4), 3)
    assert r.counters.barriers == 4


def test_speedup_limited_by_imbalance():
    """With lognormal unit weights, 8-way speedup stays sublinear."""
    app = IlinkApp("bad", iterations=4)
    machine = SgiMachine()
    t1 = machine.run(app, 1).seconds
    t8 = machine.run(app, 8).seconds
    assert 1.5 < t1 / t8 < 7.5
