"""Water / M-Water: physics consistency and locking disciplines."""

import pytest

from repro.apps.water import WaterApp
from repro.errors import ConfigurationError
from repro.machines import DecTreadMarksMachine, SgiMachine


def test_validation():
    with pytest.raises(ConfigurationError):
        WaterApp(molecules=1)
    with pytest.raises(ConfigurationError):
        WaterApp(molecules=8, steps=0)


def test_every_pair_counted_once():
    for n in (6, 7, 8, 9):
        app = WaterApp(molecules=n)
        seen = set()
        for p in range(3):
            for i, j in app._pairs_of(p, 3):
                key = (min(i, j), max(i, j))
                assert key not in seen, f"pair {key} duplicated"
                seen.add(key)
        assert len(seen) == n * (n - 1) // 2


def test_water_and_mwater_same_physics():
    """Both locking disciplines compute the same trajectories."""
    base = DecTreadMarksMachine().run(
        WaterApp(molecules=12, steps=2), 1)
    modified = DecTreadMarksMachine().run(
        WaterApp(molecules=12, steps=2, modified=True), 1)
    assert base.app_output["pos_checksum"] == pytest.approx(
        modified.app_output["pos_checksum"], rel=1e-9)
    assert base.app_output["kinetic"] == pytest.approx(
        modified.app_output["kinetic"], rel=1e-9)


def test_physics_independent_of_nprocs():
    results = [
        DecTreadMarksMachine().run(
            WaterApp(molecules=12, steps=2, modified=True), n)
        for n in (1, 3)
    ]
    # Accumulation order differs, so allow floating-point slack.
    assert results[0].app_output["pos_checksum"] == pytest.approx(
        results[1].app_output["pos_checksum"], rel=1e-6)


def test_physics_independent_of_machine():
    a = DecTreadMarksMachine().run(WaterApp(molecules=12, steps=2), 4)
    b = SgiMachine().run(WaterApp(molecules=12, steps=2), 4)
    assert a.app_output["pos_checksum"] == pytest.approx(
        b.app_output["pos_checksum"], rel=1e-6)


def test_water_many_more_lock_acquires_than_mwater():
    water = DecTreadMarksMachine().run(WaterApp(molecules=16, steps=1), 4)
    mwater = DecTreadMarksMachine().run(
        WaterApp(molecules=16, steps=1, modified=True), 4)
    # Water: one acquire per force *update* (two per pair).
    # M-Water: one per touched molecule per processor.
    assert water.counters.lock_acquires > \
        3 * mwater.counters.lock_acquires


def test_mwater_faster_than_water_on_dsm():
    water = DecTreadMarksMachine().run(WaterApp(molecules=16, steps=1), 4)
    mwater = DecTreadMarksMachine().run(
        WaterApp(molecules=16, steps=1, modified=True), 4)
    assert mwater.seconds < water.seconds


def test_barriers_two_per_step_plus_init():
    r = DecTreadMarksMachine().run(
        WaterApp(molecules=8, steps=3, modified=True), 2)
    # Two barriers per step plus the parallel-initialization barrier.
    assert r.counters.barriers == 7


def test_names():
    assert WaterApp(molecules=64).name == "water-64"
    assert WaterApp(molecules=64, modified=True).name == "m-water-64"
