"""FCFS resources and resource groups."""

import pytest

from repro.sim.resource import Resource, ResourceGroup


def test_uncontended_acquire_starts_immediately():
    r = Resource("bus")
    start, end = r.acquire(100, 50)
    assert (start, end) == (100, 150)
    assert r.total_wait == 0


def test_contended_acquire_queues():
    r = Resource("bus")
    r.acquire(0, 100)
    start, end = r.acquire(20, 10)
    assert (start, end) == (100, 110)
    assert r.total_wait == 80


def test_backward_request_waits_for_busy_until():
    r = Resource("bus")
    r.acquire(0, 100)
    start, _end = r.acquire(0, 1)
    assert start == 100


def test_zero_duration_allowed():
    r = Resource("bus")
    start, end = r.acquire(5, 0)
    assert start == end == 5


def test_negative_duration_rejected():
    r = Resource("bus")
    with pytest.raises(ValueError):
        r.acquire(0, -1)


def test_utilization_and_mean_wait():
    r = Resource("bus")
    r.acquire(0, 50)
    r.acquire(0, 50)
    assert r.utilization(200) == pytest.approx(0.5)
    assert r.utilization(0) == 0.0
    assert r.mean_wait() == pytest.approx(25.0)


def test_mean_wait_empty():
    assert Resource("bus").mean_wait() == 0.0


def test_peek_does_not_reserve():
    r = Resource("bus")
    r.acquire(0, 100)
    assert r.peek(10) == 100
    assert r.busy_until == 100


def test_group_lazily_creates_members():
    g = ResourceGroup("link")
    assert len(g) == 0
    g[3].acquire(0, 10)
    g[7].acquire(0, 20)
    assert len(g) == 2
    assert g.total_busy() == 30
    assert g.total_acquisitions() == 2
    assert g[3] is g[3]
