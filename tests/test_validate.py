"""The executable shape-claim checks."""

import pytest

from repro.harness.experiments import REGISTRY, Report, Scale
from repro.harness.validate import (CHECKS, ShapeCheck, format_results,
                                    run_validation)


def test_every_check_references_known_experiment():
    for check in CHECKS:
        assert check.exp_id in REGISTRY, check.name


def test_check_names_unique():
    names = [c.name for c in CHECKS]
    assert len(names) == len(set(names))


def test_format_results():
    checks = [ShapeCheck("demo", "t1", "demo claim", lambda r: True)]
    lines = format_results([(checks[0], True), (checks[0], False)])
    assert lines[0].startswith("[PASS]")
    assert lines[1].startswith("[FAIL]")
    assert lines[-1] == "1/2 shape claims hold"


def test_run_validation_shares_experiment_runs(monkeypatch):
    calls = []

    def fake_run(exp_id, scale):
        calls.append(exp_id)
        return Report(exp_id, "t", data={"x": 1})

    monkeypatch.setattr("repro.harness.validate.run_experiment",
                        fake_run)
    checks = [
        ShapeCheck("a", "t1", "c", lambda r: r.data["x"] == 1),
        ShapeCheck("b", "t1", "c", lambda r: True),
        ShapeCheck("c", "t2", "c", lambda r: False),
    ]
    results = run_validation(Scale.TEST, checks)
    assert calls == ["t1", "t2"]          # t1 ran once, shared
    assert [ok for _c, ok in results] == [True, True, False]


@pytest.mark.parametrize("check", CHECKS, ids=lambda c: c.name)
def test_predicates_do_not_crash_on_real_reports(check, shared_reports):
    """Every predicate must evaluate (True or False) on real data."""
    report = shared_reports(check.exp_id)
    assert check.evaluate(report) in (True, False)


@pytest.fixture(scope="module")
def shared_reports():
    from repro.harness.experiments import run_experiment
    cache = {}

    def get(exp_id):
        if exp_id not in cache:
            cache[exp_id] = run_experiment(exp_id, Scale.TEST)
        return cache[exp_id]

    return get
