"""Property: diff application in happens-before order == direct writes.

LRC's whole data path rests on this: if every interval diffs its page
against a twin snapshotted at interval start, then replaying those
diffs in happens-before order over any older copy reconstructs
exactly the image direct sequential writes would have produced.  The
multiple-writer protocol additionally relies on diffs of *disjoint*
concurrent writes commuting.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dsm.diff import apply_diff, encode_diff, merge_diffs

PAGE = 128

write_strategy = st.tuples(
    st.integers(0, PAGE - 1),                      # offset
    st.binary(min_size=1, max_size=24),            # bytes to write
)
interval_strategy = st.lists(write_strategy, min_size=0, max_size=5)


def _apply_writes(page: np.ndarray, writes) -> None:
    for offset, data in writes:
        data = np.frombuffer(data, dtype=np.uint8)[:PAGE - offset]
        page[offset:offset + data.size] = data


@settings(max_examples=200, deadline=None)
@given(st.lists(interval_strategy, min_size=1, max_size=6),
       st.binary(min_size=PAGE, max_size=PAGE))
def test_hb_ordered_diffs_reconstruct_sequential_writes(intervals,
                                                        initial):
    """One writer, many intervals: each interval diffs against a twin
    made at its start; replaying the diffs in order over the initial
    image equals the direct result."""
    initial = np.frombuffer(initial, dtype=np.uint8).copy()
    direct = initial.copy()
    diffs = []
    for writes in intervals:
        twin = direct.copy()             # twinned at interval start
        _apply_writes(direct, writes)
        diffs.append(encode_diff(0, twin, direct))

    replayed = initial.copy()
    for diff in diffs:                   # happens-before order
        apply_diff(replayed, diff)
    assert np.array_equal(replayed, direct)

    # Merging the ordered diffs first must agree too (the HS model
    # coalesces same-node diffs into one before shipping them).
    merged_target = initial.copy()
    apply_diff(merged_target, merge_diffs(diffs))
    assert np.array_equal(merged_target, direct)


@settings(max_examples=200, deadline=None)
@given(st.lists(write_strategy, min_size=0, max_size=4),
       st.lists(write_strategy, min_size=0, max_size=4),
       st.binary(min_size=PAGE, max_size=PAGE))
def test_disjoint_concurrent_diffs_commute(writes_a, writes_b, initial):
    """Two nodes write concurrently from the same twin.  Restricted to
    disjoint byte ranges (data-race freedom), their diffs apply in
    either order to the same image — the §2.1 multiple-writer
    guarantee."""
    initial = np.frombuffer(initial, dtype=np.uint8).copy()
    # Make node B's writes disjoint from node A's by masking them to
    # the untouched half of each A-touched byte range.
    touched = np.zeros(PAGE, dtype=bool)
    page_a = initial.copy()
    _apply_writes(page_a, writes_a)
    touched |= page_a != initial
    page_b = initial.copy()
    for offset, data in writes_b:
        data = np.frombuffer(data, dtype=np.uint8)[:PAGE - offset]
        span = np.arange(offset, offset + data.size)
        free = span[~touched[span]]
        page_b[free] = data[~touched[span]]

    diff_a = encode_diff(0, initial, page_a)
    diff_b = encode_diff(0, initial, page_b)

    ab = initial.copy()
    apply_diff(ab, diff_a)
    apply_diff(ab, diff_b)
    ba = initial.copy()
    apply_diff(ba, diff_b)
    apply_diff(ba, diff_a)
    assert np.array_equal(ab, ba)

    # And the combined image is the union of both nodes' writes.
    expected = initial.copy()
    changed_a = page_a != initial
    changed_b = page_b != initial
    expected[changed_a] = page_a[changed_a]
    expected[changed_b] = page_b[changed_b]
    assert np.array_equal(ab, expected)
