"""Counter taxonomy and aggregation."""

from repro.stats.counters import Counters, DataKind, MsgKind


def test_sync_vs_miss_partition():
    kinds = set(MsgKind)
    sync = {k for k in kinds if k.is_sync}
    miss = {k for k in kinds if k.is_miss}
    assert sync | miss == kinds
    assert not (sync & miss)
    assert MsgKind.LOCK_GRANT in sync
    assert MsgKind.BARRIER_DEPART in sync
    assert MsgKind.DIFF_REQUEST in miss
    assert MsgKind.PAGE_RESPONSE in miss


def test_count_message_splits_bytes():
    c = Counters()
    c.count_message(MsgKind.DIFF_RESPONSE, 500, DataKind.MISS, 40)
    c.count_message(MsgKind.LOCK_GRANT, 100, DataKind.CONSISTENCY, 40)
    assert c.total_messages == 2
    assert c.miss_messages == 1
    assert c.sync_messages == 1
    assert c.miss_data_bytes == 500
    assert c.consistency_bytes == 100
    assert c.header_bytes == 80
    assert c.total_bytes == 680


def test_zero_payload_not_counted():
    c = Counters()
    c.count_message(MsgKind.LOCK_REQUEST, 0, DataKind.CONSISTENCY, 0)
    assert c.total_messages == 1
    assert c.total_bytes == 0


def test_as_dict_roundtrip():
    c = Counters()
    c.barriers = 3
    c.count_message(MsgKind.DIFF_REQUEST, 16, DataKind.CONSISTENCY, 40)
    d = c.as_dict()
    assert d["barriers"] == 3
    assert d["msg.diff_request"] == 1
    assert d["bytes.header"] == 40
    assert d["total_messages"] == 1


def test_fresh_counters_all_zero():
    d = Counters().as_dict()
    assert all(v == 0 for v in d.values())


def test_ablation_counters_roundtrip():
    """The mechanism-ablation counters ride as_dict and the jsonable
    round-trip like every other field (dataclasses.fields coverage
    means adding one can never silently vanish from summaries)."""
    import dataclasses

    c = Counters()
    c.pages_shipped_whole = 7
    c.eager_fetches = 11
    c.eager_releases = 13
    c.count_message(MsgKind.WRITE_NOTICE, 64, DataKind.CONSISTENCY, 40)
    d = c.as_dict()
    assert d["pages_shipped_whole"] == 7
    assert d["eager_fetches"] == 11
    assert d["eager_releases"] == 13
    assert d["msg.write_notice"] == 1
    restored = Counters.from_jsonable(c.to_jsonable())
    for f in dataclasses.fields(c):
        assert getattr(restored, f.name) == getattr(c, f.name), f.name


def test_as_dict_covers_every_field():
    """Every dataclass field appears in as_dict — scalar fields under
    their own name, dict fields flattened with msg./bytes. prefixes —
    so new counters can never be silently dropped from reports."""
    import dataclasses

    c = Counters()
    d = c.as_dict()
    for f in dataclasses.fields(c):
        value = getattr(c, f.name)
        if isinstance(value, dict):
            prefix = "msg." if f.name == "messages" else "bytes."
            for key in value:
                assert f"{prefix}{key.value}" in d, (f.name, key)
        else:
            assert f.name in d, f.name
