"""k-server resources (SMP-node message handling)."""

import pytest

from repro.sim.resource import MultiResource


def test_needs_a_server():
    with pytest.raises(ValueError):
        MultiResource("h", 0)


def test_single_server_serializes():
    m = MultiResource("h", 1)
    _s1, e1 = m.acquire(0, 100)
    s2, _e2 = m.acquire(0, 100)
    assert s2 == e1


def test_two_servers_run_in_parallel():
    m = MultiResource("h", 2)
    s1, e1 = m.acquire(0, 100)
    s2, e2 = m.acquire(0, 100)
    assert s1 == s2 == 0
    s3, _e3 = m.acquire(0, 100)
    assert s3 == 100  # third request waits for the earliest-free


def test_picks_earliest_free_server():
    m = MultiResource("h", 2)
    m.acquire(0, 1000)
    m.acquire(0, 10)
    # Server 1 frees at 10; next request should land there.
    start, _end = m.acquire(20, 5)
    assert start == 20


def test_totals():
    m = MultiResource("h", 3)
    for _ in range(6):
        m.acquire(0, 10)
    assert m.total_busy == 60
    assert m.acquisitions == 6
    assert m.peek(0) >= 10
