"""The differential fuzzer: generator, runner, shrinker, seeds."""

from __future__ import annotations

import json

import pytest

from repro.check.fuzz import (FuzzApp, default_machines,
                              expected_lock_totals, fuzz_run,
                              generate_program, load_seeds,
                              program_digest, run_program, save_seed,
                              shrink_program)


# ----------------------------------------------------------------------
# program generation
# ----------------------------------------------------------------------

def test_generator_is_deterministic():
    assert generate_program(7) == generate_program(7)
    assert generate_program((0, 3)) == generate_program((0, 3))


def test_generator_seeds_differ():
    digests = {program_digest(generate_program(s)) for s in range(10)}
    assert len(digests) == 10


def test_generated_programs_are_json_roundtrippable():
    program = generate_program(5)
    assert json.loads(json.dumps(program)) == program


def test_generated_programs_are_drf_by_construction():
    """Within each phase, every written slot has exactly one writer
    and is read only by that writer."""
    for seed in range(20):
        program = generate_program(seed)
        for phase in program["phases"]:
            writers = {}
            readers = {}
            for proc, plist in phase["ops"].items():
                for op in plist:
                    if op["kind"] == "write":
                        writers.setdefault(op["slot"], set()).add(proc)
                    elif op["kind"] == "read":
                        readers.setdefault(op["slot"], set()).add(proc)
            for slot, who in writers.items():
                assert len(who) == 1
                assert readers.get(slot, set()) <= who


def test_expected_lock_totals_sums_deltas():
    program = {
        "locks": 2,
        "phases": [
            {"ops": {"0": [{"kind": "lock", "lock": 0, "delta": 5}],
                     "1": [{"kind": "lock", "lock": 1, "delta": 7},
                           {"kind": "lock", "lock": 0, "delta": 1}]}},
        ],
    }
    assert expected_lock_totals(program) == [6, 7]


# ----------------------------------------------------------------------
# differential execution
# ----------------------------------------------------------------------

def test_differential_run_agrees_across_all_machines():
    outcome = run_program(generate_program(12345))
    assert outcome.ok, outcome.reason
    assert len(outcome.verdicts) == 5
    digests = {v.digest for v in outcome.verdicts}
    assert len(digests) == 1
    expected = expected_lock_totals(outcome.program)
    assert all(v.locks == expected for v in outcome.verdicts)


def test_fuzz_app_digest_depends_on_program():
    a = FuzzApp(generate_program(1))
    b = FuzzApp(generate_program(2))
    assert a.name != b.name


def test_hs_machine_in_battery_spans_nodes():
    """The battery's HS model uses 2-processor nodes, so 4-processor
    programs cross the software DSM layer."""
    hs = [m for m in default_machines() if m.name.startswith("hs")]
    assert len(hs) == 1
    assert hs[0].params.procs_per_node == 2


def test_run_program_without_history_still_checks_online():
    outcome = run_program(generate_program(99), history=False)
    assert outcome.ok, outcome.reason
    assert len({v.digest for v in outcome.verdicts}) == 1


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

def test_shrink_reaches_minimal_failing_program():
    """Shrink against a synthetic predicate: 'fails' iff processor 0
    still has a write op anywhere.  The minimum is one phase with one
    op for one processor."""
    program = generate_program(4242)

    def has_p0_write(p):
        return any(op["kind"] == "write"
                   for phase in p["phases"]
                   for op in phase["ops"].get("0", ()))

    if not has_p0_write(program):  # make the predicate satisfiable
        program["phases"][0]["ops"]["0"] = [
            {"kind": "write", "slot": 0, "off": 0, "n": 8}]
    minimal = shrink_program(program, has_p0_write)
    assert has_p0_write(minimal)
    assert len(minimal["phases"]) == 1
    ops = [op for plist in minimal["phases"][0]["ops"].values()
           for op in plist]
    assert len(ops) == 1
    assert ops[0]["kind"] == "write"


def test_shrink_keeps_program_when_nothing_smaller_fails():
    program = generate_program(777)
    minimal = shrink_program(program, lambda p: p == program)
    assert minimal == program


# ----------------------------------------------------------------------
# regression seeds
# ----------------------------------------------------------------------

def test_seed_save_load_roundtrip(tmp_path):
    program = generate_program(31337)
    path = save_seed(program, "unit-test", str(tmp_path))
    assert path.endswith(f"seed-{program_digest(program)[:16]}.json")
    with open(path) as fh:
        on_disk = json.load(fh)
    assert on_disk["reason"] == "unit-test"
    assert load_seeds(str(tmp_path)) == [program]


def test_load_seeds_of_missing_dir_is_empty(tmp_path):
    assert load_seeds(str(tmp_path / "nonexistent")) == []


def test_persisted_regression_seeds_still_pass():
    """Every seed in tests/fuzz_seeds/ is a shrunk reproducer of a
    once-real bug; they must pass forever after."""
    seeds = load_seeds("tests/fuzz_seeds")
    for program in seeds:
        outcome = run_program(program)
        assert outcome.ok, (
            f"regression seed {program_digest(program)[:16]} "
            f"failed again: {outcome.reason}")


# ----------------------------------------------------------------------
# the campaign driver
# ----------------------------------------------------------------------

def test_fuzz_run_small_campaign_passes(tmp_path):
    report = fuzz_run(0, 2, seeds_dir=str(tmp_path))
    assert report.ok
    assert report.programs_run == 2
    assert list(tmp_path.iterdir()) == []   # no failures persisted


def test_fuzz_run_replays_regressions_first(tmp_path):
    program = generate_program(55)
    save_seed(program, "synthetic", str(tmp_path))
    messages = []
    report = fuzz_run(0, 1, seeds_dir=str(tmp_path),
                      regression_programs=load_seeds(str(tmp_path)),
                      log=messages.append)
    assert report.programs_run == 2         # 1 regression + 1 random
    assert report.ok


# ----------------------------------------------------------------------
# randomized chunk boundaries
# ----------------------------------------------------------------------

def test_random_fuse_preserves_op_sequence():
    import numpy as np

    from repro.apps import ops
    from repro.check.fuzz import random_fuse

    stream = [ops.Compute(1), ops.Read("r", 0, 8), ops.Write("r", 0, 8),
              ops.Barrier(), ops.Compute(2), ops.Acquire(0),
              ops.Compute(3), ops.Compute(4), ops.Release(0)]
    for seed in range(6):
        out = list(random_fuse(iter(stream),
                               np.random.default_rng(seed)))
        flat = [m for op in out
                for m in (op.ops if isinstance(op, ops.OpBlock) else (op,))]
        assert flat == stream
        # Chunking never crosses a non-fusible op.
        for op in out:
            if isinstance(op, ops.OpBlock):
                assert all(isinstance(m, ops.FUSIBLE) for m in op)


def test_random_fuse_boundaries_are_seeded():
    import numpy as np

    from repro.apps import ops
    from repro.check.fuzz import random_fuse

    stream = [ops.Compute(c) for c in range(12)]

    def shape(seed):
        return tuple(len(op) if isinstance(op, ops.OpBlock) else 1
                     for op in random_fuse(iter(stream),
                                           np.random.default_rng(seed)))

    assert shape(3) == shape(3)
    assert any(shape(a) != shape(b)
               for a in range(4) for b in range(4) if a != b)


def test_differential_run_with_chunked_leg_agrees():
    outcome = run_program(generate_program(4321), chunk_seed=7)
    assert outcome.ok, outcome.reason
    assert len(outcome.verdicts) == 6
    assert outcome.verdicts[-1].machine.endswith("+chunked")
    assert len({v.digest for v in outcome.verdicts}) == 1
