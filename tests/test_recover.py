"""Crash-stop node failures: detection, DSM repair, degraded
completion, determinism, and the self-healing worker pool.

Covers ``repro.recover`` end to end — the :class:`RetryPolicy` edges,
the crash mini-language, both detection paths (retransmission timeout
and keepalive backstop), the repaired run's degraded metadata and
recovery counters, the serial == pool == warm-cache contract for crash
cells, checker silence on degraded runs, and the harness pool's
respawn/retry/quarantine behaviour when worker *processes* die.
"""

from __future__ import annotations

import os

import pytest

import repro.harness.parallel as parallel
from repro.apps import SorApp, ops
from repro.apps.base import Application
from repro.check import checking
from repro.errors import (ConfigurationError, DeadlockError,
                          NetworkPartitionError, WorkerCrashError)
from repro.harness.cache import ResultCache
from repro.harness.parallel import (MAX_WORKER_RETRIES, RunPlan,
                                    execute_plan, shutdown_pool)
from repro.ledger import Ledger, ledger_session
from repro.machines import (AllHardwareMachine, AllSoftwareMachine,
                            DecTreadMarksMachine, HybridMachine,
                            SgiMachine)
from repro.machines.params import HsParams
from repro.net.faults import (CrashEvent, FaultInjector, FaultPlan,
                              RetryPolicy, parse_crashes, parse_schedule)
from repro.net.reliable import ReliableNetwork
from repro.sim.engine import Engine
from repro.stats.counters import MsgKind

from tests.conftest import LockCounterApp


# ----------------------------------------------------------------------
# RetryPolicy: backoff edges
# ----------------------------------------------------------------------

def test_retry_policy_backoff_grows_then_caps():
    policy = RetryPolicy(backoff_factor=2.0, backoff_cap_cycles=300)
    assert policy.rto_for(100, 1) == 100
    assert policy.rto_for(100, 2) == 200
    assert policy.rto_for(100, 3) == 300     # capped (would be 400)
    assert policy.rto_for(100, 9) == 300     # stays capped forever
    assert policy.rto_for(0, 1) == 1         # never below one cycle


@pytest.mark.parametrize("kwargs", [
    {"max_retries": -1}, {"rto_multiplier": 0},
    {"backoff_factor": 0.5}, {"backoff_cap_cycles": 0},
])
def test_retry_policy_rejects_bad_parameters(kwargs):
    with pytest.raises(ConfigurationError):
        RetryPolicy(**kwargs)


def test_plan_folds_legacy_knobs_and_policy_both_ways():
    legacy = FaultPlan(max_retries=5, rto_multiplier=3.0)
    assert legacy.retry == RetryPolicy(max_retries=5, rto_multiplier=3.0)
    explicit = FaultPlan(retry=RetryPolicy(max_retries=2,
                                           backoff_cap_cycles=99))
    assert explicit.max_retries == 2
    assert explicit.retry.backoff_cap_cycles == 99


def test_capped_backoff_bounds_total_timeout_wait(atm, engine, counters):
    """With the cap pinned at the base RTO every retry waits the same
    flat interval: exhausting 3 retries costs 4 * rto, not 15 * rto."""
    base_rto = max(1, int(4.0 * atm.roundtrip_estimate(128)))
    net = ReliableNetwork(atm, FaultPlan(
        schedule=parse_schedule("drop:diff_request"),
        retry=RetryPolicy(max_retries=3, backoff_cap_cycles=base_rto)))
    net.send(0, 3, 128, kind=MsgKind.DIFF_REQUEST)
    with pytest.raises(NetworkPartitionError) as err:
        engine.run()
    assert err.value.attempts == 4
    assert counters.timeout_cycles == 4 * base_rto


def test_partition_error_carries_suspect_and_trail(atm, engine, counters):
    net = ReliableNetwork(atm, FaultPlan(
        schedule=parse_schedule("drop:diff_request"), max_retries=1))
    net.send(0, 3, 128, kind=MsgKind.DIFF_REQUEST)
    with pytest.raises(NetworkPartitionError) as err:
        engine.run()
    assert err.value.suspect == 3
    assert err.value.now == engine.now
    assert err.value.trail                   # replayable event slice
    assert any(entry[3] == 3 for entry in err.value.trail)


def test_watchdog_deadlock_carries_network_suspect():
    """The engine watchdog includes the reliable layer's diagnostics:
    a silent no-progress hang names the most-retransmitted-to node."""
    engine = Engine()
    engine.watchdog_cycles = 10_000

    class Stuck:
        ops_issued = 0
        finished = False

    engine.register_task(Stuck())
    trail = (("timeout", 5_000, 0, 2, "diff_request"),)
    engine.net_diagnostics = lambda: (2, trail)

    def heartbeat():
        engine.schedule(1_000, heartbeat)

    engine.schedule(0, heartbeat)
    with pytest.raises(DeadlockError) as err:
        engine.run()
    assert err.value.suspect == 2
    assert err.value.trail == trail


# ----------------------------------------------------------------------
# The crash mini-language and plan validation
# ----------------------------------------------------------------------

def test_crash_event_validation():
    with pytest.raises(ConfigurationError):
        CrashEvent(-1, 10)
    with pytest.raises(ConfigurationError):
        CrashEvent(0, -5)
    with pytest.raises(ConfigurationError):
        CrashEvent(0, 10, rejoin=10)         # must be strictly after


def test_parse_crashes_round_trip():
    assert parse_crashes("crash@node3:t=500000") == (
        CrashEvent(3, 500_000),)
    assert parse_crashes(
        "crash@node1:t=2000:rejoin=9000; crash@node2:t=100") == (
        CrashEvent(1, 2_000, rejoin=9_000), CrashEvent(2, 100))


@pytest.mark.parametrize("spec", [
    "", "node3:t=5", "crash@node:t=5", "crash@node3",
    "crash@node3:t=soon", "crash@node3:t=5:when=now",
])
def test_parse_crashes_rejects_bad_specs(spec):
    with pytest.raises(ConfigurationError):
        parse_crashes(spec)


def test_crash_specs_are_not_schedule_rules():
    with pytest.raises(ConfigurationError):
        parse_schedule("crash@node3:t=500000")


def test_crash_plan_enabled_labelled_and_deduplicated():
    plan = FaultPlan(crashes=(CrashEvent(3, 500_000),))
    assert plan.enabled
    assert "crash3t500000" in plan.label()
    with pytest.raises(ConfigurationError):
        FaultPlan(crashes=(CrashEvent(1, 10), CrashEvent(1, 20)))


def test_injector_requires_valid_nodes_and_a_survivor():
    with pytest.raises(ConfigurationError):
        FaultInjector(FaultPlan(crashes=(CrashEvent(5, 10),)), 4)
    with pytest.raises(ConfigurationError):
        FaultInjector(FaultPlan(crashes=(CrashEvent(0, 10),
                                         CrashEvent(1, 20))), 2)
    FaultInjector(FaultPlan(crashes=(CrashEvent(1, 10),)), 2)


def test_node_down_at_tracks_link_not_process():
    plan = FaultPlan(crashes=(CrashEvent(1, 100, rejoin=500),))
    assert not plan.node_down_at(1, 99)
    assert plan.node_down_at(1, 100)
    assert plan.node_down_at(1, 499)
    assert not plan.node_down_at(1, 500)     # link back; process dead
    assert not plan.node_down_at(0, 100)     # other nodes unaffected


def test_hardware_machines_reject_crash_plans():
    plan = FaultPlan(crashes=(CrashEvent(1, 1_000),))
    for factory in (SgiMachine, AllHardwareMachine):
        with pytest.raises(ConfigurationError):
            factory(faults=plan)


# ----------------------------------------------------------------------
# Degraded completion through the DSM stack
# ----------------------------------------------------------------------

def _crash_plan(node, at, detect=200_000, **kwargs):
    return FaultPlan(crashes=(CrashEvent(node, at),),
                     detect_cycles=detect, **kwargs)


def _sor():
    return SorApp(rows=32, cols=32, iterations=4)


def test_as_run_completes_degraded_with_repair_counters():
    app = _sor()
    clean = AllSoftwareMachine().run(app, 4)
    crashed = AllSoftwareMachine(
        faults=_crash_plan(3, clean.cycles // 2)).run(app, 4)
    degraded = crashed.degraded
    assert degraded is not None
    assert degraded["failed_nodes"] == [3]
    assert degraded["detected_via"][0] in ("timeout", "keepalive")
    latency = degraded["detected_at"][0] - degraded["crashed_at"][0]
    assert 0 < latency <= 200_000
    c = crashed.counters
    assert c.detection_cycles == latency
    assert c.pages_rehomed + c.pages_lost > 0
    assert c.barrier_reconfigs >= 1          # SOR is barrier-structured
    assert crashed.summary()["degraded_nodes"] == 1


def test_hs_run_completes_degraded_on_node_granularity():
    """On HS a crash takes a whole node — every co-resident processor
    — and barrier membership shrinks by the node's processor count."""
    app = _sor()
    params = HsParams(procs_per_node=2)
    clean = HybridMachine(params).run(app, 4)
    crashed = HybridMachine(
        params, faults=_crash_plan(1, clean.cycles // 2)).run(app, 4)
    assert crashed.degraded is not None
    assert crashed.degraded["failed_nodes"] == [1]
    assert crashed.cycles > 0
    c = crashed.counters
    assert c.detection_cycles > 0
    assert c.pages_rehomed + c.pages_lost + c.barrier_reconfigs > 0


def test_timeout_detection_beats_keepalive_under_lock_traffic():
    """Crash the lock manager's node with the backstop pushed far out:
    a survivor's retransmission chain to the dead host must exhaust
    and declare the failure long before the keepalive would."""
    app = LockCounterApp(increments=8)
    clean = AllSoftwareMachine().run(app, 4)
    crashed = AllSoftwareMachine(faults=_crash_plan(
        0, clean.cycles // 3, detect=50_000_000,
        retry=RetryPolicy(max_retries=3))).run(app, 4)
    degraded = crashed.degraded
    assert degraded is not None
    assert degraded["detected_via"] == ["timeout"]
    latency = degraded["detected_at"][0] - degraded["crashed_at"][0]
    assert 0 < latency < 50_000_000
    assert crashed.cycles < clean.cycles + 50_000_000


def test_crash_forks_cache_fingerprint_but_not_baseline():
    clean = AllSoftwareMachine()
    crashed = AllSoftwareMachine(faults=_crash_plan(1, 1_000))
    assert crashed.fingerprint_data(4) != clean.fingerprint_data(4)
    assert crashed.fingerprint_data(1) == clean.fingerprint_data(1)


def test_checkers_stay_silent_on_degraded_runs():
    """Armed online checkers (and the post-run history verifier) must
    accept a recovered run: repair is protocol-visible but legal."""
    app = _sor()
    with checking(history=True):
        result = AllSoftwareMachine(
            faults=_crash_plan(3, 150_000)).run(app, 4)
    assert result.degraded is not None


def _crash_cell_summaries(jobs, cache):
    app = _sor()
    plan = RunPlan()
    for machine in (AllSoftwareMachine(),
                    AllSoftwareMachine(faults=_crash_plan(3, 150_000))):
        plan.add_series(machine, app, (1, 4))
    results = execute_plan(plan, jobs=jobs, cache=cache)
    return [r.summary() for r in results]


def test_crash_cells_serial_pool_and_cache_identical(tmp_path,
                                                     monkeypatch):
    """The determinism contract extends to degraded runs: a crash
    cell's summary (degraded metadata included) is byte-identical
    across serial, pooled, cold-cache and warm-cache execution."""
    monkeypatch.setattr(parallel, "_cpu_count", lambda: 4)
    try:
        serial = _crash_cell_summaries(jobs=1, cache=None)
        pooled = _crash_cell_summaries(jobs=2, cache=None)
        cache = ResultCache(str(tmp_path))
        cold = _crash_cell_summaries(jobs=2, cache=cache)
        warm = _crash_cell_summaries(jobs=2, cache=cache)
    finally:
        shutdown_pool()
    assert serial == pooled == cold == warm
    assert serial[3]["degraded_nodes"] == 1


# ----------------------------------------------------------------------
# The self-healing worker pool
# ----------------------------------------------------------------------

class _WorkerKiller(Application):
    """Dies with ``os._exit`` inside pool workers; healthy in-process.

    The first ``crashes`` distinct worker processes that pick the spec
    up die before simulating anything (counted through marker files in
    ``marker_dir``, so the tally survives pool respawns); later
    attempts run normally.  ``crashes`` beyond the batch attempt plus
    :data:`~repro.harness.parallel.MAX_WORKER_RETRIES` makes the spec
    a permanent crasher.
    """

    name = "worker-killer"

    def __init__(self, marker_dir: str, crashes: int) -> None:
        self.marker_dir = marker_dir
        self.crashes = crashes
        self.parent_pid = os.getpid()

    def regions(self, nprocs):
        return {"x": 4096}

    def init_data(self, ctx):
        if os.getpid() == self.parent_pid:
            return                            # serial path: harmless
        died = len(os.listdir(self.marker_dir))
        if died < self.crashes:
            open(os.path.join(self.marker_dir, f"m{died}"), "w").close()
            os._exit(137)

    def programs(self, ctx):
        def prog():
            yield ops.Compute(10)
        return [prog() for _ in range(ctx.nprocs)]


def _killer_plan(tmp_path, crashes):
    """The killer spec plus one innocent bystander.

    The bystander keeps the deduplicated work list at two entries so
    the plan actually engages the pool (a single-run plan clamps to
    one worker and executes in-process), and pins that a crashing
    neighbour never loses the innocent run's result.
    """
    marker_dir = str(tmp_path / "crashes")
    os.makedirs(marker_dir, exist_ok=True)
    plan = RunPlan()
    plan.add(DecTreadMarksMachine(),
             _WorkerKiller(marker_dir, crashes), 2)
    plan.add(DecTreadMarksMachine(),
             SorApp(rows=16, cols=16, iterations=1), 2)
    return plan


def test_killer_app_is_harmless_in_process(tmp_path):
    results = execute_plan(_killer_plan(tmp_path, crashes=99), jobs=1)
    assert results[0].cycles > 0


def test_pool_respawns_and_retries_after_worker_crashes(tmp_path,
                                                        monkeypatch):
    """Two worker processes die (one in the batch phase, one in the
    isolated retry) before the third attempt survives: the plan still
    returns a full result set and the ledger shows the failed
    attempts as result-less ``worker-crash`` records."""
    monkeypatch.setattr(parallel, "_cpu_count", lambda: 4)
    ledger = Ledger(str(tmp_path / "ledger.jsonl"))
    try:
        with ledger_session(ledger):
            results = execute_plan(_killer_plan(tmp_path, crashes=2),
                                   jobs=2)
    finally:
        shutdown_pool()
    assert results[0].cycles > 0
    assert results[1].cycles > 0              # the bystander survived
    records = list(ledger.records())
    crash_records = [r for r in records if r["path"] == "worker-crash"]
    assert len(crash_records) == 1            # the isolated-retry death
    assert crash_records[0]["error"]
    assert "cycles" not in crash_records[0]   # result-less attempt
    success = [r for r in records if r["path"] in ("miss", "fresh")]
    assert len(success) == 2


def test_permanent_crasher_is_quarantined(tmp_path, monkeypatch):
    monkeypatch.setattr(parallel, "_cpu_count", lambda: 4)
    ledger = Ledger(str(tmp_path / "ledger.jsonl"))
    try:
        with ledger_session(ledger):
            with pytest.raises(WorkerCrashError) as err:
                execute_plan(_killer_plan(tmp_path, crashes=99), jobs=2)
    finally:
        shutdown_pool()
    assert err.value.retries == MAX_WORKER_RETRIES
    assert any("worker-killer" in label for label in err.value.labels)
    crash_records = [r for r in ledger.records()
                     if r["path"] == "worker-crash"]
    assert len(crash_records) == MAX_WORKER_RETRIES
