"""Distributed token locks over the ATM network."""

import pytest

from repro.dsm.locks import DistributedLocks
from repro.errors import ProtocolError
from repro.stats.counters import MsgKind


def make_locks(atm, **kwargs):
    defaults = dict(
        grant_payload=lambda src, dst: 64,
        on_granted=lambda dst, src: None,
        request_payload_bytes=16,
        local_grant_cycles=40,
    )
    defaults.update(kwargs)
    return DistributedLocks(atm, atm.num_nodes, **defaults)


def test_manager_assignment_round_robin(atm):
    locks = make_locks(atm)
    assert locks.record(0).manager == 0
    assert locks.record(5).manager == 1
    assert locks.record(7).manager == 3


def test_local_reacquire_free_of_messages(atm, engine, counters):
    locks = make_locks(atm)
    grants = []
    # Lock 2's manager (and initial token holder) is node 2.
    locks.acquire(2, 2, 0, lambda t, remote: grants.append(remote))
    engine.run()
    locks.release(2, 2, 0, lambda t: None)
    engine.run()
    locks.acquire(2, 2, 0, lambda t, remote: grants.append(remote))
    engine.run()
    assert grants == [False, False]
    assert counters.total_messages == 0
    assert counters.remote_lock_acquires == 0


def test_remote_acquire_three_messages(atm, engine, counters):
    locks = make_locks(atm)
    # Lock 2's manager is node 2 and the token starts there: node 0's
    # first acquire costs request + grant (2 messages, no forward).
    done = []
    locks.acquire(2, 0, 0, lambda t, remote: done.append(("n0", remote)))
    engine.run()
    assert counters.messages[MsgKind.LOCK_REQUEST] == 1
    assert counters.messages[MsgKind.LOCK_FORWARD] == 0
    assert counters.messages[MsgKind.LOCK_GRANT] == 1
    assert done == [("n0", True)]
    locks.release(2, 0, 0, lambda t: None)
    engine.run()

    # Token now rests at node 0 != manager: node 1's acquire takes the
    # full three messages (request -> manager, forward -> holder,
    # grant -> requester).
    locks.acquire(2, 1, 1, lambda t, remote: done.append(("n1", remote)))
    engine.run()
    assert counters.messages[MsgKind.LOCK_REQUEST] == 2
    assert counters.messages[MsgKind.LOCK_FORWARD] == 1
    assert counters.messages[MsgKind.LOCK_GRANT] == 2
    assert done == [("n0", True), ("n1", True)]
    assert counters.remote_lock_acquires == 2


def test_manager_holding_token_two_messages(atm, engine, counters):
    locks = make_locks(atm)
    done = []
    # Lock 0's manager is node 0, token there: node 3 requests.
    locks.acquire(0, 3, 0, lambda t, remote: done.append(remote))
    engine.run()
    assert counters.messages[MsgKind.LOCK_REQUEST] == 1
    assert counters.messages[MsgKind.LOCK_FORWARD] == 0
    assert counters.messages[MsgKind.LOCK_GRANT] == 1


def test_fifo_handoff_under_contention(atm, engine):
    locks = make_locks(atm)
    order = []

    def hold_then_release(node, proc):
        def granted(time, _remote):
            order.append(node)
            engine.schedule(1000, locks.release, 0, node, proc,
                            lambda t: None)
        return granted

    for node in (1, 2, 3):
        locks.acquire(0, node, node, hold_then_release(node, node))
    engine.run()
    assert sorted(order) == [1, 2, 3]
    assert order[0] == 1  # first requester served first


def test_release_by_non_holder_rejected(atm, engine):
    locks = make_locks(atm)
    locks.acquire(0, 0, 0, lambda t, r: None)
    engine.run()
    with pytest.raises(ProtocolError):
        locks.release(0, 1, 1, lambda t: None)
    with pytest.raises(ProtocolError):
        locks.release(0, 0, 9, lambda t: None)  # wrong proc


def test_intra_node_handoff_no_messages(atm, engine, counters):
    """Two procs of the same node exchange the lock without the LAN."""
    locks = make_locks(atm)
    order = []

    def granted_a(time, remote):
        order.append(("a", remote))
        locks.release(0, 0, 0, lambda t: None)

    def granted_b(time, remote):
        order.append(("b", remote))

    locks.acquire(0, 0, 0, granted_a)
    locks.acquire(0, 0, 1, granted_b)   # same node, different proc
    engine.run()
    assert order == [("a", False), ("b", False)]
    assert counters.total_messages == 0


def test_grant_payload_and_on_granted_called(atm, engine):
    calls = []
    locks = make_locks(
        atm,
        grant_payload=lambda src, dst: calls.append(("pay", src, dst))
        or 64,
        on_granted=lambda dst, src: calls.append(("got", dst, src)),
    )
    locks.acquire(0, 2, 2, lambda t, r: None)
    engine.run()
    assert ("pay", 0, 2) in calls
    assert ("got", 2, 0) in calls


def test_holder_of(atm, engine):
    locks = make_locks(atm)
    assert locks.holder_of(0) is None
    locks.acquire(0, 0, 0, lambda t, r: None)
    engine.run()
    assert locks.holder_of(0) == 0
    assert locks.total_grants() == 1
