"""Shared fixtures: small machines, apps, and engine scaffolding."""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.apps import ops
from repro.apps.base import Application
from repro.machines import (AllHardwareMachine, AllSoftwareMachine,
                            DecTreadMarksMachine, HybridMachine, SgiMachine)
from repro.mem.layout import AddressSpace, Geometry
from repro.mem.store import SharedStore
from repro.net.atm import AtmNetwork
from repro.net.overhead import OverheadPreset
from repro.sim.engine import Engine
from repro.stats.counters import Counters


@pytest.fixture
def rng(request):
    """Per-test deterministic RNG, seeded from the test's node id.

    Every test that wants randomness takes this fixture instead of
    constructing its own ``np.random.default_rng(...)``: runs are
    reproducible, reruns of a single test see the same stream, and
    distinct tests get distinct streams.  (Applications that generate
    *data content* still seed their own RNGs from value tuples — that
    content must be identical across machines and worker processes,
    not per-test.)
    """
    return np.random.default_rng(zlib.crc32(request.node.nodeid.encode()))


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def space():
    sp = AddressSpace(Geometry(page_bytes=4096, line_bytes=64))
    sp.alloc("data", 8 * 4096)
    return sp


@pytest.fixture
def store(space):
    return SharedStore(space)


@pytest.fixture
def counters():
    return Counters()


@pytest.fixture
def atm(engine, counters):
    return AtmNetwork(
        engine, 4,
        bandwidth_bytes_per_sec=30e6 / 8,
        switch_latency_cycles=400,
        clock_hz=40e6,
        overhead=OverheadPreset.USER_LEVEL.build(),
        counters=counters,
    )


ALL_MACHINE_FACTORIES = [
    DecTreadMarksMachine,
    SgiMachine,
    AllSoftwareMachine,
    AllHardwareMachine,
    HybridMachine,
]


@pytest.fixture(params=ALL_MACHINE_FACTORIES,
                ids=lambda f: f.__name__)
def any_machine(request):
    return request.param()


class PingPongApp(Application):
    """Two processors alternately write/read one page under barriers."""

    name = "pingpong"

    def __init__(self, rounds: int = 3) -> None:
        self.rounds = rounds

    def regions(self, nprocs):
        return {"data": 4096 * max(2, nprocs)}

    def programs(self, ctx):
        def prog(p):
            for r in range(self.rounds):
                peer = (p + 1) % ctx.nprocs
                yield ops.Read("data", peer * 4096, 256)
                vals = np.full(32, float(r * 10 + p))
                changed = ctx.store.write("data", p * 4096, vals)
                yield ops.Write("data", p * 4096, 256, changed)
                yield ops.Barrier()
        return [prog(p) for p in range(ctx.nprocs)]

    def verify(self, ctx):
        data = ctx.store.view("data", np.float64)
        return {"sum": float(data.sum())}


class LockCounterApp(Application):
    """All processors increment a shared counter under one lock."""

    name = "lockcounter"

    def __init__(self, increments: int = 5) -> None:
        self.increments = increments

    def regions(self, nprocs):
        return {"counter": 4096}

    def programs(self, ctx):
        def prog(p):
            view = ctx.store.view("counter", np.int64)
            for _ in range(self.increments):
                yield ops.Acquire(0)
                yield ops.Read("counter", 0, 8)
                view[0] += 1
                yield ops.Write("counter", 0, 8)
                yield ops.Compute(100)
                yield ops.Release(0)
        return [prog(p) for p in range(ctx.nprocs)]

    def verify(self, ctx):
        view = ctx.store.view("counter", np.int64)
        return {"count": int(view[0])}


@pytest.fixture
def pingpong():
    return PingPongApp()


@pytest.fixture
def lockcounter():
    return LockCounterApp()
