"""The pluggable DSM lock algorithms (mcs, ticket, combining)."""

import pytest

from repro.dsm.locks import (DSM_LOCK_IMPLS, CombiningLocks, DistributedLocks,
                             McsLocks, TicketLocks, make_dsm_locks)
from repro.errors import ConfigurationError
from repro.stats.counters import MsgKind
from repro.sync import SwitchCombiner


def make_locks(atm, algorithm="token", **kwargs):
    defaults = dict(
        grant_payload=lambda src, dst: 64,
        on_granted=lambda dst, src: None,
        request_payload_bytes=16,
        local_grant_cycles=40,
    )
    if algorithm == "combining":
        defaults["combiner"] = SwitchCombiner(
            atm, window_cycles=2000, combine_cycles=10)
    defaults.update(kwargs)
    return make_dsm_locks(algorithm, atm, atm.num_nodes, **defaults)


def test_factory_inventory(atm):
    assert set(DSM_LOCK_IMPLS) == {"token", "mcs", "ticket", "combining"}
    assert isinstance(make_locks(atm, "token"), DistributedLocks)
    assert isinstance(make_locks(atm, "mcs"), McsLocks)
    assert isinstance(make_locks(atm, "ticket"), TicketLocks)
    assert isinstance(make_locks(atm, "combining"), CombiningLocks)
    with pytest.raises(ConfigurationError):
        make_locks(atm, "spinlock")


def test_combining_locks_require_combiner(atm):
    with pytest.raises(ConfigurationError):
        make_locks(atm, "combining", combiner=None)


@pytest.mark.parametrize("algorithm", sorted(DSM_LOCK_IMPLS))
def test_fifo_handoff_under_contention(atm, engine, algorithm):
    """Requesters are served in arrival order, whatever the queue's
    physical home (token: at the holder; mcs: distributed; ticket and
    combining: at the home node)."""
    locks = make_locks(atm, algorithm)
    order = []

    def hold_then_release(node):
        def granted(time, _remote):
            order.append(node)
            engine.schedule(1000, locks.release, 0, node, node,
                            lambda t: None)
        return granted

    # Stagger the requests so arrival order at the home is defined.
    for delay, node in ((0, 1), (50, 2), (100, 3)):
        engine.schedule(delay, locks.acquire, 0, node, node,
                        hold_then_release(node))
    engine.run()
    assert order == [1, 2, 3]
    assert locks.total_grants() == 3
    assert locks.holder_of(0) is None   # everyone released


@pytest.mark.parametrize("algorithm", sorted(DSM_LOCK_IMPLS))
def test_mutual_exclusion_under_simultaneous_requests(atm, engine,
                                                      algorithm):
    """Simultaneous acquires never overlap their critical sections."""
    locks = make_locks(atm, algorithm)
    active = [0]
    sections = []

    def contender(node):
        def granted(time, _remote):
            active[0] += 1
            assert active[0] == 1, "two holders at once"
            sections.append(node)

            def leave():
                active[0] -= 1
                locks.release(0, node, node, lambda t: None)
            engine.schedule(500, leave)
        return granted

    for node in range(4):
        locks.acquire(0, node, node, contender(node))
    engine.run()
    assert sorted(sections) == [0, 1, 2, 3]


@pytest.mark.parametrize("algorithm", sorted(DSM_LOCK_IMPLS))
def test_wait_and_hold_cycles_accounted(atm, engine, counters, algorithm):
    locks = make_locks(atm, algorithm)

    def first_granted(time, _remote):
        engine.schedule(5000, locks.release, 0, 1, 1, lambda t: None)

    locks.acquire(0, 1, 1, first_granted)
    engine.run()
    locks.acquire(0, 2, 2, lambda t, r: None)   # waits behind node 1
    engine.run()
    # Node 2 spent the remainder of node 1's 5000-cycle hold waiting.
    assert counters.lock_wait_cycles > 0
    # Node 1's hold was at least the 5000 cycles it slept on the lock.
    assert counters.lock_hold_cycles >= 5000


def test_mcs_swap_is_off_the_critical_path(atm, engine, counters):
    """An uncontended MCS handoff is request -> swap-grant: the extra
    queue-link traffic only appears under contention."""
    locks = make_locks(atm, "mcs")
    locks.acquire(0, 1, 1, lambda t, r: None)
    engine.run()
    uncontended_forwards = counters.messages[MsgKind.LOCK_FORWARD]

    # Contention: two more nodes swap in behind the holder; each busy
    # swap costs a swap-reply plus a set-next link message.
    locks.acquire(0, 2, 2, lambda t, r: None)
    locks.acquire(0, 3, 3, lambda t, r: None)
    engine.run()
    assert counters.messages[MsgKind.LOCK_FORWARD] > uncontended_forwards
    # Handoff itself is direct: holder -> successor, one grant each.
    locks.release(0, 1, 1, lambda t: None)
    engine.run()
    assert locks.holder_of(0) == 2


def test_ticket_release_notifies_home(atm, engine, counters):
    """A contended ticket handoff goes through the home node (release
    notify -> home reply -> grant): the honest 3-hop penalty."""
    locks = make_locks(atm, "ticket")
    locks.acquire(0, 1, 1, lambda t, r: None)
    engine.run()
    locks.acquire(0, 2, 2, lambda t, r: None)
    engine.run()
    before = counters.messages[MsgKind.LOCK_RELEASE]
    locks.release(0, 1, 1, lambda t: None)
    engine.run()
    assert counters.messages[MsgKind.LOCK_RELEASE] == before + 1
    assert locks.holder_of(0) == 2


def test_combining_locks_merge_simultaneous_tickets(atm, engine, counters):
    """Ticket grabs from different nodes inside one combining window
    merge in the switch and bump combining_hits."""
    locks = make_locks(atm, "combining")
    locks.acquire(0, 1, 1, lambda t, r: None)
    locks.acquire(0, 2, 2, lambda t, r: None)
    locks.acquire(0, 3, 3, lambda t, r: None)
    engine.run()
    assert counters.combining_hits >= 2


@pytest.mark.parametrize("algorithm", sorted(DSM_LOCK_IMPLS))
def test_local_reacquire_free_of_messages(atm, engine, counters,
                                          algorithm):
    """Every algorithm keeps the paper's key property: re-acquiring a
    lock whose token already rests at the node costs no messages."""
    locks = make_locks(atm, algorithm)
    # Lock 2's home (and initial token holder) is node 2.
    locks.acquire(2, 2, 0, lambda t, r: None)
    engine.run()
    locks.release(2, 2, 0, lambda t: None)
    engine.run()
    locks.acquire(2, 2, 0, lambda t, r: None)
    engine.run()
    assert counters.total_messages == 0
    assert counters.remote_lock_acquires == 0
