"""Machine-level integration: every machine runs every fixture app
correctly, and the run plumbing behaves."""

import pytest

from repro.errors import ConfigurationError
from repro.machines import DecTreadMarksMachine, HybridMachine, SgiMachine


def test_every_machine_runs_pingpong(any_machine, pingpong):
    r = any_machine.run(pingpong, 4)
    assert r.cycles > 0
    assert r.nprocs == 4
    assert r.counters.barriers == pingpong.rounds
    assert r.app_output["sum"] != 0


def test_every_machine_runs_lockcounter(any_machine, lockcounter):
    r = any_machine.run(lockcounter, 4)
    # Mutual exclusion: every increment survives on every machine.
    assert r.app_output["count"] == 4 * lockcounter.increments
    assert r.counters.lock_acquires == 4 * lockcounter.increments


def test_single_proc_runs(any_machine, pingpong):
    r = any_machine.run(pingpong, 1)
    assert r.cycles > 0


def test_results_deterministic(any_machine, lockcounter):
    a = any_machine.run(lockcounter, 4)
    b = any_machine.run(lockcounter, 4)
    assert a.cycles == b.cycles
    assert a.counters.as_dict() == b.counters.as_dict()


def test_more_procs_more_lock_traffic(pingpong, lockcounter):
    machine = DecTreadMarksMachine()
    r2 = machine.run(lockcounter, 2)
    r8 = machine.run(lockcounter, 8)
    assert r8.counters.remote_lock_acquires > \
        r2.counters.remote_lock_acquires


def test_sgi_rejects_too_many_procs(pingpong):
    with pytest.raises(ConfigurationError):
        SgiMachine().run(pingpong, 16)


def test_rejects_zero_procs(pingpong):
    with pytest.raises(ConfigurationError):
        SgiMachine().run(pingpong, 0)


def test_sgi_produces_no_messages(pingpong):
    r = SgiMachine().run(pingpong, 4)
    assert r.counters.total_messages == 0
    assert r.counters.bus_transactions > 0


def test_dsm_produces_messages(pingpong):
    r = DecTreadMarksMachine().run(pingpong, 4)
    assert r.counters.total_messages > 0
    assert r.counters.page_faults > 0


def test_hybrid_single_node_no_messages(pingpong):
    machine = HybridMachine()  # 8 procs/node
    r = machine.run(pingpong, 4)
    assert r.counters.total_messages == 0


def test_hybrid_two_nodes_fewer_messages_than_as(pingpong):
    from repro.machines import AllSoftwareMachine
    hs = HybridMachine().run(pingpong, 16)
    as_ = AllSoftwareMachine().run(pingpong, 16)
    assert 0 < hs.counters.total_messages < as_.counters.total_messages


def test_run_result_rates(pingpong):
    r = DecTreadMarksMachine().run(pingpong, 4)
    assert r.seconds > 0
    assert r.barriers_per_sec > 0
    assert r.messages_per_sec > 0
    summary = r.summary()
    assert summary["machine"] == "treadmarks"
    assert summary["nprocs"] == 4


def test_kernel_level_faster_sync(lockcounter):
    user = DecTreadMarksMachine().run(lockcounter, 8)
    kernel = DecTreadMarksMachine(kernel_level=True).run(lockcounter, 8)
    assert kernel.seconds < user.seconds


def test_machine_names_distinct():
    names = {
        DecTreadMarksMachine().name,
        DecTreadMarksMachine(kernel_level=True).name,
        DecTreadMarksMachine(eager_locks="all").name,
        DecTreadMarksMachine(use_diffs=False).name,
        SgiMachine().name,
        HybridMachine().name,
    }
    assert len(names) == 6
