"""Property-based tests for the direct-mapped cache model.

A reference model — a dict from set to (tag, state) — is driven with
the same operations; the vectorized implementation must agree with it
on residency, dirtiness, and every miss/eviction count.
"""

from hypothesis import given, settings, strategies as st

from repro.mem.directcache import (DirectMappedCache, INVALID, MODIFIED,
                                   SHARED)

NUM_SETS = 8
LINE = 64


class ReferenceCache:
    """Line-at-a-time direct-mapped cache (the obvious slow model)."""

    def __init__(self):
        self.sets = {}

    def access(self, first, last, write):
        hits = misses = dirty_evict = clean_evict = upgrades = 0
        for line in range(first, last):
            s = line % NUM_SETS
            tag, state = self.sets.get(s, (-1, INVALID))
            if tag == line and state != INVALID:
                hits += 1
                if write:
                    if state == SHARED:
                        upgrades += 1
                    self.sets[s] = (line, MODIFIED)
            else:
                misses += 1
                if state == MODIFIED:
                    dirty_evict += 1
                elif state != INVALID:
                    clean_evict += 1
                self.sets[s] = (line, MODIFIED if write else SHARED)
        return hits, misses, dirty_evict, clean_evict, upgrades

    def resident(self):
        return sorted(tag for tag, state in self.sets.values()
                      if state != INVALID)

    def dirty(self):
        return sorted(tag for tag, state in self.sets.values()
                      if state == MODIFIED)


ops = st.lists(
    st.tuples(st.integers(0, 40),        # first line
              st.integers(1, 30),        # length
              st.booleans()),            # write?
    min_size=1, max_size=12)


@settings(max_examples=200, deadline=None)
@given(ops)
def test_matches_reference_model(op_list):
    cache = DirectMappedCache(NUM_SETS * LINE, LINE)
    ref = ReferenceCache()
    for first, length, write in op_list:
        res = cache.access(first, first + length, write)
        hits, misses, dirty_evict, clean_evict, upgrades = ref.access(
            first, first + length, write)
        assert res.hits == hits
        assert res.misses == misses
        assert len(res.evicted_dirty_lines) == dirty_evict
        assert len(res.evicted_clean_lines) == clean_evict
        assert res.upgrades == upgrades
        assert list(cache.resident_lines()) == ref.resident()

    dirty = ref.dirty()
    assert cache.dirty_count() == len(dirty)


@settings(max_examples=100, deadline=None)
@given(ops, st.integers(0, 40), st.integers(1, 30))
def test_invalidate_clears_exactly_range(op_list, first, length):
    cache = DirectMappedCache(NUM_SETS * LINE, LINE)
    for f, ln, w in op_list:
        cache.access(f, f + ln, w)
    before = set(cache.resident_lines())
    present, dirty = cache.invalidate_range(first, first + length)
    after = set(cache.resident_lines())
    cleared = before - after
    assert cleared == {l for l in before if first <= l < first + length}
    assert present == len(cleared)
    assert dirty <= present


@settings(max_examples=100, deadline=None)
@given(ops)
def test_flush_returns_dirty_count(op_list):
    cache = DirectMappedCache(NUM_SETS * LINE, LINE)
    for f, ln, w in op_list:
        cache.access(f, f + ln, w)
    dirty = cache.dirty_count()
    assert cache.flush() == dirty
    assert cache.resident_count() == 0
