"""ATM LAN, crossbar, and bus models."""

import pytest

from repro.net.bus import BusModel, BusTiming
from repro.net.crossbar import CrossbarNetwork
from repro.sim.engine import Engine
from repro.stats.counters import Counters, DataKind, MsgKind


def test_atm_send_counts_message_and_bytes(atm, counters, engine):
    atm.send(0, 1, 100, kind=MsgKind.DIFF_RESPONSE,
             data_kind=DataKind.MISS)
    engine.run()
    assert counters.total_messages == 1
    assert counters.miss_messages == 1
    assert counters.data_bytes[DataKind.MISS] == 100
    assert counters.header_bytes == atm.header_bytes


def test_atm_delivery_callback_time(atm, engine):
    times = []
    atm.send(0, 1, 0, kind=MsgKind.LOCK_REQUEST,
             on_delivered=times.append)
    engine.run()
    expected = (atm.overhead.send_cost(0) +
                atm.wire_cycles(atm.header_bytes) +
                atm.switch_latency +
                atm.wire_cycles(atm.header_bytes) +
                atm.overhead.recv_cost(0))
    assert times == [expected]


def test_atm_disjoint_pairs_parallel(atm, engine):
    """0->1 and 2->3 do not contend; 0->1 twice does."""
    done = {}
    atm.send(0, 1, 4000, kind=MsgKind.DIFF_RESPONSE,
             on_delivered=lambda t: done.setdefault("a", t))
    atm.send(2, 3, 4000, kind=MsgKind.DIFF_RESPONSE,
             on_delivered=lambda t: done.setdefault("b", t))
    atm.send(0, 1, 4000, kind=MsgKind.DIFF_RESPONSE,
             on_delivered=lambda t: done.setdefault("c", t))
    engine.run()
    assert done["a"] == done["b"]          # full parallelism
    assert done["c"] > done["a"]           # same pair serializes


def test_atm_self_send_skips_network(atm, engine):
    times = []
    atm.send(2, 2, 64, kind=MsgKind.BARRIER_ARRIVE,
             on_delivered=times.append)
    engine.run()
    assert times[0] == atm.overhead.send_cost(64) + \
        atm.overhead.recv_cost(64)


def test_atm_roundtrip_estimate_positive(atm):
    assert atm.roundtrip_estimate(0) > 0
    assert atm.roundtrip_estimate(4096) > atm.roundtrip_estimate(0)


def test_crossbar_transfer_and_contention():
    engine = Engine()
    counters = Counters()
    xbar = CrossbarNetwork(engine, 4, bandwidth_bytes_per_sec=200e6,
                           latency_cycles=10, clock_hz=100e6,
                           counters=counters)
    t1 = xbar.transfer(0, 1, 6400, now=0)
    wire = xbar.wire_cycles(6400)
    assert t1 == wire + 10 + wire
    # Second transfer from the same source queues on the out port.
    t2 = xbar.transfer(0, 2, 6400, now=0)
    assert t2 > t1
    # Same-node transfer is free.
    assert xbar.transfer(3, 3, 6400, now=5) == 5
    assert counters.network_hops == 3


def test_bus_timing_transaction_cycles():
    timing = BusTiming(width_bytes=8, bus_hz=16e6, cpu_hz=40e6,
                       arbitration_bus_cycles=2, address_bus_cycles=2)
    assert timing.cpu_cycles_per_bus_cycle == pytest.approx(2.5)
    # 64 bytes = 8 beats; (2+2+8) * 2.5 = 30 CPU cycles.
    assert timing.transaction_cycles(64) == 30
    assert timing.transaction_cycles(0) == 10


def test_bus_model_contention_and_counters():
    counters = Counters()
    bus = BusModel("bus", BusTiming(), counters)
    end1 = bus.transaction(0, 64)
    end2 = bus.transaction(0, 64)
    assert end2 == 2 * end1
    assert counters.bus_transactions == 2
    assert counters.bus_data_bytes == 128


def test_bus_batch_transactions():
    counters = Counters()
    bus = BusModel("bus", BusTiming(), counters)
    end = bus.transactions(0, 10, 64)
    assert end == 10 * BusTiming().transaction_cycles(64)
    assert counters.bus_transactions == 10
    assert bus.transactions(0, 0, 64) == 0  # no-op
