"""Determinism and seeding: identical runs are bit-identical, and
seeds change only what they should."""

from repro.apps import IlinkApp, SorApp, TspApp, WaterApp
from repro.machines import (AllSoftwareMachine, DecTreadMarksMachine,
                            HybridMachine)
from repro.net.faults import FaultPlan, StallWindow, parse_schedule


def fingerprint(result):
    d = result.counters.as_dict()
    d["cycles"] = result.cycles
    d.update({f"out.{k}": v for k, v in sorted(result.app_output.items())
              if isinstance(v, (int, float, str))})
    return d


def test_repeat_runs_identical_all_apps():
    machine = DecTreadMarksMachine()
    apps = [
        lambda: SorApp(rows=32, cols=32, iterations=3),
        lambda: TspApp(cities=8, leaf_cutoff=5),
        lambda: WaterApp(molecules=10, steps=1),
        lambda: IlinkApp("bad", iterations=2, genarray_kbytes=8),
    ]
    for factory in apps:
        a = machine.run(factory(), 4)
        b = machine.run(factory(), 4)
        assert fingerprint(a) == fingerprint(b), factory().name


def test_repeat_runs_identical_simulated_machines():
    for machine in (AllSoftwareMachine(), HybridMachine()):
        a = machine.run(SorApp(rows=48, cols=32, iterations=2), 16)
        b = machine.run(SorApp(rows=48, cols=32, iterations=2), 16)
        assert fingerprint(a) == fingerprint(b)


def test_app_instance_reusable_across_runs():
    """Applications hold no mutable run state: one instance may be
    run repeatedly at different processor counts."""
    machine = DecTreadMarksMachine()
    app = SorApp(rows=32, cols=32, iterations=3)
    first = machine.run(app, 2)
    second = machine.run(app, 2)
    third = machine.run(app, 4)
    assert fingerprint(first) == fingerprint(second)
    assert third.app_output["checksum"] == \
        first.app_output["checksum"]


def test_seed_changes_ilink_weights_not_results():
    machine = DecTreadMarksMachine()
    a = machine.run(IlinkApp("clp", iterations=2, genarray_kbytes=8), 4,
                    seed=1)
    b = machine.run(IlinkApp("clp", iterations=2, genarray_kbytes=8), 4,
                    seed=2)
    # Different load-balance draws -> different timing...
    assert a.cycles != b.cycles
    # ...but the data computation itself is seed-independent here.
    assert a.app_output["checksum"] == b.app_output["checksum"]


def test_faulty_runs_bit_identical():
    """The fault plane is part of the deterministic state: a seeded
    fault sequence reproduces bit-identically run over run."""
    plan = FaultPlan(loss_rate=0.03, dup_rate=0.02, jitter_cycles=200,
                     seed=7, stalls=(StallWindow(1, 10_000, 60_000),),
                     schedule=parse_schedule("dup:diff_response:nth=2"))
    # 16 procs on the hybrid = 4 four-CPU nodes, so stall node 1 exists.
    for machine_factory, nprocs in (
            (lambda: DecTreadMarksMachine(faults=plan), 4),
            (lambda: HybridMachine(faults=plan), 16)):
        a = machine_factory().run(SorApp(rows=32, cols=32, iterations=3),
                                  nprocs)
        b = machine_factory().run(SorApp(rows=32, cols=32, iterations=3),
                                  nprocs)
        assert fingerprint(a) == fingerprint(b)
        assert a.counters.messages_dropped > 0   # faults actually fired


def test_fault_seed_changes_fault_sequence():
    app_factory = lambda: SorApp(rows=32, cols=32, iterations=3)
    a = DecTreadMarksMachine(
        faults=FaultPlan(loss_rate=0.05, seed=1)).run(app_factory(), 4)
    b = DecTreadMarksMachine(
        faults=FaultPlan(loss_rate=0.05, seed=2)).run(app_factory(), 4)
    # Different drop sets -> different recovery timing...
    assert a.cycles != b.cycles
    # ...same converged data.
    assert a.app_output["checksum"] == b.app_output["checksum"]


def test_tsp_coord_seed_changes_instance():
    machine = DecTreadMarksMachine()
    a = machine.run(TspApp(cities=8, leaf_cutoff=5, coord_seed=1), 2)
    b = machine.run(TspApp(cities=8, leaf_cutoff=5, coord_seed=2), 2)
    assert a.app_output["optimal_length"] != \
        b.app_output["optimal_length"]
