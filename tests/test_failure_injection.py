"""Failure injection: buggy applications must fail loudly, not hang
silently or corrupt protocol state — and *lossy networks* must either
recover transparently or fail loudly, never hang."""

import pytest

from repro.apps import SorApp, TspApp, ops
from repro.apps.base import Application
from repro.errors import (AddressError, DeadlockError,
                          NetworkPartitionError, ProtocolError)
from repro.machines import DecTreadMarksMachine, SgiMachine
from repro.net.faults import FaultPlan, parse_schedule


class ForgottenRelease(Application):
    """Processor 0 never releases the lock: everyone else deadlocks."""

    name = "forgotten-release"

    def regions(self, nprocs):
        return {"x": 4096}

    def programs(self, ctx):
        def holder():
            yield ops.Acquire(0)
            yield ops.Compute(10)
            # bug: no Release

        def waiter():
            yield ops.Acquire(0)
            yield ops.Release(0)
        return [holder()] + [waiter() for _ in range(ctx.nprocs - 1)]


def test_lost_release_detected_as_deadlock():
    with pytest.raises(DeadlockError) as err:
        DecTreadMarksMachine().run(ForgottenRelease(), 3)
    assert len(err.value.blocked) == 2


class MissingBarrier(Application):
    """One processor skips the barrier."""

    name = "missing-barrier"

    def regions(self, nprocs):
        return {"x": 4096}

    def programs(self, ctx):
        def good():
            yield ops.Barrier()

        def bad():
            yield ops.Compute(5)
        return [bad()] + [good() for _ in range(ctx.nprocs - 1)]


def test_missing_barrier_deadlocks_on_all_machines():
    for machine in (DecTreadMarksMachine(), SgiMachine()):
        with pytest.raises(DeadlockError):
            machine.run(MissingBarrier(), 3)


class DoubleRelease(Application):
    name = "double-release"

    def regions(self, nprocs):
        return {"x": 4096}

    def programs(self, ctx):
        def prog():
            yield ops.Acquire(0)
            yield ops.Release(0)
            yield ops.Release(0)   # bug
        return [prog() for _ in range(ctx.nprocs)]


def test_double_release_raises_protocol_error():
    for machine in (DecTreadMarksMachine(), SgiMachine()):
        with pytest.raises(ProtocolError):
            machine.run(DoubleRelease(), 1)


class ReleaseForeignLock(Application):
    name = "release-foreign"

    def regions(self, nprocs):
        return {"x": 4096}

    def programs(self, ctx):
        def owner():
            yield ops.Acquire(0)
            yield ops.Compute(100_000)
            yield ops.Release(0)

        def thief():
            yield ops.Compute(10)
            yield ops.Release(0)   # never acquired it
        return [owner(), thief()]


def test_release_without_acquire_raises():
    with pytest.raises(ProtocolError):
        DecTreadMarksMachine().run(ReleaseForeignLock(), 2)


class OutOfBounds(Application):
    name = "oob"

    def regions(self, nprocs):
        return {"x": 4096}

    def programs(self, ctx):
        def prog():
            yield ops.Read("x", 4000, 200)   # crosses region end
        return [prog() for _ in range(ctx.nprocs)]


def test_out_of_bounds_access_raises():
    with pytest.raises(AddressError):
        DecTreadMarksMachine().run(OutOfBounds(), 1)


class UnknownRegion(Application):
    name = "unknown-region"

    def regions(self, nprocs):
        return {"x": 4096}

    def programs(self, ctx):
        def prog():
            yield ops.Read("nope", 0, 8)
        return [prog() for _ in range(ctx.nprocs)]


def test_unknown_region_raises():
    with pytest.raises(AddressError):
        SgiMachine().run(UnknownRegion(), 1)


# ----------------------------------------------------------------------
# Network loss scenarios: the reliable-delivery layer must recover
# transparently (correct output, nonzero recovery counters) or raise,
# never hang.
# ----------------------------------------------------------------------

def _faulty(schedule_spec):
    return DecTreadMarksMachine(
        faults=FaultPlan(schedule=parse_schedule(schedule_spec)))


def test_dropped_lock_grant_is_retransmitted():
    app = TspApp(cities=8, leaf_cutoff=5)
    clean = DecTreadMarksMachine().run(app, 4)
    lossy = _faulty("drop:lock_grant:nth=1").run(app, 4)
    assert lossy.counters.retransmissions >= 1
    assert lossy.counters.messages_dropped >= 1
    # TSP total cycles may move either way (loss perturbs the
    # branch-and-bound pruning order), but the timeout wait was paid...
    assert lossy.counters.timeout_cycles > 0
    # ...and the search still finds the same optimum.
    assert lossy.app_output["optimal_length"] == \
        clean.app_output["optimal_length"]


def test_dropped_barrier_release_is_retransmitted():
    app = SorApp(rows=32, cols=32, iterations=3)
    clean = DecTreadMarksMachine().run(app, 4)
    lossy = _faulty("drop:barrier_depart:nth=1").run(app, 4)
    assert lossy.counters.retransmissions >= 1
    assert lossy.cycles > clean.cycles
    assert lossy.app_output["checksum"] == clean.app_output["checksum"]


def test_duplicated_diff_response_is_suppressed():
    app = SorApp(rows=32, cols=32, iterations=3)
    clean = DecTreadMarksMachine().run(app, 4)
    noisy = _faulty("dup:diff_response").run(app, 4)
    assert noisy.counters.duplicates_dropped >= 1
    assert noisy.app_output["checksum"] == clean.app_output["checksum"]


def test_exhausted_retries_fail_loudly_not_hang():
    """Every diff request dropped: the destination is effectively
    partitioned and the run must end in NetworkPartitionError."""
    machine = DecTreadMarksMachine(faults=FaultPlan(
        schedule=parse_schedule("drop:diff_request"), max_retries=2))
    with pytest.raises(NetworkPartitionError) as err:
        machine.run(SorApp(rows=32, cols=32, iterations=2), 4)
    assert err.value.kind == "diff_request"
    assert err.value.attempts == 3
    assert err.value.now > 0
