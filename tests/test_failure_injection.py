"""Failure injection: buggy applications must fail loudly, not hang
silently or corrupt protocol state."""

import pytest

from repro.apps import ops
from repro.apps.base import Application
from repro.errors import AddressError, DeadlockError, ProtocolError
from repro.machines import DecTreadMarksMachine, SgiMachine


class ForgottenRelease(Application):
    """Processor 0 never releases the lock: everyone else deadlocks."""

    name = "forgotten-release"

    def regions(self, nprocs):
        return {"x": 4096}

    def programs(self, ctx):
        def holder():
            yield ops.Acquire(0)
            yield ops.Compute(10)
            # bug: no Release

        def waiter():
            yield ops.Acquire(0)
            yield ops.Release(0)
        return [holder()] + [waiter() for _ in range(ctx.nprocs - 1)]


def test_lost_release_detected_as_deadlock():
    with pytest.raises(DeadlockError) as err:
        DecTreadMarksMachine().run(ForgottenRelease(), 3)
    assert len(err.value.blocked) == 2


class MissingBarrier(Application):
    """One processor skips the barrier."""

    name = "missing-barrier"

    def regions(self, nprocs):
        return {"x": 4096}

    def programs(self, ctx):
        def good():
            yield ops.Barrier()

        def bad():
            yield ops.Compute(5)
        return [bad()] + [good() for _ in range(ctx.nprocs - 1)]


def test_missing_barrier_deadlocks_on_all_machines():
    for machine in (DecTreadMarksMachine(), SgiMachine()):
        with pytest.raises(DeadlockError):
            machine.run(MissingBarrier(), 3)


class DoubleRelease(Application):
    name = "double-release"

    def regions(self, nprocs):
        return {"x": 4096}

    def programs(self, ctx):
        def prog():
            yield ops.Acquire(0)
            yield ops.Release(0)
            yield ops.Release(0)   # bug
        return [prog() for _ in range(ctx.nprocs)]


def test_double_release_raises_protocol_error():
    for machine in (DecTreadMarksMachine(), SgiMachine()):
        with pytest.raises(ProtocolError):
            machine.run(DoubleRelease(), 1)


class ReleaseForeignLock(Application):
    name = "release-foreign"

    def regions(self, nprocs):
        return {"x": 4096}

    def programs(self, ctx):
        def owner():
            yield ops.Acquire(0)
            yield ops.Compute(100_000)
            yield ops.Release(0)

        def thief():
            yield ops.Compute(10)
            yield ops.Release(0)   # never acquired it
        return [owner(), thief()]


def test_release_without_acquire_raises():
    with pytest.raises(ProtocolError):
        DecTreadMarksMachine().run(ReleaseForeignLock(), 2)


class OutOfBounds(Application):
    name = "oob"

    def regions(self, nprocs):
        return {"x": 4096}

    def programs(self, ctx):
        def prog():
            yield ops.Read("x", 4000, 200)   # crosses region end
        return [prog() for _ in range(ctx.nprocs)]


def test_out_of_bounds_access_raises():
    with pytest.raises(AddressError):
        DecTreadMarksMachine().run(OutOfBounds(), 1)


class UnknownRegion(Application):
    name = "unknown-region"

    def regions(self, nprocs):
        return {"x": 4096}

    def programs(self, ctx):
        def prog():
            yield ops.Read("nope", 0, 8)
        return [prog() for _ in range(ctx.nprocs)]


def test_unknown_region_raises():
    with pytest.raises(AddressError):
        SgiMachine().run(UnknownRegion(), 1)
