"""The pluggable DSM barrier algorithms (tree, combining)."""

import pytest

from repro.dsm.barriers import (DSM_BARRIER_IMPLS, BarrierManager,
                                CombiningBarrier, TreeBarrier,
                                make_dsm_barrier)
from repro.errors import ConfigurationError, ProtocolError
from repro.stats.counters import MsgKind
from repro.sync import SwitchCombiner


def make_barrier(atm, algorithm="central", **kwargs):
    defaults = dict(
        manager_node=0,
        arrive_payload=lambda node: 32,
        depart_payload=lambda node: 48,
        on_all_arrived=lambda: None,
        on_depart=lambda node: None,
        local_cycles=50,
    )
    if algorithm == "combining":
        defaults["combiner"] = SwitchCombiner(
            atm, window_cycles=5000, combine_cycles=10)
    defaults.update(kwargs)
    return make_dsm_barrier(algorithm, atm, atm.num_nodes, **defaults)


def test_factory_inventory(atm):
    assert set(DSM_BARRIER_IMPLS) == {"central", "tree", "combining"}
    assert isinstance(make_barrier(atm, "central"), BarrierManager)
    assert isinstance(make_barrier(atm, "tree"), TreeBarrier)
    assert isinstance(make_barrier(atm, "combining"), CombiningBarrier)
    with pytest.raises(ConfigurationError):
        make_barrier(atm, "butterfly")


def test_combining_barrier_requires_combiner(atm):
    with pytest.raises(ConfigurationError):
        make_barrier(atm, "combining", combiner=None)


@pytest.mark.parametrize("algorithm", sorted(DSM_BARRIER_IMPLS))
def test_nobody_departs_before_all_arrive(atm, engine, algorithm):
    barrier = make_barrier(atm, algorithm)
    departed = []
    for node in (0, 1, 2):
        barrier.arrive(0, node, lambda t, n=node: departed.append(n))
    engine.run()
    assert departed == []          # node 3 never arrived
    barrier.arrive(0, 3, lambda t: departed.append(3))
    engine.run()
    assert sorted(departed) == [0, 1, 2, 3]
    assert barrier.completed == 1


@pytest.mark.parametrize("algorithm", sorted(DSM_BARRIER_IMPLS))
def test_double_arrival_rejected(atm, engine, algorithm):
    barrier = make_barrier(atm, algorithm)
    barrier.arrive(0, 1, lambda t: None)
    with pytest.raises(ProtocolError):
        barrier.arrive(0, 1, lambda t: None)


@pytest.mark.parametrize("algorithm", sorted(DSM_BARRIER_IMPLS))
def test_single_participant_barrier_trivial(engine, counters, algorithm):
    """A 1-node barrier needs no messages under any algorithm."""
    from repro.net.atm import AtmNetwork
    from repro.net.overhead import OverheadPreset
    net = AtmNetwork(engine, 1, bandwidth_bytes_per_sec=1e6,
                     switch_latency_cycles=1, clock_hz=1e6,
                     overhead=OverheadPreset.SIM_BASE.build(),
                     counters=counters)
    kwargs = dict(
        manager_node=0,
        arrive_payload=lambda n: 0, depart_payload=lambda n: 0,
        on_all_arrived=lambda: None, on_depart=lambda n: None)
    if algorithm == "combining":
        kwargs["combiner"] = SwitchCombiner(net, window_cycles=100,
                                            combine_cycles=1)
    barrier = make_dsm_barrier(algorithm, net, 1, **kwargs)
    done = []
    barrier.arrive(0, 0, done.append)
    engine.run()
    assert len(done) == 1
    assert counters.total_messages == 0


@pytest.mark.parametrize("algorithm", sorted(DSM_BARRIER_IMPLS))
def test_reentrant_episodes(atm, engine, algorithm):
    """A node may re-arrive for episode k+1 the moment it departs
    episode k, even while slower nodes are still inside episode k."""
    barrier = make_barrier(atm, algorithm)
    log = []

    def make_prog(node):
        def after_first(_t):
            log.append(("first", node))
            barrier.arrive(0, node,
                           lambda t: log.append(("second", node)))
        return after_first

    for node in range(4):
        barrier.arrive(0, node, make_prog(node))
    engine.run()
    assert barrier.completed == 2
    firsts = [e for e in log if e[0] == "first"]
    seconds = [e for e in log if e[0] == "second"]
    assert len(firsts) == 4 and len(seconds) == 4
    # No node's second departure may precede another's first.
    assert log.index(seconds[0]) > log.index(firsts[-1])


def test_tree_topology(atm, engine, counters):
    """Radix-2 over 4 nodes: two leaves report to node 1, node 1 and
    node 2's subtree report to the root — every non-root node sends
    exactly one arrival, every non-leaf sends its children departs."""
    barrier = make_barrier(atm, "tree", tree_radix=2)
    for node in range(4):
        barrier.arrive(0, node, lambda t: None)
    engine.run()
    # Up: 3 non-root arrivals; down: 3 departs (one per child edge).
    assert counters.messages[MsgKind.BARRIER_ARRIVE] == 3
    assert counters.messages[MsgKind.BARRIER_DEPART] == 3
    assert barrier.completed == 1


def test_tree_total_traffic_matches_central(atm, engine, counters):
    """Total up-traffic is identical (every non-root node reports
    once); the tree redistributes *who receives it*, it does not add
    messages."""
    msgs = {}
    for barrier_id, (algorithm, kwargs) in enumerate(
            (("central", {}), ("tree", {"tree_radix": 2}))):
        before = counters.messages[MsgKind.BARRIER_ARRIVE]
        barrier = make_barrier(atm, algorithm, **kwargs)
        for node in range(4):
            barrier.arrive(barrier_id, node, lambda t: None)
        engine.run()
        msgs[algorithm] = (counters.messages[MsgKind.BARRIER_ARRIVE]
                           - before)
    assert msgs["tree"] == msgs["central"] == 3


def test_tree_root_handles_only_its_children(atm, engine):
    """Count arrivals whose destination is the root directly."""
    barrier = make_barrier(atm, "tree", tree_radix=2)
    seen = []
    original = barrier._up_tick

    def spy(barrier_id, episode, li):
        seen.append(li)
        return original(barrier_id, episode, li)

    barrier._up_tick = spy
    for node in range(4):
        barrier.arrive(0, node, lambda t: None)
    engine.run()
    # Root (li 0) ticks: own arrival + two children = 3 of the 4+3
    # total up-ticks; under central it would count all 4 arrivals.
    assert seen.count(0) == 3


def test_combining_barrier_merges_arrivals(atm, engine, counters):
    """Near-simultaneous arrivals toward the manager combine in the
    switch; the departure wave combines on the send side."""
    barrier = make_barrier(atm, "combining")
    for node in range(4):
        barrier.arrive(0, node, lambda t: None)
    engine.run()
    assert barrier.completed == 1
    # 3 remote arrivals: first opens the window, the rest combine.
    # The depart wave adds send-side hits past the first copy.
    assert counters.combining_hits >= 3


def test_combining_falls_back_outside_window(atm, engine, counters):
    """Arrivals spread wider than the window pay full price."""
    barrier = make_barrier(
        atm, "combining",
        combiner=SwitchCombiner(atm, window_cycles=1, combine_cycles=1))
    for delay, node in ((0, 0), (100_000, 1), (200_000, 2),
                        (300_000, 3)):
        engine.schedule(delay, barrier.arrive, 0, node, lambda t: None)
    engine.run()
    assert barrier.completed == 1
    # Arrivals never share a window; only the depart wave (sent
    # back-to-back by the manager) can combine.
    assert counters.combining_hits <= 2


@pytest.mark.parametrize("algorithm", sorted(DSM_BARRIER_IMPLS))
def test_distinct_barrier_ids_independent(atm, engine, algorithm):
    barrier = make_barrier(atm, algorithm)
    departed = []
    for node in range(4):
        barrier.arrive(7, node, lambda t, n=node: departed.append(n))
    engine.run()
    assert len(departed) == 4
    assert barrier.completed == 1
