"""The docstring-coverage gate itself: detection and repo status."""

import os
import subprocess
import sys
import textwrap

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(REPO_ROOT, "tools", "check_docstrings.py")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
check_docstrings = __import__("check_docstrings")


def _write_module(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(source))
    return str(path)


def _missing(tmp_path, source):
    path = _write_module(tmp_path, source)
    defs = check_docstrings.collect_definitions(path)
    return sorted(d.qualname.rsplit(".", 1)[-1]
                  for d in defs if not d.has_doc)


def test_detects_undocumented_definitions(tmp_path):
    missing = _missing(tmp_path, """
        def documented():
            \"\"\"Has one.\"\"\"

        def naked():
            pass

        class Naked:
            def method(self):
                pass
    """)
    # The module itself has no docstring either.
    assert missing == ["Naked", "method", "mod", "naked"]


def test_private_names_and_exempt_dunders_skip(tmp_path):
    missing = _missing(tmp_path, """
        \"\"\"Module doc.\"\"\"

        def _helper():
            pass

        class Thing:
            \"\"\"Class doc.\"\"\"

            def __init__(self):
                pass

            def __repr__(self):
                pass

            def _internal(self):
                pass
    """)
    assert missing == []


def test_dataclass_post_init_exempt():
    assert "__post_init__" in check_docstrings.EXEMPT_DUNDERS
    assert "__init__" in check_docstrings.EXEMPT_DUNDERS


def test_public_surface_resolves_exports():
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        exports, sync_files = check_docstrings.public_surface()
    finally:
        sys.path.pop(0)
    # Classes, functions, and the sync package must all be gated.
    assert "SyncPolicy" in exports
    assert "make_machine" in exports
    assert any(p.endswith("__init__.py") for p in sync_files)
    src_root = check_docstrings.SRC_ROOT + os.sep
    assert all(path.startswith(src_root)
               for path, _line in exports.values())


def test_repo_passes_its_own_gate():
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    proc = subprocess.run([sys.executable, TOOL], env=env,
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
