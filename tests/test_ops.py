"""Operation dataclasses and their validation."""

import pytest

from repro.apps import ops


def test_compute_rejects_negative():
    with pytest.raises(ValueError):
        ops.Compute(-1)
    assert ops.Compute(0).cycles == 0


def test_write_changed_defaults_to_nbytes():
    w = ops.Write("r", 0, 100)
    assert w.changed_bytes == 100


def test_write_changed_explicit():
    w = ops.Write("r", 0, 100, changed_bytes=7)
    assert w.changed_bytes == 7
    z = ops.Write("r", 0, 100, changed_bytes=0)
    assert z.changed_bytes == 0


def test_write_changed_cannot_exceed_size():
    with pytest.raises(ValueError):
        ops.Write("r", 0, 100, changed_bytes=101)


def test_ops_hashable_and_frozen():
    a = ops.Read("r", 0, 8)
    b = ops.Read("r", 0, 8)
    assert a == b and hash(a) == hash(b)
    with pytest.raises(Exception):
        a.offset = 5


def test_barrier_default_id():
    assert ops.Barrier().barrier_id == 0
    assert ops.Barrier(3).barrier_id == 3


def test_bound_ops_defaults():
    assert ops.ReadBound().name == "bound"
    u = ops.UpdateBound(42.0)
    assert u.value == 42.0 and u.name == "bound"
