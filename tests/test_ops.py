"""Operation dataclasses and their validation."""

import pytest

from repro.apps import ops


def test_compute_rejects_negative():
    with pytest.raises(ValueError):
        ops.Compute(-1)
    assert ops.Compute(0).cycles == 0


def test_write_changed_defaults_to_nbytes():
    w = ops.Write("r", 0, 100)
    assert w.changed_bytes == 100


def test_write_changed_explicit():
    w = ops.Write("r", 0, 100, changed_bytes=7)
    assert w.changed_bytes == 7
    z = ops.Write("r", 0, 100, changed_bytes=0)
    assert z.changed_bytes == 0


def test_write_changed_cannot_exceed_size():
    with pytest.raises(ValueError):
        ops.Write("r", 0, 100, changed_bytes=101)


def test_ops_hashable_and_frozen():
    a = ops.Read("r", 0, 8)
    b = ops.Read("r", 0, 8)
    assert a == b and hash(a) == hash(b)
    with pytest.raises(Exception):
        a.offset = 5


def test_barrier_default_id():
    assert ops.Barrier().barrier_id == 0
    assert ops.Barrier(3).barrier_id == 3


def test_bound_ops_defaults():
    assert ops.ReadBound().name == "bound"
    u = ops.UpdateBound(42.0)
    assert u.value == 42.0 and u.name == "bound"


# ----------------------------------------------------------------------
# OpBlock and the fuse/unfuse views
# ----------------------------------------------------------------------

def test_opblock_rejects_empty_and_non_fusible():
    with pytest.raises(ValueError):
        ops.OpBlock(())
    with pytest.raises(ValueError):
        ops.OpBlock([ops.Compute(1), ops.Barrier()])
    with pytest.raises(ValueError):
        ops.OpBlock([ops.Acquire(0)])


def test_opblock_is_a_sized_iterable_of_its_members():
    members = (ops.Compute(5), ops.Read("r", 0, 8), ops.Write("r", 0, 8))
    block = ops.OpBlock(members)
    assert len(block) == 3
    assert tuple(block) == members


def test_fuse_collapses_runs_and_passes_sync_through():
    stream = [ops.Compute(1), ops.Read("r", 0, 8), ops.Barrier(),
              ops.Write("r", 0, 8), ops.Acquire(0), ops.Release(0),
              ops.Compute(2), ops.Compute(3)]
    out = list(ops.fuse(iter(stream)))
    assert isinstance(out[0], ops.OpBlock)
    assert tuple(out[0]) == (stream[0], stream[1])
    assert out[1] is stream[2]
    assert out[2] is stream[3]          # lone fusible op stays bare
    assert out[3] is stream[4] and out[4] is stream[5]
    assert tuple(out[5]) == (stream[6], stream[7])


def test_unfuse_inverts_fuse():
    stream = [ops.Compute(1), ops.Read("r", 0, 8), ops.Write("r", 8, 8),
              ops.Barrier(), ops.Compute(4)]
    assert list(ops.unfuse(ops.fuse(iter(stream)))) == stream


def test_fuse_forwards_sent_values_for_sync_ops():
    def program():
        got = yield ops.ReadBound()
        seen.append(got)
        yield ops.Compute(1)

    seen = []
    gen = ops.fuse(program())
    op = next(gen)
    assert isinstance(op, ops.ReadBound)
    op = gen.send(99.5)                 # result reaches the program
    assert seen == [99.5]
    assert isinstance(op, ops.Compute)
