"""Bound visibility under hardware, lazy, and eager consistency."""

import math

from hypothesis import given, settings, strategies as st

from repro.dsm.bound import BoundMode, SharedBound


def test_initial_value_visible_everywhere():
    bound = SharedBound(BoundMode.HARDWARE, 4)
    assert bound.read(0, 0) == math.inf
    assert bound.committed_best == math.inf


def test_hardware_sees_updates_immediately():
    bound = SharedBound(BoundMode.HARDWARE, 4)
    assert bound.update(0, 50.0, now=100) is True
    assert bound.read(1, 100) == 50.0
    assert bound.read(1, 99) == math.inf


def test_lazy_reader_stuck_at_sync_point():
    bound = SharedBound(BoundMode.LAZY, 4)
    bound.on_sync(1, 90)
    bound.update(0, 50.0, now=100)
    assert bound.read(1, 200) == math.inf    # synced before the update
    bound.on_sync(1, 150)
    assert bound.read(1, 200) == 50.0


def test_lazy_writer_sees_own_update():
    bound = SharedBound(BoundMode.LAZY, 4)
    bound.update(0, 50.0, now=100)
    assert bound.read(0, 101) == 50.0        # own best always visible


def test_eager_visible_after_push_latency():
    bound = SharedBound(BoundMode.EAGER, 4, push_latency_cycles=1000)
    bound.update(0, 50.0, now=100)
    assert bound.read(1, 1000) == math.inf
    assert bound.read(1, 1100) == 50.0


def test_non_improving_update_ignored():
    bound = SharedBound(BoundMode.HARDWARE, 2)
    assert bound.update(0, 50.0, now=10) is True
    assert bound.update(1, 60.0, now=20) is False
    assert bound.committed_best == 50.0
    assert bound.updates == 1


def test_staleness():
    bound = SharedBound(BoundMode.LAZY, 2)
    bound.update(0, 40.0, now=100)
    assert bound.staleness(1, 200) == math.inf - 40.0 or \
        bound.staleness(1, 200) > 0
    bound.on_sync(1, 150)
    assert bound.staleness(1, 200) == 0.0


update_lists = st.lists(
    st.tuples(st.integers(0, 3),                    # proc
              st.floats(1.0, 1000.0),               # value
              st.integers(0, 10_000)),              # time
    min_size=1, max_size=20)


@settings(max_examples=150, deadline=None)
@given(update_lists, st.integers(0, 3), st.integers(0, 20_000))
def test_visible_never_better_than_committed(updates, proc, when):
    """No reader may see a bound better than the best committed so far,
    and under any mode the visible bound is a real committed value."""
    for mode in BoundMode:
        bound = SharedBound(mode, 4, push_latency_cycles=50)
        committed = [math.inf]
        for p, value, t in sorted(updates, key=lambda u: u[2]):
            bound.update(p, value, now=t)
            committed.append(min(committed[-1], value))
        visible = bound.read(proc, when)
        assert visible >= committed[-1]
        assert visible == math.inf or visible in {v for _p, v, _t
                                                  in updates}


@settings(max_examples=100, deadline=None)
@given(update_lists)
def test_hardware_at_least_as_fresh_as_lazy(updates):
    hw = SharedBound(BoundMode.HARDWARE, 4)
    lazy = SharedBound(BoundMode.LAZY, 4)
    for p, value, t in sorted(updates, key=lambda u: u[2]):
        hw.update(p, value, now=t)
        lazy.update(p, value, now=t)
    horizon = max(t for _p, _v, t in updates) + 1
    for proc in range(4):
        assert hw.read(proc, horizon) <= lazy.read(proc, horizon)
