"""Parallel/cached plan execution: the determinism contract.

Pins the layer's hard requirement: serial, ``--jobs N``, and
warm-cache executions produce identical ``summary()`` dictionaries and
identical speedups.
"""

import pytest

import repro.harness.parallel as parallel
from repro.harness.cache import ResultCache
from repro.harness.parallel import (RunPlan, current_context,
                                    effective_workers, execute_plan,
                                    resolve_jobs, run_context, run_grid,
                                    shutdown_pool)
from repro.harness.runner import compare_machines, speedup_series
from repro.harness.workloads import Scale, make_app
from repro.machines import DecTreadMarksMachine, SgiMachine
from repro.net.faults import FaultPlan
from repro.trace import trace_session


@pytest.fixture
def app():
    return make_app("sor_small", Scale.TEST)


def _grid_summaries(jobs, cache):
    """The pinned grid: two machine families x (1, 2) processors."""
    app = make_app("sor_small", Scale.TEST)
    series = compare_machines(
        [DecTreadMarksMachine(), SgiMachine()], app, (1, 2),
        jobs=jobs, cache=cache)
    summaries = {name: [r.summary() for r in s.points]
                 for name, s in series.items()}
    speedups = {name: s.speedups() for name, s in series.items()}
    return summaries, speedups


def test_serial_pool_and_cache_identical(tmp_path):
    """THE determinism pin: jobs=1 == jobs=2 == cold cache == warm cache."""
    serial = _grid_summaries(jobs=1, cache=None)
    pooled = _grid_summaries(jobs=2, cache=None)
    cache = ResultCache(str(tmp_path))
    cold = _grid_summaries(jobs=2, cache=cache)
    assert cache.stats()["misses"] > 0 and cache.stats()["hits"] == 0
    warm = _grid_summaries(jobs=2, cache=cache)
    assert cache.stats()["misses"] == cache.stats()["stores"]  # no re-store
    assert serial == pooled == cold == warm


def _fault_grid_summaries(jobs, cache, seed):
    """Faulty grid: clean vs. lossy TreadMarks at (1, 2) processors."""
    app = make_app("sor_small", Scale.TEST)
    series = compare_machines(
        [DecTreadMarksMachine(),
         DecTreadMarksMachine(faults=FaultPlan(loss_rate=0.15,
                                               seed=seed))],
        app, (1, 2), jobs=jobs, cache=cache)
    summaries = {name: [r.summary() for r in s.points]
                 for name, s in series.items()}
    retrans = {name: [r.counters.retransmissions for r in s.points]
               for name, s in series.items()}
    return summaries, retrans


@pytest.mark.parametrize("seed", [7, 42])
def test_faulty_grid_serial_pool_and_cache_identical(tmp_path, seed):
    """The determinism pin extends to fault-injected machines: the
    seeded fault sequence is bit-identical across serial, --jobs N,
    cold-cache, and warm-cache execution."""
    serial = _fault_grid_summaries(jobs=1, cache=None, seed=seed)
    pooled = _fault_grid_summaries(jobs=2, cache=None, seed=seed)
    cache = ResultCache(str(tmp_path))
    cold = _fault_grid_summaries(jobs=2, cache=cache, seed=seed)
    warm = _fault_grid_summaries(jobs=2, cache=cache, seed=seed)
    assert serial == pooled == cold == warm
    _summaries, retrans = serial
    assert retrans["treadmarks-loss0.15"][1] > 0   # faults fired at p=2
    assert retrans["treadmarks"] == [0, 0]


def test_faulty_and_clean_runs_share_only_the_baseline(app, tmp_path):
    """Fault params fork the cache key for networked runs, while the
    1-proc uniprocessor baseline (no network -> no faults) is shared:
    a (1, 2)-proc sweep over both stores 3 results, not 4."""
    cache = ResultCache(str(tmp_path))
    plan = RunPlan()
    for machine in (DecTreadMarksMachine(),
                    DecTreadMarksMachine(faults=FaultPlan(loss_rate=0.05))):
        plan.add_series(machine, app, (1, 2))
    results = execute_plan(plan, cache=cache)
    assert cache.stats()["stores"] == 3
    assert results[1].summary() != results[3].summary()   # 2-proc forked
    assert results[0].cycles == results[2].cycles         # baseline shared


def test_plan_dedup_executes_once(app):
    plan = RunPlan()
    a = plan.add(DecTreadMarksMachine(), app, 2)
    b = plan.add(DecTreadMarksMachine(), app, 2)
    results = execute_plan(plan)
    assert a != b and len(plan) == 2
    assert results[a].summary() == results[b].summary()


def test_shared_baseline_one_store_for_two_variants(app, tmp_path):
    """TreadMarks user- and kernel-level share the 1-proc baseline run:
    a (1, 2)-proc sweep over both variants stores 3 results, not 4."""
    cache = ResultCache(str(tmp_path))
    plan = RunPlan()
    for machine in (DecTreadMarksMachine(),
                    DecTreadMarksMachine(kernel_level=True)):
        plan.add_series(machine, app, (1, 2))
    results = execute_plan(plan, cache=cache)
    assert cache.stats()["stores"] == 3
    # The shared baseline is re-labelled for the requesting variant.
    assert results[0].machine == "treadmarks"
    assert results[2].machine == "treadmarks-kernel"
    assert results[0].cycles == results[2].cycles


def test_speedup_series_reuses_base_result(app):
    machine = DecTreadMarksMachine()
    base = machine.run(app, 1)
    series = speedup_series(machine, app, (1, 2), base_result=base)
    assert series.at(1) is base
    plain = speedup_series(machine, app, (1, 2))
    assert series.speedups() == plain.speedups()


def test_run_grid_tags(app):
    grid = run_grid([("tm", DecTreadMarksMachine(), app, 2),
                     ("sgi", SgiMachine(), app, 2)])
    assert set(grid) == {"tm", "sgi"}
    assert grid["tm"].machine == "treadmarks"
    with pytest.raises(ValueError):
        run_grid([("x", SgiMachine(), app, 1),
                  ("x", SgiMachine(), app, 2)])


def test_effective_workers_clamps_to_cores_and_work(monkeypatch):
    monkeypatch.setattr(parallel, "_cpu_count", lambda: 4)
    assert effective_workers(8, 100) == 4     # cores bound
    assert effective_workers(4, 2) == 2       # work bound
    assert effective_workers(1, 100) == 1     # serial request
    monkeypatch.setattr(parallel, "_cpu_count", lambda: 1)
    assert effective_workers(8, 100) == 1     # small box -> in-process


def test_forced_pool_matches_serial_and_stays_warm(monkeypatch):
    """Exercise the real pool machinery (shared-memory plan blob,
    batched dispatch, warm reuse, env re-ship) even on 1-CPU CI by
    pretending the box has cores, and pin result identity."""
    monkeypatch.setattr(parallel, "_cpu_count", lambda: 4)
    app = make_app("sor_small", Scale.TEST)
    plan = RunPlan()
    for machine in (DecTreadMarksMachine(), SgiMachine()):
        plan.add_series(machine, app, (1, 2))
    try:
        serial = [r.summary() for r in execute_plan(plan, jobs=1)]
        pooled = [r.summary() for r in execute_plan(plan, jobs=4)]
        assert pooled == serial
        pool = parallel._POOL
        assert pool is not None
        again = [r.summary() for r in execute_plan(plan, jobs=4)]
        assert again == serial
        assert parallel._POOL is pool        # reused warm, not respawned
    finally:
        shutdown_pool()
    assert parallel._POOL is None


def test_dispatch_batches_cover_work_exactly_once():
    batches = parallel._dispatch_batches(11, 2)
    assert len(batches) <= 8
    flat = sorted(i for batch in batches for i in batch)
    assert flat == list(range(11))


def test_run_context_ambient():
    assert current_context().jobs == 1
    with run_context(jobs=3) as ctx:
        assert current_context() is ctx
        assert resolve_jobs(None) == 3
        with run_context(jobs=1):
            assert resolve_jobs(None) == 1
        assert resolve_jobs(None) == 3
    assert current_context().jobs == 1
    assert resolve_jobs(0) >= 1          # 0 = all cores


def test_metrics_session_records_unique_runs_in_plan_order(app, tmp_path):
    """Cold and warm cached executions feed the metrics session the
    same records: one per unique run, in plan order."""
    cache = ResultCache(str(tmp_path))

    def observed():
        with trace_session(trace=False) as session:
            plan = RunPlan()
            plan.add_series(DecTreadMarksMachine(), app, (1, 2))
            plan.add(DecTreadMarksMachine(), app, 2)   # dup: not re-recorded
            execute_plan(plan, cache=cache)
        return [(r.machine, r.nprocs) for r in session.results]

    cold = observed()
    warm = observed()
    assert cold == warm == [("treadmarks", 1), ("treadmarks", 2)]
    assert cache.stats()["hits"] == 2


def test_traced_session_serial_and_fresh(app, tmp_path):
    """trace=True forces live serial execution: one tracer per unique
    spec, cache untouched, numbers unchanged."""
    cache = ResultCache(str(tmp_path))
    plan = RunPlan()
    plan.add_series(DecTreadMarksMachine(), app, (1, 2))
    plan.add(DecTreadMarksMachine(), app, 2)
    untraced = execute_plan(plan)
    with trace_session(trace=True) as session:
        traced = execute_plan(plan, cache=cache)
    assert len(session.tracers) == 2     # unique specs only
    assert cache.stats() == {"hits": 0, "misses": 0, "stores": 0}
    # Tracing adds frac.* breakdown keys; every other number is pinned.
    for t, u in zip(traced, untraced):
        assert t.cycles == u.cycles and t.events == u.events
        assert {k: v for k, v in t.summary().items()
                if not k.startswith("frac.")
                and k != "software_overhead_fraction"} == u.summary()
