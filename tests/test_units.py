"""Unit conversions."""

import pytest

from repro import units


def test_cycles_to_seconds():
    assert units.cycles_to_seconds(40_000_000, 40e6) == pytest.approx(1.0)
    assert units.cycles_to_seconds(0, 40e6) == 0.0


def test_cycles_to_seconds_rejects_bad_clock():
    with pytest.raises(ValueError):
        units.cycles_to_seconds(1, 0)
    with pytest.raises(ValueError):
        units.cycles_to_seconds(1, -1e6)


def test_seconds_to_cycles_rounds_up():
    assert units.seconds_to_cycles(1.0, 40e6) == 40_000_000
    # A tiny positive duration never becomes zero cycles.
    assert units.seconds_to_cycles(1e-12, 40e6) == 1
    assert units.seconds_to_cycles(0.0, 40e6) == 0


def test_seconds_to_cycles_rejects_negative():
    with pytest.raises(ValueError):
        units.seconds_to_cycles(-1.0, 40e6)


def test_bytes_to_words_rounds_up():
    assert units.bytes_to_words(0) == 0
    assert units.bytes_to_words(1) == 1
    assert units.bytes_to_words(4) == 1
    assert units.bytes_to_words(5) == 2
    assert units.bytes_to_words(4096) == 1024


def test_bytes_to_words_rejects_negative():
    with pytest.raises(ValueError):
        units.bytes_to_words(-1)


def test_transfer_cycles():
    # 1000 bytes at 1 MB/s on a 1 MHz clock: 1000 cycles.
    assert units.transfer_cycles(1000, 1e6, 1e6) == 1000


def test_per_second():
    assert units.per_second(10, 40e6, 40e6) == pytest.approx(10.0)
    assert units.per_second(10, 0, 40e6) == 0.0


def test_bandwidth_from_mbits():
    assert units.bandwidth_from_mbits(8) == pytest.approx(1e6)
    with pytest.raises(ValueError):
        units.bandwidth_from_mbits(0)


def test_mbits_per_sec_roundtrip():
    assert units.mbits_per_sec(units.bandwidth_from_mbits(100) * 8) == \
        pytest.approx(100.0)
