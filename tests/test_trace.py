"""The tracing/breakdown layer: determinism, accounting, exporters."""

import json

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.workloads import Scale, make_app
from repro.machines.all_hardware import AllHardwareMachine
from repro.machines.dec_treadmarks import DecTreadMarksMachine
from repro.machines.sgi import SgiMachine
from repro.trace import (NULL_TRACER, Tracer, active_session,
                         chrome_trace, read_metrics_jsonl, trace_session,
                         write_chrome_trace, write_metrics_jsonl)
from repro.trace.tracer import Category


def _run(machine, app_name, nprocs, scale=Scale.TEST, tracer=None):
    return machine.run(make_app(app_name, scale), nprocs, tracer=tracer)


# ======================================================================
# tracing is pure observation
# ======================================================================
def test_tracing_does_not_change_simulation_bench_scale():
    """Bench-scale SOR: tracing on vs off must give identical simulated
    cycles AND identical engine event counts (the determinism
    fingerprint) — tracing never schedules events."""
    machine = DecTreadMarksMachine()
    plain = _run(machine, "sor_small", 4, scale=Scale.BENCH)
    traced = _run(machine, "sor_small", 4, scale=Scale.BENCH,
                  tracer=Tracer())
    assert traced.cycles == plain.cycles
    assert traced.events == plain.events


@pytest.mark.parametrize("machine_cls", [DecTreadMarksMachine, SgiMachine,
                                         AllHardwareMachine])
@pytest.mark.parametrize("app_name", ["sor_small", "tsp18"])
def test_tracing_does_not_change_simulation(machine_cls, app_name):
    plain = _run(machine_cls(), app_name, 4)
    traced = _run(machine_cls(), app_name, 4, tracer=Tracer())
    assert traced.cycles == plain.cycles
    assert traced.events == plain.events


def test_untraced_run_has_no_breakdown():
    result = _run(DecTreadMarksMachine(), "sor_small", 2)
    assert result.breakdown is None
    assert "frac.compute" not in result.summary()


# ======================================================================
# breakdown accounting
# ======================================================================
@pytest.mark.parametrize("machine_cls", [DecTreadMarksMachine, SgiMachine])
def test_breakdown_sums_to_total_cycles(machine_cls):
    """Each processor's primary categories (compute/miss/sync/idle)
    partition its timeline exactly: they sum to the run's cycle count
    for both a software-DSM and a hardware machine."""
    nprocs = 4
    result = _run(machine_cls(), "sor_small", nprocs, tracer=Tracer())
    b = result.breakdown
    assert b is not None
    assert b.nprocs == nprocs
    for proc in range(nprocs):
        assert b.proc_total(proc) == result.cycles
    fractions = b.fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
    assert 0.0 <= b.software_overhead_fraction() <= 1.0


def test_breakdown_overlay_separate_from_primary():
    """Protocol/network detail spans overlap the op timeline, so they
    live in the overlay, never in the per-proc partition."""
    result = _run(DecTreadMarksMachine(), "sor_small", 4, tracer=Tracer())
    b = result.breakdown
    assert b.overlay.get("protocol", 0) > 0
    assert b.overlay.get("network", 0) > 0
    for row in b.per_proc.values():
        assert "protocol" not in row
        assert "network" not in row


def test_breakdown_in_summary_keys():
    result = _run(DecTreadMarksMachine(), "sor_small", 4, tracer=Tracer())
    summary = result.summary()
    for cat in ("compute", "miss", "sync", "idle"):
        assert f"frac.{cat}" in summary
    assert "software_overhead_fraction" in summary


def test_software_machine_has_more_overhead_than_hardware():
    """The paper's central comparison: at 4+ processors the software
    DSM spends a larger fraction outside compute than the bus machine."""
    sw = _run(DecTreadMarksMachine(), "sor_small", 4, tracer=Tracer())
    hw = _run(SgiMachine(), "sor_small", 4, tracer=Tracer())
    assert (sw.breakdown.software_overhead_fraction() >
            hw.breakdown.software_overhead_fraction())


# ======================================================================
# disabled tracer
# ======================================================================
def test_null_tracer_is_inert():
    assert not NULL_TRACER.enabled
    NULL_TRACER.begin_op(0, Category.COMPUTE, "x", 0)
    NULL_TRACER.end_op(0, 10)
    NULL_TRACER.complete(0, Category.PROTOCOL, "y", 0, 5)
    NULL_TRACER.instant(0, Category.SYNC, "z", 3)
    NULL_TRACER.span(0, Category.MISS, "w", 0).end(9)
    assert NULL_TRACER.spans == []
    assert NULL_TRACER.instants == []
    assert NULL_TRACER.finish(100, 1, 1e6) is None
    assert NULL_TRACER.breakdown.per_proc == {}


# ======================================================================
# Chrome trace export
# ======================================================================
def test_chrome_trace_roundtrips_and_is_monotone(tmp_path):
    tracer = Tracer()
    _run(DecTreadMarksMachine(), "sor_small", 4, tracer=tracer)
    path = tmp_path / "run.trace.json"
    write_chrome_trace(str(path), [tracer])

    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert events, "trace must contain events"
    assert doc["otherData"]["runs"][0]["machine"] == "treadmarks"

    # Spans per (pid, tid) must have monotonically non-decreasing ts.
    last_ts = {}
    for event in events:
        if event["ph"] not in ("X", "i"):
            continue
        key = (event["pid"], event["tid"])
        assert event["ts"] >= last_ts.get(key, float("-inf"))
        last_ts[key] = event["ts"]
    # Complete events carry non-negative durations.
    assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")


def test_chrome_trace_track_metadata():
    tracer = Tracer()
    _run(DecTreadMarksMachine(), "sor_small", 2, tracer=tracer)
    doc = chrome_trace([tracer])
    names = [e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"]
    assert "p0" in names and "p1" in names
    assert any(n.startswith("node") for n in names)


# ======================================================================
# metrics JSONL export
# ======================================================================
def test_metrics_jsonl_roundtrip(tmp_path):
    results = [
        _run(DecTreadMarksMachine(), "sor_small", 2, tracer=Tracer()),
        _run(SgiMachine(), "sor_small", 2),
    ]
    path = tmp_path / "metrics.jsonl"
    assert write_metrics_jsonl(str(path), results) == 2

    records = read_metrics_jsonl(str(path))
    assert len(records) == 2
    traced, untraced = records
    assert traced["machine"] == "treadmarks"
    assert traced["cycles"] == results[0].cycles
    assert "breakdown" in traced
    assert traced["breakdown"]["total_cycles"] == results[0].cycles
    assert "breakdown" not in untraced
    assert untraced["counters"]["cache_hits"] > 0


# ======================================================================
# trace sessions
# ======================================================================
def test_trace_session_collects_runs():
    assert active_session() is None
    with trace_session() as session:
        assert active_session() is session
        _run(DecTreadMarksMachine(), "sor_small", 2)
        _run(SgiMachine(), "sor_small", 2)
    assert active_session() is None
    assert len(session.runs) == 2
    assert len(session.tracers) == 2
    assert all(r.breakdown is not None for r in session.results)


def test_metrics_only_session_creates_no_tracers():
    with trace_session(trace=False) as session:
        result = _run(DecTreadMarksMachine(), "sor_small", 2)
    assert session.results == [result]
    assert session.tracers == []
    assert result.breakdown is None


def test_explicit_tracer_wins_over_session():
    mine = Tracer(label="mine")
    with trace_session() as session:
        _run(DecTreadMarksMachine(), "sor_small", 2, tracer=mine)
    assert session.tracers == [mine]


# ======================================================================
# CLI integration
# ======================================================================
def test_cli_trace_writes_valid_chrome_trace(tmp_path):
    out = tmp_path / "fig3.trace.json"
    rc = cli_main(["trace", "fig3", "--scale", "test",
                   "--out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert len(doc["traceEvents"]) > 0
    assert len(doc["otherData"]["runs"]) == 8  # 2 machines x 4 sizes


def test_cli_run_metrics_out(tmp_path):
    out = tmp_path / "metrics.jsonl"
    rc = cli_main(["run", "t1", "--scale", "test",
                   "--metrics-out", str(out)])
    assert rc == 0
    records = read_metrics_jsonl(str(out))
    assert records
    for rec in records:
        assert {"machine", "app", "nprocs", "cycles",
                "counters"} <= set(rec)
