"""Golden-file regression pins: fig-3-style speedup series.

Pins the exact simulated cycle counts (and derived speedups) of the
SOR / TSP / Water speedup curves on all five machine models at TEST
scale.  The simulator is deterministic, so any drift here is a real
behaviour change: either an intended protocol/timing change — then
regenerate with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden.py

and commit the diff with an explanation — or an accidental regression
this test just caught.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.report import speedup_pin_data

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "speedups.json")


def compute_current():
    # Single source of truth with `repro-harness report`, which
    # regenerates the same pins through the ledger + cache.
    return speedup_pin_data()


def test_speedup_series_match_golden_file():
    current = compute_current()
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(f"golden file missing: {GOLDEN_PATH}; run with "
                    "REPRO_REGEN_GOLDEN=1 to create it")
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)
    assert current.keys() == golden.keys(), (
        "speedup-series key set changed")
    for key in sorted(golden):
        assert current[key]["cycles"] == golden[key]["cycles"], (
            f"simulated cycles drifted for {key}: "
            f"{golden[key]['cycles']} -> {current[key]['cycles']}")
        assert current[key]["speedups"] == golden[key]["speedups"], (
            f"speedups drifted for {key}")
