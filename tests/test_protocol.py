"""The LRC protocol engine: faults, diffs, invalidations, eager push."""

import pytest

from repro.dsm.protocol import DsmConfig, TreadMarksDsm
from repro.errors import ConfigurationError
from repro.mem.layout import AddressSpace, Geometry
from repro.net.atm import AtmNetwork
from repro.net.overhead import OverheadPreset
from repro.sim.engine import Engine
from repro.stats.counters import Counters, MsgKind

PAGE = 4096


def make_dsm(num_nodes=4, **config_kwargs):
    engine = Engine()
    counters = Counters()
    net = AtmNetwork(engine, num_nodes,
                     bandwidth_bytes_per_sec=30e6 / 8,
                     switch_latency_cycles=400, clock_hz=40e6,
                     overhead=OverheadPreset.USER_LEVEL.build(),
                     counters=counters)
    space = AddressSpace(Geometry(PAGE, 64))
    space.alloc("data", 8 * PAGE)
    dsm = TreadMarksDsm(net, space, net.overhead,
                        DsmConfig(num_nodes=num_nodes, page_bytes=PAGE,
                                  **config_kwargs))
    return engine, counters, dsm


def run_sync(engine, fn, *args):
    """Invoke an async DSM op and drain the engine; returns cb args."""
    out = []
    fn(*args, lambda *cb_args: out.append(cb_args))
    engine.run()
    return out


def lock_roundtrip(engine, dsm, node, lock=0):
    """acquire + release on `node` (callback-driven)."""
    done = []

    def granted(t, _remote):
        dsm.release(lock, node, node, lambda t2: done.append(t2))

    dsm.acquire(lock, node, node, granted)
    engine.run()
    assert done
    return done[0]


def test_config_validation():
    engine = Engine()
    counters = Counters()
    net = AtmNetwork(engine, 2, bandwidth_bytes_per_sec=1e6,
                     switch_latency_cycles=1, clock_hz=1e6,
                     overhead=OverheadPreset.SIM_BASE.build(),
                     counters=counters)
    space = AddressSpace(Geometry(PAGE, 64))
    space.alloc("d", PAGE)
    with pytest.raises(ConfigurationError):
        TreadMarksDsm(net, space, net.overhead, DsmConfig(num_nodes=3))
    with pytest.raises(ConfigurationError):
        TreadMarksDsm(net, space, net.overhead,
                      DsmConfig(num_nodes=2, page_bytes=8192))


def test_read_valid_pages_is_instant():
    engine, counters, dsm = make_dsm()
    out = run_sync(engine, dsm.read, 0, 0, PAGE)
    assert len(out) == 1
    assert counters.page_faults == 0
    assert counters.total_messages == 0


def test_write_then_lock_transfer_invalidates_acquirer():
    engine, counters, dsm = make_dsm()
    # Node 0 takes the lock, writes a page, releases.
    run_sync(engine, dsm.acquire, 0, 0, 0)
    run_sync(engine, dsm.write, 0, 0, PAGE, 100)
    run_sync(engine, dsm.release, 0, 0, 0)
    assert counters.twins_created == 1

    # Node 1 acquires: the grant's notices invalidate its copy.
    run_sync(engine, dsm.acquire, 0, 1, 1)
    assert counters.pages_invalidated == 1
    assert not dsm.pages[1].is_valid(0)
    assert dsm.pages[2].is_valid(0)      # node 2 has not synced

    # Node 1 touches the page: fault, diff request + response.
    run_sync(engine, dsm.read, 1, 0, 8)
    assert dsm.pages[1].is_valid(0)
    assert counters.remote_page_faults == 1
    assert counters.diffs_created == 1
    assert counters.messages[MsgKind.DIFF_REQUEST] == 1
    assert counters.messages[MsgKind.DIFF_RESPONSE] == 1


def test_diff_created_lazily_once():
    engine, counters, dsm = make_dsm()
    run_sync(engine, dsm.acquire, 0, 0, 0)
    run_sync(engine, dsm.write, 0, 0, PAGE, 64)
    run_sync(engine, dsm.release, 0, 0, 0)

    # Two other nodes fault on the page: one diff creation, two sends.
    for node in (1, 2):
        run_sync(engine, dsm.acquire, 0, node, node)
        run_sync(engine, dsm.read, node, 0, 8)
        run_sync(engine, dsm.release, 0, node, node)
    assert counters.diffs_created == 1
    assert counters.messages[MsgKind.DIFF_RESPONSE] == 2


def test_barrier_propagates_notices_to_everyone():
    engine, counters, dsm = make_dsm()
    run_sync(engine, dsm.write, 2, PAGE, PAGE, 32)

    done = []
    for node in range(4):
        dsm.barrier_arrive(0, node, lambda t, n=node: done.append(n))
    engine.run()
    assert sorted(done) == [0, 1, 2, 3]
    assert counters.barriers == 1
    # Page 1 invalid everywhere but at the writer.
    for node in range(4):
        assert dsm.pages[node].is_valid(1) == (node == 2)
    # All clocks converged.
    assert all(vc == dsm.vcs[0] for vc in dsm.vcs)


def test_concurrent_faults_coalesce():
    """Multiple waiters for one (node, page) fault share one fetch."""
    engine, counters, dsm = make_dsm()
    run_sync(engine, dsm.write, 2, 0, PAGE, 64)
    for node in range(4):
        dsm.barrier_arrive(0, node, lambda t: None)
    engine.run()

    hits = []
    dsm.read(1, 0, 8, lambda t: hits.append("a"))
    dsm.read(1, 64, 8, lambda t: hits.append("b"))
    engine.run()
    assert sorted(hits) == ["a", "b"]
    assert counters.messages[MsgKind.DIFF_REQUEST] == 1


def test_write_to_invalid_page_faults_first():
    engine, counters, dsm = make_dsm()
    run_sync(engine, dsm.write, 2, 0, PAGE, 64)
    for node in range(4):
        dsm.barrier_arrive(0, node, lambda t: None)
    engine.run()

    run_sync(engine, dsm.write, 1, 0, 128, 128)
    assert counters.remote_page_faults == 1
    assert dsm.pages[1].is_valid(0)
    assert dsm.pages[1].dirty == {0: 128}


def test_single_node_short_circuit():
    engine, counters, dsm = make_dsm(num_nodes=1)
    run_sync(engine, dsm.write, 0, 0, PAGE, 4096)
    out = run_sync(engine, dsm.read, 0, 0, PAGE)
    assert out
    assert counters.twins_created == 0
    assert counters.total_messages == 0
    lock_roundtrip(engine, dsm, 0)


def test_eager_push_keeps_copies_valid():
    engine, counters, dsm = make_dsm(eager_locks="all")
    run_sync(engine, dsm.acquire, 0, 0, 0)
    run_sync(engine, dsm.write, 0, 0, PAGE, 200)
    run_sync(engine, dsm.release, 0, 0, 0)
    # Pushes to the 3 other valid copies.
    assert counters.messages[MsgKind.DIFF_RESPONSE] == 3
    # Acquiring now produces no invalidation (copies updated in place).
    run_sync(engine, dsm.acquire, 0, 1, 1)
    assert dsm.pages[1].is_valid(0)
    assert counters.pages_invalidated == 0


def test_whole_page_mode_moves_page_sized_diffs():
    engine, counters, dsm = make_dsm(use_diffs=False)
    run_sync(engine, dsm.write, 0, 0, 64, 8)   # 8 changed bytes
    assert dsm.pages[0].dirty == {0: PAGE}


def test_page_refreshed_hook_called():
    engine, counters, dsm = make_dsm()
    refreshed = []
    dsm.page_refreshed_hook = lambda node, page: refreshed.append(
        (node, page))
    run_sync(engine, dsm.write, 2, 0, PAGE, 64)
    for node in range(4):
        dsm.barrier_arrive(0, node, lambda t: None)
    engine.run()
    run_sync(engine, dsm.read, 1, 0, 8)
    assert (1, 0) in refreshed
