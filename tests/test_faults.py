"""Fault plane + reliable delivery: determinism, recovery, loud failure.

Unit-level coverage of ``repro.net.faults`` / ``repro.net.reliable``
and their integration points: machine wiring, fingerprints, the cache,
and the engine's progress watchdog.
"""

import pickle

import pytest

from repro.apps import SorApp
from repro.errors import (ConfigurationError, DeadlockError,
                          NetworkPartitionError)
from repro.machines import (AllHardwareMachine, DecTreadMarksMachine,
                            SgiMachine)
from repro.net.faults import (FaultInjector, FaultPlan, FaultRule,
                              StallWindow, parse_schedule)
from repro.net.reliable import ReliableNetwork
from repro.sim.engine import Engine
from repro.stats.counters import MsgKind


# ----------------------------------------------------------------------
# FaultPlan / FaultRule / parse_schedule
# ----------------------------------------------------------------------

def test_default_plan_is_disabled_and_labelled_off():
    plan = FaultPlan()
    assert not plan.enabled
    assert plan.label() == "off"


def test_plan_enabled_by_any_mechanism():
    assert FaultPlan(loss_rate=0.01).enabled
    assert FaultPlan(dup_rate=0.01).enabled
    assert FaultPlan(jitter_cycles=5).enabled
    assert FaultPlan(schedule=(FaultRule("drop"),)).enabled
    assert FaultPlan(stalls=(StallWindow(0, 10, 20),)).enabled


def test_plan_label_composes():
    plan = FaultPlan(loss_rate=0.02, dup_rate=0.01, jitter_cycles=7,
                     schedule=(FaultRule("drop"),))
    assert plan.label() == "loss0.02+dup0.01+jit7+sched"


@pytest.mark.parametrize("kwargs", [
    {"loss_rate": -0.1}, {"loss_rate": 1.0}, {"dup_rate": 1.5},
    {"jitter_cycles": -1}, {"max_retries": -1}, {"rto_multiplier": 0},
    {"watchdog_cycles": 0},
])
def test_plan_rejects_bad_parameters(kwargs):
    with pytest.raises(ConfigurationError):
        FaultPlan(**kwargs)


def test_fault_rule_validation():
    with pytest.raises(ConfigurationError):
        FaultRule("reorder")                       # unknown action
    with pytest.raises(ConfigurationError):
        FaultRule("drop", kind="carrier_pigeon")   # unknown kind
    with pytest.raises(ConfigurationError):
        FaultRule("drop", nth=0)                   # nth is 1-based


def test_stall_window_validation():
    with pytest.raises(ConfigurationError):
        StallWindow(0, 10, 10)
    with pytest.raises(ConfigurationError):
        StallWindow(0, -1, 10)


def test_plan_is_picklable_and_value_equal():
    """Plans cross process boundaries under ``--jobs N``."""
    plan = FaultPlan(loss_rate=0.05, seed=7,
                     schedule=parse_schedule("drop:diff_request:nth=3"),
                     stalls=(StallWindow(1, 100, 200),))
    assert pickle.loads(pickle.dumps(plan)) == plan


def test_parse_schedule_full_spec():
    rules = parse_schedule(
        "drop:diff_request:src=2:nth=3; dup:lock_grant")
    assert rules == (
        FaultRule("drop", kind="diff_request", src=2, nth=3),
        FaultRule("dup", kind="lock_grant"),
    )


def test_parse_schedule_action_only():
    assert parse_schedule("drop") == (FaultRule("drop"),)


@pytest.mark.parametrize("spec", [
    "",                                   # empty
    "explode:diff_request",               # unknown action
    "drop:warp_request",                  # unknown kind
    "drop:diff_request:when=3",           # unknown filter
    "drop:diff_request:nth=soon",         # non-integer filter
    "drop:diff_request:page_request",     # two kinds
])
def test_parse_schedule_rejects_bad_specs(spec):
    with pytest.raises(ConfigurationError):
        parse_schedule(spec)


# ----------------------------------------------------------------------
# FaultInjector: determinism and monotone nesting
# ----------------------------------------------------------------------

def _decisions(plan, n=300):
    injector = FaultInjector(plan, 4)
    return [injector.decide(0, 1, MsgKind.DIFF_REQUEST)
            for _ in range(n)]


def test_injector_same_seed_same_decisions():
    plan = FaultPlan(loss_rate=0.1, dup_rate=0.05, jitter_cycles=50,
                     seed=3)
    assert _decisions(plan) == _decisions(plan)


def test_injector_seed_changes_decisions():
    a = _decisions(FaultPlan(loss_rate=0.2, seed=1))
    b = _decisions(FaultPlan(loss_rate=0.2, seed=2))
    assert [d.drop for d in a] != [d.drop for d in b]


def test_drop_sets_nest_across_loss_rates():
    """Raising loss_rate only adds drops (same seed): the property
    that makes the fault-sweep degradation curves monotone."""
    low = _decisions(FaultPlan(loss_rate=0.02, seed=9))
    high = _decisions(FaultPlan(loss_rate=0.15, seed=9))
    assert sum(d.drop for d in low) < sum(d.drop for d in high)
    for lo, hi in zip(low, high):
        assert not lo.drop or hi.drop


def test_injector_rejects_out_of_range_nodes():
    with pytest.raises(ConfigurationError):
        FaultInjector(FaultPlan(
            schedule=(FaultRule("drop", src=7),)), 4)
    with pytest.raises(ConfigurationError):
        FaultInjector(FaultPlan(stalls=(StallWindow(4, 0, 10),)), 4)


def test_nth_rule_fires_once():
    plan = FaultPlan(schedule=(
        FaultRule("drop", kind="diff_request", nth=2),))
    drops = [d.drop for d in _decisions(plan, n=5)]
    assert drops == [False, True, False, False, False]


def test_stall_windows_chain_to_fixpoint():
    injector = FaultInjector(FaultPlan(stalls=(
        StallWindow(1, 0, 100), StallWindow(1, 100, 250),
        StallWindow(2, 0, 50))), 4)
    assert injector.stall_until(1, 10) == 250
    assert injector.stall_until(2, 10) == 50
    assert injector.stall_until(2, 60) == 60
    assert injector.stall_until(0, 10) == 10


# ----------------------------------------------------------------------
# ReliableNetwork over a bare AtmNetwork
# ----------------------------------------------------------------------

def _deliveries(net, engine, sends):
    """Fire ``sends`` (src, dst) pairs; return delivery times per pair."""
    arrived = {}
    for i, (src, dst) in enumerate(sends):
        net.send(src, dst, 128, kind=MsgKind.DIFF_REQUEST,
                 on_delivered=lambda t, i=i: arrived.setdefault(i, []
                                                                ).append(t))
    engine.run()
    return arrived


def test_reliable_passthrough_without_faults(atm, engine, counters):
    net = ReliableNetwork(atm, FaultPlan())
    arrived = _deliveries(net, engine, [(0, 1), (2, 3)])
    assert sorted(arrived) == [0, 1]
    assert all(len(times) == 1 for times in arrived.values())
    assert counters.retransmissions == 0
    assert counters.messages_dropped == 0


def test_dropped_message_is_retransmitted_exactly_once_delivered(
        atm, engine, counters):
    net = ReliableNetwork(atm, FaultPlan(
        schedule=parse_schedule("drop:diff_request:nth=1")))
    clean_rtt = atm.roundtrip_estimate(128)
    arrived = _deliveries(net, engine, [(0, 1)])
    assert len(arrived[0]) == 1          # delivered exactly once
    assert arrived[0][0] > clean_rtt     # ...but later than a clean send
    assert counters.messages_dropped == 1
    assert counters.retransmissions == 1
    assert counters.timeouts == 1
    assert counters.timeout_cycles > 0


def test_duplicate_suppressed_at_receiver(atm, engine, counters):
    net = ReliableNetwork(atm, FaultPlan(
        schedule=parse_schedule("dup:diff_request")))
    arrived = _deliveries(net, engine, [(0, 1)])
    assert len(arrived[0]) == 1          # one delivery despite two copies
    assert counters.duplicates_dropped == 1


def _fresh_net(plan=None):
    """A fresh 4-node ATM network (optionally fault-wrapped)."""
    from repro.net.atm import AtmNetwork
    from repro.net.overhead import OverheadPreset
    from repro.stats.counters import Counters
    engine = Engine()
    atm = AtmNetwork(engine, 4,
                     bandwidth_bytes_per_sec=30e6 / 8,
                     switch_latency_cycles=400, clock_hz=40e6,
                     overhead=OverheadPreset.USER_LEVEL.build(),
                     counters=Counters())
    net = atm if plan is None else ReliableNetwork(atm, plan)
    return net, engine


def test_jitter_delays_delivery_deterministically():
    base_net, base_engine = _fresh_net()
    base = _deliveries(base_net, base_engine, [(0, 1)])
    plan = FaultPlan(jitter_cycles=500, seed=1)
    net, engine = _fresh_net(plan)
    jittered = _deliveries(net, engine, [(0, 1)])
    again, again_engine = _fresh_net(plan)
    repeat = _deliveries(again, again_engine, [(0, 1)])
    assert jittered[0][0] >= base[0][0]
    assert jittered[0] == repeat[0]      # same seed, same jitter


def test_stall_window_defers_transmission(atm, engine, counters):
    net = ReliableNetwork(atm, FaultPlan(
        stalls=(StallWindow(1, 0, 50_000),)))
    arrived = _deliveries(net, engine, [(0, 1)])
    assert arrived[0][0] >= 50_000
    assert counters.stall_deferrals == 1


def test_loopback_bypasses_fault_plane(atm, engine, counters):
    net = ReliableNetwork(atm, FaultPlan(
        schedule=parse_schedule("drop")))   # drop everything on the wire
    arrived = _deliveries(net, engine, [(2, 2)])
    assert len(arrived[0]) == 1
    assert counters.messages_dropped == 0


def test_exhausted_retries_raise_partition_error(atm, engine, counters):
    net = ReliableNetwork(atm, FaultPlan(
        schedule=parse_schedule("drop:diff_request"), max_retries=2))
    net.send(0, 3, 128, kind=MsgKind.DIFF_REQUEST)
    with pytest.raises(NetworkPartitionError) as err:
        engine.run()
    assert (err.value.src, err.value.dst) == (0, 3)
    assert err.value.kind == "diff_request"
    assert err.value.attempts == 3       # original + 2 retries
    assert err.value.now == engine.now
    assert counters.timeouts == 3
    # Exponential backoff: total timeout wait is rto * (1 + 2 + 4).
    base_rto = max(1, int(net.plan.rto_multiplier *
                          atm.roundtrip_estimate(128)))
    assert counters.timeout_cycles == 7 * base_rto


# ----------------------------------------------------------------------
# Machine wiring: hardware rejection, zero overhead when disabled
# ----------------------------------------------------------------------

def test_hardware_machines_reject_enabled_fault_plans():
    plan = FaultPlan(loss_rate=0.05)
    for factory in (SgiMachine, AllHardwareMachine):
        with pytest.raises(ConfigurationError):
            factory(faults=plan)
        factory(faults=FaultPlan())      # disabled plan is harmless
        factory(faults=None)


def test_disabled_plan_machine_is_byte_identical_to_clean():
    app = SorApp(rows=32, cols=32, iterations=2)
    clean = DecTreadMarksMachine().run(app, 4)
    disabled = DecTreadMarksMachine(faults=FaultPlan()).run(app, 4)
    assert disabled.summary() == clean.summary()
    assert disabled.machine == clean.machine == "treadmarks"


def test_disabled_plan_shares_cache_fingerprint():
    clean = DecTreadMarksMachine()
    disabled = DecTreadMarksMachine(faults=FaultPlan())
    enabled = DecTreadMarksMachine(faults=FaultPlan(loss_rate=0.02))
    assert disabled.fingerprint_data(4) == clean.fingerprint_data(4)
    assert enabled.fingerprint_data(4) != clean.fingerprint_data(4)
    # The 1-proc run is the uniprocessor baseline: no network, no
    # faults — an enabled plan must not fork its cache entry.
    assert enabled.fingerprint_data(1) == clean.fingerprint_data(1)


def test_enabled_plan_suffixes_machine_name():
    machine = DecTreadMarksMachine(faults=FaultPlan(loss_rate=0.05))
    assert machine.name.endswith("-loss0.05")


def test_lossy_run_costs_cycles_and_counts_recovery():
    app = SorApp(rows=32, cols=32, iterations=2)
    clean = DecTreadMarksMachine().run(app, 4)
    lossy = DecTreadMarksMachine(
        faults=FaultPlan(loss_rate=0.05, seed=42)).run(app, 4)
    assert lossy.cycles > clean.cycles
    assert lossy.counters.messages_dropped > 0
    assert lossy.counters.retransmissions > 0
    assert lossy.counters.timeout_cycles > 0
    # Recovery never corrupts the computation itself.
    assert lossy.app_output["checksum"] == clean.app_output["checksum"]


# ----------------------------------------------------------------------
# Engine progress watchdog
# ----------------------------------------------------------------------

class _StuckTask:
    """Registered but never progresses: ops_issued frozen at 0."""

    ops_issued = 0
    finished = False

    def __repr__(self):
        return "stuck-task"


def test_watchdog_converts_silent_no_progress_into_deadlock():
    engine = Engine()
    engine.watchdog_cycles = 10_000
    task = _StuckTask()
    engine.register_task(task)

    def heartbeat():
        engine.schedule(1_000, heartbeat)   # events forever, no progress

    engine.schedule(0, heartbeat)
    with pytest.raises(DeadlockError) as err:
        engine.run()
    assert task in err.value.blocked
    assert "no task progress" in err.value.reason
    assert err.value.now >= 10_000


def test_watchdog_event_backstop_catches_same_cycle_churn():
    engine = Engine()
    engine.watchdog_cycles = 10**12
    engine.WATCHDOG_MAX_EVENTS = 1_000
    engine.register_task(_StuckTask())

    def churn():
        engine.schedule(0, churn)           # time never advances

    engine.schedule(0, churn)
    with pytest.raises(DeadlockError) as err:
        engine.run()
    assert "events" in err.value.reason


def test_watchdog_quiet_when_tasks_progress():
    engine = Engine()
    engine.watchdog_cycles = 100

    class Worker:
        ops_issued = 0
        finished = False

    worker = Worker()
    engine.register_task(worker)

    def step(remaining):
        worker.ops_issued += 1
        if remaining:
            engine.schedule(1_000, step, remaining - 1)
        else:
            worker.finished = True

    engine.schedule(0, step, 20)
    engine.run()                             # progresses: no DeadlockError
    assert worker.ops_issued == 21


def test_enabled_plan_arms_machine_watchdog():
    machine = DecTreadMarksMachine(
        faults=FaultPlan(loss_rate=0.01, watchdog_cycles=123_456))
    assert machine.watchdog_cycles == 123_456
    assert DecTreadMarksMachine().watchdog_cycles is None


# ----------------------------------------------------------------------
# Backoff edges: budget boundaries, late duplicates, stalled retries
# ----------------------------------------------------------------------

def _drop_first_n(n):
    """A schedule dropping exactly the first ``n`` diff_request frames."""
    return tuple(FaultRule("drop", kind="diff_request", nth=k)
                 for k in range(1, n + 1))


def test_retry_budget_exactly_not_exhausted(atm, engine, counters):
    """max_retries retries dropped, final attempt delivered: the last
    grain of budget is enough."""
    retries = 3
    net = ReliableNetwork(atm, FaultPlan(
        schedule=_drop_first_n(retries), max_retries=retries))
    arrived = _deliveries(net, engine, [(0, 1)])
    assert len(arrived[0]) == 1
    assert counters.retransmissions == retries
    assert counters.timeouts == retries


def test_retry_budget_exactly_exhausted(atm, engine, counters):
    """One more drop than the budget: the attempt count hits
    1 + max_retries and the timeout raises instead of rearming."""
    retries = 3
    net = ReliableNetwork(atm, FaultPlan(
        schedule=_drop_first_n(retries + 1), max_retries=retries))
    net.send(0, 1, 128, kind=MsgKind.DIFF_REQUEST)
    with pytest.raises(NetworkPartitionError) as err:
        engine.run()
    assert err.value.attempts == retries + 1
    assert counters.timeouts == retries + 1
    # Backoff doubled every round: rto * (2^(retries+1) - 1) total.
    base_rto = max(1, int(net.plan.rto_multiplier *
                          atm.roundtrip_estimate(128)))
    assert counters.timeout_cycles == (2 ** (retries + 1) - 1) * base_rto


def test_duplicate_after_timeout_is_suppressed(atm, engine, counters):
    """Attempt 1 dropped, the retransmission duplicated: both copies
    of attempt 2 arrive after a real timeout, and delivery is still
    exactly-once with the extra copy counted as a dropped duplicate."""
    net = ReliableNetwork(atm, FaultPlan(schedule=(
        FaultRule("drop", kind="diff_request", nth=1),
        FaultRule("dup", kind="diff_request", nth=2))))
    base_rto = max(1, int(net.plan.rto_multiplier *
                          atm.roundtrip_estimate(128)))
    arrived = _deliveries(net, engine, [(0, 1)])
    assert len(arrived[0]) == 1                  # exactly once
    assert arrived[0][0] >= base_rto             # after the timeout wait
    assert counters.timeouts == 1                # the timer really fired
    assert counters.retransmissions == 1
    assert counters.duplicates_dropped == 1      # second copy suppressed


def test_retransmission_defers_under_stall_window(atm, engine, counters):
    """First frame dropped; the receiver stalls over the timeout: the
    retransmission waits for the window to close instead of sending
    into the stall."""
    base_rto = max(1, int(4.0 * atm.roundtrip_estimate(128)))
    window_end = 3 * base_rto
    net = ReliableNetwork(atm, FaultPlan(
        schedule=_drop_first_n(1),
        stalls=(StallWindow(1, 1, window_end),)))
    arrived = _deliveries(net, engine, [(0, 1)])
    assert len(arrived[0]) == 1
    assert counters.stall_deferrals == 1
    assert counters.retransmissions == 1
    assert arrived[0][0] >= window_end           # held until the close
