"""Fused (OpBlock) issue is observably identical to per-op issue.

An :class:`~repro.apps.ops.OpBlock` is scheduling sugar, not timing
semantics: members issue one per step through the same handler
dispatch and the same heap-mediated completions as bare operations.
These tests pin the isomorphism end to end — every machine model must
produce a byte-identical ``RunResult`` whether the applications yield
their natural fused chunks or the same stream unrolled one op at a
time.
"""

from __future__ import annotations

import json

import pytest

from repro.apps import ops
from repro.harness.workloads import Scale, make_app
from repro.machines import make_machine


class UnfusedApp:
    """Delegating wrapper that unrolls every OpBlock the app yields."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, attr):
        return getattr(self._inner, attr)

    def programs(self, ctx):
        return [ops.unfuse(p) for p in self._inner.programs(ctx)]


#: hs runs with 2-processor nodes so a 4-processor run crosses the
#: software DSM layer (the default hs8 would fit on one node).
MACHINES = (
    ("treadmarks", None),
    ("sgi", None),
    ("as", None),
    ("ah", None),
    ("hs", {"procs_per_node": 2}),
)

WORKLOADS = ("sor_small", "tsp18")

NPROCS = 4


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("name,params",
                         MACHINES, ids=[m for m, _p in MACHINES])
def test_fused_issue_matches_per_op_issue(name, params, workload):
    machine = make_machine(name, params=params)
    fused = machine.run(make_app(workload, Scale.TEST), NPROCS)
    unrolled = machine.run(
        UnfusedApp(make_app(workload, Scale.TEST)), NPROCS)

    assert fused.cycles == unrolled.cycles
    assert fused.events == unrolled.events
    assert fused.counters.to_jsonable() == unrolled.counters.to_jsonable()
    assert fused.app_output == unrolled.app_output
    # Byte-identical summaries, not merely approximately equal.
    assert (json.dumps(fused.summary(), sort_keys=True)
            == json.dumps(unrolled.summary(), sort_keys=True))


def test_unfuse_wrapper_preserves_app_surface():
    app = make_app("sor_small", Scale.TEST)
    wrapped = UnfusedApp(app)
    assert wrapped.name == app.name
    assert wrapped.regions(NPROCS) == app.regions(NPROCS)
