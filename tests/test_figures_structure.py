"""Structural checks on figure reports at test scale.

Complements test_shapes (qualitative claims) by asserting each report
carries exactly the series and points its figure needs — the contract
EXPERIMENTS.md and the benchmark archive rely on.
"""

import pytest

from repro.harness.experiments import Scale, run_experiment
from repro.harness.workloads import SIMULATED_PROCS


@pytest.fixture(scope="module")
def reports():
    cache = {}

    def get(exp_id):
        if exp_id not in cache:
            cache[exp_id] = run_experiment(exp_id, Scale.TEST)
        return cache[exp_id]

    return get


@pytest.mark.parametrize("fig", [f"fig{i}" for i in range(1, 9)])
def test_experimental_figures_have_two_machines(fig, reports):
    report = reports(fig)
    speedups = report.data["speedups"]
    assert set(speedups) == {"treadmarks", "sgi"}
    for series in speedups.values():
        assert set(series) == {1, 2, 4, 8}
        assert series[1] == pytest.approx(1.0)
        assert all(v > 0 for v in series.values())


@pytest.mark.parametrize("fig", ["fig9", "fig10", "fig11"])
def test_sim_figures_have_three_architectures(fig, reports):
    report = reports(fig)
    speedups = report.data["speedups"]
    assert set(speedups) == {"ah", "hs8", "as"}
    procs = SIMULATED_PROCS[Scale.TEST]
    for series in speedups.values():
        assert set(procs) <= set(series)


def test_fig12_13_consistent_totals(reports):
    msgs = reports("fig12").data
    data = reports("fig13").data
    assert set(msgs) == set(data)
    for workload in msgs:
        assert msgs[workload]["as_miss"] >= 0
        assert sum(data[workload]["as"].values()) > 0


@pytest.mark.parametrize("fig", ["fig14", "fig15", "fig16"])
def test_overhead_sweeps_have_four_series(fig, reports):
    speedups = reports(fig).data["speedups"]
    assert len(speedups) == 4
    labels = set(speedups)
    assert "fixed=2000,word=4" in labels
    assert "fixed=100,word=1" in labels


def test_x4_reports_both_implementations(reports):
    data = reports("x4").data
    assert set(data) == {"user-level", "kernel-level"}
    for row in data.values():
        assert row["lock_ms"] > 0
        assert row["barrier_ms"] > 0
    assert data["kernel-level"]["lock_ms"] < \
        data["user-level"]["lock_ms"]
