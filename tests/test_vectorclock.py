"""Vector timestamps, including algebraic laws via hypothesis."""

import pytest
from hypothesis import given, strategies as st

from repro.dsm.vectorclock import ENTRY_BYTES, VectorClock
from repro.errors import ConfigurationError

clocks = st.lists(st.integers(0, 100), min_size=1, max_size=8).map(
    lambda e: VectorClock(entries=e))


def paired(draw_width=st.integers(1, 8)):
    return draw_width.flatmap(
        lambda w: st.tuples(
            st.lists(st.integers(0, 100), min_size=w, max_size=w).map(
                lambda e: VectorClock(entries=e)),
            st.lists(st.integers(0, 100), min_size=w, max_size=w).map(
                lambda e: VectorClock(entries=e))))


def test_basics():
    vc = VectorClock(4)
    assert vc.num_nodes == 4
    assert vc[2] == 0
    assert vc.tick(2) == 1
    assert vc[2] == 1
    vc[3] = 7
    assert vc.snapshot() == (0, 0, 1, 7)


def test_zero_nodes_rejected():
    with pytest.raises(ConfigurationError):
        VectorClock(0)


def test_copy_is_independent():
    a = VectorClock(entries=[1, 2])
    b = a.copy()
    b.tick(0)
    assert a[0] == 1 and b[0] == 2


def test_dominates_and_concurrent():
    a = VectorClock(entries=[2, 1])
    b = VectorClock(entries=[1, 1])
    c = VectorClock(entries=[1, 2])
    assert a.dominates(b) and not b.dominates(a)
    assert a.concurrent_with(c)
    assert not a.concurrent_with(a)


def test_width_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        VectorClock(2).merge(VectorClock(3))


def test_wire_bytes():
    assert VectorClock(8).wire_bytes() == 8 * ENTRY_BYTES


def test_equality_and_hash():
    a = VectorClock(entries=[1, 2])
    b = VectorClock(entries=[1, 2])
    assert a == b and hash(a) == hash(b)
    assert a != VectorClock(entries=[2, 1])


@given(paired())
def test_merge_is_least_upper_bound(pair):
    a, b = pair
    merged = a.copy()
    merged.merge(b)
    assert merged.dominates(a)
    assert merged.dominates(b)
    # Least: any clock dominating both dominates the merge.
    for i in range(merged.num_nodes):
        assert merged[i] == max(a[i], b[i])


@given(paired())
def test_merge_commutative(pair):
    a, b = pair
    ab = a.copy()
    ab.merge(b)
    ba = b.copy()
    ba.merge(a)
    assert ab == ba


@given(clocks)
def test_merge_idempotent(a):
    m = a.copy()
    m.merge(a)
    assert m == a


@given(paired())
def test_dominance_antisymmetry(pair):
    a, b = pair
    if a.dominates(b) and b.dominates(a):
        assert a == b


@given(clocks)
def test_tick_strictly_advances(a):
    before = a.copy()
    a.tick(0)
    assert a.dominates(before)
    assert a != before
