"""Machine parameter presets: internal consistency of the calibration."""

import pytest

from repro.machines.params import (AhParams, AsParams, DecAtmParams,
                                   HsParams, SgiParams)
from repro.net.overhead import OverheadPreset


def test_dec_atm_defaults_consistent():
    p = DecAtmParams()
    assert p.bandwidth_bytes == pytest.approx(p.user_bandwidth_bits / 8)
    # seconds_to_cycles rounds up, so allow one cycle of slack.
    exact = p.switch_latency_s * p.clock_hz
    assert exact <= p.switch_latency_cycles <= exact + 1
    assert p.overhead().fixed_send_cycles > 0


def test_dec_kernel_level_variant():
    user = DecAtmParams()
    kernel = user.kernel_level()
    assert kernel.overhead_preset is OverheadPreset.KERNEL_LEVEL
    assert kernel.overhead().send_cost(64) < user.overhead().send_cost(64)
    # frozen dataclass: the original is untouched
    assert user.overhead_preset is OverheadPreset.USER_LEVEL


def test_dec_memory_slightly_faster_than_sgi_l2():
    """§2.2: DEC main memory beats the SGI's bus-clocked L2 per byte."""
    dec = DecAtmParams()
    sgi = SgiParams()
    dec_per_byte = dec.cache.miss_cycles / dec.cache.line_bytes
    sgi_per_byte = sgi.l2_hit_cycles / sgi.line_bytes
    assert dec_per_byte < sgi_per_byte


def test_sgi_l2_miss_slower_than_hit():
    sgi = SgiParams()
    miss = sgi.bus.transaction_cycles(sgi.line_bytes) + \
        sgi.memory_extra_cycles
    assert miss > sgi.l2_hit_cycles


def test_as_latency_is_one_microsecond():
    p = AsParams()
    assert p.network_latency_cycles == 100  # 1 us at 100 MHz


def test_as_overhead_sweep_variants():
    base = AsParams()
    cheap = base.with_overhead(OverheadPreset.SHRIMP_BCOPY)
    assert cheap.overhead().send_cost(256) < base.overhead().send_cost(256)


def test_ah_miss_latency_ordering():
    p = AhParams()
    assert p.local_miss_cycles < p.remote_clean_cycles < \
        p.remote_dirty_cycles


def test_hs_local_miss_about_25_cycles():
    """§3.1: HS local misses slightly above AS/AH's 20 cycles."""
    p = HsParams()
    per_line = (p.node_bus.transaction_cycles(p.cpu.line_bytes) +
                p.node_memory_extra_cycles)
    assert 22 <= per_line <= 30
    assert per_line > AsParams().local_miss_cycles


def test_hs_node_size_default():
    assert HsParams().procs_per_node == 8


def test_all_sim_machines_share_cpu():
    assert AsParams().clock_hz == AhParams().clock_hz == \
        HsParams().clock_hz == 100e6
