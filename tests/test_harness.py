"""Harness: registry completeness, formatting, workloads, CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import fmt
from repro.harness.cli import build_parser, main
from repro.harness.experiments import (REGISTRY, Scale, get_experiment,
                                       list_experiments, run_experiment)
from repro.harness.workloads import (EXPERIMENTAL_PROCS, WORKLOADS,
                                     make_app)


def test_registry_covers_every_paper_artifact():
    expected = (["t1", "t2"] + [f"fig{i}" for i in range(1, 17)] +
                ["x1", "x2", "x3", "x4", "a1", "a2", "a3",
                 "fault-sweep", "failure-sweep", "sync-sweep",
                 "ablation-sweep"])
    assert set(REGISTRY) == set(expected)
    assert [e.exp_id for e in list_experiments()] == expected


def test_every_experiment_has_metadata():
    for exp in REGISTRY.values():
        assert exp.title
        assert exp.paper_ref
        assert exp.shape_note
        assert callable(exp.run)


def test_get_experiment_unknown():
    with pytest.raises(ConfigurationError):
        get_experiment("fig99")


def test_workload_factories_at_all_scales():
    for name in WORKLOADS:
        for scale in Scale:
            app = make_app(name, scale)
            assert app.regions(4)
    with pytest.raises(ConfigurationError):
        make_app("nope", Scale.TEST)


def test_experimental_procs_go_to_eight():
    assert EXPERIMENTAL_PROCS == (1, 2, 4, 8)


def test_format_table_alignment():
    lines = fmt.format_table(["name", "v"], [["a", 1.5], ["bb", 1234.0]])
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "1,234" in lines[3]


def test_format_speedups():
    lines = fmt.format_speedups({"m1": {1: 1.0, 2: 1.9}}, [1, 2])
    assert "m1" in lines[2]
    assert "1.90" in lines[2]


def test_format_percent_breakdown():
    lines = fmt.format_percent_breakdown("total", {"x": 25.0}, 100.0)
    assert "25.0%" in lines[1].replace(" ", "").replace("(", " (") or \
        "25.0" in lines[1]


def test_run_t1_at_test_scale_structure():
    report = run_experiment("t1", Scale.TEST)
    assert report.exp_id == "t1"
    assert len(report.data) == 8
    for row in report.data.values():
        # DSM overhead ~ nil at one processor.
        assert row["treadmarks"] == pytest.approx(row["dec"])
    assert report.text().startswith("== t1")


def test_run_fig_at_test_scale_structure():
    report = run_experiment("fig4", Scale.TEST)
    speedups = report.data["speedups"]
    assert set(speedups) == {"treadmarks", "sgi"}
    for series in speedups.values():
        assert series[1] == pytest.approx(1.0)


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig16" in out and "Table 1" in out


def test_cli_run_unknown_id(capsys):
    assert main(["run", "fig99"]) == 2


def test_cli_run_test_scale(capsys):
    assert main(["run", "x3", "--scale", "test"]) == 0
    out = capsys.readouterr().out
    assert "x3" in out


def test_cli_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
