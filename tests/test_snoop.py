"""Illinois snooping coherence."""

import pytest

from repro.hw.snoop import SnoopingSystem
from repro.mem.directcache import (DirectMappedCache, EXCLUSIVE, INVALID,
                                   MODIFIED, SHARED)
from repro.net.bus import BusModel, BusTiming
from repro.stats.counters import Counters

LINE = 64


@pytest.fixture
def system():
    counters = Counters()
    caches = [DirectMappedCache(16 * LINE, LINE, name=f"c{i}")
              for i in range(4)]
    bus = BusModel("bus", BusTiming(), counters)
    return SnoopingSystem(caches, bus, counters, line_bytes=LINE,
                          hit_cycles=1.0, memory_extra_cycles=10), counters


def test_cold_read_fills_exclusive(system):
    snoop, counters = system
    end = snoop.read(0, 0, 4, now=0)
    assert end > 0
    assert all(snoop.caches[0].state_of(l) == EXCLUSIVE for l in range(4))
    assert counters.bus_transactions == 4


def test_second_reader_shares(system):
    snoop, _counters = system
    snoop.read(0, 0, 4, now=0)
    snoop.read(1, 0, 4, now=0)
    # The second reader fills SHARED (someone else has copies).
    assert all(snoop.caches[1].state_of(l) == SHARED for l in range(4))
    # Illinois: the first reader's E copies survive a read (stay valid).
    assert all(snoop.caches[0].state_of(l) != INVALID for l in range(4))


def test_read_hits_cost_no_bus(system):
    snoop, counters = system
    snoop.read(0, 0, 4, now=0)
    before = counters.bus_transactions
    end = snoop.read(0, 0, 4, now=1000)
    assert counters.bus_transactions == before
    assert end == 1000 + 4  # 4 hits x 1 cycle


def test_write_invalidates_other_copies(system):
    snoop, counters = system
    snoop.read(0, 0, 4, now=0)
    snoop.read(1, 0, 4, now=0)
    snoop.write(1, 0, 4, now=100)
    assert all(snoop.caches[0].state_of(l) == INVALID for l in range(4))
    assert all(snoop.caches[1].state_of(l) == MODIFIED for l in range(4))
    assert counters.invalidations == 4


def test_dirty_supplier_downgraded_on_read(system):
    snoop, counters = system
    snoop.write(0, 0, 2, now=0)
    snoop.read(1, 0, 2, now=100)
    assert counters.cache_to_cache == 2
    assert all(snoop.caches[0].state_of(l) == SHARED for l in range(2))


def test_write_flushes_remote_dirty(system):
    snoop, counters = system
    snoop.write(0, 0, 2, now=0)
    snoop.write(1, 0, 2, now=100)
    assert all(snoop.caches[0].state_of(l) == INVALID for l in range(2))
    assert all(snoop.caches[1].state_of(l) == MODIFIED for l in range(2))


def test_bus_contention_serializes(system):
    snoop, _counters = system
    end0 = snoop.read(0, 0, 8, now=0)
    end1 = snoop.read(1, 8, 16, now=0)   # disjoint lines, same bus
    assert end1 > end0 or end0 > 8  # one of them waited for the bus


def test_single_writer_invariant(system):
    """At most one cache holds a line MODIFIED, ever."""
    snoop, _counters = system
    script = [(0, "w", 0, 4), (1, "r", 0, 4), (2, "w", 2, 6),
              (0, "r", 2, 4), (3, "w", 0, 8), (1, "w", 4, 6)]
    now = 0
    for proc, kind, first, last in script:
        if kind == "w":
            now = snoop.write(proc, first, last, now)
        else:
            now = snoop.read(proc, first, last, now)
        for line in range(0, 8):
            holders = [c for c in snoop.caches
                       if c.state_of(line) == MODIFIED]
            others = [c for c in snoop.caches
                      if c.state_of(line) in (SHARED, EXCLUSIVE)]
            assert len(holders) <= 1
            if holders:
                assert not others, f"M + valid copies for line {line}"
