"""RLE diffs: encoding, application, merging, sizing — with property
tests on the encode/apply round trip."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsm.diff import (DIFF_HEADER_BYTES, RUN_HEADER_BYTES, Diff,
                            apply_diff, encode_diff, estimate_wire_bytes,
                            merge_diffs)
from repro.errors import ProtocolError

PAGE = 256


def test_empty_diff_for_identical_pages():
    page = np.arange(PAGE, dtype=np.uint8)
    diff = encode_diff(0, page, page.copy())
    assert diff.is_empty()
    assert diff.changed_bytes == 0
    assert diff.wire_bytes() == DIFF_HEADER_BYTES


def test_single_run():
    twin = np.zeros(PAGE, dtype=np.uint8)
    cur = twin.copy()
    cur[10:20] = 7
    diff = encode_diff(0, twin, cur)
    assert diff.num_runs == 1
    assert diff.runs[0][0] == 10
    assert diff.changed_bytes == 10
    assert diff.wire_bytes() == DIFF_HEADER_BYTES + RUN_HEADER_BYTES + 10


def test_multiple_runs():
    twin = np.zeros(PAGE, dtype=np.uint8)
    cur = twin.copy()
    cur[0] = 1
    cur[100:110] = 2
    cur[PAGE - 1] = 3
    diff = encode_diff(0, twin, cur)
    assert diff.num_runs == 3


def test_shape_mismatch_rejected():
    with pytest.raises(ProtocolError):
        encode_diff(0, np.zeros(4, np.uint8), np.zeros(5, np.uint8))


def test_apply_out_of_bounds_rejected():
    base = np.zeros(8, dtype=np.uint8)
    with pytest.raises(ProtocolError):
        apply_diff(base, Diff(0, [(6, b"abc")]))


def test_merge_later_wins():
    d1 = Diff(0, [(0, b"\x01\x01\x01\x01")])
    d2 = Diff(0, [(2, b"\x02\x02")])
    merged = merge_diffs([d1, d2])
    base = np.zeros(8, dtype=np.uint8)
    apply_diff(base, merged)
    assert list(base[:6]) == [1, 1, 2, 2, 0, 0]


def test_merge_rejects_mixed_pages_or_empty():
    with pytest.raises(ProtocolError):
        merge_diffs([])
    with pytest.raises(ProtocolError):
        merge_diffs([Diff(0), Diff(1)])


def test_merge_of_empties_is_empty():
    assert merge_diffs([Diff(3), Diff(3)]).is_empty()


def test_estimate_wire_bytes():
    assert estimate_wire_bytes(0) == DIFF_HEADER_BYTES
    assert estimate_wire_bytes(100) == \
        DIFF_HEADER_BYTES + RUN_HEADER_BYTES + 100
    assert estimate_wire_bytes(100, runs=3) == \
        DIFF_HEADER_BYTES + 3 * RUN_HEADER_BYTES + 100
    with pytest.raises(ProtocolError):
        estimate_wire_bytes(-1)


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------
pages = st.binary(min_size=PAGE, max_size=PAGE).map(
    lambda b: np.frombuffer(b, dtype=np.uint8).copy())


@settings(max_examples=150, deadline=None)
@given(pages, pages)
def test_encode_apply_roundtrip(twin, current):
    """twin + diff(twin, current) == current, always."""
    diff = encode_diff(0, twin, current)
    patched = twin.copy()
    apply_diff(patched, diff)
    assert np.array_equal(patched, current)


@settings(max_examples=150, deadline=None)
@given(pages, pages)
def test_diff_is_minimal(twin, current):
    """The diff carries exactly the bytes that differ."""
    diff = encode_diff(0, twin, current)
    assert diff.changed_bytes == int(np.count_nonzero(twin != current))


@settings(max_examples=100, deadline=None)
@given(pages, pages, pages)
def test_merge_equals_sequential_apply(base, mid, final):
    """Merging two diffs equals applying them in order."""
    d1 = encode_diff(0, base, mid)
    d2 = encode_diff(0, mid, final)
    merged = merge_diffs([d1, d2])
    via_merge = base.copy()
    apply_diff(via_merge, merged)
    via_seq = base.copy()
    apply_diff(via_seq, d1)
    apply_diff(via_seq, d2)
    assert np.array_equal(via_merge, via_seq)


@settings(max_examples=100, deadline=None)
@given(pages, pages)
def test_runs_are_disjoint_and_sorted(twin, current):
    diff = encode_diff(0, twin, current)
    prev_end = -1
    for offset, data in diff.runs:
        assert offset > prev_end
        assert len(data) > 0
        prev_end = offset + len(data) - 1
