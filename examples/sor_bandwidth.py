#!/usr/bin/env python
"""Why a network of workstations can beat a bus multiprocessor.

Reproduces the paper's §2.4.2 SOR analysis at reduced scale:

1. On a large grid, the SGI 4D/480's shared bus saturates — every
   processor's misses serialize — while each DECstation streams from
   its private memory.  TreadMarks wins on *speedup* despite paying
   millisecond synchronization costs.
2. TreadMarks also moves far less *data*: its diffs carry only words
   whose values changed, and with the standard zero interior most of
   the grid doesn't change early on.  The control experiment
   (``init="random"``) equalizes data movement, and TreadMarks still
   wins on bandwidth.

Run:  python examples/sor_bandwidth.py
"""

from repro import SorApp, make_machine


def speedup8(machine, app):
    base = machine.run(app, 1)
    top = machine.run(app, 8)
    return base.seconds / top.seconds, top


def main() -> None:
    print("=== Large SOR (bus-saturating working set) ===")
    for machine in (make_machine("treadmarks"), make_machine("sgi")):
        # 16 MB grid: per-processor bands exceed the SGI's 1 MB L2
        # even at 8 processors, so every iteration streams over the
        # shared bus.
        app = SorApp(rows=2000, cols=1000, iterations=4)
        sp, top = speedup8(machine, app)
        extra = ""
        if machine.name == "sgi":
            util = top.counters.bus_data_bytes / 1024
            extra = f"  (bus moved {util:,.0f} KB)"
        else:
            extra = (f"  (network moved "
                     f"{top.counters.total_bytes / 1024:,.0f} KB)")
        print(f"  {machine.name:<12} speedup@8 = {sp:5.2f}{extra}")

    print("\n=== The diff effect: zero interior vs every-point-changes ===")
    for init, label in (("zero", "zero interior (paper default)"),
                        ("random", "all points change (control)")):
        app = SorApp(rows=500, cols=500, iterations=4, init=init)
        top = make_machine("treadmarks").run(app, 8)
        print(f"  {label:<36} TreadMarks miss data = "
              f"{top.counters.miss_data_bytes / 1024:8,.0f} KB")

    print("\nThe zero-interior run ships a fraction of the data: diffs")
    print("are computed from page contents, so unchanged words never")
    print("travel — hardware coherence moves whole lines regardless.")


if __name__ == "__main__":
    main()
