#!/usr/bin/env python
"""Where does the time go?  Tracing one run and a whole sweep.

Reproduces the paper's Figure-14 question in miniature: trace SOR on
the software DSM and the bus machine, print each processor's time
breakdown, then export a Chrome trace you can open in
chrome://tracing or https://ui.perfetto.dev.

Run:  python examples/trace_breakdown.py
"""

from repro import SorApp, Tracer, make_machine, trace_session
from repro.trace import write_chrome_trace


def single_run() -> None:
    """Explicit tracer: full control over one run."""
    app = SorApp(rows=500, cols=500, iterations=4)
    tracer = Tracer(label="treadmarks/sor/p8")
    result = make_machine("treadmarks").run(app, 8, tracer=tracer)

    b = result.breakdown
    print(f"{result.machine} / {result.app} on {result.nprocs} "
          f"processors: {result.cycles} cycles")
    print(f"{'proc':>4}  " + "".join(f"{c:>9}" for c in b.PRIMARY))
    for proc in range(result.nprocs):
        row = b.per_proc[proc]
        print(f"{proc:>4}  " + "".join(
            f"{row.get(c, 0) / result.cycles:>9.1%}" for c in b.PRIMARY))
    print(f"software overhead fraction: "
          f"{b.software_overhead_fraction():.1%}")
    print(f"overlay (overlapping detail): "
          f"{ {k: v for k, v in b.overlay.items()} }\n")


def sweep() -> None:
    """Session scope: every run inside is traced automatically."""
    app = SorApp(rows=500, cols=500, iterations=4)
    with trace_session() as session:
        for machine in (make_machine("treadmarks"), make_machine("sgi")):
            for nprocs in (1, 8):
                machine.run(app, nprocs)

    print(f"{'run':<24}{'compute':>9}{'overhead':>10}")
    for run in session.runs:
        r, b = run.result, run.result.breakdown
        print(f"{r.machine + '/p' + str(r.nprocs):<24}"
              f"{b.fractions()['compute']:>9.1%}"
              f"{b.software_overhead_fraction():>10.1%}")

    out = "sor_breakdown.trace.json"
    write_chrome_trace(out, session.tracers)
    print(f"\nwrote {out} — open it in chrome://tracing")


if __name__ == "__main__":
    single_run()
    sweep()
