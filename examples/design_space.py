#!/usr/bin/env python
"""The AS / AH / HS design space beyond eight processors (§3).

Three ways to build a 32-processor shared-memory machine:

* **AS** — all-software: uniprocessor workstations, a commodity
  network, TreadMarks between them.  Cheapest; scales worst.
* **AH** — all-hardware: a crossbar and directory-based cache
  coherence.  Fastest; needs custom controllers.
* **HS** — hardware-software hybrid: 8-way bus SMP nodes glued by
  TreadMarks.  Commodity parts, and the DSM treats each node as one:
  co-resident faults coalesce and per-node diffs merge.

This example runs SOR and M-Water at 32 processors on all three and
breaks HS's traffic down against AS's, the paper's Figures 12-13.

Run:  python examples/design_space.py   (takes a minute or two)
"""

from repro import SorApp, WaterApp, make_machine

PROCS = 32


def speedup(machine, app_factory):
    base = machine.run(app_factory(), 1)
    top = machine.run(app_factory(), PROCS)
    return base.seconds / top.seconds, top


def main() -> None:
    workloads = [
        ("SOR", lambda: SorApp(rows=512, cols=512, iterations=3)),
        ("M-Water", lambda: WaterApp(molecules=128, steps=2,
                                     modified=True)),
    ]
    machines = [("AH", make_machine("ah")), ("HS", make_machine("hs")),
                ("AS", make_machine("as"))]

    tops = {}
    for wl_name, factory in workloads:
        print(f"=== {wl_name} at {PROCS} processors ===")
        for arch, machine in machines:
            sp, top = speedup(machine, factory)
            tops[(wl_name, arch)] = top
            print(f"  {arch}: speedup {sp:6.2f}   messages "
                  f"{top.counters.total_messages:>8,}   data "
                  f"{top.counters.total_bytes / 1024:>9,.0f} KB")
        print()

    print("=== HS traffic as a fraction of AS (Figures 12-13) ===")
    for wl_name, _factory in workloads:
        as_c = tops[(wl_name, "AS")].counters
        hs_c = tops[(wl_name, "HS")].counters
        if as_c.total_messages:
            msg_pct = 100 * hs_c.total_messages / as_c.total_messages
            data_pct = 100 * hs_c.total_bytes / max(1, as_c.total_bytes)
            print(f"  {wl_name:<8} messages {msg_pct:5.1f}%   "
                  f"data {data_pct:5.1f}%   "
                  f"(miss {hs_c.miss_data_bytes // 1024} KB / "
                  f"consistency {hs_c.consistency_bytes // 1024} KB / "
                  f"headers {hs_c.header_bytes // 1024} KB)")


if __name__ == "__main__":
    main()
