#!/usr/bin/env python
"""Quickstart: software vs. hardware shared memory in ten lines.

Runs Red-Black SOR on the two experimental platforms of Cox et al.
(ISCA 1994) — TreadMarks on an ATM LAN of DECstations, and the SGI
4D/480 bus multiprocessor — and prints speedup curves.

Run:  python examples/quickstart.py
"""

from repro import RunPlan, SorApp, execute_plan, make_machine


def main() -> None:
    app = SorApp(rows=500, cols=500, iterations=4)
    procs = (1, 2, 4, 8)

    # One declared grid; execute_plan dedups, caches, and (given
    # jobs=N) fans runs out to a process pool — results are
    # byte-identical either way.
    plan = RunPlan()
    index = {(name, p): plan.add(make_machine(name), app, p)
             for name in ("treadmarks", "sgi") for p in procs}
    results = execute_plan(plan)

    print(f"Red-Black SOR, {app.name}, speedups vs 1 processor\n")
    print(f"{'machine':<12}" + "".join(f"p={p:<7}" for p in procs))
    for name in ("treadmarks", "sgi"):
        base = results[index[name, 1]]
        row = [f"{name:<12}"]
        for p in procs:
            result = results[index[name, p]]
            row.append(f"{base.seconds / result.seconds:<9.2f}")
        print("".join(row))

    print("\nTreadMarks is software-only: page faults, diffs and")
    print("messages replace the SGI's snooping-bus transactions.")
    tm8 = results[index["treadmarks", 8]]
    print(f"  8-processor TreadMarks run: "
          f"{tm8.counters.total_messages} messages, "
          f"{tm8.counters.total_bytes / 1024:.0f} KB moved, "
          f"{tm8.counters.page_faults} page faults, "
          f"{tm8.counters.diffs_created} diffs")


if __name__ == "__main__":
    main()
