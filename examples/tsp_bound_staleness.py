#!/usr/bin/env python
"""TSP and the cost of reading stale bounds (§2.4.3).

TSP updates its global best-tour bound under a lock but reads it
without synchronization.  Under lazy release consistency a processor
only sees bound improvements when it next acquires something, so it
prunes against stale values and expands redundant search nodes.  The
paper's fix: an *eager* release on the bound lock, pushing the new
bound to all cached copies immediately.

This example runs the same instance three ways and reports both the
speedup and the number of search-node expansions (the redundant-work
measure).  All three find the identical optimal tour.

Run:  python examples/tsp_bound_staleness.py
"""

from repro import TspApp, make_machine

BOUND_LOCK = 1


def main() -> None:
    machines = [
        ("lazy release (TreadMarks)", make_machine("treadmarks")),
        ("eager release on the bound",
         make_machine("treadmarks",
                      eager_locks=frozenset({BOUND_LOCK}))),
        ("hardware (SGI 4D/480)", make_machine("sgi")),
    ]
    print(f"{'configuration':<30} {'speedup@8':>9} {'expansions':>11} "
          f"{'optimum':>9}")
    for label, machine in machines:
        app = TspApp(cities=12, leaf_cutoff=8, coord_seed=3)
        base = machine.run(app, 1)
        top = machine.run(app, 8)
        print(f"{label:<30} {base.seconds / top.seconds:>9.2f} "
              f"{top.app_output['parallel_expansions']:>11,} "
              f"{top.app_output['optimal_length']:>9.2f}")

    print("\nFresher bounds prune more: hardware (and eager release)")
    print("expand fewer nodes than plain lazy release, at the price —")
    print("for eager release — of extra update messages.")


if __name__ == "__main__":
    main()
