#!/usr/bin/env python
"""Locking granularity makes or breaks software DSM (§2.4.4).

SPLASH Water acquires a lock around *every single* force update — a
discipline that is nearly free on a bus machine (the lock word stays
in somebody's cache) and catastrophic on TreadMarks, where each remote
acquisition is a multi-message, near-millisecond operation.

M-Water accumulates contributions locally and applies them once per
molecule per time step, cutting the lock rate by an order of
magnitude.  The hardware machine barely notices the difference; the
software machine goes from slowdown to real speedup — and moving
TreadMarks into the kernel (halving message costs) helps M-Water far
more than any barrier-based application.

Run:  python examples/water_locking.py
"""

from repro import WaterApp, make_machine

MOLECULES = 96
STEPS = 2


def report(label, machine, modified):
    app = WaterApp(molecules=MOLECULES, steps=STEPS, modified=modified)
    base = machine.run(app, 1)
    top = machine.run(app, 8)
    sp = base.seconds / top.seconds
    print(f"  {label:<34} speedup@8 {sp:5.2f}   "
          f"lock acquires {top.counters.lock_acquires:>7,}   "
          f"remote {top.counters.remote_lock_acquires:>6,}")
    return sp


def main() -> None:
    print(f"Water, {MOLECULES} molecules, {STEPS} steps\n")
    print("SGI 4D/480 (hardware locks are cache-resident):")
    report("Water  (lock per update)", make_machine("sgi"),
           modified=False)
    report("M-Water (lock per molecule)", make_machine("sgi"),
           modified=True)

    print("\nTreadMarks, user level (remote lock ~ a millisecond):")
    report("Water  (lock per update)", make_machine("treadmarks"), False)
    report("M-Water (lock per molecule)", make_machine("treadmarks"), True)

    print("\nTreadMarks, kernel level (§2.4.4: halved message costs):")
    report("M-Water (lock per molecule)",
           make_machine("treadmarks", kernel_level=True), True)


if __name__ == "__main__":
    main()
