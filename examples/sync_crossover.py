#!/usr/bin/env python
"""Does the synchronization algorithm move the software/hardware gap?

The paper fixes one sync algorithm per machine — token locks and a
central barrier manager for the DSM machines, bus/home-serialized
shared-memory sync for the hardware ones — so sync cost looks like a
property of the machine.  `repro.sync` makes it an axis: any machine
accepts ``sync="<lock>+<barrier>"``.

This example runs M-Water (the most sync-bound workload) on AS and AH
under four policies and prints the speedup each achieves.  The shape
to look for:

* **AS spreads.**  The central manager's departure broadcast costs one
  software message-handler service per node — O(n) serialized work per
  barrier.  A tree or combining barrier removes it, and the AS curve
  shifts toward the hardware one.
* **AH stays flat.**  Hardware sync transactions are cheap next to
  directory misses, so the policy never mattered — which is why the
  paper could treat it as fixed.

Run:  python examples/sync_crossover.py     (takes ~a minute)

The full grid (2 workloads x 3 machines x 4 locks x 3 barriers) is
``repro-harness run sync-sweep``; `benchmarks/bench_sync_crossover.py`
pins both shapes as CI bars.
"""

from repro import WaterApp, make_machine

PROCS = 32
POLICIES = ("token+central", "mcs+tree", "ticket+central",
            "combining+combining")


def mwater():
    return WaterApp(molecules=144, steps=2, modified=True)


def speedup(machine):
    base = machine.run(mwater(), 1)
    top = machine.run(mwater(), PROCS)
    return base.seconds / top.seconds


def main() -> None:
    print(f"M-Water at {PROCS} processors, speedup by sync policy\n")
    print(f"{'policy':<22} {'AS':>8} {'AH':>8}")
    rows = {}
    for policy in POLICIES:
        row = []
        for arch in ("as", "ah"):
            row.append(speedup(make_machine(arch, sync=policy)))
        rows[policy] = row
        print(f"{policy:<22} {row[0]:>8.2f} {row[1]:>8.2f}")

    as_col = [r[0] for r in rows.values()]
    ah_col = [r[1] for r in rows.values()]
    print()
    print(f"AS best/worst spread: x{max(as_col) / min(as_col):.3f} "
          "(software machines feel the algorithm)")
    print(f"AH best/worst spread: x{max(ah_col) / min(ah_col):.3f} "
          "(hardware sync was never the bottleneck)")


if __name__ == "__main__":
    main()
