"""Per-mechanism importance scores from cached metric deltas.

The ablation-sweep experiment runs a leave-one-out grid and asks, for
each mechanism, *how much worse does the run get without it?*  Four
metrics answer from different angles:

==========  =====================================================
metric      source
==========  =====================================================
seconds     simulated runtime (:attr:`RunResult.seconds`)
messages    total messages (``counters.total_messages``)
bytes       total bytes moved (``counters.total_bytes``)
diff_bytes  diff bytes created (``counters.diff_bytes_created``
            — the diff-machinery work proxy: creation and apply
            costs are charged proportional to these bytes)
==========  =====================================================

For each metric *k* the relative delta is ``(ablated_k - full_k) /
full_k`` (a zero baseline with a nonzero ablated value is clamped to
±1.0 so one degenerate metric cannot dominate).  The **importance
score** of a mechanism on a workload is the mean of the absolute
relative deltas over the four metrics — direction-agnostic, because an
ablation that makes a run *faster* is exactly as scientifically
interesting as one that makes it slower.  A mechanism's headline score
is its maximum over the swept workloads.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

#: Metric names, in report order.
IMPORTANCE_METRICS: Tuple[str, ...] = (
    "seconds", "messages", "bytes", "diff_bytes")


def run_metrics(result: Any) -> Dict[str, float]:
    """The four importance metrics of one :class:`RunResult`."""
    return {
        "seconds": float(result.seconds),
        "messages": float(result.counters.total_messages),
        "bytes": float(result.counters.total_bytes),
        "diff_bytes": float(result.counters.diff_bytes_created),
    }


def relative_delta(full: float, ablated: float) -> float:
    """``(ablated - full) / full`` with a clamped zero baseline."""
    if full == 0.0:
        if ablated == 0.0:
            return 0.0
        return 1.0 if ablated > 0 else -1.0
    return (ablated - full) / full


def metric_deltas(full: Mapping[str, float],
                  ablated: Mapping[str, float]) -> Dict[str, float]:
    """Relative delta per importance metric (ablated vs. full)."""
    return {k: relative_delta(full[k], ablated[k])
            for k in IMPORTANCE_METRICS}


def importance_score(full: Mapping[str, float],
                     ablated: Mapping[str, float]) -> float:
    """Mean absolute relative delta over the importance metrics."""
    deltas = metric_deltas(full, ablated)
    return sum(abs(v) for v in deltas.values()) / len(deltas)
