"""The ablation design space: one frozen spec, seven mechanisms.

The paper's headline result — software shared memory within a small
factor of hardware — rests on a stack of DSM mechanisms whose
individual contributions the paper never isolates.  An
:class:`AblationSpec` names an on/off state for each of the seven
separable ones; machines accept a spec via ``make_machine(ablate=...)``
and thread it into :class:`~repro.dsm.protocol.TreadMarksDsm` /
:class:`~repro.net.reliable.ReliableNetwork` behind explicit
conditionals:

============  =======================================================
mechanism     off-state behaviour
============  =======================================================
twins         no twin/diff machinery at all: a faulting node receives
              the creator's *whole page* (one copy per creator),
              counted by ``pages_shipped_whole``
diffs         writes dirty the whole page, so every diff covers a
              full page (RLE run-length encoding off; the paper's A1
              whole-page-transfer ablation, twin bookkeeping kept)
lazy_fetch    diffs are fetched *eagerly*: the moment write notices
              invalidate pages at a sync point, the node faults them
              all in instead of waiting for the next access
              (``eager_fetches``)
lazy_release  every lock release pushes the closing interval's diffs
              to all nodes holding copies — §2.4.3's eager release
              applied to *every* lock (``eager_releases``)
piggyback     write notices no longer ride lock-grant / barrier
              messages; each sync op with notices pays one extra
              ``WRITE_NOTICE`` message (and header) for them
diff_merge    a creator answering one fault for several of its
              intervals sends one response *per interval* instead of
              one merged response (the on-state counts the merges it
              avoids in ``diffs_merged``)
backoff       retransmission timers stop backing off exponentially:
              every retry waits the flat base RTO (observable only
              under an enabled :class:`~repro.net.faults.FaultPlan`)
============  =======================================================

The all-on default reproduces the paper bit-for-bit: machines built
with ``AblationSpec.all_on()`` are fingerprint- and name-identical to
machines built with no spec at all, so golden pins and cached results
are untouched.  Any off-toggle suffixes the machine name with
``label()`` and forks the cache key, exactly like
:class:`~repro.sync.SyncPolicy` does.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Iterable, List, Mapping, Tuple, Union

from repro.errors import ConfigurationError

#: Mechanism names, in protocol-stack order (write path outward).
MECHANISMS: Tuple[str, ...] = (
    "twins", "diffs", "lazy_fetch", "lazy_release", "piggyback",
    "diff_merge", "backoff",
)


@dataclass(frozen=True)
class AblationSpec:
    """An immutable on/off selection over the seven DSM mechanisms.

    Every field defaults to ``True`` (mechanism active — the paper's
    protocol).  Construct off-states with keyword arguments
    (``AblationSpec(twins=False)``), :meth:`without`, or the
    :func:`parse_ablation` string grammar.
    """

    twins: bool = True
    diffs: bool = True
    lazy_fetch: bool = True
    lazy_release: bool = True
    piggyback: bool = True
    diff_merge: bool = True
    backoff: bool = True

    def __post_init__(self) -> None:
        for name in MECHANISMS:
            value = getattr(self, name)
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"ablation mechanism '{name}' must be a bool, "
                    f"got {value!r}")

    @classmethod
    def all_on(cls) -> "AblationSpec":
        """The full protocol — identical to the no-spec default."""
        return cls()

    @classmethod
    def without(cls, *mechanisms: str) -> "AblationSpec":
        """A spec with the named mechanisms off, the rest on."""
        return cls(**{m: False for m in _validated(mechanisms)})

    @classmethod
    def only(cls, *mechanisms: str) -> "AblationSpec":
        """A spec with *only* the named mechanisms on (one-only grid)."""
        keep = set(_validated(mechanisms))
        return cls(**{m: m in keep for m in MECHANISMS})

    @property
    def is_default(self) -> bool:
        """True when every mechanism is on (the paper's protocol)."""
        return all(getattr(self, m) for m in MECHANISMS)

    def off_mechanisms(self) -> Tuple[str, ...]:
        """The mechanisms this spec disables, in canonical order."""
        return tuple(m for m in MECHANISMS if not getattr(self, m))

    def on_mechanisms(self) -> Tuple[str, ...]:
        """The mechanisms this spec keeps active, in canonical order."""
        return tuple(m for m in MECHANISMS if getattr(self, m))

    def label(self) -> str:
        """Short stable label: ``full``, or ``no-<m>[+<m>...]``.

        The label is the :func:`parse_ablation` string form, the
        machine-name suffix for non-default specs, and the spec's
        identity inside cache fingerprints.
        """
        off = self.off_mechanisms()
        if not off:
            return "full"
        return "no-" + "+".join(off)


def _validated(mechanisms: Iterable[str]) -> List[str]:
    """Normalize mechanism names, raising on unknown ones."""
    out: List[str] = []
    for name in mechanisms:
        key = str(name).strip().lower().replace("-", "_")
        if key not in MECHANISMS:
            raise ConfigurationError(
                f"unknown ablation mechanism '{name}' "
                f"(known: {', '.join(MECHANISMS)})")
        out.append(key)
    return out


#: The paper's protocol with every mechanism on; behaviourally (and
#: fingerprint-) identical to passing no spec at all.
ALL_ON = AblationSpec()

#: Alias following the ``DEFAULT_SYNC`` naming convention.
DEFAULT_ABLATION = ALL_ON

AblationSpecLike = Union[None, str, Mapping[str, Any], AblationSpec]
"""Anything :func:`parse_ablation` accepts."""


def parse_ablation(spec: AblationSpecLike) -> AblationSpec:
    """Coerce a user-facing ablation spec into an :class:`AblationSpec`.

    Accepts ``None`` (everything on), an existing spec, a mapping of
    field overrides (``{"twins": False}``), or a string in the
    ``label()`` grammar:

    * ``"full"`` / ``"all"`` — every mechanism on,
    * ``"no-twins"`` / ``"no-twins+piggyback"`` — the named
      mechanisms off,
    * ``"only-twins"`` / ``"only-twins+diffs"`` — *only* the named
      mechanisms on (the one-only grid's form).
    """
    if spec is None:
        return ALL_ON
    if isinstance(spec, AblationSpec):
        return spec
    if isinstance(spec, Mapping):
        try:
            return AblationSpec(**dict(spec))
        except TypeError as exc:
            raise ConfigurationError(
                f"bad ablation spec {spec!r}: {exc}") from None
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"ablation spec must be a string, mapping, or AblationSpec, "
            f"got {type(spec).__name__}")

    text = spec.strip().lower()
    if text in ("full", "all", "all-on", "all_on"):
        return ALL_ON
    if text.startswith("no-"):
        return AblationSpec.without(*text[len("no-"):].split("+"))
    if text.startswith("only-"):
        return AblationSpec.only(*text[len("only-"):].split("+"))
    raise ConfigurationError(
        f"bad ablation spec '{spec}' (expected 'full', 'no-<m>[+...]' "
        f"or 'only-<m>[+...]' over: {', '.join(MECHANISMS)})")


def leave_one_out(
        mechanisms: Iterable[str] = MECHANISMS) -> List[AblationSpec]:
    """One spec per mechanism, each with exactly that mechanism off."""
    return [AblationSpec.without(m) for m in _validated(mechanisms)]


def one_only(
        mechanisms: Iterable[str] = MECHANISMS) -> List[AblationSpec]:
    """One spec per mechanism, each with *only* that mechanism on."""
    return [AblationSpec.only(m) for m in _validated(mechanisms)]


def spec_fields(spec: AblationSpec) -> Mapping[str, bool]:
    """The spec as a plain mechanism -> bool mapping (JSON-friendly)."""
    return {f.name: getattr(spec, f.name)
            for f in dataclasses.fields(spec)}
