"""repro.ablate: the DSM mechanism-ablation layer.

Public surface: :class:`AblationSpec` (the frozen on/off selection),
:func:`parse_ablation` (the spec grammar), :data:`MECHANISMS` (the
seven mechanism names), the grid builders
:func:`leave_one_out`/:func:`one_only`, and the importance-score
helpers the ``ablation-sweep`` experiment and ``repro-harness ablate``
report are built on.  See DESIGN.md §8 for the mechanism inventory
and the score formula.
"""

from repro.ablate.score import (IMPORTANCE_METRICS, importance_score,
                                metric_deltas, relative_delta,
                                run_metrics)
from repro.ablate.spec import (ALL_ON, DEFAULT_ABLATION, MECHANISMS,
                               AblationSpec, AblationSpecLike,
                               leave_one_out, one_only, parse_ablation,
                               spec_fields)

__all__ = [
    "AblationSpec",
    "AblationSpecLike",
    "ALL_ON",
    "DEFAULT_ABLATION",
    "MECHANISMS",
    "parse_ablation",
    "leave_one_out",
    "one_only",
    "spec_fields",
    "IMPORTANCE_METRICS",
    "run_metrics",
    "relative_delta",
    "metric_deltas",
    "importance_score",
]
