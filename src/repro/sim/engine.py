"""The discrete-event engine: a clock plus an ordered callback queue.

The engine is deliberately small.  All protocol behaviour lives in the
machine models; the engine only guarantees that callbacks run in
non-decreasing time order, with FIFO ordering among callbacks scheduled
for the same instant (ties are broken by a monotone sequence number so
runs are deterministic).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.trace.tracer import NULL_TRACER, Tracer

Callback = Callable[..., None]


class Engine:
    """Event loop with an integer cycle clock.

    Typical use::

        engine = Engine()
        tasks = [ProcTask(engine, p, gen, handler) for p, gen in ...]
        for task in tasks:
            task.start()
        engine.run()
        print(engine.now)
    """

    #: Backstop for same-cycle event churn: a watchdog-armed run that
    #: processes this many events without any task progressing is
    #: declared wedged even if simulated time has not advanced.
    WATCHDOG_MAX_EVENTS = 5_000_000

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, Callback, tuple]] = []
        self._seq: int = 0
        self._tasks: List[Any] = []
        self._running = False
        self.events_processed: int = 0
        #: Progress watchdog: when set, :meth:`run` raises
        #: :class:`DeadlockError` if that many simulated cycles pass
        #: with events still firing but no registered task issuing an
        #: operation or finishing — the "silent no-progress" failure
        #: mode a lossy network can otherwise turn into a hang.
        self.watchdog_cycles: Optional[int] = None
        #: Optional zero-argument callable returning ``(suspect,
        #: trail)`` network diagnostics; the reliable-delivery layer
        #: installs one so :class:`DeadlockError` can name the node it
        #: was retransmitting to and attach a replayable event slice.
        self.net_diagnostics: Optional[Callable[[], tuple]] = None
        #: Observation hook; never schedules events, so tracing cannot
        #: change simulated time.  Defaults to the shared no-op tracer.
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callback, *args: Any) -> None:
        """Run ``fn(*args)`` ``delay`` cycles from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self.schedule_at(self.now + int(delay), fn, *args)

    def schedule_at(self, time: float, fn: Callback, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute cycle ``time`` (>= now)."""
        time = int(time)
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}")
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    # ------------------------------------------------------------------
    # task registry (for deadlock detection)
    # ------------------------------------------------------------------
    def register_task(self, task: Any) -> None:
        """Record a task so :meth:`run` can detect deadlock at drain."""
        self._tasks.append(task)

    @property
    def tasks(self) -> List[Any]:
        return list(self._tasks)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Process events until the queue drains (or ``until`` cycles).

        Returns the final simulated time.  Raises
        :class:`~repro.errors.DeadlockError` if the queue drains while
        registered tasks remain unfinished.

        ``until`` semantics (pinned by ``tests/test_engine.py``):
        events scheduled at ``until`` itself still run; the first event
        strictly later stays queued; ``now`` advances exactly to
        ``until``; and the engine is immediately re-runnable to
        continue from the horizon.  The deadlock check applies whenever
        the queue *drains* — stopping early at the horizon is not a
        deadlock, but draining with blocked tasks is, even when a
        horizon was given.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        stopped_at_horizon = False
        watchdog = self.watchdog_cycles
        mark_time = self.now
        mark_events = self.events_processed
        mark_state = self._progress_state()
        try:
            while self._heap:
                time, _seq, fn, args = self._heap[0]
                if until is not None and time > until:
                    stopped_at_horizon = True
                    self.now = until
                    break
                heapq.heappop(self._heap)
                self.now = time
                self.events_processed += 1
                fn(*args)
                if watchdog is None:
                    continue
                if (self.now - mark_time < watchdog and
                        self.events_processed - mark_events <
                        self.WATCHDOG_MAX_EVENTS):
                    continue
                state = self._progress_state()
                if state == mark_state:
                    blocked = [t for t in self._tasks if not t.finished]
                    suspect, trail = self._net_diagnostics()
                    raise DeadlockError(
                        blocked, now=self.now,
                        reason=f"no task progress in "
                               f"{self.now - mark_time} cycles / "
                               f"{self.events_processed - mark_events} "
                               f"events",
                        suspect=suspect, trail=trail)
                mark_time = self.now
                mark_events = self.events_processed
                mark_state = state
        finally:
            self._running = False

        if not stopped_at_horizon:
            blocked = [t for t in self._tasks if not t.finished]
            if blocked:
                suspect, trail = self._net_diagnostics()
                raise DeadlockError(blocked, now=self.now,
                                    reason="event queue drained",
                                    suspect=suspect, trail=trail)
        return self.now

    def _net_diagnostics(self) -> Tuple[Optional[int], tuple]:
        """(suspect, trail) from the installed network hook, if any."""
        if self.net_diagnostics is None:
            return None, ()
        return self.net_diagnostics()

    def _progress_state(self) -> Tuple[int, int]:
        """A signature that changes whenever any task makes progress."""
        issued = 0
        finished = 0
        for task in self._tasks:
            issued += task.ops_issued
            finished += task.finished
        return issued, finished

    def empty(self) -> bool:
        """True when no events remain queued."""
        return not self._heap
