"""Simulated processors as generator-driven tasks.

A :class:`ProcTask` wraps an application generator.  Each value the
generator yields is an *operation* (see :mod:`repro.apps.ops`).  The
task hands the operation to an :class:`OpHandler` (the machine model),
which later calls :meth:`ProcTask.resume` with the completion time and
the operation's result value.  The result is sent back into the
generator, so applications can react to simulated outcomes (e.g. the
currently-visible TSP bound).

Chunked issue: a yielded :class:`~repro.apps.ops.OpBlock` parks its
member operations on the task, and subsequent steps drain the chunk —
one member per step, through the same handler dispatch and the same
heap-mediated completion as per-op issue — without resuming the
generator until the chunk is exhausted.  Fused execution is therefore
cycle-for-cycle and event-for-event identical to unrolled execution
(same completion times, same scheduling order, same resource
contention); what it removes is the generator suspend/resume and the
application-frame bookkeeping per member, which is pure interpreter
overhead.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from repro.apps.ops import OpBlock
from repro.errors import SimulationError
from repro.sim.engine import Engine


class OpHandler:
    """Interface machine models implement to service yielded operations.

    ``handle`` must arrange — immediately or via engine events — for
    ``task.resume(at, value)`` to be called exactly once.
    """

    def handle(self, task: "ProcTask", op: Any) -> None:
        raise NotImplementedError


class ProcTask:
    """One simulated processor executing a generator program."""

    def __init__(self, engine: Engine, proc_id: int,
                 gen: Generator[Any, Any, Any], handler: OpHandler) -> None:
        self.engine = engine
        self.proc_id = proc_id
        self.gen = gen
        self.handler = handler
        self.finished = False
        #: True when a crash-stop failure halted this processor; the
        #: task counts as finished (so the engine's drain check does
        #: not call it blocked) but its generator never ran to
        #: completion and produced no result.
        self.killed = False
        self.finish_time: Optional[int] = None
        self.start_time: Optional[int] = None
        self.ops_issued = 0
        self.busy_cycles = 0
        self.current_op: Any = None
        self._last_resume = 0
        self._waiting = False
        #: Remaining members of the op chunk being drained, if any.
        self._chunk: Optional[Tuple[Any, ...]] = None
        self._chunk_next = 0
        engine.register_task(self)

    def __repr__(self) -> str:
        state = "finished" if self.finished else (
            "blocked" if self._waiting else "ready")
        if self._waiting and self.current_op is not None:
            state += f" on {self.current_op!r}"
        return f"<ProcTask p{self.proc_id} {state}>"

    # ------------------------------------------------------------------
    def start(self, at: int = 0) -> None:
        """Schedule the first step of the task at cycle ``at``."""
        if self.start_time is not None:
            raise SimulationError(f"task p{self.proc_id} already started")
        self.start_time = at
        self._last_resume = at
        self.engine.schedule_at(at, self._step, None)

    def resume(self, at: int, value: Any = None) -> None:
        """Called by the handler when the pending operation completes."""
        if self.killed:
            # A completion can race the crash (the handler scheduled it
            # before the node died); the processor is gone, so the
            # result evaporates silently.
            return
        if self.finished:
            raise SimulationError(f"resume on finished task p{self.proc_id}")
        if not self._waiting:
            raise SimulationError(
                f"resume on task p{self.proc_id} with no pending op")
        self._waiting = False
        self.engine.schedule_at(at, self._step, value)

    def kill(self, at: int) -> None:
        """Crash-stop this processor at cycle ``at``.

        The generator is abandoned where it stands (not closed — a
        crashed process runs no cleanup), any pending operation's
        completion is dropped, and the task reports finished so the
        engine's deadlock accounting excludes it.  Idempotent.
        """
        if self.finished:
            return
        self.killed = True
        self.finished = True
        self.finish_time = at
        self.current_op = None
        self._waiting = False
        self._chunk = None

    # ------------------------------------------------------------------
    def _step(self, value: Any) -> None:
        if self.killed:
            return
        self._last_resume = self.engine.now
        tracer = self.engine.tracer
        if tracer.enabled:
            # The operation the processor was blocked on ends now; its
            # whole window is attributed to that operation's category.
            tracer.end_op(self.proc_id, self.engine.now)
        chunk = self._chunk
        if chunk is not None:
            # Drain the parked chunk before resuming the generator.
            # Members are result-free, so the completion value of the
            # previous member (always None) is simply dropped —
            # exactly what per-op issue would have sent into the
            # generator and had ignored.
            i = self._chunk_next
            if i < len(chunk):
                self._chunk_next = i + 1
                op = chunk[i]
                self.ops_issued += 1
                self.current_op = op
                self._waiting = True
                self.handler.handle(self, op)
                return
            self._chunk = None
        try:
            op = self.gen.send(value)
        except StopIteration:
            self.finished = True
            self.finish_time = self.engine.now
            self.current_op = None
            return
        if type(op) is OpBlock:
            self._chunk = op.ops
            self._chunk_next = 1
            op = op.ops[0]
        self.ops_issued += 1
        self.current_op = op
        self._waiting = True
        self.handler.handle(self, op)
