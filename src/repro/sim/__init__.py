"""Discrete-event, execution-driven simulation engine.

The engine interleaves *tasks* (one Python generator per simulated
processor) in simulated time.  Tasks yield operation objects; a machine
model consumes each operation and decides when — in simulated cycles —
the task resumes, and with what value.

Public classes:

* :class:`~repro.sim.engine.Engine` — the event loop and clock.
* :class:`~repro.sim.task.ProcTask` — a simulated processor running a
  generator program.
* :class:`~repro.sim.task.OpHandler` — interface a machine model
  implements to service operations.
* :class:`~repro.sim.resource.Resource` — a busy-until, FCFS contended
  resource (bus, link, handler CPU, ...).
"""

from repro.sim.engine import Engine
from repro.sim.resource import Resource
from repro.sim.task import OpHandler, ProcTask

__all__ = ["Engine", "Resource", "ProcTask", "OpHandler"]
