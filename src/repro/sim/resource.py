"""FCFS contended resources.

A :class:`Resource` models anything that can serve one request at a time
— a shared bus, one direction of a network link, a message-handler CPU.
Requests are serialized in the order they are issued; a request issued
at time ``t`` begins service at ``max(t, busy_until)``.

This "busy-until" abstraction is the same fidelity class as the paper's
execution-driven simulator: it captures queueing delay and utilization
without simulating individual arbitration cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass
class Resource:
    """A single-server FCFS resource measured in cycles."""

    name: str
    busy_until: int = 0
    total_busy: int = 0
    total_wait: int = 0
    acquisitions: int = 0
    _last_release: int = field(default=0, repr=False)

    def acquire(self, at: int, duration: int) -> Tuple[int, int]:
        """Reserve the resource for ``duration`` cycles starting no
        earlier than ``at``.  Returns ``(start, end)``.
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative: {duration}")
        start = max(int(at), self.busy_until)
        end = start + int(duration)
        self.total_wait += start - int(at)
        self.total_busy += int(duration)
        self.acquisitions += 1
        self.busy_until = end
        self._last_release = end
        return start, end

    def peek(self, at: int) -> int:
        """Earliest time a request issued at ``at`` could begin service."""
        return max(int(at), self.busy_until)

    def utilization(self, horizon: int) -> float:
        """Fraction of ``[0, horizon]`` this resource spent busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.total_busy / horizon)

    def mean_wait(self) -> float:
        """Average queueing delay per acquisition, in cycles."""
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait / self.acquisitions


class MultiResource:
    """A k-server FCFS resource (e.g. message handling on an SMP node,
    where any of the node's processors can run the DSM handler).

    Each request is served whole by the earliest-free server.
    """

    def __init__(self, name: str, servers: int) -> None:
        if servers < 1:
            raise ValueError(f"need at least one server: {servers}")
        self.name = name
        self.servers = [Resource(f"{name}[{i}]") for i in range(servers)]

    def acquire(self, at: int, duration: int) -> Tuple[int, int]:
        """Serve on the earliest-available server; returns (start, end)."""
        best = min(self.servers, key=lambda s: s.busy_until)
        return best.acquire(at, duration)

    def peek(self, at: int) -> int:
        return min(s.peek(at) for s in self.servers)

    @property
    def total_busy(self) -> int:
        return sum(s.total_busy for s in self.servers)

    @property
    def acquisitions(self) -> int:
        return sum(s.acquisitions for s in self.servers)


class ResourceGroup:
    """A named collection of resources (e.g. per-node link ports).

    Creates members lazily so callers can index by node id without
    pre-declaring the population.
    """

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._members: dict = {}

    def __getitem__(self, key) -> Resource:
        member = self._members.get(key)
        if member is None:
            member = Resource(f"{self.prefix}[{key}]")
            self._members[key] = member
        return member

    def __len__(self) -> int:
        return len(self._members)

    def values(self):
        return self._members.values()

    def total_busy(self) -> int:
        return sum(r.total_busy for r in self._members.values())

    def total_acquisitions(self) -> int:
        return sum(r.acquisitions for r in self._members.values())
