"""Run statistics: counters, categories, and result records."""

from repro.stats.counters import Counters, DataKind, MsgKind
from repro.stats.result import RunResult, SpeedupSeries

__all__ = ["Counters", "MsgKind", "DataKind", "RunResult", "SpeedupSeries"]
