"""Counters for every event class the paper reports.

The paper's Table 2 reports barriers/s, remote locks/s, messages/s and
Kbytes/s; Figures 12-13 split messages into *miss* vs *synchronization*
messages and data into *miss data*, *consistency data* (write notices,
vector timestamps, intervals), and *message header* bytes.  The
categories here mirror that taxonomy exactly, plus hardware-side
counters for the bus and directory models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum
from typing import Dict


class MsgKind(Enum):
    """Message types exchanged by the software DSM."""

    LOCK_REQUEST = "lock_request"
    LOCK_FORWARD = "lock_forward"
    LOCK_GRANT = "lock_grant"
    LOCK_RELEASE = "lock_release"
    BARRIER_ARRIVE = "barrier_arrive"
    BARRIER_DEPART = "barrier_depart"
    DIFF_REQUEST = "diff_request"
    DIFF_RESPONSE = "diff_response"
    PAGE_REQUEST = "page_request"
    PAGE_RESPONSE = "page_response"
    BOUND_UPDATE = "bound_update"
    #: Standalone write-notice message: only sent when the ablation
    #: layer turns write-notice piggybacking off (consistency data
    #: normally rides lock-grant / barrier messages).
    WRITE_NOTICE = "write_notice"

    @property
    def is_sync(self) -> bool:
        """Lock/barrier traffic, as opposed to data-miss traffic."""
        return self in _SYNC_KINDS

    @property
    def is_miss(self) -> bool:
        """Data-miss traffic (everything that is not sync)."""
        return not self.is_sync


_SYNC_KINDS = {
    MsgKind.LOCK_REQUEST,
    MsgKind.LOCK_FORWARD,
    MsgKind.LOCK_GRANT,
    MsgKind.LOCK_RELEASE,
    MsgKind.BARRIER_ARRIVE,
    MsgKind.BARRIER_DEPART,
    MsgKind.BOUND_UPDATE,
    MsgKind.WRITE_NOTICE,
}


class DataKind(Enum):
    """Payload byte categories (Figure 13's taxonomy)."""

    MISS = "miss"                # page contents / diffs
    CONSISTENCY = "consistency"  # write notices, vector timestamps
    HEADER = "header"            # per-message protocol headers


@dataclass
class Counters:
    """Mutable event counters for one simulated run."""

    # -- software DSM traffic ------------------------------------------
    messages: Dict[MsgKind, int] = field(
        default_factory=lambda: {k: 0 for k in MsgKind})
    data_bytes: Dict[DataKind, int] = field(
        default_factory=lambda: {k: 0 for k in DataKind})

    # -- synchronization ------------------------------------------------
    barriers: int = 0
    lock_acquires: int = 0
    remote_lock_acquires: int = 0
    #: Cycles from each acquire request to its grant, summed over all
    #: acquisitions (queue/transit wait, including the local-grant
    #: dispatch cost).
    lock_wait_cycles: int = 0
    #: Cycles each lock was held (grant to release), summed.
    lock_hold_cycles: int = 0
    #: Fetch-and-op merges performed by a combining fabric stage
    #: (locks *and* barriers; only the ``combining`` sync algorithms
    #: ever increment this).
    combining_hits: int = 0

    # -- DSM protocol events ---------------------------------------------
    page_faults: int = 0
    remote_page_faults: int = 0
    twins_created: int = 0
    diffs_created: int = 0
    diff_bytes_created: int = 0
    write_notices_sent: int = 0
    pages_invalidated: int = 0
    #: Per-interval diff responses a creator folded into one merged
    #: response (the diff-merge mechanism; its ablation sends them
    #: individually instead).
    diffs_merged: int = 0

    # -- mechanism ablations (repro.ablate) --------------------------------
    #: Whole-page copies shipped in place of diffs (twins off).
    pages_shipped_whole: int = 0
    #: Pages fetched at notice-apply time instead of on access fault
    #: (lazy_fetch off).
    eager_fetches: int = 0
    #: Lock releases that eagerly pushed their interval's diffs
    #: because the ablation disabled lazy release (lazy_release off;
    #: per-lock ``eager_locks`` pushes are not counted here).
    eager_releases: int = 0

    # -- reliable delivery / fault recovery -------------------------------
    messages_dropped: int = 0
    retransmissions: int = 0
    duplicates_dropped: int = 0
    timeouts: int = 0
    timeout_cycles: int = 0
    stall_deferrals: int = 0

    # -- crash-stop failure recovery (repro.recover) ----------------------
    #: Cycles between each crash and its declaration, summed.
    detection_cycles: int = 0
    #: Pages owned/pending at a dead node re-homed to a survivor.
    pages_rehomed: int = 0
    #: Pages whose only reconstruction source died with the node.
    pages_lost: int = 0
    #: Lock records repaired (token regenerated / queue repaired).
    locks_regenerated: int = 0
    #: Barrier episodes reconfigured from n to n−1 membership.
    barrier_reconfigs: int = 0

    # -- hardware coherence ----------------------------------------------
    bus_transactions: int = 0
    bus_data_bytes: int = 0
    cache_hits: int = 0
    cache_misses_local: int = 0
    cache_misses_remote: int = 0
    invalidations: int = 0
    writebacks: int = 0
    cache_to_cache: int = 0
    network_hops: int = 0

    # ------------------------------------------------------------------
    def count_message(self, kind: MsgKind, payload_bytes: int,
                      data_kind: DataKind, header_bytes: int) -> None:
        """Record one message and its byte categories."""
        self.messages[kind] += 1
        if payload_bytes:
            self.data_bytes[data_kind] += payload_bytes
        if header_bytes:
            self.data_bytes[DataKind.HEADER] += header_bytes

    # -- aggregates ------------------------------------------------------
    @property
    def total_messages(self) -> int:
        """All messages sent, every kind."""
        return sum(self.messages.values())

    @property
    def sync_messages(self) -> int:
        """Messages carrying lock/barrier traffic (Table 4 split)."""
        return sum(n for k, n in self.messages.items() if k.is_sync)

    @property
    def miss_messages(self) -> int:
        """Messages carrying data-miss traffic (Table 4 split)."""
        return sum(n for k, n in self.messages.items() if k.is_miss)

    @property
    def total_bytes(self) -> int:
        """All bytes moved: miss data, consistency info, headers."""
        return sum(self.data_bytes.values())

    @property
    def miss_data_bytes(self) -> int:
        """Bytes of demanded data (pages, diffs on demand)."""
        return self.data_bytes[DataKind.MISS]

    @property
    def consistency_bytes(self) -> int:
        """Bytes of protocol metadata (write notices, intervals)."""
        return self.data_bytes[DataKind.CONSISTENCY]

    @property
    def header_bytes(self) -> int:
        """Bytes of per-message framing overhead."""
        return self.data_bytes[DataKind.HEADER]

    def to_jsonable(self) -> Dict[str, object]:
        """Lossless JSON form (cache storage, cross-process transport).

        Unlike :meth:`as_dict` (a *flat* report view with derived
        aggregates mixed in), this is an exact structural dump that
        :meth:`from_jsonable` restores field for field.
        """
        out: Dict[str, object] = {
            "messages": {k.value: v for k, v in self.messages.items()},
            "data_bytes": {k.value: v for k, v in self.data_bytes.items()},
        }
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, dict):
                continue
            out[f.name] = value
        return out

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "Counters":
        """Rebuild a :class:`Counters` from :meth:`to_jsonable` output."""
        counters = cls()
        for key, value in data.get("messages", {}).items():
            counters.messages[MsgKind(key)] = int(value)
        for key, value in data.get("data_bytes", {}).items():
            counters.data_bytes[DataKind(key)] = int(value)
        for f in fields(cls):
            if f.name in ("messages", "data_bytes"):
                continue
            if f.name in data:
                setattr(counters, f.name, int(data[f.name]))
        return counters

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (for reports and tests).

        Scalar fields are discovered via :func:`dataclasses.fields`, so
        counters added later appear here without further bookkeeping;
        the two dict-valued fields are flattened with ``msg.``/``bytes.``
        prefixes.
        """
        out: Dict[str, float] = {
            f"msg.{k.value}": v for k, v in self.messages.items()}
        out.update({f"bytes.{k.value}": v for k, v in self.data_bytes.items()})
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, dict):
                continue  # messages / data_bytes, flattened above
            out[f.name] = value
        out["total_messages"] = self.total_messages
        out["total_bytes"] = self.total_bytes
        return out
