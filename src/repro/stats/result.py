"""Run results and derived quantities (speedups, rates)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import units
from repro.stats.counters import Counters
from repro.trace.breakdown import TimeBreakdown


@dataclass
class RunResult:
    """Everything measured during one application run on one machine."""

    machine: str
    app: str
    nprocs: int
    cycles: int
    clock_hz: float
    counters: Counters
    app_output: Dict[str, Any] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)
    #: engine events processed (determinism fingerprint)
    events: int = 0
    #: per-processor/per-category cycle totals; None unless traced
    breakdown: Optional[TimeBreakdown] = None

    @property
    def seconds(self) -> float:
        return units.cycles_to_seconds(self.cycles, self.clock_hz)

    # -- Table 2 style rates ----------------------------------------------
    def rate(self, count: float) -> float:
        """Events per second of simulated time."""
        return units.per_second(count, self.cycles, self.clock_hz)

    @property
    def barriers_per_sec(self) -> float:
        return self.rate(self.counters.barriers)

    @property
    def remote_locks_per_sec(self) -> float:
        return self.rate(self.counters.remote_lock_acquires)

    @property
    def messages_per_sec(self) -> float:
        return self.rate(self.counters.total_messages)

    @property
    def kbytes_per_sec(self) -> float:
        return self.rate(self.counters.total_bytes) / 1024.0

    def summary(self) -> Dict[str, float]:
        s = {
            "machine": self.machine,
            "app": self.app,
            "nprocs": self.nprocs,
            "seconds": self.seconds,
            "barriers_per_sec": self.barriers_per_sec,
            "remote_locks_per_sec": self.remote_locks_per_sec,
            "messages_per_sec": self.messages_per_sec,
            "kbytes_per_sec": self.kbytes_per_sec,
        }
        if self.breakdown is not None:
            s.update(self.breakdown.summary_keys())
        return s


@dataclass
class SpeedupSeries:
    """A speedup curve: one machine, one app, several processor counts."""

    machine: str
    app: str
    base_seconds: float
    points: List[RunResult] = field(default_factory=list)

    def add(self, result: RunResult) -> None:
        self.points.append(result)

    def speedup(self, result: RunResult) -> float:
        if result.seconds <= 0:
            return 0.0
        return self.base_seconds / result.seconds

    def speedups(self) -> Dict[int, float]:
        """Mapping nprocs -> speedup relative to the 1-processor base."""
        return {r.nprocs: self.speedup(r) for r in self.points}

    def at(self, nprocs: int) -> Optional[RunResult]:
        for r in self.points:
            if r.nprocs == nprocs:
                return r
        return None

    def peak(self) -> tuple:
        """(nprocs, speedup) of the best point in the series."""
        best = None
        for r in self.points:
            s = self.speedup(r)
            if best is None or s > best[1]:
                best = (r.nprocs, s)
        return best if best else (0, 0.0)
