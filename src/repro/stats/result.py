"""Run results and derived quantities (speedups, rates)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import units
from repro.stats.counters import Counters
from repro.trace.breakdown import TimeBreakdown


def jsonable(value: Any) -> Any:
    """Coerce ``value`` into plain JSON-encodable Python.

    Used on the open-ended payloads a :class:`RunResult` carries
    (``app_output``, ``params``) before cache storage: numpy scalars
    become Python numbers, arrays become lists, tuples/sets become
    lists, and dictionary keys become strings.  Numeric content is
    preserved exactly (ints stay ints; floats round-trip via JSON's
    shortest-repr encoding).
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "tolist"):          # numpy array
        return value.tolist()
    if hasattr(value, "item"):            # numpy scalar
        return value.item()
    return repr(value)


@dataclass
class RunResult:
    """Everything measured during one application run on one machine."""

    machine: str
    app: str
    nprocs: int
    cycles: int
    clock_hz: float
    counters: Counters
    app_output: Dict[str, Any] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)
    #: engine events processed (determinism fingerprint)
    events: int = 0
    #: per-processor/per-category cycle totals; None unless traced
    breakdown: Optional[TimeBreakdown] = None
    #: provenance-ledger run identity (``<fingerprint>.<attempt>``);
    #: None outside a ledger session.  Correlates this result with its
    #: ledger record, metrics-JSONL line, and Chrome trace — but is
    #: *identity*, not measurement, so it stays out of ``summary()``
    #: (re-running a cached plan must not "change" any number).
    run_id: Optional[str] = None
    #: Crash-stop recovery metadata (``repro.recover``); None for a
    #: run that finished at full membership.  Carries the failed
    #: nodes, crash/declaration times, and detection path — the
    #: deterministic record that this result was produced by the
    #: surviving nodes of a degraded run.
    degraded: Optional[Dict[str, Any]] = None

    @property
    def seconds(self) -> float:
        """Simulated wall-clock time of the run."""
        return units.cycles_to_seconds(self.cycles, self.clock_hz)

    # -- Table 2 style rates ----------------------------------------------
    def rate(self, count: float) -> float:
        """Events per second of simulated time."""
        return units.per_second(count, self.cycles, self.clock_hz)

    @property
    def barriers_per_sec(self) -> float:
        """Barrier episodes per simulated second (Table 2)."""
        return self.rate(self.counters.barriers)

    @property
    def remote_locks_per_sec(self) -> float:
        """Remote lock acquires per simulated second (Table 2)."""
        return self.rate(self.counters.remote_lock_acquires)

    @property
    def messages_per_sec(self) -> float:
        """Messages per simulated second (Table 2)."""
        return self.rate(self.counters.total_messages)

    @property
    def kbytes_per_sec(self) -> float:
        """Kilobytes moved per simulated second (Table 2)."""
        return self.rate(self.counters.total_bytes) / 1024.0

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline numbers, for reports and tests."""
        s = {
            "machine": self.machine,
            "app": self.app,
            "nprocs": self.nprocs,
            "seconds": self.seconds,
            "barriers_per_sec": self.barriers_per_sec,
            "remote_locks_per_sec": self.remote_locks_per_sec,
            "messages_per_sec": self.messages_per_sec,
            "kbytes_per_sec": self.kbytes_per_sec,
        }
        if self.breakdown is not None:
            s.update(self.breakdown.summary_keys())
        if self.degraded is not None:
            # Degradation is *measurement* (the run completed on fewer
            # nodes), unlike run_id, so it belongs in the summary and
            # the determinism pins cover it.
            s["degraded_nodes"] = len(self.degraded.get("failed_nodes",
                                                        ()))
        return s

    # -- serialization ----------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """Lossless JSON form (result cache, cross-process transport)."""
        out: Dict[str, Any] = {
            "machine": self.machine,
            "app": self.app,
            "nprocs": self.nprocs,
            "cycles": self.cycles,
            "clock_hz": self.clock_hz,
            "counters": self.counters.to_jsonable(),
            "app_output": jsonable(self.app_output),
            "params": jsonable(self.params),
            "events": self.events,
        }
        if self.breakdown is not None:
            out["breakdown"] = self.breakdown.as_dict()
        if self.run_id is not None:
            out["run_id"] = self.run_id
        if self.degraded is not None:
            out["degraded"] = jsonable(self.degraded)
        return out

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_jsonable` output."""
        breakdown = None
        if data.get("breakdown") is not None:
            breakdown = TimeBreakdown.from_dict(data["breakdown"])
        return cls(
            machine=data["machine"],
            app=data["app"],
            nprocs=int(data["nprocs"]),
            cycles=int(data["cycles"]),
            clock_hz=float(data["clock_hz"]),
            counters=Counters.from_jsonable(data.get("counters", {})),
            app_output=dict(data.get("app_output", {})),
            params=dict(data.get("params", {})),
            events=int(data.get("events", 0)),
            breakdown=breakdown,
            run_id=data.get("run_id"),
            degraded=data.get("degraded"),
        )


@dataclass
class SpeedupSeries:
    """A speedup curve: one machine, one app, several processor counts."""

    machine: str
    app: str
    base_seconds: float
    points: List[RunResult] = field(default_factory=list)

    def add(self, result: RunResult) -> None:
        """Append one measured point to the series."""
        self.points.append(result)

    def speedup(self, result: RunResult) -> float:
        """Speedup of one point over the 1-processor base time."""
        if result.seconds <= 0:
            return 0.0
        return self.base_seconds / result.seconds

    def speedups(self) -> Dict[int, float]:
        """Mapping nprocs -> speedup relative to the 1-processor base."""
        return {r.nprocs: self.speedup(r) for r in self.points}

    def at(self, nprocs: int) -> Optional[RunResult]:
        """The point measured at ``nprocs``, or None."""
        for r in self.points:
            if r.nprocs == nprocs:
                return r
        return None

    def peak(self) -> tuple:
        """(nprocs, speedup) of the best point in the series."""
        best = None
        for r in self.points:
            s = self.speedup(r)
            if best is None or s > best[1]:
                best = (r.nprocs, s)
        return best if best else (0, 0.0)

    # -- serialization ----------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """Lossless JSON form of the whole curve."""
        return {
            "machine": self.machine,
            "app": self.app,
            "base_seconds": self.base_seconds,
            "points": [r.to_jsonable() for r in self.points],
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "SpeedupSeries":
        """Rebuild a series from :meth:`to_jsonable` output."""
        series = cls(machine=data["machine"], app=data["app"],
                     base_seconds=float(data["base_seconds"]))
        for point in data.get("points", []):
            series.add(RunResult.from_jsonable(point))
        return series
