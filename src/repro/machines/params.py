"""Parameter sets for every machine model.

Every numeric literal elided from the OCR of the paper is pinned here
as a named, documented parameter (see DESIGN.md "Elided-number
calibration").  Experiments never hardcode machine numbers — they
construct machines from these presets (or variations of them, via
``dataclasses.replace``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import units
from repro.net.bus import BusTiming
from repro.net.overhead import OverheadPreset, SoftwareOverhead


@dataclass(frozen=True)
class LocalCacheParams:
    """Per-processor cache used for *local* timing on DSM machines."""

    cache_bytes: int = 64 * units.KIB
    line_bytes: int = 64
    hit_cycles: float = 0.5
    #: DECstation main memory: ~0.35 cycles/byte at 40 MHz, "slightly
    #: faster than the secondary cache of the D/480" (§2.2).
    miss_cycles: int = 22


@dataclass(frozen=True)
class DecAtmParams:
    """DECstation-5000/240 + Fore ATM LAN + TreadMarks (§2.2)."""

    clock_hz: float = 40e6
    page_bytes: int = 4096
    cache: LocalCacheParams = field(default_factory=LocalCacheParams)
    #: nominal 100 Mbit/s ATM; user-to-user throughput is far lower
    user_bandwidth_bits: float = 30e6
    switch_latency_s: float = 10e-6
    header_bytes: int = 40
    overhead_preset: OverheadPreset = OverheadPreset.USER_LEVEL

    @property
    def bandwidth_bytes(self) -> float:
        return self.user_bandwidth_bits / 8

    @property
    def switch_latency_cycles(self) -> int:
        return units.seconds_to_cycles(self.switch_latency_s, self.clock_hz)

    def overhead(self) -> SoftwareOverhead:
        return self.overhead_preset.build()

    def kernel_level(self) -> "DecAtmParams":
        """The in-kernel TreadMarks variant of §2.4.4."""
        return replace(self, overhead_preset=OverheadPreset.KERNEL_LEVEL)


@dataclass(frozen=True)
class SgiParams:
    """SGI 4D/480: 8 CPUs, 1 MB write-back L2s, 64-bit snooping bus."""

    clock_hz: float = 40e6
    page_bytes: int = 4096
    line_bytes: int = 128
    l2_bytes: int = 1 * units.MIB
    #: The 4D/480's L2 is clocked at bus speed (16 MHz), so even an L2
    #: *hit* streams at ~0.4 CPU cycles/byte — about the speed of the
    #: DECstation's main memory (§2.2).  Misses additionally occupy
    #: the shared bus, which is where contention appears.
    l2_hit_cycles: float = 50.0
    memory_extra_cycles: int = 12    # memory service while bus held
    bus: BusTiming = field(default_factory=lambda: BusTiming(
        width_bytes=8, bus_hz=16e6, cpu_hz=40e6,
        arbitration_bus_cycles=2, address_bus_cycles=2))
    lock_acquire_cycles: int = 40
    lock_release_cycles: int = 20
    lock_handoff_cycles: int = 60
    barrier_arrive_cycles: int = 40
    barrier_depart_cycles: int = 40
    max_procs: int = 8


@dataclass(frozen=True)
class SimCpuParams:
    """The leading-edge CPU/cache of the §3 simulations."""

    clock_hz: float = 100e6
    cache_bytes: int = 64 * units.KIB
    line_bytes: int = 64
    hit_cycles: float = 0.25


@dataclass(frozen=True)
class AsParams:
    """All-software: uniprocessor nodes + ATM + TreadMarks (§3.1)."""

    cpu: SimCpuParams = field(default_factory=SimCpuParams)
    page_bytes: int = 4096
    local_miss_cycles: int = 20
    network_bandwidth_bits: float = 155e6
    network_latency_s: float = 1e-6
    header_bytes: int = 40
    overhead_preset: OverheadPreset = OverheadPreset.SIM_BASE

    @property
    def clock_hz(self) -> float:
        return self.cpu.clock_hz

    @property
    def bandwidth_bytes(self) -> float:
        return self.network_bandwidth_bits / 8

    @property
    def network_latency_cycles(self) -> int:
        return units.seconds_to_cycles(self.network_latency_s, self.clock_hz)

    def overhead(self) -> SoftwareOverhead:
        return self.overhead_preset.build()

    def with_overhead(self, preset: OverheadPreset) -> "AsParams":
        """The Figure 14-16 software-overhead sweep points."""
        return replace(self, overhead_preset=preset)


@dataclass(frozen=True)
class AhParams:
    """All-hardware: crossbar + directory protocol (§3.1)."""

    cpu: SimCpuParams = field(default_factory=SimCpuParams)
    page_bytes: int = 4096
    local_miss_cycles: int = 20
    remote_clean_cycles: int = 90    # DASH/FLASH-class 2-hop miss
    remote_dirty_cycles: int = 130   # 3-hop dirty miss
    crossbar_bandwidth_bytes: float = 200e6   # Paragon-like links
    crossbar_latency_s: float = 0.1e-6
    lock_acquire_cycles: int = 120
    lock_release_cycles: int = 40
    lock_handoff_cycles: int = 140
    barrier_arrive_cycles: int = 100
    barrier_depart_cycles: int = 90

    @property
    def clock_hz(self) -> float:
        return self.cpu.clock_hz

    @property
    def crossbar_latency_cycles(self) -> int:
        return units.seconds_to_cycles(self.crossbar_latency_s,
                                       self.clock_hz)


@dataclass(frozen=True)
class HsParams:
    """Hardware-software: SMP nodes + TreadMarks between nodes (§3.1)."""

    cpu: SimCpuParams = field(default_factory=SimCpuParams)
    page_bytes: int = 4096
    procs_per_node: int = 8
    #: Split-transaction node bus with "sufficient bus bandwidth to
    #: avoid contention" (§3.1); with the 20-cycle memory service this
    #: makes local misses ~25 cycles, slightly above AS/AH's 20
    #: ("slightly longer ... because of bus overhead").
    node_bus: BusTiming = field(default_factory=lambda: BusTiming(
        width_bytes=16, bus_hz=200e6, cpu_hz=100e6,
        arbitration_bus_cycles=1, address_bus_cycles=1))
    node_memory_extra_cycles: int = 20
    network_bandwidth_bits: float = 155e6
    network_latency_s: float = 1e-6
    header_bytes: int = 40
    overhead_preset: OverheadPreset = OverheadPreset.SIM_BASE
    intra_barrier_cycles: int = 30
    lock_acquire_cycles: int = 30    # intra-node handoffs
    lock_release_cycles: int = 20
    lock_handoff_cycles: int = 40

    @property
    def clock_hz(self) -> float:
        return self.cpu.clock_hz

    @property
    def bandwidth_bytes(self) -> float:
        return self.network_bandwidth_bits / 8

    @property
    def network_latency_cycles(self) -> int:
        return units.seconds_to_cycles(self.network_latency_s, self.clock_hz)

    def overhead(self) -> SoftwareOverhead:
        return self.overhead_preset.build()

    def with_overhead(self, preset: OverheadPreset) -> "HsParams":
        return replace(self, overhead_preset=preset)
