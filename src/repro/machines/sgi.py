"""The SGI 4D/480 bus-based snooping multiprocessor (§2.2).

Eight 40 MHz processors, each with a 1 MB write-back second-level
cache, kept coherent with the Illinois protocol over a 64-bit shared
bus.  Synchronization is ordinary shared-memory (test-and-set locks,
counter barriers) whose transactions serialize through the bus.
"""

from __future__ import annotations

from typing import Optional

from repro.ablate import parse_ablation
from repro.dsm.bound import BoundMode
from repro.errors import ConfigurationError
from repro.hw.snoop import SnoopingSystem
from repro.hw.sync import HwBarrier, HwLockTable, make_hw_barrier, \
    make_hw_locks
from repro.machines.base import Machine, Runtime
from repro.machines.params import SgiParams
from repro.mem.directcache import DirectMappedCache
from repro.mem.layout import AddressSpace, Geometry
from repro.net.bus import BusModel
from repro.net.crossbar import CombiningStage
from repro.sim.engine import Engine
from repro.sim.task import ProcTask
from repro.stats.counters import Counters
from repro.sync import SyncSpec, parse_sync


class SnoopRuntime(Runtime):
    """Operation dispatch for bus-based snooping machines."""

    def __init__(self, engine: Engine, space: AddressSpace,
                 counters: Counters, nprocs: int, *,
                 snoop: SnoopingSystem, locks: HwLockTable,
                 barrier: HwBarrier) -> None:
        super().__init__(engine, space, counters, nprocs,
                         bound_mode=BoundMode.HARDWARE)
        self.snoop = snoop
        self.locks = locks
        self.barrier = barrier

    def do_read(self, task: ProcTask, addr: int, nbytes: int) -> None:
        """Read through the L2; misses snoop the shared bus."""
        first, last = self.space.geometry.line_span(addr, nbytes)
        end = self.snoop.read(task.proc_id, first, last, self.engine.now)
        task.resume(end)

    def do_write(self, task: ProcTask, addr: int, nbytes: int,
                 changed_bytes: int) -> None:
        """Write through the L2; the bus invalidates other copies."""
        # Hardware moves whole lines regardless of how many bytes
        # actually changed — the §2.4.2 SOR asymmetry.
        first, last = self.space.geometry.line_span(addr, nbytes)
        end = self.snoop.write(task.proc_id, first, last, self.engine.now)
        task.resume(end)

    def do_acquire(self, task: ProcTask, lock: int) -> None:
        """Acquire via the bus-serialized hardware lock table."""
        self.counters.lock_acquires += 1
        self.locks.acquire(lock, task.proc_id, task.resume)

    def do_release(self, task: ProcTask, lock: int) -> None:
        """Release at the lock table; waiters hand off in order."""
        self.locks.release(lock, task.proc_id, task.resume)

    def do_barrier(self, task: ProcTask, barrier_id: int) -> None:
        """Arrive at the bus-based barrier counter."""
        self.barrier.arrive(barrier_id, task.proc_id, task.resume)

    def finish_run(self) -> None:
        """Fold barrier counts into counters; close the checker."""
        self.counters.barriers = self.barrier.completed
        if self.snoop.checker is not None:
            self.snoop.checker.finish()


class SgiMachine(Machine):
    """The SGI 4D/480."""

    def __init__(self, params: Optional[SgiParams] = None, *,
                 faults=None, sync: SyncSpec = None,
                 ablate=None) -> None:
        super().__init__()
        if faults is not None and faults.enabled:
            raise ConfigurationError(
                "sgi is a hardware shared-memory machine with no "
                "message-passing network path; fault injection "
                f"({faults.label()}) applies only to the software DSM "
                "machines (treadmarks, as, hs)")
        ablate = parse_ablation(ablate)
        if not ablate.is_default:
            raise ConfigurationError(
                "sgi keeps coherence in hardware: the ablatable DSM "
                f"mechanisms ({ablate.label()}) exist only on the "
                "software machines (treadmarks, as, hs)")
        self.params = params or SgiParams()
        self.sync = parse_sync(sync)
        self.name = "sgi"
        if not self.sync.is_default:
            self.name = f"sgi-{self.sync.label()}"

    @property
    def clock_hz(self) -> float:
        """MIPS R3000 clock (SgiParams)."""
        return self.params.clock_hz

    def geometry(self) -> Geometry:
        """Pages exist only for address layout; the bus moves lines."""
        return Geometry(self.params.page_bytes, self.params.line_bytes)

    def max_procs(self) -> int:
        """The 4D/480 tops out at 8 processors."""
        return self.params.max_procs

    def build_runtime(self, engine: Engine, space: AddressSpace,
                      counters: Counters, nprocs: int) -> SnoopRuntime:
        """Assemble L2 caches, the shared bus, and snooping coherence."""
        p = self.params
        caches = [DirectMappedCache(p.l2_bytes, p.line_bytes, name=f"l2.{i}")
                  for i in range(nprocs)]
        bus = BusModel("sgi.bus", p.bus, counters, tracer=engine.tracer)
        snoop = SnoopingSystem(
            caches, bus, counters,
            line_bytes=p.line_bytes,
            hit_cycles=p.l2_hit_cycles,
            memory_extra_cycles=p.memory_extra_cycles,
        )
        stage = None
        if "combining" in (self.sync.lock, self.sync.barrier):
            # Sequent-style fetch-and-add at the memory controller:
            # ops arriving within one bus-transaction window merge.
            stage = CombiningStage(
                counters, resource=bus.resource,
                window_cycles=p.barrier_arrive_cycles,
                combine_cycles=max(1, p.lock_release_cycles))
        locks = make_hw_locks(
            self.sync.lock, engine,
            acquire_cycles=p.lock_acquire_cycles,
            release_cycles=p.lock_release_cycles,
            handoff_cycles=p.lock_handoff_cycles,
            serializer=bus.resource,
            stage=stage,
        )
        barrier = make_hw_barrier(
            self.sync.barrier, engine, nprocs,
            arrive_cycles=p.barrier_arrive_cycles,
            depart_cycles=p.barrier_depart_cycles,
            serializer=bus.resource,
            stage=stage,
            tree_radix=self.sync.tree_radix,
        )
        return SnoopRuntime(engine, space, counters, nprocs,
                            snoop=snoop, locks=locks, barrier=barrier)
