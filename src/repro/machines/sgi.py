"""The SGI 4D/480 bus-based snooping multiprocessor (§2.2).

Eight 40 MHz processors, each with a 1 MB write-back second-level
cache, kept coherent with the Illinois protocol over a 64-bit shared
bus.  Synchronization is ordinary shared-memory (test-and-set locks,
counter barriers) whose transactions serialize through the bus.
"""

from __future__ import annotations

from typing import Optional

from repro.dsm.bound import BoundMode
from repro.errors import ConfigurationError
from repro.hw.snoop import SnoopingSystem
from repro.hw.sync import HwBarrier, HwLockTable
from repro.machines.base import Machine, Runtime
from repro.machines.params import SgiParams
from repro.mem.directcache import DirectMappedCache
from repro.mem.layout import AddressSpace, Geometry
from repro.net.bus import BusModel
from repro.sim.engine import Engine
from repro.sim.task import ProcTask
from repro.stats.counters import Counters


class SnoopRuntime(Runtime):
    """Operation dispatch for bus-based snooping machines."""

    def __init__(self, engine: Engine, space: AddressSpace,
                 counters: Counters, nprocs: int, *,
                 snoop: SnoopingSystem, locks: HwLockTable,
                 barrier: HwBarrier) -> None:
        super().__init__(engine, space, counters, nprocs,
                         bound_mode=BoundMode.HARDWARE)
        self.snoop = snoop
        self.locks = locks
        self.barrier = barrier

    def do_read(self, task: ProcTask, addr: int, nbytes: int) -> None:
        first, last = self.space.geometry.line_span(addr, nbytes)
        end = self.snoop.read(task.proc_id, first, last, self.engine.now)
        task.resume(end)

    def do_write(self, task: ProcTask, addr: int, nbytes: int,
                 changed_bytes: int) -> None:
        # Hardware moves whole lines regardless of how many bytes
        # actually changed — the §2.4.2 SOR asymmetry.
        first, last = self.space.geometry.line_span(addr, nbytes)
        end = self.snoop.write(task.proc_id, first, last, self.engine.now)
        task.resume(end)

    def do_acquire(self, task: ProcTask, lock: int) -> None:
        self.counters.lock_acquires += 1
        self.locks.acquire(lock, task.proc_id, task.resume)

    def do_release(self, task: ProcTask, lock: int) -> None:
        self.locks.release(lock, task.proc_id, task.resume)

    def do_barrier(self, task: ProcTask, barrier_id: int) -> None:
        self.barrier.arrive(barrier_id, task.proc_id, task.resume)

    def finish_run(self) -> None:
        self.counters.barriers = self.barrier.completed
        if self.snoop.checker is not None:
            self.snoop.checker.finish()


class SgiMachine(Machine):
    """The SGI 4D/480."""

    def __init__(self, params: Optional[SgiParams] = None, *,
                 faults=None) -> None:
        super().__init__()
        if faults is not None and faults.enabled:
            raise ConfigurationError(
                "sgi is a hardware shared-memory machine with no "
                "message-passing network path; fault injection "
                f"({faults.label()}) applies only to the software DSM "
                "machines (treadmarks, as, hs)")
        self.params = params or SgiParams()
        self.name = "sgi"

    @property
    def clock_hz(self) -> float:
        return self.params.clock_hz

    def geometry(self) -> Geometry:
        return Geometry(self.params.page_bytes, self.params.line_bytes)

    def max_procs(self) -> int:
        return self.params.max_procs

    def build_runtime(self, engine: Engine, space: AddressSpace,
                      counters: Counters, nprocs: int) -> SnoopRuntime:
        p = self.params
        caches = [DirectMappedCache(p.l2_bytes, p.line_bytes, name=f"l2.{i}")
                  for i in range(nprocs)]
        bus = BusModel("sgi.bus", p.bus, counters, tracer=engine.tracer)
        snoop = SnoopingSystem(
            caches, bus, counters,
            line_bytes=p.line_bytes,
            hit_cycles=p.l2_hit_cycles,
            memory_extra_cycles=p.memory_extra_cycles,
        )
        locks = HwLockTable(
            engine,
            acquire_cycles=p.lock_acquire_cycles,
            release_cycles=p.lock_release_cycles,
            handoff_cycles=p.lock_handoff_cycles,
            serializer=bus.resource,
        )
        barrier = HwBarrier(
            engine, nprocs,
            arrive_cycles=p.barrier_arrive_cycles,
            depart_cycles=p.barrier_depart_cycles,
            serializer=bus.resource,
        )
        return SnoopRuntime(engine, space, counters, nprocs,
                            snoop=snoop, locks=locks, barrier=barrier)
