"""Machine base class and the runtime/operation dispatch skeleton.

A :class:`Machine` is a reusable description of a platform.  Each call
to :meth:`Machine.run` builds a fresh engine, address space, store and
*runtime* (the per-run :class:`~repro.sim.task.OpHandler`), executes
the application's processor programs to completion, and returns a
:class:`~repro.stats.result.RunResult`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from enum import Enum
from typing import Any, Dict, Optional

from repro.apps.base import AppContext, Application
from repro.apps import ops
from repro.check.checker import active_check_config
from repro.dsm.bound import BoundMode, SharedBound
from repro.errors import ConfigurationError, SimulationError
from repro.ledger import (active_ledger, current_run_id, run_record,
                          run_scope)
from repro.mem.layout import AddressSpace, Geometry
from repro.mem.store import SharedStore
from repro.sim.engine import Engine
from repro.sim.task import OpHandler, ProcTask
from repro.stats.counters import Counters
from repro.stats.result import RunResult
from repro.trace import session as trace_session
from repro.trace.opmap import op_category
from repro.trace.tracer import Tracer


class Runtime(OpHandler):
    """Per-run operation dispatcher; machines subclass this."""

    def __init__(self, engine: Engine, space: AddressSpace,
                 counters: Counters, nprocs: int, *,
                 bound_mode: BoundMode,
                 bound_push_latency: int = 0) -> None:
        self.engine = engine
        self.space = space
        self.counters = counters
        self.nprocs = nprocs
        self.bound = SharedBound(bound_mode, nprocs,
                                 push_latency_cycles=bound_push_latency)
        #: Set by software machines when the fault plan schedules
        #: crashes; :meth:`Machine.run` reads the degraded verdict off
        #: it after the engine drains.
        self.recovery = None

    # ------------------------------------------------------------------
    def handle(self, task: ProcTask, op: Any) -> None:
        """Dispatch one application op to the machine-specific hook."""
        if type(op) is ops.OpBlock:
            # ProcTask unrolls chunks member-by-member before dispatch
            # (see repro.sim.task); a block reaching the runtime means
            # a custom task skipped that layer.
            raise SimulationError(
                "OpBlock must be issued through ProcTask's chunked "
                "scheduler, not handed to the runtime directly")
        tracer = self.engine.tracer
        if tracer.enabled:
            category, name = op_category(op)
            tracer.begin_op(task.proc_id, category, name,
                            self.engine.now)
        if isinstance(op, ops.Compute):
            task.busy_cycles += op.cycles
            task.resume(self.engine.now + op.cycles)
        elif isinstance(op, ops.Read):
            addr, nbytes = self.space.span(op.region, op.offset, op.nbytes)
            self.do_read(task, addr, nbytes)
        elif isinstance(op, ops.Write):
            addr, nbytes = self.space.span(op.region, op.offset, op.nbytes)
            self.do_write(task, addr, nbytes, op.changed_bytes)
        elif isinstance(op, ops.Acquire):
            self.do_acquire(task, op.lock)
        elif isinstance(op, ops.Release):
            self.do_release(task, op.lock)
        elif isinstance(op, ops.Barrier):
            self.do_barrier(task, op.barrier_id)
        elif isinstance(op, ops.ReadBound):
            value = self.bound.read(task.proc_id, self.engine.now)
            task.resume(self.engine.now + 1, value)
        elif isinstance(op, ops.UpdateBound):
            improved = self.bound.update(task.proc_id, op.value,
                                         self.engine.now)
            task.resume(self.engine.now + 1, improved)
        else:
            raise SimulationError(f"unknown operation {op!r}")

    # -- abstract memory/sync hooks -------------------------------------
    def do_read(self, task: ProcTask, addr: int, nbytes: int) -> None:
        """Serve a shared read; resume ``task`` when the data is local."""
        raise NotImplementedError

    def do_write(self, task: ProcTask, addr: int, nbytes: int,
                 changed_bytes: int) -> None:
        """Apply a shared write (``changed_bytes`` of it actually new)."""
        raise NotImplementedError

    def do_acquire(self, task: ProcTask, lock: int) -> None:
        """Acquire ``lock``; resume ``task`` once granted."""
        raise NotImplementedError

    def do_release(self, task: ProcTask, lock: int) -> None:
        """Release ``lock`` (consistency actions ride along here)."""
        raise NotImplementedError

    def do_barrier(self, task: ProcTask, barrier_id: int) -> None:
        """Enter a global barrier; resume ``task`` at departure."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------
    def sync_point(self, proc: int, time: int) -> None:
        """Record a consistency sync point (bound visibility catches up)."""
        self.bound.on_sync(proc, time)

    def finish_run(self) -> None:
        """Hook for end-of-run bookkeeping (optional)."""


def fingerprint_value(value: Any) -> Any:
    """Recursively reduce a parameter value to stable, JSON-safe data.

    Dataclasses (machine params, nested timing/overhead structures)
    become field dictionaries, enums their values, sets sorted lists.
    Anything exotic falls back to ``repr`` — stable across processes,
    which is all a fingerprint needs.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: fingerprint_value(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, Enum):
        return [type(value).__name__, value.value]
    if isinstance(value, dict):
        return {str(k): fingerprint_value(v)
                for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [fingerprint_value(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((fingerprint_value(v) for v in value), key=str)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):
        return value.item()
    return repr(value)


class Machine:
    """A platform that can run applications; subclasses configure it."""

    name: str = "machine"

    #: No-progress window (sim cycles) for the engine watchdog; the
    #: software machines set it when fault injection is enabled so a
    #: lossy run that stops making progress fails diagnosably instead
    #: of hanging.  ``None`` leaves the watchdog off.
    watchdog_cycles: Optional[int] = None

    def __init__(self) -> None:
        self.last_runtime: Optional[Runtime] = None

    # -- transport --------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Pickle the machine *description* only."""
        # ``last_runtime`` holds a whole simulation (engine, generator
        # tasks) — unpicklable and irrelevant to a machine *description*.
        # Dropping it keeps machines transportable to worker processes.
        state = dict(self.__dict__)
        state["last_runtime"] = None
        return state

    # -- identity ---------------------------------------------------------
    def fingerprint_data(self, nprocs: Optional[int] = None
                         ) -> Dict[str, Any]:
        """Stable data identifying this machine's simulated behaviour.

        The default covers machines fully described by a ``params``
        dataclass (SGI, AH, HS): class, display name, and every
        parameter field.  Subclasses with extra behaviour-affecting
        state must override and include it — anything left out will
        alias distinct configurations in the result cache.

        ``nprocs`` lets a machine declare processor-count-dependent
        equivalences; see
        :meth:`~repro.machines.software.PagedDsmMachine.fingerprint_data`
        for the shared 1-processor baseline of the software machines.
        """
        data: Dict[str, Any] = {
            "class": type(self).__qualname__,
            "name": self.name,
        }
        params = getattr(self, "params", None)
        if params is not None:
            data["params"] = fingerprint_value(params)
        faults = getattr(self, "faults", None)
        if faults is not None and faults.enabled:
            # Only *enabled* plans enter the key: a disabled plan is
            # behaviourally identical to no plan, and must share cache
            # entries with clean runs (zero-overhead-when-disabled).
            data["faults"] = fingerprint_value(faults)
        sync = getattr(self, "sync", None)
        if sync is not None and not sync.is_default:
            # The default policy is the paper's protocol; like fault
            # plans, only a non-default policy forks the cache key.
            data["sync"] = fingerprint_value(sync)
        ablate = getattr(self, "ablate", None)
        if ablate is not None and not ablate.is_default:
            # The all-on ablation spec is the paper's protocol and
            # shares keys with machines built without the ablation
            # layer; any off-toggle changes behaviour and forks it.
            data["ablate"] = fingerprint_value(ablate)
        check_cfg = active_check_config()
        if check_cfg is not None:
            # Checked runs are timing-identical to clean ones, but a
            # cached result would skip the checkers entirely; fork the
            # key so "run with checks" always actually checks.
            data["check"] = check_cfg.label()
        return data

    def fingerprint(self, nprocs: Optional[int] = None) -> str:
        """Hex digest of :meth:`fingerprint_data` (cache-key component)."""
        payload = json.dumps(self.fingerprint_data(nprocs),
                             sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- abstract configuration -----------------------------------------
    @property
    def clock_hz(self) -> float:
        """Processor clock rate (cycles <-> seconds conversions)."""
        raise NotImplementedError

    def geometry(self) -> Geometry:
        """Page/line geometry the address space is laid out with."""
        raise NotImplementedError

    def max_procs(self) -> int:
        """Largest processor count this machine is defined for."""
        return 1024

    def build_runtime(self, engine: Engine, space: AddressSpace,
                      counters: Counters, nprocs: int) -> Runtime:
        """Construct the full simulated system for one run."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def run(self, app: Application, nprocs: int, *,
            seed: int = 42,
            params: Optional[Dict[str, Any]] = None,
            tracer: Optional[Tracer] = None) -> RunResult:
        """Execute ``app`` on ``nprocs`` processors; returns results.

        Pass a :class:`~repro.trace.tracer.Tracer` to collect spans
        and a time breakdown; inside an active
        :func:`~repro.trace.session.trace_session`, one is supplied
        (and the result collected) automatically.
        """
        app.check_nprocs(nprocs)
        if nprocs > self.max_procs():
            raise ConfigurationError(
                f"{self.name} supports at most {self.max_procs()} "
                f"processors, requested {nprocs}")

        session = trace_session.active_session()
        if tracer is None and session is not None:
            tracer = session.new_tracer(
                f"{self.name}/{app.name}/p{nprocs}")

        # Provenance: an enclosing executor (the parallel runner, a
        # pool worker) has already allocated this run's ledger
        # identity and owns the record; a bare Machine.run inside a
        # ledger session allocates its own and appends a "direct"
        # record below.
        run_id = current_run_id()
        ledger = None
        ledger_key = None
        ledger_attempt = 0
        if run_id is None:
            ledger = active_ledger()
            if ledger is not None:
                from repro.harness.cache import run_key  # lazy: cycle
                ledger_key = run_key(self, app, nprocs, seed=seed,
                                     params=params)
                run_id, ledger_attempt = ledger.next_run_id(ledger_key)
        wall_start = time.perf_counter()

        engine = Engine(tracer=tracer)
        engine.watchdog_cycles = self.watchdog_cycles
        space = AddressSpace(self.geometry())
        for region_name, size in app.regions(nprocs).items():
            space.alloc(region_name, size)
        store = SharedStore(space)
        counters = Counters()

        ctx = AppContext(store, nprocs, seed=seed, params=dict(params or {}))
        app.init_data(ctx)

        runtime = self.build_runtime(engine, space, counters, nprocs)
        self.last_runtime = runtime
        recovery = getattr(runtime, "recovery", None)
        if recovery is not None:
            # Crash declarations repair the DSM stack; the application
            # hook lets the workload retire the dead procs' share of
            # its run state too (work-queue termination counts etc.).
            recovery.app_hooks.append(
                lambda node, procs, _now: app.on_node_failed(ctx, procs))

        programs = app.programs(ctx)
        if len(programs) != nprocs:
            raise ConfigurationError(
                f"{app.name} produced {len(programs)} programs for "
                f"{nprocs} processors")
        tasks = [ProcTask(engine, p, gen, runtime)
                 for p, gen in enumerate(programs)]
        for task in tasks:
            task.start()
        with run_scope(run_id):
            # Anything raised in here — notably ConsistencyViolation
            # from an armed checker — captures the ambient run_id.
            engine.run()
            runtime.finish_run()

        cycles = max((t.finish_time or 0) for t in tasks)
        degraded = recovery.degraded_info() if recovery is not None else None
        if degraded is not None:
            # Tell the application's verifier which nodes died so it
            # can apply degraded-mode acceptance (a crashed worker's
            # partial contribution is legitimately absent).
            ctx.params["_failed_nodes"] = list(degraded["failed_nodes"])
        output = app.verify(ctx)
        output.update(ctx.output)
        breakdown = None
        if tracer is not None and tracer.enabled:
            breakdown = tracer.finish(
                cycles, nprocs, self.clock_hz,
                machine=self.name, app=app.name,
                **({"run_id": run_id} if run_id is not None else {}))
        result = RunResult(
            machine=self.name,
            app=app.name,
            nprocs=nprocs,
            cycles=cycles,
            clock_hz=self.clock_hz,
            counters=counters,
            app_output=output,
            params={"seed": seed, **(params or {})},
            events=engine.events_processed,
            breakdown=breakdown,
            run_id=run_id,
            degraded=degraded,
        )
        if ledger is not None:
            ledger.append(run_record(
                run_id=run_id, key=ledger_key, attempt=ledger_attempt,
                machine=self, app=app, nprocs=nprocs, seed=seed,
                params=params, result=result, path="fresh",
                executor="direct",
                wall_s=time.perf_counter() - wall_start))
        if session is not None:
            session.record(result, tracer)
        return result

    def __repr__(self) -> str:
        return f"<{type(self).__name__} '{self.name}'>"
