"""Machine models: the two experimental platforms and the three
simulated large-scale architectures.

* :class:`~repro.machines.dec_treadmarks.DecTreadMarksMachine` — eight
  DECstation-5000/240s on a Fore ATM LAN running TreadMarks (§2.2).
* :class:`~repro.machines.sgi.SgiMachine` — the SGI 4D/480 bus-based
  snooping multiprocessor (§2.2).
* :class:`~repro.machines.all_software.AllSoftwareMachine` — AS:
  uniprocessor nodes + general-purpose network + TreadMarks (§3).
* :class:`~repro.machines.all_hardware.AllHardwareMachine` — AH:
  uniprocessor nodes + crossbar + directory protocol (§3).
* :class:`~repro.machines.hybrid.HybridMachine` — HS: bus-based SMP
  nodes + TreadMarks between nodes (§3).
"""

from repro.machines.all_hardware import AllHardwareMachine
from repro.machines.all_software import AllSoftwareMachine
from repro.machines.base import Machine
from repro.machines.dec_treadmarks import DecTreadMarksMachine
from repro.machines.hybrid import HybridMachine
from repro.machines.sgi import SgiMachine
from repro.machines import params

__all__ = [
    "Machine",
    "DecTreadMarksMachine",
    "SgiMachine",
    "AllSoftwareMachine",
    "AllHardwareMachine",
    "HybridMachine",
    "params",
]
