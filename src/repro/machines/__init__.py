"""Machine models: the two experimental platforms and the three
simulated large-scale architectures.

* :class:`~repro.machines.dec_treadmarks.DecTreadMarksMachine` — eight
  DECstation-5000/240s on a Fore ATM LAN running TreadMarks (§2.2).
* :class:`~repro.machines.sgi.SgiMachine` — the SGI 4D/480 bus-based
  snooping multiprocessor (§2.2).
* :class:`~repro.machines.all_software.AllSoftwareMachine` — AS:
  uniprocessor nodes + general-purpose network + TreadMarks (§3).
* :class:`~repro.machines.all_hardware.AllHardwareMachine` — AH:
  uniprocessor nodes + crossbar + directory protocol (§3).
* :class:`~repro.machines.hybrid.HybridMachine` — HS: bus-based SMP
  nodes + TreadMarks between nodes (§3).
"""

import dataclasses
from typing import Any, Dict, Optional, Tuple, Type, Union

from repro.errors import ConfigurationError
from repro.machines.all_hardware import AllHardwareMachine
from repro.machines.all_software import AllSoftwareMachine
from repro.machines.base import Machine
from repro.machines.dec_treadmarks import DecTreadMarksMachine
from repro.machines.hybrid import HybridMachine
from repro.machines.sgi import SgiMachine
from repro.machines import params

#: Canonical name -> (machine class, its params dataclass).  The
#: canonical names are the paper's labels — the same strings the
#: machines report as ``result.machine`` (modulo variant suffixes).
MACHINE_REGISTRY: Dict[str, Tuple[Type[Machine], type]] = {
    "treadmarks": (DecTreadMarksMachine, params.DecAtmParams),
    "sgi": (SgiMachine, params.SgiParams),
    "as": (AllSoftwareMachine, params.AsParams),
    "ah": (AllHardwareMachine, params.AhParams),
    "hs": (HybridMachine, params.HsParams),
}

_ALIASES: Dict[str, str] = {
    "tm": "treadmarks",
    "dec": "treadmarks",
    "dec-treadmarks": "treadmarks",
    "all-software": "as",
    "all_software": "as",
    "all-hardware": "ah",
    "all_hardware": "ah",
    "hybrid": "hs",
}


def machine_names() -> Tuple[str, ...]:
    """The canonical machine names, in registry (paper) order."""
    return tuple(MACHINE_REGISTRY)


def make_machine(name: str, nprocs: Optional[int] = None, *,
                 params: Union[None, Any, Dict[str, Any]] = None,
                 faults: Optional[Any] = None,
                 sync: Optional[Any] = None,
                 ablate: Optional[Any] = None,
                 **kwargs: Any) -> Machine:
    """Build a machine by name — the stable construction entry point.

    ``name`` is a canonical registry name (``treadmarks``, ``sgi``,
    ``as``, ``ah``, ``hs``) or an alias (``tm``, ``dec``, ``hybrid``,
    ...), case-insensitively.  ``params`` is either an instance of
    the machine's params dataclass or a plain dict of field overrides
    applied to the defaults (``{"page_bytes": 8192}``).  ``nprocs``
    is optional and purely a validation convenience: when given, the
    factory rejects a count the machine cannot run rather than
    letting :meth:`Machine.run` fail later.  ``faults`` takes a
    :class:`~repro.net.faults.FaultPlan` (software DSM machines
    only); ``sync`` takes any :data:`~repro.sync.policy.SyncSpec` —
    a :class:`~repro.sync.SyncPolicy`, a spec string like
    ``"mcs+tree"``, or a mapping — selecting the lock/barrier
    algorithms (every machine accepts every policy); ``ablate``
    takes any :data:`~repro.ablate.spec.AblationSpecLike` — an
    :class:`~repro.ablate.AblationSpec`, a spec string like
    ``"no-twins"``, or a mapping — selecting which DSM mechanisms
    stay on (software DSM machines only; the hardware machines
    reject non-default specs); remaining keyword arguments go to the
    constructor (``kernel_level=True``, ``eager_locks=...``).

    The factory adds no state of its own: machines it returns are
    indistinguishable — fingerprints, cache keys, ledger records —
    from directly-constructed ones, and the class constructors remain
    supported as the compatibility path.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    entry = MACHINE_REGISTRY.get(key)
    if entry is None:
        known = ", ".join(sorted(set(MACHINE_REGISTRY) | set(_ALIASES)))
        raise ConfigurationError(
            f"unknown machine '{name}' (known: {known})")
    machine_cls, params_cls = entry
    if isinstance(params, dict):
        try:
            params = dataclasses.replace(params_cls(), **params)
        except TypeError as exc:
            raise ConfigurationError(
                f"bad params override for '{key}': {exc}") from None
    elif params is not None and not isinstance(params, params_cls):
        raise ConfigurationError(
            f"machine '{key}' takes {params_cls.__name__} params, "
            f"got {type(params).__name__}")
    if faults is not None:
        kwargs["faults"] = faults
    if sync is not None:
        from repro.sync import parse_sync
        kwargs["sync"] = parse_sync(sync)
    if ablate is not None:
        from repro.ablate import parse_ablation
        kwargs["ablate"] = parse_ablation(ablate)
    machine = machine_cls(params, **kwargs)
    if nprocs is not None and nprocs > machine.max_procs():
        raise ConfigurationError(
            f"{machine.name} supports at most {machine.max_procs()} "
            f"processors, requested {nprocs}")
    return machine


__all__ = [
    "Machine",
    "DecTreadMarksMachine",
    "SgiMachine",
    "AllSoftwareMachine",
    "AllHardwareMachine",
    "HybridMachine",
    "MACHINE_REGISTRY",
    "machine_names",
    "make_machine",
    "params",
]
