"""The simulated all-hardware (AH) architecture of §3.1.

Uniprocessor nodes on a crossbar with a full-map directory protocol.
Misses are serviced in 20 cycles locally and 90-130 cycles remotely,
DASH/FLASH-class numbers.  Locks and barriers are shared-memory
algorithms whose critical accesses serialize at a home node.
"""

from __future__ import annotations

from typing import Optional

from repro.ablate import parse_ablation
from repro.dsm.bound import BoundMode
from repro.errors import ConfigurationError
from repro.hw.directory import DirectorySystem
from repro.hw.sync import HwBarrier, HwLockTable, make_hw_barrier, \
    make_hw_locks
from repro.machines.base import Machine, Runtime
from repro.machines.params import AhParams
from repro.mem.directcache import DirectMappedCache
from repro.mem.layout import AddressSpace, Geometry
from repro.net.crossbar import CombiningStage, CrossbarNetwork
from repro.sim.engine import Engine
from repro.sim.resource import Resource
from repro.sim.task import ProcTask
from repro.stats.counters import Counters
from repro.sync import SyncSpec, parse_sync
from repro.trace.tracer import Category


class DirectoryRuntime(Runtime):
    """Operation dispatch for the directory machine."""

    def __init__(self, engine: Engine, space: AddressSpace,
                 counters: Counters, nprocs: int, *,
                 directory: DirectorySystem, locks: HwLockTable,
                 barrier: HwBarrier) -> None:
        super().__init__(engine, space, counters, nprocs,
                         bound_mode=BoundMode.HARDWARE)
        self.directory = directory
        self.locks = locks
        self.barrier = barrier

    def do_read(self, task: ProcTask, addr: int, nbytes: int) -> None:
        """Read through the cache; misses go to the directory."""
        first, last = self.space.geometry.line_span(addr, nbytes)
        now = self.engine.now
        end = self.directory.read(task.proc_id, first, last, now)
        tracer = self.engine.tracer
        if tracer.enabled and end > now:
            tracer.complete(task.proc_id, Category.MISS, "dir_read",
                            now, end, track=f"p{task.proc_id}.mem")
        task.resume(end)

    def do_write(self, task: ProcTask, addr: int, nbytes: int,
                 changed_bytes: int) -> None:
        """Write through the cache; the directory invalidates sharers."""
        first, last = self.space.geometry.line_span(addr, nbytes)
        now = self.engine.now
        end = self.directory.write(task.proc_id, first, last, now)
        tracer = self.engine.tracer
        if tracer.enabled and end > now:
            tracer.complete(task.proc_id, Category.MISS, "dir_write",
                            now, end, track=f"p{task.proc_id}.mem")
        task.resume(end)

    def do_acquire(self, task: ProcTask, lock: int) -> None:
        """Acquire through the hardware lock table at the sync home."""
        self.counters.lock_acquires += 1
        self.locks.acquire(lock, task.proc_id, task.resume)

    def do_release(self, task: ProcTask, lock: int) -> None:
        """Release at the lock table; the waiter queue hands off."""
        self.locks.release(lock, task.proc_id, task.resume)

    def do_barrier(self, task: ProcTask, barrier_id: int) -> None:
        """Arrive at the hardware barrier counter."""
        self.barrier.arrive(barrier_id, task.proc_id, task.resume)

    def finish_run(self) -> None:
        """Fold barrier counts into counters; close the checker."""
        self.counters.barriers = self.barrier.completed
        if self.directory.checker is not None:
            self.directory.checker.finish()


class AllHardwareMachine(Machine):
    """AH: uniprocessor nodes + crossbar + directory coherence."""

    def __init__(self, params: Optional[AhParams] = None, *,
                 faults=None, sync: SyncSpec = None,
                 ablate=None) -> None:
        super().__init__()
        if faults is not None and faults.enabled:
            raise ConfigurationError(
                "ah keeps coherence in hardware over a reliable "
                "crossbar; fault injection "
                f"({faults.label()}) applies only to the software DSM "
                "machines (treadmarks, as, hs)")
        ablate = parse_ablation(ablate)
        if not ablate.is_default:
            raise ConfigurationError(
                "ah has no software DSM: the ablatable mechanisms "
                f"({ablate.label()}) exist only on the software "
                "machines (treadmarks, as, hs)")
        self.params = params or AhParams()
        self.sync = parse_sync(sync)
        self.name = "ah"
        if not self.sync.is_default:
            self.name = f"ah-{self.sync.label()}"

    @property
    def clock_hz(self) -> float:
        """Simulated node clock (AhParams)."""
        return self.params.clock_hz

    def geometry(self) -> Geometry:
        """AH pages exist only for address layout; lines do the work."""
        return Geometry(self.params.page_bytes, self.params.cpu.line_bytes)

    def max_procs(self) -> int:
        """Directory sharer bitmask width."""
        return 64

    def build_runtime(self, engine: Engine, space: AddressSpace,
                      counters: Counters, nprocs: int) -> DirectoryRuntime:
        """Assemble caches, crossbar, directory, and hardware sync."""
        p = self.params
        caches = [DirectMappedCache(p.cpu.cache_bytes, p.cpu.line_bytes,
                                    name=f"c{i}") for i in range(nprocs)]
        network = CrossbarNetwork(
            engine, nprocs,
            bandwidth_bytes_per_sec=p.crossbar_bandwidth_bytes,
            latency_cycles=p.crossbar_latency_cycles,
            clock_hz=p.clock_hz,
            counters=counters,
        )
        directory = DirectorySystem(
            caches, network, counters,
            total_lines=space.total_lines,
            lines_per_page=space.geometry.lines_per_page(),
            line_bytes=p.cpu.line_bytes,
            hit_cycles=p.cpu.hit_cycles,
            local_miss_cycles=p.local_miss_cycles,
            remote_clean_cycles=p.remote_clean_cycles,
            remote_dirty_cycles=p.remote_dirty_cycles,
        )
        sync_home = Resource("ah.sync_home")
        stage = None
        if "combining" in (self.sync.lock, self.sync.barrier):
            # The crossbar's combining stage in front of the sync home
            # port: bursts within one home-service window merge, a
            # merged op costs one crossbar transit.
            stage = CombiningStage(
                counters, resource=sync_home,
                window_cycles=p.barrier_arrive_cycles,
                combine_cycles=max(1, p.crossbar_latency_cycles))
        locks = make_hw_locks(
            self.sync.lock, engine,
            acquire_cycles=p.lock_acquire_cycles,
            release_cycles=p.lock_release_cycles,
            handoff_cycles=p.lock_handoff_cycles,
            serializer=sync_home,
            stage=stage,
        )
        barrier = make_hw_barrier(
            self.sync.barrier, engine, nprocs,
            arrive_cycles=p.barrier_arrive_cycles,
            depart_cycles=p.barrier_depart_cycles,
            serializer=sync_home,
            stage=stage,
            tree_radix=self.sync.tree_radix,
        )
        return DirectoryRuntime(engine, space, counters, nprocs,
                                directory=directory, locks=locks,
                                barrier=barrier)
