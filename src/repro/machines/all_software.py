"""The simulated all-software (AS) architecture of §3.1.

Uniprocessor nodes with leading-edge CPUs/caches, a general-purpose
network (ATM-class bandwidth, microsecond latency), and TreadMarks
LRC between the nodes.  The ``overhead_preset`` knob reproduces the
Figure 14-15 software-overhead sweeps.
"""

from __future__ import annotations

from typing import Optional

from repro.machines.params import AsParams, LocalCacheParams
from repro.machines.software import PagedDsmMachine
from repro.net.faults import FaultPlan
from repro.net.overhead import OverheadPreset


class AllSoftwareMachine(PagedDsmMachine):
    """AS: uniprocessor nodes + general-purpose network + LRC DSM."""

    def __init__(self, params: Optional[AsParams] = None, *,
                 overhead_preset: Optional[OverheadPreset] = None,
                 eager_locks=None,
                 faults: Optional[FaultPlan] = None,
                 sync=None,
                 ablate=None) -> None:
        params = params or AsParams()
        if overhead_preset is not None:
            params = params.with_overhead(overhead_preset)
        self.params = params
        suffix = ""
        if params.overhead_preset is not OverheadPreset.SIM_BASE:
            suffix = f"-{params.overhead_preset.value}"
        super().__init__(
            f"as{suffix}",
            clock_hz=params.clock_hz,
            page_bytes=params.page_bytes,
            cache=LocalCacheParams(
                cache_bytes=params.cpu.cache_bytes,
                line_bytes=params.cpu.line_bytes,
                hit_cycles=params.cpu.hit_cycles,
                miss_cycles=params.local_miss_cycles,
            ),
            bandwidth_bytes_per_sec=params.bandwidth_bytes,
            switch_latency_cycles=params.network_latency_cycles,
            header_bytes=params.header_bytes,
            overhead=params.overhead(),
            eager_locks=eager_locks,
            faults=faults,
            sync=sync,
            ablate=ablate,
        )
