"""The experimental TreadMarks platform: DECstations on an ATM LAN.

Eight DECstation-5000/240s, each a uniprocessor DSM node, connected
point-to-point to a Fore ATM switch (§2.2).  TreadMarks runs at user
level on Ultrix; the ``kernel_level=True`` variant models the in-kernel
implementation of §2.4.4 (roughly halved fixed messaging costs).
"""

from __future__ import annotations

from typing import Optional

from repro.machines.params import DecAtmParams
from repro.machines.software import PagedDsmMachine
from repro.net.faults import FaultPlan


class DecTreadMarksMachine(PagedDsmMachine):
    """TreadMarks on the DECstation/ATM testbed."""

    def __init__(self, params: Optional[DecAtmParams] = None, *,
                 kernel_level: bool = False,
                 eager_locks=None,
                 use_diffs: bool = True,
                 max_procs: int = 8,
                 faults: Optional[FaultPlan] = None,
                 sync=None,
                 ablate=None) -> None:
        params = params or DecAtmParams()
        if kernel_level:
            params = params.kernel_level()
        self.params = params
        suffix = "-kernel" if kernel_level else ""
        if eager_locks:
            suffix += "-eager"
        super().__init__(
            f"treadmarks{suffix}",
            clock_hz=params.clock_hz,
            page_bytes=params.page_bytes,
            cache=params.cache,
            bandwidth_bytes_per_sec=params.bandwidth_bytes,
            switch_latency_cycles=params.switch_latency_cycles,
            header_bytes=params.header_bytes,
            overhead=params.overhead(),
            eager_locks=eager_locks,
            use_diffs=use_diffs,
            max_procs=max_procs,
            faults=faults,
            sync=sync,
            ablate=ablate,
        )
