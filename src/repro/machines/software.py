"""The paged software-DSM machine: one processor per node.

This is the shape shared by the experimental TreadMarks platform
(DECstations + ATM, §2.2) and the simulated all-software architecture
(§3.1) — only parameters differ.  Shared accesses go through the LRC
protocol at page granularity; a per-processor direct-mapped cache adds
the local memory-hierarchy cost of each access.
"""

from __future__ import annotations

from typing import Optional

from repro.ablate import AblationSpecLike, parse_ablation
from repro.dsm.bound import BoundMode
from repro.dsm.protocol import DsmConfig, TreadMarksDsm
from repro.machines.base import Machine, Runtime
from repro.machines.params import LocalCacheParams
from repro.mem.directcache import DirectMappedCache
from repro.mem.layout import AddressSpace, Geometry
from repro.net.atm import AtmNetwork
from repro.net.faults import FaultPlan
from repro.net.overhead import SoftwareOverhead
from repro.net.reliable import ReliableNetwork
from repro.recover import RecoveryManager
from repro.sim.engine import Engine
from repro.sim.task import ProcTask
from repro.stats.counters import Counters
from repro.sync import SyncSpec, parse_sync
from repro.trace.tracer import Category


class DsmRuntime(Runtime):
    """Operation dispatch for uniprocessor-node DSM machines."""

    def __init__(self, engine: Engine, space: AddressSpace,
                 counters: Counters, nprocs: int, *,
                 net: AtmNetwork, dsm: TreadMarksDsm,
                 cache_params: LocalCacheParams,
                 bound_mode: BoundMode,
                 bound_push_latency: int) -> None:
        super().__init__(engine, space, counters, nprocs,
                         bound_mode=bound_mode,
                         bound_push_latency=bound_push_latency)
        self.net = net
        self.dsm = dsm
        self.cache_params = cache_params
        self.caches = [
            DirectMappedCache(cache_params.cache_bytes,
                              cache_params.line_bytes, name=f"p{p}")
            for p in range(nprocs)
        ]

    def finish_run(self) -> None:
        if self.dsm.checker is not None:
            self.dsm.checker.finish()

    # ------------------------------------------------------------------
    def _local_cost(self, proc: int, addr: int, nbytes: int,
                    write: bool) -> int:
        """Local memory-hierarchy cost of an access to valid pages."""
        first, last = self.space.geometry.line_span(addr, nbytes)
        res = self.caches[proc].access(first, last, write)
        self.counters.cache_hits += res.hits
        self.counters.cache_misses_local += res.misses
        return (int(res.hits * self.cache_params.hit_cycles) +
                res.misses * self.cache_params.miss_cycles)

    # ------------------------------------------------------------------
    def do_read(self, task: ProcTask, addr: int, nbytes: int) -> None:
        proc = task.proc_id

        def after(time: int) -> None:
            cost = self._local_cost(proc, addr, nbytes, write=False)
            tracer = self.engine.tracer
            if tracer.enabled and cost:
                tracer.complete(proc, Category.MISS, "local_mem",
                                time, time + cost, track=f"p{proc}.mem")
            task.resume(time + cost)

        self.dsm.read(proc, addr, nbytes, after)

    def do_write(self, task: ProcTask, addr: int, nbytes: int,
                 changed_bytes: int) -> None:
        proc = task.proc_id

        def after(time: int) -> None:
            cost = self._local_cost(proc, addr, nbytes, write=True)
            tracer = self.engine.tracer
            if tracer.enabled and cost:
                tracer.complete(proc, Category.MISS, "local_mem",
                                time, time + cost, track=f"p{proc}.mem")
            task.resume(time + cost)

        self.dsm.write(proc, addr, nbytes, changed_bytes, after)

    def do_acquire(self, task: ProcTask, lock: int) -> None:
        proc = task.proc_id

        def granted(time: int, _remote: bool) -> None:
            self.sync_point(proc, time)
            task.resume(time)

        self.dsm.acquire(lock, proc, proc, granted)

    def do_release(self, task: ProcTask, lock: int) -> None:
        self.dsm.release(lock, task.proc_id, task.proc_id, task.resume)

    def do_barrier(self, task: ProcTask, barrier_id: int) -> None:
        proc = task.proc_id

        def departed(time: int) -> None:
            self.sync_point(proc, time)
            task.resume(time)

        self.dsm.barrier_arrive(barrier_id, proc, departed)


class PagedDsmMachine(Machine):
    """Configurable uniprocessor-node software DSM machine."""

    def __init__(self, name: str, *, clock_hz: float, page_bytes: int,
                 cache: LocalCacheParams,
                 bandwidth_bytes_per_sec: float,
                 switch_latency_cycles: int,
                 header_bytes: int,
                 overhead: SoftwareOverhead,
                 eager_locks=None,
                 use_diffs: bool = True,
                 max_procs: Optional[int] = None,
                 faults: Optional[FaultPlan] = None,
                 sync: SyncSpec = None,
                 ablate: AblationSpecLike = None) -> None:
        super().__init__()
        self.sync = parse_sync(sync)
        self.ablate = parse_ablation(ablate)
        self.name = name if use_diffs else f"{name}-nodiff"
        if not self.sync.is_default:
            self.name = f"{self.name}-{self.sync.label()}"
        if not self.ablate.is_default:
            self.name = f"{self.name}-{self.ablate.label()}"
        self._clock_hz = clock_hz
        self.page_bytes = page_bytes
        self.cache = cache
        self.bandwidth = bandwidth_bytes_per_sec
        self.switch_latency = switch_latency_cycles
        self.header_bytes = header_bytes
        self.overhead = overhead
        self.eager_locks = eager_locks
        self.use_diffs = use_diffs
        self._max_procs = max_procs
        self.faults = faults
        if faults is not None and faults.enabled:
            self.name = f"{self.name}-{faults.label()}"
            self.watchdog_cycles = faults.watchdog_cycles

    @property
    def clock_hz(self) -> float:
        return self._clock_hz

    def fingerprint_data(self, nprocs=None):
        """Cache identity; declares the shared 1-processor baseline.

        At one node the DSM engages no remote machinery — no messages
        are sent, the lock token never moves, and the bound is local —
        so none of the protocol/network knobs (overhead preset,
        eager vs lazy release, diffs vs whole pages, bandwidth,
        latency, headers) can affect the run.  The paper leans on
        exactly this (Table 1's DEC and DEC+TreadMarks columns
        coincide), and ``tests/test_parallel.py`` pins it.  The
        1-processor fingerprint therefore keeps only the local
        machine: clock, page size, and the processor cache.  Every
        software-DSM variant with the same local machine shares one
        cached baseline.
        """
        from repro.check.checker import active_check_config
        from repro.machines.base import fingerprint_value
        data = {
            "class": "PagedDsmMachine",
            "clock_hz": self._clock_hz,
            "page_bytes": self.page_bytes,
            "cache": fingerprint_value(self.cache),
        }
        check_cfg = active_check_config()
        if check_cfg is not None:
            # Checked runs must never reuse (or seed) unchecked cache
            # entries — the checkers would silently not run.
            data["check"] = check_cfg.label()
        if nprocs == 1:
            data["uniprocessor_baseline"] = True
            return data
        data.update({
            "name": self.name,
            "bandwidth_bytes_per_sec": self.bandwidth,
            "switch_latency_cycles": self.switch_latency,
            "header_bytes": self.header_bytes,
            "overhead": fingerprint_value(self.overhead),
            "eager_locks": fingerprint_value(self.eager_locks),
            "use_diffs": self.use_diffs,
        })
        if not self.sync.is_default:
            # The default policy is the paper's protocol; non-default
            # policies change message flows and must fork the key.
            data["sync"] = fingerprint_value(self.sync)
        if not self.ablate.is_default:
            # The all-on spec is the paper's protocol and must share
            # keys with machines built without the ablation layer;
            # any off-toggle changes behaviour and forks the key.
            data["ablate"] = fingerprint_value(self.ablate)
        if self.faults is not None and self.faults.enabled:
            # Disabled plans are behaviourally inert and share keys
            # with clean runs; enabled plans never may.
            data["faults"] = fingerprint_value(self.faults)
        return data

    def geometry(self) -> Geometry:
        return Geometry(self.page_bytes, self.cache.line_bytes)

    def max_procs(self) -> int:
        return self._max_procs if self._max_procs else 1024

    def build_runtime(self, engine: Engine, space: AddressSpace,
                      counters: Counters, nprocs: int) -> DsmRuntime:
        net = AtmNetwork(
            engine, nprocs,
            bandwidth_bytes_per_sec=self.bandwidth,
            switch_latency_cycles=self.switch_latency,
            clock_hz=self.clock_hz,
            overhead=self.overhead,
            counters=counters,
            header_bytes=self.header_bytes,
        )
        if self.faults is not None and self.faults.enabled:
            net = ReliableNetwork(net, self.faults,
                                  flat_retry=not self.ablate.backoff)
        dsm = TreadMarksDsm(net, space, self.overhead, DsmConfig(
            num_nodes=nprocs,
            page_bytes=self.page_bytes,
            eager_locks=self.eager_locks,
            use_diffs=self.use_diffs,
            sync=self.sync,
            ablate=self.ablate,
        ))
        if self.eager_locks:
            bound_mode = BoundMode.EAGER
            push_latency = net.roundtrip_estimate(256) // 2
        else:
            bound_mode = BoundMode.LAZY
            push_latency = 0
        runtime = DsmRuntime(
            engine, space, counters, nprocs,
            net=net, dsm=dsm, cache_params=self.cache,
            bound_mode=bound_mode, bound_push_latency=push_latency,
        )
        if self.faults is not None and self.faults.crashes:
            # Crash-stop failures: the manager kills the node's (sole)
            # processor at crash time and repairs the DSM stack at
            # declaration time.
            manager = RecoveryManager(engine, net, dsm, self.faults,
                                      counters,
                                      procs_of=lambda node: [node])
            net.recovery = manager
            runtime.recovery = manager
            manager.arm()
        return runtime
