"""The hardware-software (HS) architecture of §3.1.

Bus-based multiprocessor nodes connected by a general-purpose network.
Within a node, conventional bus snooping keeps the processors
coherent; between nodes, the TreadMarks LRC protocol runs at node
granularity.  The DSM treats all processors of a node as one:

* page faults by co-resident processors on the same page coalesce,
* their modifications merge into a single per-node diff,
* barriers arrive hierarchically (a node counter, then one message
  from the last processor), and
* a lock whose token already rests at the node hands off with no
  messages at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ablate import AblationSpecLike, parse_ablation
from repro.dsm.bound import BoundMode
from repro.dsm.protocol import DsmConfig, TreadMarksDsm
from repro.errors import ConfigurationError
from repro.machines.base import Machine, Runtime
from repro.machines.params import HsParams
from repro.hw.snoop import SnoopingSystem
from repro.mem.directcache import DirectMappedCache
from repro.mem.layout import AddressSpace, Geometry
from repro.net.atm import AtmNetwork
from repro.net.bus import BusModel
from repro.net.faults import FaultPlan
from repro.net.reliable import ReliableNetwork
from repro.recover import RecoveryManager
from repro.sim.engine import Engine
from repro.sim.task import ProcTask
from repro.stats.counters import Counters
from repro.sync import SyncSpec, parse_sync
from repro.trace.tracer import Category


class HybridRuntime(Runtime):
    """Operation dispatch for SMP-node + DSM machines."""

    def __init__(self, engine: Engine, space: AddressSpace,
                 counters: Counters, nprocs: int, *,
                 params: HsParams, net: AtmNetwork,
                 dsm: TreadMarksDsm, num_nodes: int) -> None:
        super().__init__(engine, space, counters, nprocs,
                         bound_mode=BoundMode.LAZY)
        self.params = params
        self.net = net
        self.dsm = dsm
        self.num_nodes = num_nodes
        self.ppn = params.procs_per_node
        dsm.page_refreshed_hook = self._page_refreshed

        self.node_procs: List[List[int]] = [[] for _ in range(num_nodes)]
        for proc in range(nprocs):
            self.node_procs[self.node_of(proc)].append(proc)

        self.caches = [
            DirectMappedCache(params.cpu.cache_bytes, params.cpu.line_bytes,
                              name=f"p{p}") for p in range(nprocs)
        ]
        self.node_snoops: List[SnoopingSystem] = []
        for node in range(num_nodes):
            bus = BusModel(f"hs.bus[{node}]", params.node_bus, counters,
                           tracer=engine.tracer)
            members = [self.caches[p] for p in self.node_procs[node]]
            self.node_snoops.append(SnoopingSystem(
                members, bus, counters,
                line_bytes=params.cpu.line_bytes,
                hit_cycles=params.cpu.hit_cycles,
                memory_extra_cycles=params.node_memory_extra_cycles,
                hold_bus_during_memory=False,
            ))
        # (node, barrier_id) -> list of (proc, task) waiting locally
        self._node_barrier: Dict[Tuple[int, int], List[ProcTask]] = {}

    def finish_run(self) -> None:
        """Close the DSM and per-node snoop checkers."""
        if self.dsm.checker is not None:
            self.dsm.checker.finish()
        for snoop in self.node_snoops:
            if snoop.checker is not None:
                snoop.checker.finish()

    # ------------------------------------------------------------------
    def node_of(self, proc: int) -> int:
        """The SMP node housing processor ``proc``."""
        return proc // self.ppn

    def _local_index(self, proc: int) -> int:
        return self.node_procs[self.node_of(proc)].index(proc)

    def _page_refreshed(self, node: int, page: int) -> None:
        """Remote data landed in node memory: stale cached lines die."""
        lpp = self.space.geometry.lines_per_page()
        first = page * lpp
        for proc in self.node_procs[node]:
            self.caches[proc].invalidate_range(first, first + lpp)

    # ------------------------------------------------------------------
    def do_read(self, task: ProcTask, addr: int, nbytes: int) -> None:
        """DSM fetches the page to the node, then the bus snoops."""
        proc = task.proc_id
        node = self.node_of(proc)
        first, last = self.space.geometry.line_span(addr, nbytes)

        def after(time: int) -> None:
            end = self.node_snoops[node].read(
                self._local_index(proc), first, last, time)
            task.resume(end)

        self.dsm.read(node, addr, nbytes, after)

    def do_write(self, task: ProcTask, addr: int, nbytes: int,
                 changed_bytes: int) -> None:
        """DSM twins the page per node, then the bus orders the write."""
        proc = task.proc_id
        node = self.node_of(proc)
        first, last = self.space.geometry.line_span(addr, nbytes)

        def after(time: int) -> None:
            end = self.node_snoops[node].write(
                self._local_index(proc), first, last, time)
            task.resume(end)

        self.dsm.write(node, addr, nbytes, changed_bytes, after)

    # ------------------------------------------------------------------
    def do_acquire(self, task: ProcTask, lock: int) -> None:
        """Node-granularity DSM lock; co-resident handoff is free."""
        proc = task.proc_id
        node = self.node_of(proc)

        def granted(time: int, _remote: bool) -> None:
            self.sync_point(proc, time)
            task.resume(time)

        self.dsm.acquire(lock, node, proc, granted)

    def do_release(self, task: ProcTask, lock: int) -> None:
        """Release through the DSM (per-node diffs ride along)."""
        proc = task.proc_id
        self.dsm.release(lock, self.node_of(proc), proc, task.resume)

    # ------------------------------------------------------------------
    def do_barrier(self, task: ProcTask, barrier_id: int) -> None:
        """Hierarchical barrier: node counter, then one DSM arrival."""
        proc = task.proc_id
        node = self.node_of(proc)
        key = (node, barrier_id)
        waiting = self._node_barrier.setdefault(key, [])
        waiting.append(task)
        if len(waiting) < len(self.node_procs[node]):
            return

        # Last processor on the node: send the node-level arrival.
        del self._node_barrier[key]
        intra = self.params.intra_barrier_cycles * len(waiting)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(proc, Category.SYNC, "node_barrier_full",
                           self.engine.now, track=f"node{node}.dsm",
                           barrier=barrier_id, procs=len(waiting))

        def departed(time: int) -> None:
            for i, member in enumerate(waiting):
                at = time + self.params.intra_barrier_cycles * (i + 1)
                self.sync_point(member.proc_id, at)
                member.resume(at)

        self.engine.schedule(
            intra, self.dsm.barrier_arrive, barrier_id, node, departed)


class HybridMachine(Machine):
    """HS: bus-based SMP nodes + software DSM between nodes."""

    def __init__(self, params: Optional[HsParams] = None, *,
                 eager_locks=None,
                 faults: Optional[FaultPlan] = None,
                 sync: SyncSpec = None,
                 ablate: AblationSpecLike = None) -> None:
        super().__init__()
        self.params = params or HsParams()
        self.eager_locks = eager_locks
        self.faults = faults
        self.sync = parse_sync(sync)
        self.ablate = parse_ablation(ablate)
        self.name = f"hs{self.params.procs_per_node}"
        if not self.sync.is_default:
            self.name = f"{self.name}-{self.sync.label()}"
        if not self.ablate.is_default:
            self.name = f"{self.name}-{self.ablate.label()}"
        if faults is not None and faults.enabled:
            self.name = f"{self.name}-{faults.label()}"
            self.watchdog_cycles = faults.watchdog_cycles

    @property
    def clock_hz(self) -> float:
        """Simulated node clock (HsParams)."""
        return self.params.clock_hz

    def fingerprint_data(self, nprocs=None):
        """Machine identity, with the 1-proc baseline policy-blind."""
        data = super().fingerprint_data(nprocs)
        if nprocs == 1:
            # One processor is one node: the DSM engages no remote
            # machinery, so every sync policy and ablation spec is
            # behaviourally identical and the 1-proc baseline is
            # shared.  The name carries the suffixes, so normalize it.
            data.pop("sync", None)
            data.pop("ablate", None)
            if not self.sync.is_default:
                data["name"] = data["name"].replace(
                    f"-{self.sync.label()}", "")
            if not self.ablate.is_default:
                data["name"] = data["name"].replace(
                    f"-{self.ablate.label()}", "")
        return data

    def geometry(self) -> Geometry:
        """DSM pages between nodes, bus lines within them."""
        return Geometry(self.params.page_bytes, self.params.cpu.line_bytes)

    def build_runtime(self, engine: Engine, space: AddressSpace,
                      counters: Counters, nprocs: int) -> HybridRuntime:
        """Assemble per-node buses plus the node-granularity DSM."""
        p = self.params
        num_nodes = (nprocs + p.procs_per_node - 1) // p.procs_per_node
        if num_nodes < 1:
            raise ConfigurationError("HS machine needs at least one node")
        net = AtmNetwork(
            engine, num_nodes,
            bandwidth_bytes_per_sec=p.bandwidth_bytes,
            switch_latency_cycles=p.network_latency_cycles,
            clock_hz=p.clock_hz,
            overhead=p.overhead(),
            counters=counters,
            header_bytes=p.header_bytes,
            handler_servers=min(p.procs_per_node, nprocs),
        )
        if self.faults is not None and self.faults.enabled:
            net = ReliableNetwork(net, self.faults,
                                  flat_retry=not self.ablate.backoff)
        dsm = TreadMarksDsm(net, space, p.overhead(), DsmConfig(
            num_nodes=num_nodes,
            page_bytes=p.page_bytes,
            eager_locks=self.eager_locks,
            local_grant_cycles=p.lock_handoff_cycles,
            sync=self.sync,
            ablate=self.ablate,
        ))
        runtime = HybridRuntime(engine, space, counters, nprocs,
                                params=p, net=net, dsm=dsm,
                                num_nodes=num_nodes)
        if self.faults is not None and self.faults.crashes:
            # A node crash takes every co-resident processor with it.
            manager = RecoveryManager(
                engine, net, dsm, self.faults, counters,
                procs_of=lambda node: runtime.node_procs[node])
            net.recovery = manager
            runtime.recovery = manager
            manager.arm()
        return runtime
