"""Unit helpers: cycles, seconds, bytes, and rate conversions.

All simulated time in this package is kept in integer *processor cycles*
of the machine being simulated.  Converting to wall-clock seconds (for
tables that report seconds or rates per second) requires the machine's
clock frequency, so the conversions live here as explicit functions
instead of being scattered through the models.
"""

from __future__ import annotations

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

KIB = 1024
MIB = 1024 * 1024

WORD_BYTES = 4
"""Machine word size used throughout (32-bit machines in the paper)."""


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Convert a cycle count at ``clock_hz`` to seconds."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float) -> int:
    """Convert seconds to a whole number of cycles at ``clock_hz``.

    Rounds up so that a positive duration never becomes zero cycles.
    """
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    if seconds < 0:
        raise ValueError(f"seconds must be non-negative, got {seconds}")
    cycles = seconds * clock_hz
    whole = int(cycles)
    if whole < cycles:
        whole += 1
    return whole


def bytes_to_words(nbytes: int) -> int:
    """Number of whole words needed to hold ``nbytes`` (rounds up)."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    return (nbytes + WORD_BYTES - 1) // WORD_BYTES


def transfer_cycles(nbytes: int, bandwidth_bytes_per_sec: float,
                    clock_hz: float) -> int:
    """Cycles to push ``nbytes`` through a link of the given bandwidth."""
    if bandwidth_bytes_per_sec <= 0:
        raise ValueError("bandwidth must be positive")
    return seconds_to_cycles(nbytes / bandwidth_bytes_per_sec, clock_hz)


def per_second(count: float, cycles: float, clock_hz: float) -> float:
    """Rate of ``count`` events over ``cycles`` of simulated time."""
    if cycles <= 0:
        return 0.0
    return count / cycles_to_seconds(cycles, clock_hz)


def mbits_per_sec(bits_per_sec: float) -> float:
    """Express a bit rate in Mbit/s (for reporting)."""
    return bits_per_sec / MEGA


def bandwidth_from_mbits(mbits: float) -> float:
    """Bytes/second for a link quoted in Mbit/s."""
    if mbits <= 0:
        raise ValueError(f"mbits must be positive, got {mbits}")
    return mbits * MEGA / 8
