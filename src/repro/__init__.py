"""repro: software vs. hardware shared memory (Cox et al., ISCA 1994).

An execution-driven reproduction of the paper's two studies:

1. TreadMarks (lazy release consistency on an ATM LAN of DECstations)
   versus the SGI 4D/480 bus multiprocessor, up to 8 processors.
2. The simulated AS / AH / HS design space up to 64 processors.

Quickstart::

    from repro import SorApp, make_machine

    app = SorApp(rows=1000, cols=1000, iterations=6)
    for name in ("treadmarks", "sgi"):
        machine = make_machine(name)
        base = machine.run(app, 1)
        result = machine.run(app, 8)
        print(machine.name, base.seconds / result.seconds)

Grids run through :class:`RunPlan`/:func:`execute_plan` (parallel,
cached, deterministic), and the op vocabulary — including the batched
:class:`OpBlock` form with :func:`fuse`/:func:`unfuse` — is re-exported
here.  Everything in ``__all__`` is the stable public surface; the
examples and the CLI are written against it.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.ablate import (DEFAULT_ABLATION, MECHANISMS, AblationSpec,
                          parse_ablation)
from repro.apps import (Acquire, AppContext, Application, Barrier, Compute,
                        IlinkApp, OpBlock, Read, ReadBound, Release, SorApp,
                        TspApp, UpdateBound, WaterApp, Write, fuse, unfuse)
from repro.check import checking
from repro.errors import ConfigurationError, ConsistencyViolation
from repro.harness.cache import ResultCache
from repro.harness.parallel import (RunPlan, RunSpec, execute_plan,
                                    run_context, run_grid, shutdown_pool)
from repro.harness.runner import compare_machines, speedup_series
from repro.harness.workloads import Scale, make_app
from repro.machines import (AllHardwareMachine, AllSoftwareMachine,
                            DecTreadMarksMachine, HybridMachine, Machine,
                            machine_names, make_machine, SgiMachine)
from repro.net.faults import CrashEvent, FaultPlan, RetryPolicy
from repro.net.overhead import OverheadPreset, SoftwareOverhead
from repro.stats import Counters, RunResult, SpeedupSeries
from repro.sync import (BARRIER_ALGORITHMS, DEFAULT_SYNC, LOCK_ALGORITHMS,
                        SyncPolicy, parse_sync)
from repro.trace import Tracer, trace_session

__version__ = "1.3.0"

__all__ = [
    # applications and the op vocabulary
    "Application",
    "AppContext",
    "SorApp",
    "TspApp",
    "WaterApp",
    "IlinkApp",
    "make_app",
    "Scale",
    "Compute",
    "Read",
    "Write",
    "Acquire",
    "Release",
    "Barrier",
    "ReadBound",
    "UpdateBound",
    "OpBlock",
    "fuse",
    "unfuse",
    # machines
    "Machine",
    "make_machine",
    "machine_names",
    "DecTreadMarksMachine",
    "SgiMachine",
    "AllSoftwareMachine",
    "AllHardwareMachine",
    "HybridMachine",
    "OverheadPreset",
    "SoftwareOverhead",
    "FaultPlan",
    "CrashEvent",
    "RetryPolicy",
    # synchronization design space
    "SyncPolicy",
    "parse_sync",
    "DEFAULT_SYNC",
    "LOCK_ALGORITHMS",
    "BARRIER_ALGORITHMS",
    # mechanism ablations
    "AblationSpec",
    "parse_ablation",
    "DEFAULT_ABLATION",
    "MECHANISMS",
    # run entry points
    "RunPlan",
    "RunSpec",
    "execute_plan",
    "run_context",
    "run_grid",
    "shutdown_pool",
    "compare_machines",
    "speedup_series",
    "ResultCache",
    # observation and checking
    "Tracer",
    "trace_session",
    "checking",
    "ConsistencyViolation",
    "ConfigurationError",
    # results
    "Counters",
    "RunResult",
    "SpeedupSeries",
    "__version__",
]
