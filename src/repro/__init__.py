"""repro: software vs. hardware shared memory (Cox et al., ISCA 1994).

An execution-driven reproduction of the paper's two studies:

1. TreadMarks (lazy release consistency on an ATM LAN of DECstations)
   versus the SGI 4D/480 bus multiprocessor, up to 8 processors.
2. The simulated AS / AH / HS design space up to 64 processors.

Quickstart::

    from repro import SorApp, DecTreadMarksMachine, SgiMachine

    app = SorApp(rows=1000, cols=1000, iterations=6)
    for machine in (DecTreadMarksMachine(), SgiMachine()):
        base = machine.run(app, 1)
        result = machine.run(app, 8)
        print(machine.name, base.seconds / result.seconds)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.apps import (Application, AppContext, IlinkApp, SorApp, TspApp,
                        WaterApp)
from repro.machines import (AllHardwareMachine, AllSoftwareMachine,
                            DecTreadMarksMachine, HybridMachine, Machine,
                            SgiMachine)
from repro.net.overhead import OverheadPreset, SoftwareOverhead
from repro.stats import Counters, RunResult, SpeedupSeries

__version__ = "1.0.0"

__all__ = [
    "Application",
    "AppContext",
    "SorApp",
    "TspApp",
    "WaterApp",
    "IlinkApp",
    "Machine",
    "DecTreadMarksMachine",
    "SgiMachine",
    "AllSoftwareMachine",
    "AllHardwareMachine",
    "HybridMachine",
    "OverheadPreset",
    "SoftwareOverhead",
    "Counters",
    "RunResult",
    "SpeedupSeries",
    "__version__",
]
