"""Interconnect substrate: software overheads, LAN/crossbar/bus models."""

from repro.net.atm import AtmNetwork
from repro.net.bus import BusModel
from repro.net.crossbar import CrossbarNetwork
from repro.net.overhead import OverheadPreset, SoftwareOverhead

__all__ = [
    "SoftwareOverhead",
    "OverheadPreset",
    "AtmNetwork",
    "CrossbarNetwork",
    "BusModel",
]
