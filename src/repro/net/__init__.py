"""Interconnect substrate: software overheads, LAN/crossbar/bus models,
fault injection, and the reliable-delivery layer."""

from repro.net.atm import AtmNetwork
from repro.net.bus import BusModel
from repro.net.crossbar import CrossbarNetwork
from repro.net.faults import (FaultInjector, FaultPlan, FaultRule,
                              StallWindow, parse_schedule)
from repro.net.overhead import OverheadPreset, SoftwareOverhead
from repro.net.reliable import ReliableNetwork

__all__ = [
    "SoftwareOverhead",
    "OverheadPreset",
    "AtmNetwork",
    "CrossbarNetwork",
    "BusModel",
    "FaultPlan",
    "FaultRule",
    "StallWindow",
    "FaultInjector",
    "parse_schedule",
    "ReliableNetwork",
]
