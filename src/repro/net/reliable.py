"""Reliable delivery over a faulty network: TreadMarks' UDP layer.

The paper's TreadMarks sits on UDP and supplies its own reliability
(§2.2); this module is that layer for the simulator.  A
:class:`ReliableNetwork` wraps any point-to-point network exposing the
:class:`~repro.net.atm.AtmNetwork` interface and adds, per logical
message:

* a per-(src, dst) *sequence number* identifying the message across
  retransmissions,
* a retransmission timer armed from the network's own round-trip
  estimate, backing off exponentially (``rto * 2^(attempt-1)``),
* a bounded retry budget — exhausting it raises
  :class:`~repro.errors.NetworkPartitionError` from the engine event,
  so a dead destination fails the run loudly instead of hanging it,
* receiver-side duplicate suppression: however many copies the fault
  plane delivers, ``on_delivered`` fires exactly once, keeping the DSM
  protocol handlers idempotent for free.

Which attempts are dropped, duplicated, jittered, or deferred by a
stall window is decided by the deterministic
:class:`~repro.net.faults.FaultInjector`.  Cost model (the DESIGN.md
approximation): a dropped frame vanishes without consuming link or
handler time — the drop's cost is the timeout wait that follows, which
dominates by orders of magnitude — while retransmitted and duplicated
frames pay full network cost and appear in the message counters.
Recovery waits are traced as :attr:`Category.RECOVERY
<repro.trace.tracer.Category>` spans so time breakdowns attribute them.

With a disabled plan the wrapper is never even constructed (machines
build the bare network), so the lossless path stays byte-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import NetworkPartitionError
from repro.net.atm import AtmNetwork
from repro.net.faults import FaultInjector, FaultPlan
from repro.stats.counters import DataKind, MsgKind
from repro.trace.tracer import Category


class _Transmission:
    """One logical message in flight (possibly over several attempts)."""

    __slots__ = ("src", "dst", "payload", "kind", "data_kind", "seq",
                 "on_delivered", "base_rto", "attempt", "delivered",
                 "last_sent", "send_cpu_cycles", "recv_cpu_cycles")

    def __init__(self, src: int, dst: int, payload: int, kind: MsgKind,
                 data_kind: DataKind, seq: int,
                 on_delivered: Optional[Callable[[int], None]],
                 base_rto: int,
                 send_cpu_cycles: Optional[int] = None,
                 recv_cpu_cycles: Optional[int] = None) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.kind = kind
        self.data_kind = data_kind
        self.seq = seq
        self.on_delivered = on_delivered
        self.base_rto = base_rto
        self.attempt = 0
        self.delivered = False
        self.last_sent = 0
        self.send_cpu_cycles = send_cpu_cycles
        self.recv_cpu_cycles = recv_cpu_cycles


class ReliableNetwork:
    """Sequence numbers + timeout/retransmit + dedup over a raw network.

    Exposes the same surface the DSM layers consume (``send``,
    ``engine``, ``counters``, ``num_nodes``, ``handlers``,
    ``roundtrip_estimate``, ``wire_cycles``), so it drops in wherever
    an :class:`AtmNetwork` is expected.
    """

    def __init__(self, inner: AtmNetwork, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.injector = FaultInjector(plan, inner.num_nodes)
        self.engine = inner.engine
        self.counters = inner.counters
        self.num_nodes = inner.num_nodes
        self.handlers = inner.handlers
        self.overhead = inner.overhead
        self.switch_latency = inner.switch_latency
        self._next_seq: Dict[Tuple[int, int], int] = {}

    # -- delegated cost model ------------------------------------------
    def wire_cycles(self, nbytes: int) -> int:
        return self.inner.wire_cycles(nbytes)

    def roundtrip_estimate(self, payload_bytes: int = 0) -> int:
        return self.inner.roundtrip_estimate(payload_bytes)

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload_bytes: int, *,
             kind: MsgKind, data_kind: DataKind = DataKind.CONSISTENCY,
             now: Optional[int] = None,
             send_cpu_cycles: Optional[int] = None,
             recv_cpu_cycles: Optional[int] = None,
             on_delivered: Optional[Callable[[int], None]] = None) -> int:
        """Send one logical message; delivers ``on_delivered`` exactly
        once (or raises :class:`NetworkPartitionError` via the engine).
        """
        if now is None:
            now = self.engine.now
        if src == dst:
            # Loopback never crosses the wire: nothing to lose.
            return self.inner.send(src, dst, payload_bytes, kind=kind,
                                   data_kind=data_kind, now=now,
                                   send_cpu_cycles=send_cpu_cycles,
                                   recv_cpu_cycles=recv_cpu_cycles,
                                   on_delivered=on_delivered)
        edge = (src, dst)
        seq = self._next_seq.get(edge, 0)
        self._next_seq[edge] = seq + 1
        base_rto = max(1, int(self.plan.rto_multiplier *
                              self.inner.roundtrip_estimate(payload_bytes)))
        tx = _Transmission(src, dst, payload_bytes, kind, data_kind,
                           seq, on_delivered, base_rto,
                           send_cpu_cycles=send_cpu_cycles,
                           recv_cpu_cycles=recv_cpu_cycles)
        return self._attempt(tx, now)

    # ------------------------------------------------------------------
    def _attempt(self, tx: _Transmission, now: int) -> int:
        """Launch the next transmission attempt of ``tx`` at ``now``."""
        wake = max(self.injector.stall_until(tx.src, now),
                   self.injector.stall_until(tx.dst, now))
        if wake > now:
            self.counters.stall_deferrals += 1
            self.engine.schedule_at(wake, self._attempt, tx, wake)
            return wake

        tx.attempt += 1
        tracer = self.engine.tracer
        if tx.attempt > 1:
            self.counters.retransmissions += 1
            if tracer.enabled:
                # The recovery span is the dead time the loss cost us:
                # from the failed attempt to this retransmission.
                tracer.complete(
                    tx.src, Category.RECOVERY,
                    f"retransmit:{tx.kind.value}", tx.last_sent, now,
                    track=f"node{tx.src}.sw", dst=tx.dst, seq=tx.seq,
                    attempt=tx.attempt)
        tx.last_sent = now

        decision = self.injector.decide(tx.src, tx.dst, tx.kind)
        if decision.drop:
            self.counters.messages_dropped += 1
            rto = tx.base_rto << (tx.attempt - 1)
            if tracer.enabled:
                tracer.instant(tx.src, Category.RECOVERY, "frame_lost",
                               now, track=f"node{tx.src}.sw",
                               dst=tx.dst, seq=tx.seq,
                               kind=tx.kind.value, attempt=tx.attempt)
            self.engine.schedule_at(now + rto, self._timeout, tx, rto)
            return now + rto

        start = now + decision.jitter
        copies = 2 if decision.duplicate else 1
        delivered = 0
        for _copy in range(copies):
            delivered = self.inner.send(
                tx.src, tx.dst, tx.payload, kind=tx.kind,
                data_kind=tx.data_kind, now=start,
                send_cpu_cycles=tx.send_cpu_cycles,
                recv_cpu_cycles=tx.recv_cpu_cycles,
                on_delivered=lambda t, tx=tx: self._arrived(tx, t))
        return delivered

    def _timeout(self, tx: _Transmission, rto: int) -> None:
        """The retransmission timer for ``tx``'s last attempt fired."""
        if tx.delivered:
            return
        self.counters.timeouts += 1
        self.counters.timeout_cycles += rto
        if tx.attempt >= 1 + self.plan.max_retries:
            raise NetworkPartitionError(tx.src, tx.dst, tx.kind.value,
                                        tx.attempt, self.engine.now)
        self._attempt(tx, self.engine.now)

    def _arrived(self, tx: _Transmission, time: int) -> None:
        """Receiver-side dedup: deliver each logical message once."""
        if tx.delivered:
            self.counters.duplicates_dropped += 1
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.instant(tx.dst, Category.RECOVERY,
                               "duplicate_dropped", time,
                               track=f"node{tx.dst}.sw", src=tx.src,
                               seq=tx.seq, kind=tx.kind.value)
            return
        tx.delivered = True
        if tx.on_delivered is not None:
            tx.on_delivered(time)
