"""Reliable delivery over a faulty network: TreadMarks' UDP layer.

The paper's TreadMarks sits on UDP and supplies its own reliability
(§2.2); this module is that layer for the simulator.  A
:class:`ReliableNetwork` wraps any point-to-point network exposing the
:class:`~repro.net.atm.AtmNetwork` interface and adds, per logical
message:

* a per-(src, dst) *sequence number* identifying the message across
  retransmissions,
* a retransmission timer armed from the network's own round-trip
  estimate, backing off exponentially (``rto * 2^(attempt-1)``),
* a bounded retry budget — exhausting it raises
  :class:`~repro.errors.NetworkPartitionError` from the engine event,
  so a dead destination fails the run loudly instead of hanging it,
* receiver-side duplicate suppression: however many copies the fault
  plane delivers, ``on_delivered`` fires exactly once, keeping the DSM
  protocol handlers idempotent for free.

Which attempts are dropped, duplicated, jittered, or deferred by a
stall window is decided by the deterministic
:class:`~repro.net.faults.FaultInjector`.  Cost model (the DESIGN.md
approximation): a dropped frame vanishes without consuming link or
handler time — the drop's cost is the timeout wait that follows, which
dominates by orders of magnitude — while retransmitted and duplicated
frames pay full network cost and appear in the message counters.
Recovery waits are traced as :attr:`Category.RECOVERY
<repro.trace.tracer.Category>` spans so time breakdowns attribute them.

With a disabled plan the wrapper is never even constructed (machines
build the bare network), so the lossless path stays byte-identical.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional, Tuple

from repro.errors import NetworkPartitionError
from repro.net.atm import AtmNetwork
from repro.net.faults import FaultInjector, FaultPlan
from repro.stats.counters import DataKind, MsgKind
from repro.trace.tracer import Category

#: Bounded replayable slice of recent delivery events attached to
#: partition/deadlock diagnostics (parity with the checker trail).
TRAIL_LEN = 64


class _Transmission:
    """One logical message in flight (possibly over several attempts)."""

    __slots__ = ("src", "dst", "payload", "kind", "data_kind", "seq",
                 "on_delivered", "on_abandoned", "base_rto", "attempt",
                 "delivered", "abandoned", "last_sent", "timer_attempt",
                 "send_cpu_cycles", "recv_cpu_cycles")

    def __init__(self, src: int, dst: int, payload: int, kind: MsgKind,
                 data_kind: DataKind, seq: int,
                 on_delivered: Optional[Callable[[int], None]],
                 base_rto: int,
                 send_cpu_cycles: Optional[int] = None,
                 recv_cpu_cycles: Optional[int] = None,
                 on_abandoned: Optional[Callable[[int], None]] = None
                 ) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.kind = kind
        self.data_kind = data_kind
        self.seq = seq
        self.on_delivered = on_delivered
        self.on_abandoned = on_abandoned
        self.base_rto = base_rto
        self.attempt = 0
        self.delivered = False
        self.abandoned = False
        self.last_sent = 0
        #: Attempt number a retransmission timer is armed for (the
        #: duplicate of a frame lost at a dead host must not arm a
        #: second timer for the same attempt).
        self.timer_attempt = 0
        self.send_cpu_cycles = send_cpu_cycles
        self.recv_cpu_cycles = recv_cpu_cycles


class ReliableNetwork:
    """Sequence numbers + timeout/retransmit + dedup over a raw network.

    Exposes the same surface the DSM layers consume (``send``,
    ``engine``, ``counters``, ``num_nodes``, ``handlers``,
    ``roundtrip_estimate``, ``wire_cycles``), so it drops in wherever
    an :class:`AtmNetwork` is expected.
    """

    def __init__(self, inner: AtmNetwork, plan: FaultPlan, *,
                 flat_retry: bool = False) -> None:
        self.inner = inner
        self.plan = plan
        #: Backoff ablation (repro.ablate): retransmission timers use
        #: the base RTO on every attempt instead of the retry
        #: schedule's growing backoff.
        self.flat_retry = flat_retry
        self.injector = FaultInjector(plan, inner.num_nodes)
        self.engine = inner.engine
        self.counters = inner.counters
        self.num_nodes = inner.num_nodes
        self.handlers = inner.handlers
        self.overhead = inner.overhead
        self.switch_latency = inner.switch_latency
        self._next_seq: Dict[Tuple[int, int], int] = {}
        #: Installed by the machine when the plan schedules crashes;
        #: promotes exhausted retry chains into structured failure
        #: declarations instead of partition errors.
        self.recovery = None
        #: Recent delivery events (bounded) for diagnostics.
        self._trail: deque = deque(maxlen=TRAIL_LEN)
        #: Timeouts observed per destination — the "who were we
        #: retransmitting to" signal behind the deadlock suspect.
        self._timeouts_by_dst: Dict[int, int] = {}
        self.engine.net_diagnostics = self._diagnostics

    # -- diagnostics ----------------------------------------------------
    def _note(self, event: str, time: int, tx: "_Transmission") -> None:
        self._trail.append((event, time, tx.src, tx.dst,
                            tx.kind.value, tx.seq, tx.attempt))

    def _diagnostics(self) -> Tuple[Optional[int], tuple]:
        """(most-suspected destination, recent event trail)."""
        suspect = None
        if self._timeouts_by_dst:
            suspect = max(sorted(self._timeouts_by_dst),
                          key=self._timeouts_by_dst.get)
        return suspect, tuple(self._trail)

    # -- delegated cost model ------------------------------------------
    def wire_cycles(self, nbytes: int) -> int:
        return self.inner.wire_cycles(nbytes)

    def roundtrip_estimate(self, payload_bytes: int = 0) -> int:
        return self.inner.roundtrip_estimate(payload_bytes)

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload_bytes: int, *,
             kind: MsgKind, data_kind: DataKind = DataKind.CONSISTENCY,
             now: Optional[int] = None,
             send_cpu_cycles: Optional[int] = None,
             recv_cpu_cycles: Optional[int] = None,
             on_delivered: Optional[Callable[[int], None]] = None,
             on_abandoned: Optional[Callable[[int], None]] = None
             ) -> int:
        """Send one logical message; delivers ``on_delivered`` exactly
        once (or raises :class:`NetworkPartitionError` via the engine).

        ``on_abandoned`` fires instead — also exactly once — when the
        message is given up on because its destination was declared
        dead by recovery; senders that must not strand a waiter (lock
        requests) use it to re-route through the repaired state.
        """
        if now is None:
            now = self.engine.now
        if src == dst:
            # Loopback never crosses the wire: nothing to lose.
            return self.inner.send(src, dst, payload_bytes, kind=kind,
                                   data_kind=data_kind, now=now,
                                   send_cpu_cycles=send_cpu_cycles,
                                   recv_cpu_cycles=recv_cpu_cycles,
                                   on_delivered=on_delivered)
        edge = (src, dst)
        seq = self._next_seq.get(edge, 0)
        self._next_seq[edge] = seq + 1
        base_rto = max(1, int(self.plan.rto_multiplier *
                              self.inner.roundtrip_estimate(payload_bytes)))
        tx = _Transmission(src, dst, payload_bytes, kind, data_kind,
                           seq, on_delivered, base_rto,
                           send_cpu_cycles=send_cpu_cycles,
                           recv_cpu_cycles=recv_cpu_cycles,
                           on_abandoned=on_abandoned)
        return self._attempt(tx, now)

    def _rto(self, tx: _Transmission) -> int:
        """The retransmission timeout for ``tx``'s current attempt.

        With ``flat_retry`` (the backoff ablation) every attempt waits
        the base RTO, as if it were the first."""
        attempt = 1 if self.flat_retry else tx.attempt
        return self.plan.retry.rto_for(tx.base_rto, attempt)

    # ------------------------------------------------------------------
    def _abandon(self, tx: _Transmission, now: int) -> None:
        """Give up on ``tx`` (dead destination); fire the fallback."""
        if tx.delivered or tx.abandoned:
            return
        tx.abandoned = True
        self._note("abandoned", now, tx)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(tx.src, Category.RECOVERY,
                           "send_abandoned", now,
                           track=f"node{tx.src}.sw", dst=tx.dst,
                           seq=tx.seq, kind=tx.kind.value)
        if tx.on_abandoned is not None:
            tx.on_abandoned(now)

    def _sender_dead(self, node: int, now: int) -> bool:
        """Has the *process* on ``node`` crashed by ``now``?

        Crash-stop: the process never returns, even if the host's
        link rejoins, so any send it would have made evaporates.
        """
        crash = self.plan.crash_of(node)
        return crash is not None and now >= crash.at

    # ------------------------------------------------------------------
    def _attempt(self, tx: _Transmission, now: int) -> int:
        """Launch the next transmission attempt of ``tx`` at ``now``."""
        if tx.abandoned:
            return now
        if self._sender_dead(tx.src, now):
            # The sending process died: the message simply never goes
            # out.  No fallback fires — nothing on a dead node waits.
            return now
        if self.recovery is not None and self.recovery.is_dead(tx.dst):
            # Destination already declared dead: don't start (or keep
            # feeding) a retry chain that can only end in abandonment.
            self._abandon(tx, now)
            return now
        wake = max(self.injector.stall_until(tx.src, now),
                   self.injector.stall_until(tx.dst, now))
        if wake > now:
            self.counters.stall_deferrals += 1
            self.engine.schedule_at(wake, self._attempt, tx, wake)
            return wake

        tx.attempt += 1
        tracer = self.engine.tracer
        if tx.attempt > 1:
            self.counters.retransmissions += 1
            self._note("retransmit", now, tx)
            if tracer.enabled:
                # The recovery span is the dead time the loss cost us:
                # from the failed attempt to this retransmission.
                tracer.complete(
                    tx.src, Category.RECOVERY,
                    f"retransmit:{tx.kind.value}", tx.last_sent, now,
                    track=f"node{tx.src}.sw", dst=tx.dst, seq=tx.seq,
                    attempt=tx.attempt)
        tx.last_sent = now

        decision = self.injector.decide(tx.src, tx.dst, tx.kind)
        if decision.drop or self.plan.node_down_at(tx.dst, now):
            # A frame to a down host is lost exactly like a dropped
            # one: silently, with the timeout wait as its only cost.
            self.counters.messages_dropped += 1
            rto = self._rto(tx)
            self._note("frame_lost", now, tx)
            if tracer.enabled:
                tracer.instant(tx.src, Category.RECOVERY, "frame_lost",
                               now, track=f"node{tx.src}.sw",
                               dst=tx.dst, seq=tx.seq,
                               kind=tx.kind.value, attempt=tx.attempt)
            tx.timer_attempt = tx.attempt
            self.engine.schedule_at(now + rto, self._timeout, tx, rto)
            return now + rto

        start = now + decision.jitter
        copies = 2 if decision.duplicate else 1
        delivered = 0
        for _copy in range(copies):
            delivered = self.inner.send(
                tx.src, tx.dst, tx.payload, kind=tx.kind,
                data_kind=tx.data_kind, now=start,
                send_cpu_cycles=tx.send_cpu_cycles,
                recv_cpu_cycles=tx.recv_cpu_cycles,
                on_delivered=lambda t, tx=tx: self._arrived(tx, t))
        return delivered

    def _timeout(self, tx: _Transmission, rto: int) -> None:
        """The retransmission timer for ``tx``'s last attempt fired."""
        if tx.delivered or tx.abandoned:
            return
        now = self.engine.now
        self.counters.timeouts += 1
        self.counters.timeout_cycles += rto
        self._timeouts_by_dst[tx.dst] = (
            self._timeouts_by_dst.get(tx.dst, 0) + 1)
        self._note("timeout", now, tx)
        if tx.attempt >= 1 + self.plan.max_retries:
            self._note("exhausted", now, tx)
            if (self.recovery is not None and
                    self.recovery.on_suspect(tx)):
                # Verdict consumed: the destination really crashed and
                # recovery has repaired the stack.  This message dies
                # with it.
                self._abandon(tx, now)
                return
            raise NetworkPartitionError(tx.src, tx.dst, tx.kind.value,
                                        tx.attempt, now,
                                        trail=tuple(self._trail))
        self._attempt(tx, now)

    def _arrived(self, tx: _Transmission, time: int) -> None:
        """Receiver-side dedup: deliver each logical message once."""
        if tx.abandoned:
            return
        if not tx.delivered and self.plan.node_down_at(tx.dst, time):
            # The frame was in flight when the host died under it.
            # Lost like any dropped frame; arm the retransmission
            # timer retroactively from the attempt that sent it (at
            # most once per attempt — a duplicate copy lost at the
            # same dead host must not double the retry chain).
            self.counters.messages_dropped += 1
            self._note("dead_host_loss", time, tx)
            if tx.timer_attempt < tx.attempt:
                tx.timer_attempt = tx.attempt
                rto = self._rto(tx)
                self.engine.schedule_at(max(self.engine.now,
                                            tx.last_sent + rto),
                                        self._timeout, tx, rto)
            return
        if self.recovery is not None and self.recovery.is_dead(tx.dst):
            # Late delivery to a host whose process was declared dead
            # (e.g. the link rejoined): the daemon is gone, nothing
            # consumes the frame.
            self._abandon(tx, time)
            return
        if tx.delivered:
            self.counters.duplicates_dropped += 1
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.instant(tx.dst, Category.RECOVERY,
                               "duplicate_dropped", time,
                               track=f"node{tx.dst}.sw", src=tx.src,
                               seq=tx.seq, kind=tx.kind.value)
            return
        tx.delivered = True
        if tx.on_delivered is not None:
            tx.on_delivered(time)
