"""Point-to-point ATM LAN with a central switch.

Models the Fore ASX-100-style configuration of §2.2: every node has a
full-duplex point-to-point link to a switch, so disjoint node pairs
communicate at full speed simultaneously, while a node's own inbound or
outbound link serializes its traffic.  Message cost decomposes into

* sender CPU (software overhead: kernel entry + copy),
* outbound link occupancy (wire time for payload + header),
* switch latency (cut-through),
* inbound link occupancy at the destination,
* receiver CPU (kernel entry + handler dispatch + copy).

CPU work serializes through a per-node *handler* resource.  The model
does not preempt application compute for message handling (documented
approximation in DESIGN.md §4.5); handler time still lands on the
critical path of every request/response pair, which is what determines
lock/barrier/page-fault latency in TreadMarks.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import units
from repro.sim.engine import Engine
from repro.sim.resource import MultiResource, Resource
from repro.stats.counters import Counters, DataKind, MsgKind
from repro.net.overhead import SoftwareOverhead
from repro.trace.tracer import Category


class AtmNetwork:
    """A switched point-to-point LAN carrying DSM protocol messages."""

    def __init__(self, engine: Engine, num_nodes: int, *,
                 bandwidth_bytes_per_sec: float,
                 switch_latency_cycles: int,
                 clock_hz: float,
                 overhead: SoftwareOverhead,
                 counters: Counters,
                 header_bytes: int = 40,
                 handler_servers: int = 1) -> None:
        self.engine = engine
        self.num_nodes = num_nodes
        self.bandwidth = bandwidth_bytes_per_sec
        self.switch_latency = switch_latency_cycles
        self.clock_hz = clock_hz
        self.overhead = overhead
        self.counters = counters
        self.header_bytes = header_bytes
        self.out_links = [Resource(f"atm.out[{i}]") for i in range(num_nodes)]
        self.in_links = [Resource(f"atm.in[{i}]") for i in range(num_nodes)]
        # On a multiprocessor node (the HS machine) any of the node's
        # CPUs can field protocol messages, so handler work is a
        # k-server resource rather than a single choke point.
        self.handlers = [MultiResource(f"cpu.handler[{i}]", handler_servers)
                         for i in range(num_nodes)]

    # ------------------------------------------------------------------
    def wire_cycles(self, nbytes: int) -> int:
        """Link occupancy for a frame of ``nbytes`` (incl. header)."""
        return units.transfer_cycles(nbytes, self.bandwidth, self.clock_hz)

    def send(self, src: int, dst: int, payload_bytes: int, *,
             kind: MsgKind, data_kind: DataKind = DataKind.CONSISTENCY,
             now: Optional[int] = None,
             send_cpu_cycles: Optional[int] = None,
             recv_cpu_cycles: Optional[int] = None,
             on_delivered: Optional[Callable[[int], None]] = None,
             on_abandoned: Optional[Callable[[int], None]] = None) -> int:
        """Send one message; returns the delivery completion time.

        ``on_delivered(time)`` (if given) runs as an engine event at
        the moment the receiver's handler has finished processing the
        message.  Sending to self is free of network cost but still
        passes through the local handler (loopback sanity path).

        ``on_abandoned`` is accepted for interface parity with the
        reliable wrapper and never fires here: a perfect network has
        no crash-stop failures, so no send is ever given up on.

        ``send_cpu_cycles`` / ``recv_cpu_cycles`` override the
        software-overhead CPU charges for this one message; the
        combining switch (:class:`~repro.sync.combining.SwitchCombiner`)
        uses them to model fetch-and-op merges and multicast
        replication happening in the fabric instead of on a node CPU.
        """
        if now is None:
            now = self.engine.now
        self.counters.count_message(kind, payload_bytes, data_kind,
                                    self.header_bytes)

        send_cpu = (self.overhead.send_cost(payload_bytes)
                    if send_cpu_cycles is None else send_cpu_cycles)
        sstart, sent = self.handlers[src].acquire(now, send_cpu)

        if src == dst:
            arrival = sent
            ostart = sent
        else:
            frame = payload_bytes + self.header_bytes
            wire = self.wire_cycles(frame)
            ostart, out_done = self.out_links[src].acquire(sent, wire)
            at_switch = out_done + self.switch_latency
            _istart, arrival = self.in_links[dst].acquire(at_switch, wire)

        recv_cpu = (self.overhead.recv_cost(payload_bytes)
                    if recv_cpu_cycles is None else recv_cpu_cycles)
        rstart, delivered = self.handlers[dst].acquire(arrival, recv_cpu)

        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.complete(src, Category.PROTOCOL, f"send:{kind.value}",
                            sstart, sent, track=f"node{src}.sw",
                            dst=dst, bytes=payload_bytes)
            if src != dst:
                tracer.complete(src, Category.NETWORK, kind.value,
                                ostart, arrival, track=f"link{src}",
                                dst=dst, bytes=payload_bytes)
            tracer.complete(dst, Category.PROTOCOL, f"recv:{kind.value}",
                            rstart, delivered, track=f"node{dst}.sw",
                            src=src, bytes=payload_bytes)

        if on_delivered is not None:
            self.engine.schedule_at(delivered, on_delivered, delivered)
        return delivered

    def roundtrip_estimate(self, payload_bytes: int = 0) -> int:
        """Uncontended request/response latency (for tests/calibration)."""
        one_way = (self.overhead.send_cost(payload_bytes) +
                   self.wire_cycles(payload_bytes + self.header_bytes) +
                   self.switch_latency +
                   self.wire_cycles(payload_bytes + self.header_bytes) +
                   self.overhead.recv_cost(payload_bytes))
        return 2 * one_way
