"""Deterministic fault injection for the point-to-point network path.

The paper's TreadMarks runs over UDP on the ATM LAN (§2.2) and supplies
its own reliability — timeouts, retransmission, duplicate suppression.
Our :class:`~repro.net.atm.AtmNetwork` is perfectly lossless, so this
module adds the misbehaviour back, under strict determinism: every
drop/duplicate/jitter decision is a pure function of the fault seed and
the message's position in its (src, dst, kind) stream, computed with
:func:`hashlib.blake2b` (never Python's salted ``hash``), so the same
:class:`FaultPlan` produces the same fault sequence in-process, across
worker processes, and across interpreter invocations — the property
``tests/test_determinism.py`` and the result cache rely on.

Because each decision compares one stable uniform draw against the
configured rate, the set of dropped messages is (approximately) nested
across loss rates: raising ``loss_rate`` only adds drops, which is what
makes the ``fault-sweep`` experiment's degradation curves monotone
rather than noise.

A :class:`FaultPlan` is a frozen value object — picklable to worker
processes and reducible by
:func:`repro.machines.base.fingerprint_value` for cache keys.  Targeted
scenarios ("drop the 3rd diff request from node 2") are expressed as
:class:`FaultRule`\\ s, parseable from the compact CLI spec of
:func:`parse_schedule`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.stats.counters import MsgKind

#: Scales a 64-bit digest prefix into [0, 1).
_U64_SPAN = float(1 << 64)

_ACTIONS = ("drop", "dup")


@dataclass(frozen=True)
class FaultRule:
    """One targeted fault: ``action`` on messages matching the filters.

    ``kind``/``src``/``dst`` restrict which messages match (``None``
    matches anything); ``nth`` fires on the n-th match only (1-based),
    or on every match when ``None``.  Matching counts *transmission
    attempts* in deterministic engine order, so a retransmission of a
    previously-dropped message is a new match.
    """

    action: str
    kind: Optional[str] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    nth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"fault rule action must be one of {_ACTIONS}: "
                f"{self.action!r}")
        if self.kind is not None:
            try:
                MsgKind(self.kind)
            except ValueError:
                raise ConfigurationError(
                    f"unknown message kind in fault rule: {self.kind!r} "
                    f"(choose from {sorted(k.value for k in MsgKind)})"
                ) from None
        if self.nth is not None and self.nth < 1:
            raise ConfigurationError(
                f"fault rule nth is 1-based, got {self.nth}")

    def matches(self, src: int, dst: int, kind: MsgKind) -> bool:
        """Does this rule apply to a message? (None fields = wildcard)"""
        return ((self.kind is None or self.kind == kind.value) and
                (self.src is None or self.src == src) and
                (self.dst is None or self.dst == dst))


@dataclass(frozen=True)
class StallWindow:
    """Node ``node`` neither sends nor receives during [start, end)."""

    node: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"stall window needs 0 <= start < end: "
                f"[{self.start}, {self.end})")


@dataclass(frozen=True)
class RetryPolicy:
    """Reliable-delivery retransmission knobs as one frozen value.

    ``rto_multiplier`` scales the network round-trip estimate into the
    first retransmission timeout; each further attempt multiplies the
    timeout by ``backoff_factor`` (2.0 reproduces the classic binary
    exponential backoff of the pre-policy code exactly, including at
    integer cycle granularity), optionally clamped at
    ``backoff_cap_cycles``.  After ``max_retries`` retransmissions the
    destination is *suspected dead* — recovery takes over when a crash
    plan is armed, otherwise a
    :class:`~repro.errors.NetworkPartitionError` is raised.
    """

    max_retries: int = 8
    rto_multiplier: float = 4.0
    backoff_factor: float = 2.0
    backoff_cap_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0: {self.max_retries}")
        if self.rto_multiplier <= 0:
            raise ConfigurationError(
                f"rto_multiplier must be > 0: {self.rto_multiplier}")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1: {self.backoff_factor}")
        if (self.backoff_cap_cycles is not None and
                self.backoff_cap_cycles < 1):
            raise ConfigurationError(
                f"backoff_cap_cycles must be >= 1: "
                f"{self.backoff_cap_cycles}")

    def rto_for(self, base_rto: int, attempt: int) -> int:
        """Timeout (cycles) armed for transmission attempt ``attempt``.

        ``attempt`` is 1-based: the first send waits ``base_rto``, each
        retransmission multiplies by ``backoff_factor``, and the cap —
        when set — bounds the wait however many attempts have failed.
        """
        rto = int(base_rto * self.backoff_factor ** (attempt - 1))
        if self.backoff_cap_cycles is not None:
            rto = min(rto, self.backoff_cap_cycles)
        return max(1, rto)


@dataclass(frozen=True)
class CrashEvent:
    """Crash-stop failure of ``node`` at simulated cycle ``at``.

    The node's processors halt and its host stops acknowledging
    frames.  ``rejoin`` (optional, strictly after ``at``) restores the
    *link* — frames addressed to the host are deliverable again — but
    the process stays dead: membership remains n−1 and recovery is
    never undone.  This models the realistic cluster sequence "machine
    reboots, daemon does not", and keeps crash semantics strictly
    crash-stop.
    """

    node: int
    at: int
    rejoin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(
                f"crash node must be >= 0: {self.node}")
        if self.at < 0:
            raise ConfigurationError(
                f"crash time must be >= 0: {self.at}")
        if self.rejoin is not None and self.rejoin <= self.at:
            raise ConfigurationError(
                f"crash rejoin must come after the crash: "
                f"rejoin={self.rejoin} <= at={self.at}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, picklable description of network misbehaviour.

    The default-constructed plan is *disabled* (``enabled`` is False):
    machines given a disabled plan behave byte-identically to machines
    given no plan at all, and share their cache fingerprints.
    """

    loss_rate: float = 0.0
    dup_rate: float = 0.0
    jitter_cycles: int = 0
    seed: int = 0
    max_retries: int = 8
    rto_multiplier: float = 4.0
    schedule: Tuple[FaultRule, ...] = ()
    stalls: Tuple[StallWindow, ...] = ()
    #: Crash-stop node failures (see :class:`CrashEvent`).
    crashes: Tuple[CrashEvent, ...] = ()
    #: Retransmission knobs; defaults to a policy built from the
    #: legacy ``max_retries``/``rto_multiplier`` fields so old call
    #: sites keep behaving (and fingerprinting) exactly as before.
    retry: Optional[RetryPolicy] = None
    #: Keepalive backstop: when a crash plan is armed, a failed node
    #: is *declared* dead no later than ``crash_at + detect_cycles``,
    #: even if no retransmission chain happens to be pointed at it.
    detect_cycles: int = 1_000_000
    #: No-progress window (sim cycles) for the engine watchdog armed
    #: whenever this plan is enabled; generous next to the worst-case
    #: backoff so only genuinely wedged runs trip it.
    watchdog_cycles: int = 200_000_000

    def __post_init__(self) -> None:
        # Tolerate lists from callers/JSON; store hashable tuples.
        object.__setattr__(self, "schedule", tuple(self.schedule))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        # Fold the legacy flat retry knobs and the RetryPolicy value
        # into agreement: a policy argument wins, otherwise one is
        # built from the flat fields.  Either way both views coincide,
        # so fingerprints and old call sites stay stable.
        if self.retry is None:
            object.__setattr__(self, "retry", RetryPolicy(
                max_retries=self.max_retries,
                rto_multiplier=self.rto_multiplier))
        else:
            object.__setattr__(self, "max_retries",
                               self.retry.max_retries)
            object.__setattr__(self, "rto_multiplier",
                               self.retry.rto_multiplier)
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1): {self.loss_rate}")
        if not 0.0 <= self.dup_rate < 1.0:
            raise ConfigurationError(
                f"dup_rate must be in [0, 1): {self.dup_rate}")
        if self.jitter_cycles < 0:
            raise ConfigurationError(
                f"jitter_cycles must be >= 0: {self.jitter_cycles}")
        crashed_nodes = [c.node for c in self.crashes]
        if len(set(crashed_nodes)) != len(crashed_nodes):
            raise ConfigurationError(
                f"duplicate crash node in plan: {sorted(crashed_nodes)}")
        if self.detect_cycles <= 0:
            raise ConfigurationError(
                f"detect_cycles must be > 0: {self.detect_cycles}")
        if self.watchdog_cycles <= 0:
            raise ConfigurationError(
                f"watchdog_cycles must be > 0: {self.watchdog_cycles}")

    @property
    def enabled(self) -> bool:
        """True when any fault mechanism can actually fire."""
        return bool(self.loss_rate or self.dup_rate or
                    self.jitter_cycles or self.schedule or self.stalls or
                    self.crashes)

    def label(self) -> str:
        """Compact machine-name suffix (``loss0.02``, ``sched``...)."""
        parts = []
        if self.loss_rate:
            parts.append(f"loss{self.loss_rate:g}")
        if self.dup_rate:
            parts.append(f"dup{self.dup_rate:g}")
        if self.jitter_cycles:
            parts.append(f"jit{self.jitter_cycles}")
        if self.schedule:
            parts.append("sched")
        if self.stalls:
            parts.append("stall")
        for crash in self.crashes:
            parts.append(f"crash{crash.node}t{crash.at}")
        return "+".join(parts) or "off"

    # -- crash queries ----------------------------------------------------
    def crash_of(self, node: int) -> Optional[CrashEvent]:
        """The crash event scheduled for ``node``, if any."""
        for crash in self.crashes:
            if crash.node == node:
                return crash
        return None

    def node_down_at(self, node: int, time: int) -> bool:
        """Is ``node``'s *host* unreachable at ``time``?

        True between the crash and the (optional) link rejoin.  Note
        this is a link property only — the *process* on a crashed node
        is dead forever regardless of rejoin (crash-stop).
        """
        crash = self.crash_of(node)
        if crash is None or time < crash.at:
            return False
        return crash.rejoin is None or time < crash.rejoin


def parse_schedule(spec: str) -> Tuple[FaultRule, ...]:
    """Parse the CLI fault-schedule mini-language.

    Rules are separated by ``;``; each rule is colon-separated fields:
    an action (``drop``/``dup``), optionally a message kind, and
    optional ``src=``/``dst=``/``nth=`` filters::

        drop:diff_request:src=2:nth=3; dup:lock_grant
    """
    rules = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        if chunk.startswith("crash@"):
            raise ConfigurationError(
                f"crash events are not schedule rules: pass {chunk!r} "
                f"via --crash / parse_crashes, not the fault schedule")
        parts = [p.strip() for p in chunk.split(":")]
        action, kind = parts[0], None
        filters: Dict[str, int] = {}
        for part in parts[1:]:
            if "=" in part:
                key, _, value = part.partition("=")
                key = key.strip()
                if key not in ("src", "dst", "nth"):
                    raise ConfigurationError(
                        f"unknown fault rule filter {key!r} in "
                        f"{chunk!r} (expected src=, dst=, nth=)")
                try:
                    filters[key] = int(value)
                except ValueError:
                    raise ConfigurationError(
                        f"fault rule filter {key}= needs an integer: "
                        f"{chunk!r}") from None
            elif kind is None:
                kind = part
            else:
                raise ConfigurationError(
                    f"fault rule has two message kinds: {chunk!r}")
        rules.append(FaultRule(action, kind=kind, **filters))
    if not rules:
        raise ConfigurationError(f"empty fault schedule: {spec!r}")
    return tuple(rules)


def parse_crashes(spec: str) -> Tuple[CrashEvent, ...]:
    """Parse the CLI crash mini-language into :class:`CrashEvent`\\ s.

    Events are separated by ``;``; each is
    ``crash@node<N>:t=<cycles>[:rejoin=<cycles>]``::

        crash@node3:t=500000
        crash@node1:t=2000000:rejoin=9000000
    """
    events = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = [p.strip() for p in chunk.split(":")]
        head = parts[0]
        if not head.startswith("crash@node"):
            raise ConfigurationError(
                f"crash spec must start with 'crash@node<N>': {chunk!r}")
        try:
            node = int(head[len("crash@node"):])
        except ValueError:
            raise ConfigurationError(
                f"crash spec needs an integer node: {chunk!r}") from None
        fields: Dict[str, int] = {}
        for part in parts[1:]:
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in ("t", "rejoin"):
                raise ConfigurationError(
                    f"unknown crash field {part!r} in {chunk!r} "
                    f"(expected t=, rejoin=)")
            try:
                fields[key] = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"crash field {key}= needs an integer: "
                    f"{chunk!r}") from None
        if "t" not in fields:
            raise ConfigurationError(
                f"crash spec needs a time (t=): {chunk!r}")
        events.append(CrashEvent(node, fields["t"],
                                 rejoin=fields.get("rejoin")))
    if not events:
        raise ConfigurationError(f"empty crash spec: {spec!r}")
    return tuple(events)


@dataclass
class FaultDecision:
    """What the fault plane does to one transmission attempt."""

    drop: bool = False
    duplicate: bool = False
    jitter: int = 0


class FaultInjector:
    """Stateful evaluator of a :class:`FaultPlan` for one run.

    Holds the per-edge message counters and per-rule match counters;
    build a fresh injector per simulation (the wrapping
    :class:`~repro.net.reliable.ReliableNetwork` does).
    """

    def __init__(self, plan: FaultPlan, num_nodes: int) -> None:
        for rule in plan.schedule:
            for attr in ("src", "dst"):
                node = getattr(rule, attr)
                if node is not None and not 0 <= node < num_nodes:
                    raise ConfigurationError(
                        f"fault rule {attr}={node} outside the "
                        f"{num_nodes}-node machine")
        for stall in plan.stalls:
            if not 0 <= stall.node < num_nodes:
                raise ConfigurationError(
                    f"stall window node {stall.node} outside the "
                    f"{num_nodes}-node machine")
        for crash in plan.crashes:
            if not 0 <= crash.node < num_nodes:
                raise ConfigurationError(
                    f"crash node {crash.node} outside the "
                    f"{num_nodes}-node machine")
        if plan.crashes and len(plan.crashes) >= num_nodes:
            raise ConfigurationError(
                f"crash plan kills all {num_nodes} nodes; at least "
                f"one survivor is required for a degraded run")
        self.plan = plan
        self._edge_count: Dict[Tuple[int, int, str], int] = {}
        self._rule_count = [0] * len(plan.schedule)

    # ------------------------------------------------------------------
    def _uniform(self, tag: str, src: int, dst: int, kind: MsgKind,
                 n: int) -> float:
        key = f"{self.plan.seed}:{tag}:{src}:{dst}:{kind.value}:{n}"
        digest = hashlib.blake2b(key.encode("ascii"),
                                 digest_size=8).digest()
        return int.from_bytes(digest, "big") / _U64_SPAN

    def decide(self, src: int, dst: int, kind: MsgKind) -> FaultDecision:
        """The fate of the next transmission attempt on this edge."""
        plan = self.plan
        edge = (src, dst, kind.value)
        n = self._edge_count.get(edge, 0)
        self._edge_count[edge] = n + 1

        decision = FaultDecision()
        if plan.loss_rate and (
                self._uniform("drop", src, dst, kind, n) < plan.loss_rate):
            decision.drop = True
        if plan.dup_rate and (
                self._uniform("dup", src, dst, kind, n) < plan.dup_rate):
            decision.duplicate = True
        if plan.jitter_cycles:
            u = self._uniform("jitter", src, dst, kind, n)
            decision.jitter = int(u * (plan.jitter_cycles + 1))

        for i, rule in enumerate(plan.schedule):
            if not rule.matches(src, dst, kind):
                continue
            self._rule_count[i] += 1
            if rule.nth is not None and self._rule_count[i] != rule.nth:
                continue
            if rule.action == "drop":
                decision.drop = True
            else:
                decision.duplicate = True
        return decision

    def stall_until(self, node: int, now: int) -> int:
        """Earliest cycle >= ``now`` at which ``node`` is not stalled."""
        wake = now
        # Windows may chain/overlap; iterate to the combined fixpoint.
        changed = True
        while changed:
            changed = False
            for stall in self.plan.stalls:
                if stall.node == node and stall.start <= wake < stall.end:
                    wake = stall.end
                    changed = True
        return wake
