"""Software messaging-overhead model.

The paper charges, per message, a fixed cost of entering the kernel to
send or receive plus a per-word data-copy cost; page faults and
incoming messages additionally dispatch to a user-level handler; and
creating a diff costs a per-word scan of the page (§3.1).  Figures
14-16 study reducing the fixed cost (Peregrine-style optimized kernel
path, SHRIMP-style user-level DMA interface) and the per-word cost
(single bcopy to the interface).

All costs are in processor cycles of the machine being simulated, so
the same preset names mean different absolute times on a 40 MHz
DECstation and a 100 MHz leading-edge CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro import units


@dataclass(frozen=True)
class SoftwareOverhead:
    """Per-message and per-fault CPU costs, in processor cycles."""

    fixed_send_cycles: int = 2000
    fixed_recv_cycles: int = 2000
    per_word_cycles: int = 4
    handler_dispatch_cycles: int = 1000
    fault_trap_cycles: int = 400
    twin_per_word_cycles: int = 1
    diff_fixed_cycles: int = 1024
    diff_per_word_cycles: int = 2
    diff_apply_per_word_cycles: int = 1

    def send_cost(self, payload_bytes: int) -> int:
        """CPU cycles the sender spends to launch a message."""
        words = units.bytes_to_words(payload_bytes)
        return self.fixed_send_cycles + words * self.per_word_cycles

    def recv_cost(self, payload_bytes: int) -> int:
        """CPU cycles the receiver spends to accept and dispatch."""
        words = units.bytes_to_words(payload_bytes)
        return (self.fixed_recv_cycles + self.handler_dispatch_cycles +
                words * self.per_word_cycles)

    def twin_cost(self, page_bytes: int) -> int:
        """Copy cost of twinning a page on first write."""
        return units.bytes_to_words(page_bytes) * self.twin_per_word_cycles

    def diff_create_cost(self, page_bytes: int) -> int:
        """Cost of scanning a page against its twin to build a diff."""
        return (self.diff_fixed_cycles +
                units.bytes_to_words(page_bytes) * self.diff_per_word_cycles)

    def diff_apply_cost(self, diff_bytes: int) -> int:
        """Cost of patching a page copy with a received diff."""
        return (units.bytes_to_words(diff_bytes) *
                self.diff_apply_per_word_cycles)

    def fault_cost(self) -> int:
        """Trap + dispatch cost of a page-protection fault."""
        return self.fault_trap_cycles + self.handler_dispatch_cycles

    # -- derived variants ---------------------------------------------
    def with_fixed(self, fixed_cycles: int) -> "SoftwareOverhead":
        """Same model with a different fixed send/receive cost."""
        return replace(self, fixed_send_cycles=fixed_cycles,
                       fixed_recv_cycles=fixed_cycles)

    def with_per_word(self, per_word_cycles: int) -> "SoftwareOverhead":
        """Same model with a different per-word copy cost."""
        return replace(self, per_word_cycles=per_word_cycles)

    def scaled(self, factor: float) -> "SoftwareOverhead":
        """Uniformly scale all fixed costs (used for kernel-level)."""
        return replace(
            self,
            fixed_send_cycles=int(self.fixed_send_cycles * factor),
            fixed_recv_cycles=int(self.fixed_recv_cycles * factor),
            handler_dispatch_cycles=int(
                self.handler_dispatch_cycles * factor),
        )


class OverheadPreset(Enum):
    """Named overhead configurations used across the experiments."""

    USER_LEVEL = "user_level"       # TreadMarks as measured (baseline)
    KERNEL_LEVEL = "kernel_level"   # in-kernel TreadMarks (§2.4.4)
    SIM_BASE = "sim_base"           # §3 baseline simulation overheads
    PEREGRINE = "peregrine"         # reduced fixed cost (§3.2.4)
    SHRIMP = "shrimp"               # near-zero fixed cost (§3.2.4)
    SHRIMP_BCOPY = "shrimp_bcopy"   # near-zero fixed + 1-cycle/word copy

    def build(self) -> SoftwareOverhead:
        """The cycle-cost table this preset names."""
        return _PRESETS[self]


# The DECstation measurements in §2.2 are the anchor for USER_LEVEL;
# kernel-level TreadMarks roughly halved lock/barrier times (§2.4.4).
_USER = SoftwareOverhead(
    fixed_send_cycles=3500,
    fixed_recv_cycles=4500,
    per_word_cycles=4,
    handler_dispatch_cycles=1200,
)
_KERNEL = SoftwareOverhead(
    fixed_send_cycles=1400,
    fixed_recv_cycles=1800,
    per_word_cycles=4,
    handler_dispatch_cycles=500,
)
_SIM_BASE = SoftwareOverhead(
    fixed_send_cycles=2000,
    fixed_recv_cycles=2000,
    per_word_cycles=4,
    handler_dispatch_cycles=1000,
)

_PRESETS = {
    OverheadPreset.USER_LEVEL: _USER,
    OverheadPreset.KERNEL_LEVEL: _KERNEL,
    OverheadPreset.SIM_BASE: _SIM_BASE,
    OverheadPreset.PEREGRINE: _SIM_BASE.with_fixed(500),
    OverheadPreset.SHRIMP: _SIM_BASE.with_fixed(100),
    OverheadPreset.SHRIMP_BCOPY: _SIM_BASE.with_fixed(100).with_per_word(1),
}

#: The four overhead series plotted in Figures 14-16.
OVERHEAD_SWEEP = (
    OverheadPreset.SIM_BASE,
    OverheadPreset.PEREGRINE,
    OverheadPreset.SHRIMP,
    OverheadPreset.SHRIMP_BCOPY,
)
