"""Crossbar interconnect for the all-hardware (AH) architecture.

The paper uses a crossbar "to minimize the effect of network contention
on our results" (§3.1), with Paragon-class point-to-point bandwidth and
sub-microsecond latency.  Transfers occupy the source's output port and
the destination's input port; there is no software overhead — the
directory controller initiates transfers in hardware.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import units
from repro.sim.engine import Engine
from repro.sim.resource import Resource
from repro.stats.counters import Counters
from repro.trace.tracer import Category


class CrossbarNetwork:
    """Hardware point-to-point network with per-port contention."""

    def __init__(self, engine: Engine, num_nodes: int, *,
                 bandwidth_bytes_per_sec: float,
                 latency_cycles: int,
                 clock_hz: float,
                 counters: Counters) -> None:
        self.engine = engine
        self.num_nodes = num_nodes
        self.bandwidth = bandwidth_bytes_per_sec
        self.latency = latency_cycles
        self.clock_hz = clock_hz
        self.counters = counters
        self.out_ports = [Resource(f"xbar.out[{i}]")
                          for i in range(num_nodes)]
        self.in_ports = [Resource(f"xbar.in[{i}]") for i in range(num_nodes)]

    def wire_cycles(self, nbytes: int) -> int:
        return units.transfer_cycles(nbytes, self.bandwidth, self.clock_hz)

    def transfer(self, src: int, dst: int, nbytes: int, now: int) -> int:
        """Move ``nbytes`` from node ``src`` to node ``dst``.

        Returns the arrival time.  Same-node transfers are free.
        """
        self.counters.network_hops += 1
        if src == dst:
            return now
        wire = self.wire_cycles(nbytes)
        _ostart, out_done = self.out_ports[src].acquire(now, wire)
        at_dst = out_done + self.latency
        _istart, arrival = self.in_ports[dst].acquire(at_dst, wire)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.complete(src, Category.NETWORK, "xfer",
                            _ostart, arrival, track=f"xbar.out{src}",
                            dst=dst, bytes=nbytes)
        return arrival


class CombiningStage:
    """Fetch-and-op combining in front of a serializing resource.

    The hardware mirror of the software
    :class:`~repro.sync.combining.SwitchCombiner`: atomic operations
    bound for the same location (``key``) whose issue times fall
    inside one combining window merge in the interconnect.  The
    window opener pays the full serialized transaction at the home
    port; followers are answered by the combining stage itself in
    ``combine_cycles``, never touching the shared resource.  On the
    AH machine the resource is the sync home-node port; on the SGI
    model it is the snooping bus (a Sequent-style fetch-and-add at
    the memory controller).

    Windows are keyed by simulated time only — fully deterministic.
    """

    def __init__(self, counters: Counters, *,
                 resource: Optional[Resource],
                 window_cycles: int,
                 combine_cycles: int) -> None:
        if window_cycles < 0 or combine_cycles < 0:
            raise ValueError("combining windows/cycles must be >= 0")
        self.counters = counters
        self.resource = resource
        self.window_cycles = window_cycles
        self.combine_cycles = combine_cycles
        self._windows: Dict[Tuple[object, ...], int] = {}

    def fetch_op(self, key: Tuple[object, ...], now: int,
                 cycles: int) -> int:
        """Issue one atomic op toward ``key``; returns completion time."""
        end = self._windows.get(key)
        if end is not None and now <= end:
            self.counters.combining_hits += 1
            return now + self.combine_cycles
        self._windows[key] = now + self.window_cycles
        if self.resource is None:
            return now + cycles
        _start, done = self.resource.acquire(now, cycles)
        return done
