"""Crossbar interconnect for the all-hardware (AH) architecture.

The paper uses a crossbar "to minimize the effect of network contention
on our results" (§3.1), with Paragon-class point-to-point bandwidth and
sub-microsecond latency.  Transfers occupy the source's output port and
the destination's input port; there is no software overhead — the
directory controller initiates transfers in hardware.
"""

from __future__ import annotations

from repro import units
from repro.sim.engine import Engine
from repro.sim.resource import Resource
from repro.stats.counters import Counters
from repro.trace.tracer import Category


class CrossbarNetwork:
    """Hardware point-to-point network with per-port contention."""

    def __init__(self, engine: Engine, num_nodes: int, *,
                 bandwidth_bytes_per_sec: float,
                 latency_cycles: int,
                 clock_hz: float,
                 counters: Counters) -> None:
        self.engine = engine
        self.num_nodes = num_nodes
        self.bandwidth = bandwidth_bytes_per_sec
        self.latency = latency_cycles
        self.clock_hz = clock_hz
        self.counters = counters
        self.out_ports = [Resource(f"xbar.out[{i}]")
                          for i in range(num_nodes)]
        self.in_ports = [Resource(f"xbar.in[{i}]") for i in range(num_nodes)]

    def wire_cycles(self, nbytes: int) -> int:
        return units.transfer_cycles(nbytes, self.bandwidth, self.clock_hz)

    def transfer(self, src: int, dst: int, nbytes: int, now: int) -> int:
        """Move ``nbytes`` from node ``src`` to node ``dst``.

        Returns the arrival time.  Same-node transfers are free.
        """
        self.counters.network_hops += 1
        if src == dst:
            return now
        wire = self.wire_cycles(nbytes)
        _ostart, out_done = self.out_ports[src].acquire(now, wire)
        at_dst = out_done + self.latency
        _istart, arrival = self.in_ports[dst].acquire(at_dst, wire)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.complete(src, Category.NETWORK, "xfer",
                            _ostart, arrival, track=f"xbar.out{src}",
                            dst=dst, bytes=nbytes)
        return arrival
