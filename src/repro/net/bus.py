"""Shared-bus model for snooping multiprocessors.

Used both for the SGI 4D/480's 64-bit shared backplane (§2.2) and for
the bus inside each HS node (§3.1).  A bus transaction occupies the bus
for arbitration plus data beats; the bus runs at its own clock, so
occupancy is converted into CPU cycles.  Contention emerges naturally
from the FCFS :class:`~repro.sim.resource.Resource` underneath — this
is the mechanism behind SOR's bandwidth-bound behaviour on the SGI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.resource import Resource
from repro.stats.counters import Counters
from repro.trace.tracer import NULL_TRACER, Category, Tracer


@dataclass(frozen=True)
class BusTiming:
    """Static bus parameters."""

    width_bytes: int = 8          # 64-bit bus
    bus_hz: float = 16_000_000.0  # backplane clock
    cpu_hz: float = 40_000_000.0  # processor clock (for conversion)
    arbitration_bus_cycles: int = 2
    address_bus_cycles: int = 2

    @property
    def cpu_cycles_per_bus_cycle(self) -> float:
        return self.cpu_hz / self.bus_hz

    def transaction_cycles(self, data_bytes: int) -> int:
        """CPU cycles of bus occupancy for one transaction."""
        beats = (data_bytes + self.width_bytes - 1) // self.width_bytes
        bus_cycles = (self.arbitration_bus_cycles +
                      self.address_bus_cycles + beats)
        return max(1, int(round(bus_cycles * self.cpu_cycles_per_bus_cycle)))


class BusModel:
    """A snooping bus: FCFS resource + transaction accounting."""

    def __init__(self, name: str, timing: BusTiming,
                 counters: Counters,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.name = name
        self.timing = timing
        self.counters = counters
        self.resource = Resource(name)
        #: Observation hook; machines point this at the engine's tracer
        #: (the bus itself never sees the engine).
        self.tracer = tracer

    def transaction(self, now: int, data_bytes: int) -> int:
        """Issue one bus transaction at ``now``; returns finish time."""
        occupancy = self.timing.transaction_cycles(data_bytes)
        start, end = self.resource.acquire(now, occupancy)
        self.counters.bus_transactions += 1
        self.counters.bus_data_bytes += data_bytes
        if self.tracer.enabled:
            self.tracer.complete(0, Category.NETWORK, "bus_txn",
                                 start, end, track=self.name,
                                 bytes=data_bytes)
        return end

    def transactions(self, now: int, count: int, data_bytes_each: int) -> int:
        """Issue ``count`` back-to-back transactions; returns finish time.

        Bulk path for line-grain coherence traffic: the bus is held for
        the aggregate occupancy, which is equivalent to issuing the
        transactions consecutively under FCFS.
        """
        if count <= 0:
            return now
        occupancy = self.timing.transaction_cycles(data_bytes_each) * count
        start, end = self.resource.acquire(now, occupancy)
        self.counters.bus_transactions += count
        self.counters.bus_data_bytes += data_bytes_each * count
        if self.tracer.enabled:
            self.tracer.complete(0, Category.NETWORK, "bus_txns",
                                 start, end, track=self.name,
                                 count=count, bytes=data_bytes_each * count)
        return end

    def utilization(self, horizon: int) -> float:
        return self.resource.utilization(horizon)
