"""Shared address space layout: regions, pages, and cache lines.

Applications allocate named *regions*; machine models translate
(region, offset, length) accesses into global page or cache-line
ranges.  Regions are page-aligned so a page never spans two regions,
which keeps both the DSM page tables and the hardware line states
simple and mirrors how TreadMarks laid out its shared heap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import AddressError, ConfigurationError


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class Geometry:
    """Page and cache-line sizes for a machine (both powers of two)."""

    page_bytes: int = 4096
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if not _is_pow2(self.page_bytes):
            raise ConfigurationError(
                f"page_bytes must be a power of two: {self.page_bytes}")
        if not _is_pow2(self.line_bytes):
            raise ConfigurationError(
                f"line_bytes must be a power of two: {self.line_bytes}")
        if self.line_bytes > self.page_bytes:
            raise ConfigurationError(
                "line_bytes may not exceed page_bytes "
                f"({self.line_bytes} > {self.page_bytes})")

    # -- span arithmetic ------------------------------------------------
    def page_span(self, addr: int, nbytes: int) -> Tuple[int, int]:
        """Global page range ``[first, last)`` covering the byte range."""
        if nbytes <= 0:
            raise AddressError(f"nbytes must be positive, got {nbytes}")
        first = addr // self.page_bytes
        last = (addr + nbytes - 1) // self.page_bytes + 1
        return first, last

    def line_span(self, addr: int, nbytes: int) -> Tuple[int, int]:
        """Global cache-line range ``[first, last)`` covering the bytes."""
        if nbytes <= 0:
            raise AddressError(f"nbytes must be positive, got {nbytes}")
        first = addr // self.line_bytes
        last = (addr + nbytes - 1) // self.line_bytes + 1
        return first, last

    def pages_in(self, nbytes: int) -> int:
        """Pages needed to hold ``nbytes`` (rounds up)."""
        return (nbytes + self.page_bytes - 1) // self.page_bytes

    def lines_in(self, nbytes: int) -> int:
        """Lines needed to hold ``nbytes`` (rounds up)."""
        return (nbytes + self.line_bytes - 1) // self.line_bytes

    def lines_per_page(self) -> int:
        return self.page_bytes // self.line_bytes


@dataclass(frozen=True)
class Region:
    """A named, page-aligned slice of the shared address space."""

    name: str
    base: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    def addr(self, offset: int, nbytes: int = 1) -> int:
        """Global address of ``offset`` within the region, bounds-checked."""
        if offset < 0 or offset + nbytes > self.nbytes:
            raise AddressError(
                f"access [{offset}, {offset + nbytes}) outside region "
                f"'{self.name}' of {self.nbytes} bytes")
        return self.base + offset


class AddressSpace:
    """Allocator for page-aligned shared regions.

    The address space starts at zero; page and line numbers derived
    from it are *global* and unambiguous across regions.
    """

    def __init__(self, geometry: Geometry = Geometry()) -> None:
        self.geometry = geometry
        self._regions: Dict[str, Region] = {}
        self._next_base = 0

    def alloc(self, name: str, nbytes: int) -> Region:
        """Allocate a new page-aligned region of at least ``nbytes``."""
        if name in self._regions:
            raise ConfigurationError(f"region '{name}' already allocated")
        if nbytes <= 0:
            raise ConfigurationError(
                f"region size must be positive, got {nbytes}")
        page = self.geometry.page_bytes
        size = self.geometry.pages_in(nbytes) * page
        region = Region(name, self._next_base, size)
        self._regions[name] = region
        self._next_base += size
        return region

    def __getitem__(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise AddressError(f"no region named '{name}'") from None

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    @property
    def regions(self) -> Dict[str, Region]:
        return dict(self._regions)

    @property
    def total_bytes(self) -> int:
        return self._next_base

    @property
    def total_pages(self) -> int:
        return self._next_base // self.geometry.page_bytes

    @property
    def total_lines(self) -> int:
        return self._next_base // self.geometry.line_bytes

    def span(self, region_name: str, offset: int,
             nbytes: int) -> Tuple[int, int]:
        """Global ``(addr, nbytes)`` for a region-relative access."""
        region = self[region_name]
        return region.addr(offset, nbytes), nbytes
