"""The numpy-backed shared store.

One :class:`SharedStore` exists per simulated machine.  Applications
get typed numpy views of their regions and compute on them directly,
so the *values* a run produces are real (and identical across machine
models for data-race-free programs); the coherence machinery only
determines *timing* and *traffic*.

The store also offers :meth:`SharedStore.count_changed_bytes`, which
applications use before overwriting a block: TreadMarks diffs carry
only words whose values actually changed, which is the mechanism
behind the paper's SOR data-movement asymmetry (§2.4.2).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mem.layout import AddressSpace, Region


class SharedStore:
    """Byte-addressable backing memory with typed region views."""

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        self._mem = np.zeros(max(space.total_bytes, 1), dtype=np.uint8)
        self._views: Dict[tuple, np.ndarray] = {}

    def _require_capacity(self) -> None:
        if self._mem.size < self.space.total_bytes:
            grown = np.zeros(self.space.total_bytes, dtype=np.uint8)
            grown[: self._mem.size] = self._mem
            self._mem = grown
            self._views.clear()

    def view(self, region_name: str, dtype=np.float64) -> np.ndarray:
        """A typed numpy view over a whole region (cached)."""
        self._require_capacity()
        key = (region_name, np.dtype(dtype).str)
        cached = self._views.get(key)
        if cached is not None:
            return cached
        region = self.space[region_name]
        raw = self._mem[region.base:region.end]
        typed = raw.view(dtype)
        self._views[key] = typed
        return typed

    def raw(self, region_name: str) -> np.ndarray:
        """The uint8 view of a region."""
        return self.view(region_name, np.uint8)

    # ------------------------------------------------------------------
    def count_changed_bytes(self, region_name: str, offset: int,
                            new_values: np.ndarray) -> int:
        """Bytes that would change if ``new_values`` replaced the bytes
        at ``offset``; used to size TreadMarks diffs before a write.
        """
        new_bytes = np.ascontiguousarray(new_values).view(np.uint8).ravel()
        region = self.space[region_name]
        addr = region.addr(offset, new_bytes.size)
        self._require_capacity()
        old = self._mem[addr:addr + new_bytes.size]
        return int(np.count_nonzero(old != new_bytes))

    def write(self, region_name: str, offset: int,
              new_values: np.ndarray) -> int:
        """Store ``new_values`` at ``offset``; returns changed bytes."""
        new_bytes = np.ascontiguousarray(new_values).view(np.uint8).ravel()
        region = self.space[region_name]
        addr = region.addr(offset, new_bytes.size)
        self._require_capacity()
        old = self._mem[addr:addr + new_bytes.size]
        changed = int(np.count_nonzero(old != new_bytes))
        old[:] = new_bytes
        return changed

    def read(self, region_name: str, offset: int, nbytes: int) -> np.ndarray:
        """A copy of ``nbytes`` raw bytes at ``offset``."""
        region = self.space[region_name]
        addr = region.addr(offset, nbytes)
        self._require_capacity()
        return self._mem[addr:addr + nbytes].copy()

    def region(self, region_name: str) -> Region:
        return self.space[region_name]

    def checksum(self, region_name: str) -> int:
        """Cheap content fingerprint, handy for cross-machine checks."""
        raw = self.raw(region_name)
        if raw.size == 0:
            return 0
        weights = np.arange(1, raw.size + 1, dtype=np.uint64)
        return int((raw.astype(np.uint64) * weights).sum() % (2**61 - 1))

    def __repr__(self) -> str:
        return (f"<SharedStore {len(self.space.regions)} regions, "
                f"{self.space.total_bytes} bytes>")
