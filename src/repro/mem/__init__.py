"""Memory-system substrate shared by software and hardware models.

* :mod:`repro.mem.layout` — regions, the shared address space, and
  page/cache-line geometry arithmetic.
* :mod:`repro.mem.store` — the numpy-backed store application data
  actually lives in (one store per simulated machine, so applications
  compute real results regardless of the coherence model).
* :mod:`repro.mem.directcache` — a vectorized direct-mapped cache model
  (tags + MESI-style states) supporting bulk range operations, used by
  both the snooping and the directory hardware protocols.
"""

from repro.mem.directcache import AccessResult, DirectMappedCache
from repro.mem.layout import AddressSpace, Geometry, Region
from repro.mem.store import SharedStore

__all__ = [
    "AddressSpace",
    "Geometry",
    "Region",
    "SharedStore",
    "DirectMappedCache",
    "AccessResult",
]
