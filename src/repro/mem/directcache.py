"""Vectorized direct-mapped cache with MESI-style line states.

Both hardware protocols (snooping Illinois and the directory protocol)
keep one :class:`DirectMappedCache` per processor.  Applications issue
*bulk* accesses over contiguous byte ranges; the cache resolves a whole
range of global line numbers at once with numpy, which is what makes a
2000x1000 SOR simulable in pure Python.

States follow MESI numbering::

    INVALID(0) < SHARED(1) < EXCLUSIVE(2) < MODIFIED(3)

A direct-mapped cache maps global line ``l`` to set ``l % num_sets``.
Consecutive lines occupy consecutive sets (with wraparound).  Ranges
longer than the cache are processed in cache-sized chunks, so capacity
self-eviction within one access is modelled exactly: the evicted lines
show up in the eviction lists like any other victim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError

INVALID = 0
SHARED = 1
EXCLUSIVE = 2
MODIFIED = 3

STATE_NAMES = {INVALID: "I", SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}

_EMPTY = np.empty(0, dtype=np.int64)


def _concat(parts: List[np.ndarray]) -> np.ndarray:
    parts = [p for p in parts if p.size]
    if not parts:
        return _EMPTY
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


@dataclass
class AccessResult:
    """Outcome of one bulk cache access.

    * ``miss_lines`` — global lines that had to be fetched (includes
      capacity-duplicate misses for ranges longer than the cache).
    * ``upgrade_lines`` — write hits found in SHARED; the coherence
      protocol turns these into ownership/invalidation transactions.
    * ``evicted_dirty_lines`` / ``evicted_clean_lines`` — victims
      displaced by the fills (dirty ones require writeback).
    """

    hits: int = 0
    miss_lines: np.ndarray = field(default_factory=lambda: _EMPTY)
    upgrade_lines: np.ndarray = field(default_factory=lambda: _EMPTY)
    evicted_dirty_lines: np.ndarray = field(default_factory=lambda: _EMPTY)
    evicted_clean_lines: np.ndarray = field(default_factory=lambda: _EMPTY)

    @property
    def misses(self) -> int:
        return int(self.miss_lines.size)

    @property
    def upgrades(self) -> int:
        return int(self.upgrade_lines.size)

    @property
    def writebacks(self) -> int:
        return int(self.evicted_dirty_lines.size)


class DirectMappedCache:
    """Per-processor direct-mapped cache over global line numbers."""

    def __init__(self, cache_bytes: int, line_bytes: int,
                 name: str = "cache") -> None:
        if line_bytes <= 0:
            raise ConfigurationError(f"line_bytes must be positive: {line_bytes}")
        if cache_bytes <= 0 or cache_bytes % line_bytes != 0:
            raise ConfigurationError(
                f"cache_bytes ({cache_bytes}) must be a positive multiple "
                f"of line_bytes ({line_bytes})")
        self.name = name
        self.line_bytes = line_bytes
        self.num_sets = cache_bytes // line_bytes
        self.tags = np.full(self.num_sets, -1, dtype=np.int64)
        self.states = np.zeros(self.num_sets, dtype=np.uint8)

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------
    def state_of(self, line: int) -> int:
        """MESI state of a single global line (INVALID if absent)."""
        s = line % self.num_sets
        if self.tags[s] == line:
            return int(self.states[s])
        return INVALID

    def resident_count(self) -> int:
        return int(np.count_nonzero(self.states != INVALID))

    def dirty_count(self) -> int:
        return int(np.count_nonzero(self.states == MODIFIED))

    def resident_lines(self) -> np.ndarray:
        """Global line numbers of everything currently cached."""
        mask = self.states != INVALID
        return np.sort(self.tags[mask])

    def flush(self) -> int:
        """Drop everything; returns the number of dirty lines lost."""
        dirty = self.dirty_count()
        self.tags.fill(-1)
        self.states.fill(INVALID)
        return dirty

    # ------------------------------------------------------------------
    # bulk access
    # ------------------------------------------------------------------
    def access(self, first_line: int, last_line: int,
               write: bool) -> AccessResult:
        """Perform a bulk read or write over ``[first_line, last_line)``.

        Reads fill missing lines in SHARED (the protocol may
        :meth:`promote` them, e.g. Illinois fills EXCLUSIVE when no
        other cache holds the line).  Writes leave every touched line
        MODIFIED and report SHARED hits as upgrades.
        """
        result = AccessResult()
        if last_line <= first_line:
            return result
        misses: List[np.ndarray] = []
        upgrades: List[np.ndarray] = []
        dirty_victims: List[np.ndarray] = []
        clean_victims: List[np.ndarray] = []

        chunk_start = first_line
        while chunk_start < last_line:
            chunk_end = min(chunk_start + self.num_sets, last_line)
            lines = np.arange(chunk_start, chunk_end, dtype=np.int64)
            sets = lines % self.num_sets
            old_tags = self.tags[sets]
            old_states = self.states[sets]

            present = (old_tags == lines) & (old_states != INVALID)
            result.hits += int(np.count_nonzero(present))
            misses.append(lines[~present])

            conflict = (~present) & (old_states != INVALID)
            dirty_victims.append(old_tags[conflict &
                                          (old_states == MODIFIED)])
            clean_victims.append(old_tags[conflict &
                                          (old_states != MODIFIED)])

            if write:
                upgrades.append(lines[present & (old_states == SHARED)])
                self.tags[sets] = lines
                self.states[sets] = MODIFIED
            else:
                miss_mask = ~present
                miss_sets = sets[miss_mask]
                self.tags[miss_sets] = lines[miss_mask]
                self.states[miss_sets] = SHARED
            chunk_start = chunk_end

        result.miss_lines = _concat(misses)
        result.upgrade_lines = _concat(upgrades)
        result.evicted_dirty_lines = _concat(dirty_victims)
        result.evicted_clean_lines = _concat(clean_victims)
        return result

    def read(self, first_line: int, last_line: int) -> AccessResult:
        """Bulk read; missing lines fill SHARED, hits keep their state."""
        return self.access(first_line, last_line, write=False)

    def write(self, first_line: int, last_line: int) -> AccessResult:
        """Bulk write; all touched resident lines end MODIFIED."""
        return self.access(first_line, last_line, write=True)

    # ------------------------------------------------------------------
    # coherence-side operations
    # ------------------------------------------------------------------
    def promote(self, lines: np.ndarray, state: int) -> None:
        """Set the state of whichever of ``lines`` are resident."""
        if lines.size == 0:
            return
        sets = lines % self.num_sets
        mask = self.tags[sets] == lines
        self.states[sets[mask]] = state

    def invalidate_range(self, first_line: int, last_line: int
                         ) -> Tuple[int, int]:
        """Invalidate resident lines in the range.

        Returns ``(present, dirty)`` counts — ``dirty`` lines must be
        supplied or written back by the protocol before invalidation.
        """
        if last_line <= first_line:
            return 0, 0
        total_present = 0
        total_dirty = 0
        chunk_start = first_line
        while chunk_start < last_line:
            chunk_end = min(chunk_start + self.num_sets, last_line)
            lines = np.arange(chunk_start, chunk_end, dtype=np.int64)
            sets = lines % self.num_sets
            present = (self.tags[sets] == lines) & \
                (self.states[sets] != INVALID)
            dirty = present & (self.states[sets] == MODIFIED)
            total_present += int(np.count_nonzero(present))
            total_dirty += int(np.count_nonzero(dirty))
            self.states[sets[present]] = INVALID
            self.tags[sets[present]] = -1
            chunk_start = chunk_end
        return total_present, total_dirty

    def downgrade_lines(self, lines: np.ndarray) -> Tuple[int, int]:
        """Downgrade resident M/E ``lines`` to SHARED.

        Returns ``(present, dirty)``; dirty lines are supplied to the
        requester / written back by the protocol.
        """
        if lines.size == 0:
            return 0, 0
        sets = lines % self.num_sets
        present = (self.tags[sets] == lines) & (self.states[sets] != INVALID)
        dirty = present & (self.states[sets] == MODIFIED)
        exclusive = present & (self.states[sets] >= EXCLUSIVE)
        self.states[sets[exclusive]] = SHARED
        return int(np.count_nonzero(present)), int(np.count_nonzero(dirty))

    def invalidate_lines(self, lines: np.ndarray) -> Tuple[int, int]:
        """Invalidate an explicit set of global lines; see above."""
        if lines.size == 0:
            return 0, 0
        sets = lines % self.num_sets
        present = (self.tags[sets] == lines) & (self.states[sets] != INVALID)
        dirty = present & (self.states[sets] == MODIFIED)
        self.states[sets[present]] = INVALID
        self.tags[sets[present]] = -1
        return int(np.count_nonzero(present)), int(np.count_nonzero(dirty))

    def downgrade_range(self, first_line: int, last_line: int
                        ) -> Tuple[int, int]:
        """Downgrade M/E lines in the range to SHARED.

        Returns ``(present, dirty)``; dirty lines are flushed by the
        protocol (cache-to-cache supply under Illinois).
        """
        if last_line <= first_line:
            return 0, 0
        total_present = 0
        total_dirty = 0
        chunk_start = first_line
        while chunk_start < last_line:
            chunk_end = min(chunk_start + self.num_sets, last_line)
            lines = np.arange(chunk_start, chunk_end, dtype=np.int64)
            sets = lines % self.num_sets
            present = (self.tags[sets] == lines) & \
                (self.states[sets] != INVALID)
            dirty = present & (self.states[sets] == MODIFIED)
            total_present += int(np.count_nonzero(present))
            total_dirty += int(np.count_nonzero(dirty))
            exclusive = present & (self.states[sets] >= EXCLUSIVE)
            self.states[sets[exclusive]] = SHARED
            chunk_start = chunk_end
        return total_present, total_dirty

    def probe_lines(self, lines: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(present_mask, dirty_mask) for explicit global lines.

        Snooping and directory protocols use this to locate suppliers
        and sharers among the other caches.
        """
        if lines.size == 0:
            empty = np.zeros(0, dtype=bool)
            return empty, empty
        sets = lines % self.num_sets
        present = (self.tags[sets] == lines) & (self.states[sets] != INVALID)
        dirty = present & (self.states[sets] == MODIFIED)
        return present, dirty

    def present_in_range(self, first_line: int, last_line: int) -> int:
        """How many lines of the range are currently resident."""
        if last_line <= first_line:
            return 0
        count = 0
        chunk_start = first_line
        while chunk_start < last_line:
            chunk_end = min(chunk_start + self.num_sets, last_line)
            lines = np.arange(chunk_start, chunk_end, dtype=np.int64)
            sets = lines % self.num_sets
            present = (self.tags[sets] == lines) & \
                (self.states[sets] != INVALID)
            count += int(np.count_nonzero(present))
            chunk_start = chunk_end
        return count

    def __repr__(self) -> str:
        return (f"<DirectMappedCache {self.name}: {self.num_sets} sets x "
                f"{self.line_bytes} B, {self.resident_count()} resident>")
