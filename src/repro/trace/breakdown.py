"""Per-processor, per-category cycle accounting (Figures 12-16 style).

A :class:`TimeBreakdown` is built by the tracer from operation spans.
Its *primary* table is an exact partition: for every processor, the
``compute`` + ``miss`` + ``sync`` + ``idle`` cycles sum to the run's
total cycles (``idle`` covers the tail between a processor finishing
and the slowest processor finishing).  The *overlay* totals record
``protocol`` and ``network`` detail cycles — handler CPU, wire
occupancy — which overlap the primary timeline (a miss window
*contains* protocol and network time) and are therefore reported
alongside, not summed in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.tracer import Category


class TimeBreakdown:
    """Cycle totals per processor and category for one run."""

    #: categories forming the exact per-processor partition
    PRIMARY = ("compute", "miss", "sync", "idle")

    def __init__(self) -> None:
        # proc -> category value -> cycles
        self.per_proc: Dict[int, Dict[str, int]] = {}
        # overlapping detail totals (protocol / network)
        self.overlay: Dict[str, int] = {}
        self.total_cycles: int = 0
        self.nprocs: int = 0

    # ------------------------------------------------------------------
    # accumulation (called by the tracer)
    # ------------------------------------------------------------------
    def add(self, proc: int, category: "Category", cycles: int) -> None:
        """Attribute ``cycles`` of processor ``proc`` to ``category``."""
        row = self.per_proc.get(proc)
        if row is None:
            row = {c: 0 for c in self.PRIMARY}
            self.per_proc[proc] = row
        key = category.value
        row[key] = row.get(key, 0) + cycles

    def add_overlay(self, category: "Category", cycles: int) -> None:
        """Accumulate overlapping detail cycles (protocol/network)."""
        key = category.value
        self.overlay[key] = self.overlay.get(key, 0) + cycles

    def close(self, total_cycles: int, nprocs: int,
              proc_end: Dict[int, int]) -> None:
        """Fill each processor's idle tail so rows sum to the total."""
        self.total_cycles = int(total_cycles)
        self.nprocs = nprocs
        for proc in range(nprocs):
            row = self.per_proc.get(proc)
            if row is None:
                row = {c: 0 for c in self.PRIMARY}
                self.per_proc[proc] = row
            row["idle"] = row.get("idle", 0) + (
                self.total_cycles - proc_end.get(proc, 0))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def proc_total(self, proc: int) -> int:
        """Sum of the processor's primary categories (== total cycles)."""
        return sum(self.per_proc.get(proc, {}).values())

    def category_totals(self) -> Dict[str, int]:
        """Primary category cycles summed over all processors."""
        totals: Dict[str, int] = {c: 0 for c in self.PRIMARY}
        for row in self.per_proc.values():
            for key, cycles in row.items():
                totals[key] = totals.get(key, 0) + cycles
        return totals

    def fractions(self) -> Dict[str, float]:
        """Fraction of aggregate processor time per primary category."""
        totals = self.category_totals()
        denom = sum(totals.values())
        if denom <= 0:
            return {c: 0.0 for c in totals}
        return {c: v / denom for c, v in totals.items()}

    def software_overhead_fraction(self) -> float:
        """Fraction of processor time *not* spent computing.

        The Figure 14-16 derived metric: everything charged to miss
        handling, synchronization, or the idle tail is time the
        software (or hardware) shared-memory implementation cost the
        application.
        """
        totals = self.category_totals()
        denom = sum(totals.values())
        if denom <= 0:
            return 0.0
        return 1.0 - totals.get("compute", 0) / denom

    # ------------------------------------------------------------------
    def summary_keys(self) -> Dict[str, float]:
        """Flat keys merged into :meth:`RunResult.summary`."""
        out: Dict[str, float] = {}
        for cat, frac in self.fractions().items():
            out[f"frac.{cat}"] = frac
        out["software_overhead_fraction"] = (
            self.software_overhead_fraction())
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly full dump (metrics JSONL, tests)."""
        return {
            "total_cycles": self.total_cycles,
            "nprocs": self.nprocs,
            "per_proc": {str(p): dict(row)
                         for p, row in sorted(self.per_proc.items())},
            "category_totals": self.category_totals(),
            "overlay": dict(self.overlay),
            "fractions": self.fractions(),
            "software_overhead_fraction": (
                self.software_overhead_fraction()),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TimeBreakdown":
        """Rebuild a breakdown from :meth:`as_dict` output.

        Only the stored state (per-processor rows, overlay, totals) is
        read back; the derived entries (``category_totals``,
        ``fractions`` ...) are recomputed on demand, so a round-tripped
        breakdown answers every query identically.
        """
        breakdown = cls()
        breakdown.total_cycles = int(data.get("total_cycles", 0))
        breakdown.nprocs = int(data.get("nprocs", 0))
        for proc, row in data.get("per_proc", {}).items():
            breakdown.per_proc[int(proc)] = {
                str(cat): int(cycles) for cat, cycles in row.items()}
        breakdown.overlay = {str(cat): int(cycles)
                             for cat, cycles in
                             data.get("overlay", {}).items()}
        return breakdown

    def __repr__(self) -> str:
        fracs = ", ".join(f"{c}={f:.2f}"
                          for c, f in self.fractions().items())
        return f"<TimeBreakdown {self.nprocs}p {fracs}>"
