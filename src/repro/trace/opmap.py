"""Mapping from application operations to trace categories.

Lives outside the tracer core so :mod:`repro.sim.engine` can import
the tracer without dragging in the application layer.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.apps import ops
from repro.trace.tracer import Category

_OP_MAP: Dict[type, Tuple[Category, str]] = {
    ops.Compute: (Category.COMPUTE, "compute"),
    ops.Read: (Category.MISS, "read"),
    ops.Write: (Category.MISS, "write"),
    ops.Acquire: (Category.SYNC, "acquire"),
    ops.Release: (Category.SYNC, "release"),
    ops.Barrier: (Category.SYNC, "barrier"),
    ops.ReadBound: (Category.SYNC, "read_bound"),
    ops.UpdateBound: (Category.SYNC, "update_bound"),
    # Blocks are unrolled before dispatch, so members trace under
    # their own categories; the entry only covers diagnostic callers.
    ops.OpBlock: (Category.COMPUTE, "op_block"),
}


def op_category(op: Any) -> Tuple[Category, str]:
    """Trace (category, name) of one yielded operation."""
    entry = _OP_MAP.get(type(op))
    if entry is None:
        return Category.COMPUTE, type(op).__name__.lower()
    return entry
