"""Trace sessions: collect every machine run inside a scope.

Experiments call :meth:`Machine.run` internally, so tracing "fig3"
cannot thread a tracer through the registry.  Instead, a
:class:`TraceSession` installs itself as the process-wide active
session; while it is active, every ``Machine.run`` that was not given
an explicit tracer asks the session for one and reports its result
back.  Sessions come in two flavours:

* ``trace=True`` — every run gets a full tracer (spans kept); used by
  ``repro-harness trace``.
* ``trace=False`` — runs are merely *collected* (no tracer, zero
  per-event overhead); used by ``repro-harness run --metrics-out``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from repro.trace.tracer import Tracer

_ACTIVE: Optional["TraceSession"] = None


@dataclass
class TracedRun:
    """One collected run: the result plus its tracer (if traced)."""

    result: Any            # RunResult (duck-typed to avoid a cycle)
    tracer: Optional[Tracer]


class TraceSession:
    """Collects (result, tracer) pairs for every run in its scope."""

    def __init__(self, *, trace: bool = True,
                 keep_spans: bool = True) -> None:
        self.trace = trace
        self.keep_spans = keep_spans
        self.runs: List[TracedRun] = []

    def new_tracer(self, label: str) -> Optional[Tracer]:
        """A tracer for the upcoming run (None in metrics-only mode)."""
        if not self.trace:
            return None
        return Tracer(keep_spans=self.keep_spans, label=label)

    def record(self, result: Any, tracer: Optional[Tracer]) -> None:
        self.runs.append(TracedRun(result, tracer))

    # ------------------------------------------------------------------
    @property
    def results(self) -> List[Any]:
        return [run.result for run in self.runs]

    @property
    def tracers(self) -> List[Tracer]:
        return [run.tracer for run in self.runs
                if run.tracer is not None]

    @property
    def run_ids(self) -> List[Optional[str]]:
        """Ledger run_id per collected run (None outside a session).

        Parallel to :attr:`results`: ``zip(session.run_ids,
        session.results)`` correlates every collected run with its
        provenance-ledger record.
        """
        return [getattr(run.result, "run_id", None)
                for run in self.runs]


def active_session() -> Optional[TraceSession]:
    """The session currently collecting runs, if any."""
    return _ACTIVE


@contextmanager
def no_session() -> Iterator[None]:
    """Scope within which no session collects runs.

    The parallel execution layer uses this to take over result
    collection: it records one entry per *plan* entry (in plan order)
    itself, so the per-run auto-record must stay silent while it
    executes the deduplicated work list.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = previous


@contextmanager
def trace_session(*, trace: bool = True,
                  keep_spans: bool = True) -> Iterator[TraceSession]:
    """Scope within which every machine run is collected (and traced)."""
    global _ACTIVE
    previous = _ACTIVE
    session = TraceSession(trace=trace, keep_spans=keep_spans)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous
