"""Execution tracing and time-breakdown accounting.

The observability layer behind the paper's Figures 12-16: categorized
spans/instants (:mod:`repro.trace.tracer`), exact per-processor cycle
attribution (:mod:`repro.trace.breakdown`), Chrome-trace and metrics
JSONL export (:mod:`repro.trace.export`), and process-wide collection
scopes (:mod:`repro.trace.session`).

Note: :mod:`repro.trace.opmap` (operation classification) is *not*
imported here — it depends on the application layer, and this package
must stay importable from :mod:`repro.sim.engine`.
"""

from repro.trace.breakdown import TimeBreakdown
from repro.trace.export import (chrome_trace, metrics_record,
                                read_metrics_jsonl, write_chrome_trace,
                                write_metrics_jsonl)
from repro.trace.session import (TraceSession, active_session,
                                 trace_session)
from repro.trace.tracer import (NULL_TRACER, Category, Instant,
                                NullTracer, Span, Tracer)

__all__ = [
    "Category",
    "Span",
    "Instant",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TimeBreakdown",
    "TraceSession",
    "trace_session",
    "active_session",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_record",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
]
