"""Execution tracing: spans, instants, and the paper's time taxonomy.

The paper's evaluation (Figures 12-16) rests on knowing *where time
goes*: computation vs. miss handling vs. synchronization vs. software
protocol overhead.  A :class:`Tracer` records that attribution as it
happens — *spans* (an interval of simulated time on a named track) and
*instants* (point events) — without ever scheduling engine events, so
tracing is pure observation: enabling it changes no simulated cycle
count.

Two recording layers cooperate:

* **Operation spans** (:meth:`Tracer.begin_op` / :meth:`Tracer.end_op`)
  partition each processor's timeline exactly: every cycle between a
  task's start and finish belongs to the one operation the processor
  was blocked on, categorized ``compute`` / ``miss`` / ``sync``.
  These feed the :class:`~repro.trace.breakdown.TimeBreakdown`.
* **Detail spans** (:meth:`Tracer.span` / :meth:`Tracer.complete` /
  :meth:`Tracer.instant`) annotate what happened *inside* those
  windows — diff creation, message handler CPU, wire occupancy — on
  their own tracks (``node3.dsm``, ``node3.sw``, ``link3`` ...).
  ``protocol`` and ``network`` detail spans also accumulate into the
  breakdown's *overlay* totals (they overlap the op timeline, so they
  are reported separately rather than summed into it).

When tracing is off, call sites guard with ``if tracer.enabled:`` and
the shared :data:`NULL_TRACER` singleton makes every method a no-op,
so the disabled path costs one attribute test per call site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.trace.breakdown import TimeBreakdown


class Category(Enum):
    """The paper's time/traffic taxonomy (Figures 12-16)."""

    COMPUTE = "compute"    # application cycles
    MISS = "miss"          # access misses: faults, fills, remote data
    SYNC = "sync"          # locks, barriers, bound propagation
    PROTOCOL = "protocol"  # software DSM CPU work (twin/diff/handlers)
    NETWORK = "network"    # wire + switch occupancy
    RECOVERY = "recovery"  # timeout waits + retransmissions (faults)
    IDLE = "idle"          # finished early, waiting for the last proc


@dataclass(frozen=True)
class Span:
    """A closed interval of simulated time on one track."""

    track: str
    proc: int
    category: Category
    name: str
    start: int
    end: int
    args: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> int:
        """Span length in cycles."""
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A point event on one track."""

    track: str
    proc: int
    category: Category
    name: str
    ts: int
    args: Optional[Dict[str, Any]] = None


class SpanHandle:
    """An open span returned by :meth:`Tracer.span`; close with ``end``."""

    __slots__ = ("_tracer", "track", "proc", "category", "name", "start")

    def __init__(self, tracer: "Tracer", track: str, proc: int,
                 category: Category, name: str, start: int) -> None:
        self._tracer = tracer
        self.track = track
        self.proc = proc
        self.category = category
        self.name = name
        self.start = start

    def end(self, at: int, **args: Any) -> None:
        """Close the span at simulated time ``at``."""
        self._tracer.complete(self.proc, self.category, self.name,
                              self.start, at, track=self.track, **args)


class _NullSpanHandle:
    """Shared no-op handle so disabled ``span()`` costs nothing."""

    __slots__ = ()

    def end(self, at: int, **args: Any) -> None:
        pass


_NULL_SPAN = _NullSpanHandle()


class Tracer:
    """Collects spans/instants and accumulates the time breakdown.

    ``keep_spans=False`` keeps only the :class:`TimeBreakdown`
    accounting (cheap metrics mode); ``True`` also retains every event
    for Chrome-trace export.
    """

    enabled: bool = True

    def __init__(self, *, keep_spans: bool = True,
                 label: str = "run") -> None:
        self.keep_spans = keep_spans
        self.label = label
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.breakdown = TimeBreakdown()
        self.meta: Dict[str, Any] = {}
        self.clock_hz: Optional[float] = None
        self.total_cycles: int = 0
        # proc -> (category, name, start) of the operation in flight
        self._open_ops: Dict[int, tuple] = {}
        self._proc_end: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # operation attribution (exact per-processor partition)
    # ------------------------------------------------------------------
    def begin_op(self, proc: int, category: Category, name: str,
                 at: int) -> None:
        """The processor blocked on an operation at time ``at``."""
        if proc in self._open_ops:       # defensive: never lose cycles
            self.end_op(proc, at)
        self._open_ops[proc] = (category, name, at)

    def end_op(self, proc: int, at: int) -> None:
        """The pending operation (if any) completed at time ``at``."""
        open_op = self._open_ops.pop(proc, None)
        if open_op is None:
            return
        category, name, start = open_op
        self.breakdown.add(proc, category, at - start)
        self._proc_end[proc] = at
        if self.keep_spans and at > start:
            self.spans.append(Span(f"p{proc}", proc, category, name,
                                   start, at))

    # ------------------------------------------------------------------
    # detail spans and instants
    # ------------------------------------------------------------------
    def span(self, proc: int, category: Category, name: str,
             start: int, *, track: Optional[str] = None) -> SpanHandle:
        """Open a detail span; close it with ``handle.end(at)``."""
        return SpanHandle(self, track or f"p{proc}", proc, category,
                          name, start)

    def complete(self, proc: int, category: Category, name: str,
                 start: int, end: int, *,
                 track: Optional[str] = None, **args: Any) -> None:
        """Record a detail span whose interval is already known."""
        if (category is Category.PROTOCOL or category is Category.NETWORK
                or category is Category.RECOVERY):
            self.breakdown.add_overlay(category, end - start)
        if self.keep_spans:
            self.spans.append(Span(track or f"p{proc}", proc, category,
                                   name, start, end, args or None))

    def instant(self, proc: int, category: Category, name: str,
                ts: int, *, track: Optional[str] = None,
                **args: Any) -> None:
        """Record a point event."""
        if self.keep_spans:
            self.instants.append(Instant(track or f"p{proc}", proc,
                                         category, name, ts,
                                         args or None))

    # ------------------------------------------------------------------
    def finish(self, total_cycles: int, nprocs: int,
               clock_hz: float, **meta: Any) -> TimeBreakdown:
        """Close out the run: flush open ops, fill idle, store metadata."""
        for proc in list(self._open_ops):
            self.end_op(proc, total_cycles)
        self.total_cycles = total_cycles
        self.clock_hz = clock_hz
        self.meta["nprocs"] = nprocs
        self.meta.update(meta)
        self.breakdown.close(total_cycles, nprocs, self._proc_end)
        return self.breakdown


class NullTracer(Tracer):
    """The disabled tracer: every method is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(keep_spans=False, label="null")

    def begin_op(self, proc, category, name, at):  # pragma: no cover
        """Discard (tracing disabled)."""

    def end_op(self, proc, at):
        """Discard (tracing disabled)."""

    def span(self, proc, category, name, start, *, track=None):
        """A reusable no-op span handle."""
        return _NULL_SPAN

    def complete(self, proc, category, name, start, end, *,
                 track=None, **args):
        """Discard (tracing disabled)."""

    def instant(self, proc, category, name, ts, *, track=None, **args):
        """Discard (tracing disabled)."""

    def finish(self, total_cycles, nprocs, clock_hz, **meta):
        """Nothing to write; returns None."""
        return None


#: Shared singleton used wherever no tracer was supplied.
NULL_TRACER = NullTracer()
