"""Trace exporters: Chrome ``trace_event`` JSON and metrics JSONL.

Chrome traces load directly in ``chrome://tracing`` or
https://ui.perfetto.dev.  Timestamps are exported in microseconds of
*simulated* time (cycles divided by the machine clock); each traced
run becomes one "process" whose threads are the tracer's tracks
(``p0`` .. ``pN`` for the processors, plus detail tracks such as
``node0.sw`` or ``link2``).

The metrics JSONL format is one JSON object per run — machine, app,
processor count, cycles, the full counter dictionary, and (when
tracing was on) the time breakdown — so benchmark results are
machine-readable for trend tracking.  Runs executed inside a
provenance-ledger session additionally carry their ``run_id``, which
is the join key back to the ledger record (and, for traced runs, into
the Chrome trace's ``otherData.runs`` metadata).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.trace.tracer import Tracer


# ======================================================================
# Chrome trace_event export
# ======================================================================
def _cycles_to_us(cycles: int, clock_hz: Optional[float]) -> float:
    if not clock_hz:
        return float(cycles)
    return cycles * 1e6 / clock_hz


def _json_default(value: Any) -> Any:
    """Coerce numpy scalars (and friends) that json cannot encode."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(
        f"object of type {type(value).__name__} is not JSON serializable")


def chrome_events(tracer: Tracer, *, pid: int = 0,
                  label: Optional[str] = None) -> List[Dict[str, Any]]:
    """Trace-event dicts for one tracer (one 'process')."""
    clock = tracer.clock_hz
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": label or tracer.label},
    }]

    def tid_of(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = len(tids)
            tids[track] = tid
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": tid, "args": {"name": track}})
            events.append({
                "name": "thread_sort_index", "ph": "M", "pid": pid,
                "tid": tid, "args": {"sort_index": tid}})
        return tid

    # Pre-register processor tracks in order so p0..pN sort first.
    for span in tracer.spans:
        if span.track.startswith("p") and span.track[1:].isdigit():
            tid_of(span.track)

    body: List[Dict[str, Any]] = []
    for span in tracer.spans:
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category.value,
            "ph": "X",
            "ts": _cycles_to_us(span.start, clock),
            "dur": _cycles_to_us(span.duration, clock),
            "pid": pid,
            "tid": tid_of(span.track),
        }
        if span.args:
            event["args"] = dict(span.args)
        body.append(event)
    for inst in tracer.instants:
        event = {
            "name": inst.name,
            "cat": inst.category.value,
            "ph": "i",
            "s": "t",
            "ts": _cycles_to_us(inst.ts, clock),
            "pid": pid,
            "tid": tid_of(inst.track),
        }
        if inst.args:
            event["args"] = dict(inst.args)
        body.append(event)
    body.sort(key=lambda e: (e["tid"], e["ts"]))
    return events + body


def chrome_trace(tracers: Iterable[Tracer]) -> Dict[str, Any]:
    """Merge traced runs into one Chrome trace document."""
    events: List[Dict[str, Any]] = []
    meta: List[Dict[str, Any]] = []
    for pid, tracer in enumerate(tracers):
        events.extend(chrome_events(tracer, pid=pid))
        meta.append({"pid": pid, "label": tracer.label,
                     "clock_hz": tracer.clock_hz,
                     "total_cycles": tracer.total_cycles,
                     **tracer.meta})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.trace", "runs": meta},
    }


def write_chrome_trace(path: str, tracers: Iterable[Tracer]) -> None:
    """Write a merged Chrome trace JSON file."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracers), fh, default=_json_default)


# ======================================================================
# metrics JSONL export
# ======================================================================
def metrics_record(result: Any) -> Dict[str, Any]:
    """One machine-readable record for a :class:`RunResult`."""
    record: Dict[str, Any] = {
        "machine": result.machine,
        "app": result.app,
        "nprocs": result.nprocs,
        "cycles": result.cycles,
        "seconds": result.seconds,
        "events": result.events,
        "params": dict(result.params),
        "counters": result.counters.as_dict(),
    }
    run_id = getattr(result, "run_id", None)
    if run_id is not None:
        record["run_id"] = run_id
    if result.breakdown is not None:
        record["breakdown"] = result.breakdown.as_dict()
    return record


def write_metrics_jsonl(path: str, results: Iterable[Any], *,
                        append: bool = False) -> int:
    """Write one JSON line per run; returns the number of lines."""
    count = 0
    with open(path, "a" if append else "w") as fh:
        for result in results:
            fh.write(json.dumps(metrics_record(result), sort_keys=True,
                                default=_json_default) + "\n")
            count += 1
    return count


def read_metrics_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a metrics JSONL file back into records."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
