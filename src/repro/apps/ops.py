"""Operations applications yield to the simulated machine.

The vocabulary deliberately mirrors the ANL PARMACS macros the paper's
programs were written with (§1): shared reads/writes, lock
acquire/release, and barriers, plus explicit compute time and the
unsynchronized bound accesses TSP needs.

``Read``/``Write`` are *block* operations over a byte range of a named
region.  Machine models resolve them at their natural granularity —
cache lines for hardware, pages for the DSM — which is what makes the
paper's problem sizes tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Compute:
    """Pure processor work, in cycles (no shared-memory traffic)."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"compute cycles must be >= 0: {self.cycles}")


@dataclass(frozen=True)
class Read:
    """Read ``nbytes`` of shared data at ``offset`` within ``region``."""

    region: str
    offset: int
    nbytes: int


@dataclass(frozen=True)
class Write:
    """Write ``nbytes`` at ``offset``; ``changed_bytes`` of them differ.

    ``changed_bytes`` defaults to ``nbytes`` (every byte assumed new);
    applications that overwrite data with mostly unchanged values (SOR
    early iterations) pass the true count so the DSM's diffs stay
    small while hardware still moves whole lines.
    """

    region: str
    offset: int
    nbytes: int
    changed_bytes: int = -1

    def __post_init__(self) -> None:
        if self.changed_bytes < 0:
            object.__setattr__(self, "changed_bytes", self.nbytes)
        if self.changed_bytes > self.nbytes:
            raise ValueError(
                f"changed_bytes ({self.changed_bytes}) exceeds nbytes "
                f"({self.nbytes})")


@dataclass(frozen=True)
class Acquire:
    """Acquire a lock (a release-consistency acquire access)."""

    lock: int


@dataclass(frozen=True)
class Release:
    """Release a lock (a release-consistency release access)."""

    lock: int


@dataclass(frozen=True)
class Barrier:
    """Global barrier across all processors."""

    barrier_id: int = 0


@dataclass(frozen=True)
class ReadBound:
    """Read the unsynchronized shared bound; yields back its value."""

    name: str = "bound"


@dataclass(frozen=True)
class UpdateBound:
    """Commit a new bound value (caller must hold the bound's lock).

    Yields back True when the value improved the committed best.
    """

    value: float
    name: str = "bound"
