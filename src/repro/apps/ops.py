"""Operations applications yield to the simulated machine.

The vocabulary deliberately mirrors the ANL PARMACS macros the paper's
programs were written with (§1): shared reads/writes, lock
acquire/release, and barriers, plus explicit compute time and the
unsynchronized bound accesses TSP needs.

``Read``/``Write`` are *block* operations over a byte range of a named
region.  Machine models resolve them at their natural granularity —
cache lines for hardware, pages for the DSM — which is what makes the
paper's problem sizes tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Tuple, Union


@dataclass(frozen=True)
class Compute:
    """Pure processor work, in cycles (no shared-memory traffic)."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"compute cycles must be >= 0: {self.cycles}")


@dataclass(frozen=True)
class Read:
    """Read ``nbytes`` of shared data at ``offset`` within ``region``."""

    region: str
    offset: int
    nbytes: int


@dataclass(frozen=True)
class Write:
    """Write ``nbytes`` at ``offset``; ``changed_bytes`` of them differ.

    ``changed_bytes`` defaults to ``nbytes`` (every byte assumed new);
    applications that overwrite data with mostly unchanged values (SOR
    early iterations) pass the true count so the DSM's diffs stay
    small while hardware still moves whole lines.
    """

    region: str
    offset: int
    nbytes: int
    changed_bytes: int = -1

    def __post_init__(self) -> None:
        if self.changed_bytes < 0:
            object.__setattr__(self, "changed_bytes", self.nbytes)
        if self.changed_bytes > self.nbytes:
            raise ValueError(
                f"changed_bytes ({self.changed_bytes}) exceeds nbytes "
                f"({self.nbytes})")


@dataclass(frozen=True)
class Acquire:
    """Acquire a lock (a release-consistency acquire access)."""

    lock: int


@dataclass(frozen=True)
class Release:
    """Release a lock (a release-consistency release access)."""

    lock: int


@dataclass(frozen=True)
class Barrier:
    """Global barrier across all processors."""

    barrier_id: int = 0


@dataclass(frozen=True)
class ReadBound:
    """Read the unsynchronized shared bound; yields back its value."""

    name: str = "bound"


@dataclass(frozen=True)
class UpdateBound:
    """Commit a new bound value (caller must hold the bound's lock).

    Yields back True when the value improved the committed best.
    """

    value: float
    name: str = "bound"


#: Operations that may be members of an :class:`OpBlock`.  All three
#: are *result-free* (the machine resumes the program with ``None``)
#: and synchronization-free, which is what makes a run of them safe to
#: issue as one chunk: the program cannot branch on anything between
#: the members, and data-race freedom (the LRC programming contract
#: every app already obeys) guarantees no other processor's outcome
#: depends on interleaving with the middle of the run.
FUSIBLE = (Compute, Read, Write)

Fusible = Union[Compute, Read, Write]


@dataclass(frozen=True)
class OpBlock:
    """A fused run of consecutive ``Compute``/``Read``/``Write`` ops.

    Applications yield one ``OpBlock`` where they used to yield its
    members one at a time; the scheduler issues the members in order
    without a generator round-trip per member.  A block is *scheduling
    sugar, not timing semantics*: every member still resolves through
    the machine's normal read/write/compute paths at its natural
    granularity (cache lines, pages), completes through the event
    heap at exactly the time per-op issue would, and observes the
    same resource contention — so a fused run is cycle-for-cycle
    identical to its unrolled form (pinned by ``tests/test_fused.py``
    and fuzzed with randomized chunk boundaries).
    """

    ops: Tuple[Fusible, ...]

    def __init__(self, ops: Iterable[Fusible]) -> None:
        members = tuple(ops)
        if not members:
            raise ValueError("OpBlock needs at least one operation")
        for op in members:
            if not isinstance(op, FUSIBLE):
                raise ValueError(
                    f"only Compute/Read/Write can be fused, got {op!r}")
        object.__setattr__(self, "ops", members)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Fusible]:
        return iter(self.ops)


def _advance(gen: Any, value: Any) -> Any:
    """Resume ``gen`` with ``value`` (``next`` for plain iterators)."""
    send = getattr(gen, "send", None)
    if send is not None:
        return send(value)
    return next(gen)


def fuse(stream: Iterable[Any]) -> Iterator[Any]:
    """Collapse consecutive fusible operations of ``stream`` into blocks.

    Synchronization and result-bearing operations pass through
    unchanged — with their yielded-back values forwarded, so the
    wrapper is transparent to programs that react to ``ReadBound`` /
    ``UpdateBound`` results.  Runs of two or more ``Compute`` /
    ``Read`` / ``Write`` ops become one :class:`OpBlock` (a lone
    fusible op stays bare).  Fusible members are pulled ahead with
    ``None`` results, exactly what per-op issue would have sent; the
    program's own Python side effects between members therefore run
    slightly earlier in *wall-clock* order, which data-race freedom
    makes unobservable in simulated outcomes.
    """
    gen = iter(stream)
    run: List[Fusible] = []
    value: Any = None
    while True:
        try:
            op = _advance(gen, value)
        except StopIteration:
            break
        value = None
        if isinstance(op, FUSIBLE):
            run.append(op)
            continue
        if run:
            yield run[0] if len(run) == 1 else OpBlock(run)
            run = []
        value = yield op
    if run:
        yield run[0] if len(run) == 1 else OpBlock(run)


def unfuse(stream: Iterable[Any]) -> Iterator[Any]:
    """Expand every :class:`OpBlock` of ``stream`` back into members.

    The inverse view of :func:`fuse` (values yielded back by
    non-member operations are forwarded); the differential harness
    runs programs through this to pin fused == per-op behaviour.
    """
    gen = iter(stream)
    value: Any = None
    while True:
        try:
            op = _advance(gen, value)
        except StopIteration:
            break
        value = None
        if isinstance(op, OpBlock):
            for member in op.ops:
                yield member
        else:
            value = yield op
