"""Synthetic genetic-linkage workload standing in for ILINK (§2.3).

Real ILINK inputs (the CLP and BAD pedigree datasets) are proprietary
clinical data, so this module generates a workload with the traffic
and load-balance character the paper reports instead (see DESIGN.md's
substitution table):

* an outer loop of likelihood-evaluation *iterations*, each ending in
  a barrier;
* per iteration, a fixed set of pedigree-traversal *work units* whose
  costs are drawn from a lognormal distribution and assigned
  round-robin — the inherent load imbalance the paper attributes to
  the algorithm (§2.4.1);
* each processor recomputes its slice of a shared genotype-probability
  array, which every processor reads back at the start of the next
  iteration — the communication volume knob.

The probability arrays are double-buffered (read the previous
iteration's buffer, write the next), so the computation is
data-race-free and produces identical values on every machine model.

Preset ``clp`` (best speedup: coarse units, small array, mild
imbalance) and preset ``bad`` (worst: fine grain, larger array, strong
imbalance) bracket the paper's input range.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.apps.base import AppContext, Application, Program, chunk_ranges
from repro.apps import ops
from repro.errors import ConfigurationError

FLOAT = np.float64

#: Processor cycles per unit of pedigree-traversal weight.
CYCLES_PER_WEIGHT = 400

PRESETS = {
    # iterations, total work units (fixed problem size), mean unit
    # weight, lognormal sigma, genotype-array size
    "clp": dict(iterations=8, units_total=48, mean_weight=26000.0,
                sigma=0.30, genarray_kbytes=64),
    "bad": dict(iterations=24, units_total=24, mean_weight=8300.0,
                sigma=0.75, genarray_kbytes=128),
}


class IlinkApp(Application):
    """Parameterized synthetic ILINK; use presets ``clp`` / ``bad``."""

    name = "ilink"

    def __init__(self, preset: str = "clp", *, iterations: int = None,
                 units_total: int = None, mean_weight: float = None,
                 sigma: float = None, genarray_kbytes: int = None) -> None:
        if preset not in PRESETS:
            raise ConfigurationError(
                f"unknown ILINK preset '{preset}'; choose from "
                f"{sorted(PRESETS)}")
        config = dict(PRESETS[preset])
        overrides = dict(iterations=iterations, units_total=units_total,
                         mean_weight=mean_weight, sigma=sigma,
                         genarray_kbytes=genarray_kbytes)
        for key, value in overrides.items():
            if value is not None:
                config[key] = value
        self.preset = preset
        self.iterations = config["iterations"]
        self.units_total = config["units_total"]
        self.mean_weight = config["mean_weight"]
        self.sigma = config["sigma"]
        self.genarray_bytes = config["genarray_kbytes"] * 1024
        self.name = f"ilink-{preset}"

    # ------------------------------------------------------------------
    def regions(self, nprocs: int) -> Dict[str, int]:
        """Two genarray banks, ping-ponged between iterations."""
        return {"gen_a": self.genarray_bytes, "gen_b": self.genarray_bytes}

    def init_data(self, ctx: AppContext) -> None:
        """Uniform probabilities (the sparsity comes from the walk)."""
        for region in ("gen_a", "gen_b"):
            gen = ctx.store.view(region, FLOAT)
            gen[:] = 1.0 / max(1, gen.size)

    def _weights(self, ctx: AppContext, iteration: int) -> np.ndarray:
        """Per-unit costs for one iteration (same on every machine,
        every processor count: the problem size is fixed)."""
        rng = ctx.rng(stream=1000 + iteration)
        raw = rng.lognormal(mean=0.0, sigma=self.sigma,
                            size=self.units_total)
        return raw * self.mean_weight

    # ------------------------------------------------------------------
    def programs(self, ctx: AppContext) -> List[Program]:
        """One statically-partitioned update worker per processor."""
        return [self._worker(ctx, p) for p in range(ctx.nprocs)]

    def _worker(self, ctx: AppContext, proc: int) -> Program:
        size = self.genarray_bytes // 8
        slices = chunk_ranges(size, ctx.nprocs)
        mine = slices[proc]
        my_off = mine.start * 8
        my_bytes = len(mine) * 8

        for it in range(self.iterations):
            src = "gen_a" if it % 2 == 0 else "gen_b"
            dst = "gen_b" if it % 2 == 0 else "gen_a"

            # Read the whole genotype array from the last iteration.
            yield ops.Read(src, 0, self.genarray_bytes)
            snapshot = ctx.store.view(src, FLOAT).copy()

            # Round-robin work units; lognormal weights make the
            # per-processor sums unequal (inherent load imbalance).
            weights = self._weights(ctx, it)
            my_weight = float(weights[proc::ctx.nprocs].sum())
            yield ops.Compute(int(my_weight * CYCLES_PER_WEIGHT))

            if len(mine):
                # Recompute my slice of the genotype probabilities: a
                # damped mixing update (a stand-in for peeling).
                neighbour = np.roll(snapshot, 1)[mine.start:mine.stop]
                new_vals = (0.6 * snapshot[mine.start:mine.stop] +
                            0.4 * neighbour + 1e-9 * (it + 1))
                changed = ctx.store.count_changed_bytes(dst, my_off,
                                                        new_vals)
                ctx.store.write(dst, my_off, new_vals)
                yield ops.Write(dst, my_off, my_bytes,
                                changed_bytes=changed)
            yield ops.Barrier()

    # ------------------------------------------------------------------
    def verify(self, ctx: AppContext) -> Dict[str, float]:
        """Checksum of the bank holding the final iteration."""
        final = "gen_a" if self.iterations % 2 == 0 else "gen_b"
        gen = ctx.store.view(final, FLOAT)
        out = {"checksum": float(gen.sum())}
        assert np.isfinite(gen).all(), "genarray must stay finite"
        return out
