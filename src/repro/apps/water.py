"""Water and M-Water: molecular dynamics with two locking styles.

A SPLASH-Water-shaped n-body code (§2.3): per time step, every
processor computes pairwise interactions for its molecules against the
following half of the molecule array, accumulating forces, then
integrates positions of its own molecules.  Two barrier-separated
phases per step.

The two variants differ only in how force *updates* to other
processors' molecules are synchronized:

* **Water** — a lock around every single update of a molecule record
  (lock acquires = number of updates), the original SPLASH discipline
  that drowns TreadMarks in messages (§2.4.4).
* **M-Water** — each processor accumulates its contributions locally
  and applies them once per touched molecule at the end of the force
  phase (lock acquires = number of touched molecules), the paper's
  modification.

Molecule records are padded to a realistic SPLASH-like stride so they
spread over pages the way the original's ~600-byte records did.
Force physics is a simple soft inverse-square interaction — the paper's
results depend on the synchronization and sharing pattern, not the
potential — and every machine model produces bit-identical trajectories
because updates are serialized by the (simulated) molecule locks.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List

import numpy as np

from repro.apps.base import AppContext, Application, Program, chunk_ranges
from repro.apps import ops
from repro.errors import ConfigurationError

#: Bytes per molecule record (SPLASH Water's record is ~672 bytes; we
#: round to a power of two so records never straddle lines unevenly).
RECORD_BYTES = 512
DOUBLES_PER_RECORD = RECORD_BYTES // 8

# Record layout (field offsets in doubles): position, velocity, force.
POS_OFF = 0
VEL_OFF = 3
FORCE_OFF = 6

#: Molecule locks start here (0..9 reserved for app-global locks).
MOL_LOCK_BASE = 100

#: SPLASH Water evaluates nine site-site interactions plus an erfc per
#: molecule pair — thousands of cycles of real floating-point work.
CYCLES_PER_PAIR = 3000
CYCLES_PER_INTEGRATE = 500

GRAVITY_SOFTENING = 4.0


class WaterApp(Application):
    """n-body molecular dynamics; ``modified=True`` selects M-Water."""

    name = "water"

    def __init__(self, molecules: int = 64, steps: int = 2, *,
                 modified: bool = False, box: float = 30.0) -> None:
        if molecules < 2:
            raise ConfigurationError(
                f"need at least 2 molecules: {molecules}")
        if steps < 1:
            raise ConfigurationError(f"need at least 1 step: {steps}")
        self.molecules = molecules
        self.steps = steps
        self.modified = modified
        self.box = box
        self.name = ("m-water" if modified else "water") + f"-{molecules}"

    # ------------------------------------------------------------------
    def regions(self, nprocs: int) -> Dict[str, int]:
        """One molecule-record array (position, velocity, forces)."""
        return {"mol": self.molecules * RECORD_BYTES}

    def _records(self, ctx: AppContext) -> np.ndarray:
        view = ctx.store.view("mol", np.float64)
        return view[: self.molecules * DOUBLES_PER_RECORD].reshape(
            self.molecules, DOUBLES_PER_RECORD)

    def init_data(self, ctx: AppContext) -> None:
        """Random positions in the box, small random velocities."""
        rng = np.random.default_rng(self.molecules * 7919 + 13)
        rec = self._records(ctx)
        rec.fill(0.0)
        rec[:, POS_OFF:POS_OFF + 3] = rng.random(
            (self.molecules, 3)) * self.box
        rec[:, VEL_OFF:VEL_OFF + 3] = (rng.random(
            (self.molecules, 3)) - 0.5) * 0.1

    # ------------------------------------------------------------------
    def _pairs_of(self, proc: int, nprocs: int) -> List:
        """The half-sweep pair set owned by ``proc``.

        Molecule i interacts with the next n/2 molecules (mod n); the
        owner of i computes those pairs — every unordered pair is
        handled exactly once.
        """
        n = self.molecules
        owned = chunk_ranges(n, nprocs)[proc]
        half = n // 2
        pairs = []
        for i in owned:
            for d in range(1, half + 1):
                j = (i + d) % n
                if n % 2 == 0 and d == half and i >= n // 2:
                    continue  # avoid double-counting the diameter pair
                pairs.append((i, j))
        return pairs

    @staticmethod
    def _force(pi, pj) -> tuple:
        dx = pi[0] - pj[0]
        dy = pi[1] - pj[1]
        dz = pi[2] - pj[2]
        r2 = dx * dx + dy * dy + dz * dz + GRAVITY_SOFTENING
        inv = 1.0 / (r2 * math.sqrt(r2))
        return (dx * inv, dy * inv, dz * inv)

    # ------------------------------------------------------------------
    def programs(self, ctx: AppContext) -> List[Program]:
        """One force-compute/update worker per processor."""
        return [self._worker(ctx, p) for p in range(ctx.nprocs)]

    def _mol_write(self, mol: int) -> ops.Write:
        """A 24-byte force update of one molecule record."""
        return ops.Write("mol", mol * RECORD_BYTES + FORCE_OFF * 8, 24)

    def _worker(self, ctx: AppContext, proc: int) -> Program:
        rec = self._records(ctx)
        owned = chunk_ranges(self.molecules, ctx.nprocs)[proc]
        pairs = self._pairs_of(proc, ctx.nprocs)
        region_bytes = self.molecules * RECORD_BYTES

        # Parallel initialization: each processor touches its own
        # molecules first, exactly as SPLASH codes do so that
        # first-touch page placement lands each record at its owner.
        if len(owned):
            yield ops.Read("mol", owned.start * RECORD_BYTES,
                           len(owned) * RECORD_BYTES)
        yield ops.Barrier(2)

        for _step in range(self.steps):
            # -- force phase -----------------------------------------
            # Each processor reads (the positions of) essentially the
            # whole molecule array: "each processor accesses a
            # majority of the shared data during each step" (§3.2.3).
            yield ops.Read("mol", 0, region_bytes)

            if self.modified:
                yield from self._force_phase_mwater(ctx, rec, pairs)
            else:
                yield from self._force_phase_water(ctx, rec, pairs)
            yield ops.Barrier(0)

            # -- integrate own molecules ------------------------------
            for i in owned:
                pos = rec[i, POS_OFF:POS_OFF + 3]
                vel = rec[i, VEL_OFF:VEL_OFF + 3]
                frc = rec[i, FORCE_OFF:FORCE_OFF + 3]
                vel += 0.001 * frc
                pos += vel
                frc[:] = 0.0
            if len(owned):
                yield ops.Compute(len(owned) * CYCLES_PER_INTEGRATE)
                yield ops.Write("mol", owned.start * RECORD_BYTES,
                                len(owned) * RECORD_BYTES)
            yield ops.Barrier(1)

    def _force_phase_water(self, ctx: AppContext, rec: np.ndarray,
                           pairs: List) -> Program:
        """Original Water: one lock acquisition per force update."""
        for i, j in pairs:
            fx, fy, fz = self._force(rec[i, POS_OFF:POS_OFF + 3],
                                     rec[j, POS_OFF:POS_OFF + 3])
            yield ops.Compute(CYCLES_PER_PAIR)
            for mol, sign in ((i, 1.0), (j, -1.0)):
                yield ops.Acquire(MOL_LOCK_BASE + mol)
                rec[mol, FORCE_OFF] += sign * fx
                rec[mol, FORCE_OFF + 1] += sign * fy
                rec[mol, FORCE_OFF + 2] += sign * fz
                yield self._mol_write(mol)
                yield ops.Release(MOL_LOCK_BASE + mol)

    def _force_phase_mwater(self, ctx: AppContext, rec: np.ndarray,
                            pairs: List) -> Program:
        """M-Water: accumulate locally, one locked update per molecule."""
        local: Dict[int, List[float]] = {}
        for i, j in pairs:
            fx, fy, fz = self._force(rec[i, POS_OFF:POS_OFF + 3],
                                     rec[j, POS_OFF:POS_OFF + 3])
            for mol, sign in ((i, 1.0), (j, -1.0)):
                acc = local.setdefault(mol, [0.0, 0.0, 0.0])
                acc[0] += sign * fx
                acc[1] += sign * fy
                acc[2] += sign * fz
        yield ops.Compute(len(pairs) * CYCLES_PER_PAIR)
        # Apply updates starting from this processor's own molecules:
        # processors sweep the molecule array out of phase, so the
        # per-molecule locks do not convoy.
        ordered = sorted(local)
        if ordered and pairs:
            start = bisect.bisect_left(ordered, pairs[0][0])
            ordered = ordered[start:] + ordered[:start]
        for mol in ordered:
            acc = local[mol]
            yield ops.Acquire(MOL_LOCK_BASE + mol)
            rec[mol, FORCE_OFF] += acc[0]
            rec[mol, FORCE_OFF + 1] += acc[1]
            rec[mol, FORCE_OFF + 2] += acc[2]
            yield self._mol_write(mol)
            yield ops.Release(MOL_LOCK_BASE + mol)

    # ------------------------------------------------------------------
    def verify(self, ctx: AppContext) -> Dict[str, float]:
        """Position/velocity checksums; everything must stay finite."""
        rec = self._records(ctx)
        pos = rec[:, POS_OFF:POS_OFF + 3]
        vel = rec[:, VEL_OFF:VEL_OFF + 3]
        assert np.isfinite(pos).all() and np.isfinite(vel).all()
        return {
            "pos_checksum": float(pos.sum()),
            "vel_checksum": float(vel.sum()),
            "kinetic": float(0.5 * (vel ** 2).sum()),
        }
