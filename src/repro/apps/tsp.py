"""Branch-and-bound travelling salesman (§2.3, §2.4.3).

A shared queue of partial tours is guarded by a lock; each worker pops
a partial tour, extends it, and pushes the children back, solving
small-enough subproblems to completion locally.  The global
minimum-tour bound is updated under its own lock but *read without
synchronization*, so the value a worker prunes against is whatever its
machine's consistency model makes visible (``ops.ReadBound``).  Stale
bounds prune less and cause redundant expansions — the paper's
explanation for TSP's TreadMarks/SGI gap, and the effect its eager
release experiment removes.

Full 18/19-city instances are far too large for a pure-Python
simulation, so the presets scale the instance down (see DESIGN.md):
``tsp18``-equivalent uses 12 cities, ``tsp19``-equivalent 13.  The
branch-and-bound structure, queue discipline, and bound-staleness
sensitivity — the properties the paper measures — are unchanged.

The search explores the same tree regardless of machine timing *given
the same pruning decisions*; the final optimum is always exact (every
completed tour is checked against the committed bound), only the
amount of redundant work varies.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.base import AppContext, Application, Program
from repro.apps import ops
from repro.errors import ConfigurationError

QUEUE_LOCK = 0
BOUND_LOCK = 1

#: Shared queue slot size: tour prefix + length (int32 fields).
SLOT_BYTES = 128

#: Cycles charged at each visited search node.  Deliberately larger
#: than a literal count of the per-node instructions: the simulated
#: instances are scaled down from the paper's 18/19 cities (whose
#: trees have orders of magnitude more nodes), and this constant
#: restores the paper's compute-to-queue-access ratio (see DESIGN.md).
CYCLES_PER_EXPANSION = 10_000

#: Idle workers re-poll the queue with exponential backoff in this
#: range, so a straggler solving a deep leaf is not drowned in
#: lock-token ping-pong from the other seven processors.
IDLE_BACKOFF_MIN_CYCLES = 20000
IDLE_BACKOFF_MAX_CYCLES = 1_000_000

#: How many search nodes a worker expands between re-reads of the
#: unsynchronized global bound (§2.4.3).
BOUND_POLL_EXPANSIONS = 200

Tour = Tuple[Tuple[int, ...], float]

#: Distance tables as plain Python lists, keyed by (cities, seed).
#: The bound computation is the simulation's hottest Python code;
#: indexing numpy scalars out of tiny arrays costs several times the
#: arithmetic itself.  ``ndarray.tolist`` is value-exact and numpy's
#: sequential reduce over arrays this small matches left-to-right
#: float accumulation bit-for-bit, so swapping the tables changes no
#: pruning decision and no simulated cycle (pinned by the goldens).
_TABLE_CACHE: Dict[Tuple[int, int],
                   Tuple[List[List[float]], List[float]]] = {}

#: Memoized sequential re-solves, same key.  ``verify`` needs the
#: sequential optimum after every run of an instance, and the
#: depth-first solve is a pure function of the distance matrix — a
#: sweep over processor counts re-derives it identically each time.
_SEQ_SOLVE_CACHE: Dict[Tuple[int, int],
                       Tuple[int, float, Tuple[int, ...]]] = {}


class TspApp(Application):
    """Branch-and-bound TSP over random Euclidean cities."""

    name = "tsp"

    def __init__(self, cities: int = 12, *, leaf_cutoff: int = 7,
                 queue_capacity: int = 4096, coord_seed: int = 7) -> None:
        if cities < 4:
            raise ConfigurationError(f"need at least 4 cities: {cities}")
        if leaf_cutoff < 2:
            raise ConfigurationError(
                f"leaf_cutoff must be >= 2: {leaf_cutoff}")
        self.cities = cities
        self.leaf_cutoff = leaf_cutoff
        self.queue_capacity = queue_capacity
        self.coord_seed = coord_seed
        self.name = f"tsp-{cities}"

    # ------------------------------------------------------------------
    def regions(self, nprocs: int) -> Dict[str, int]:
        """Shared tour queue, best-bound word, and distance table."""
        return {
            "tsp_queue": self.queue_capacity * SLOT_BYTES,
            "tsp_bound": 4096,
            "tsp_dist": self.cities * self.cities * 8,
        }

    def _distances(self) -> np.ndarray:
        rng = np.random.default_rng(self.coord_seed)
        pts = rng.random((self.cities, 2)) * 100.0
        diff = pts[:, None, :] - pts[None, :, :]
        return np.sqrt((diff ** 2).sum(axis=2))

    def init_data(self, ctx: AppContext) -> None:
        """Load the distance table; seed the queue with the root tour."""
        dist = self._distances()
        ctx.store.view("tsp_dist", np.float64)[: dist.size] = dist.ravel()
        # Shared run state that models the queue contents; all access
        # is serialized by the simulated queue lock.
        ctx.params["_queue"] = [((0,), 0.0)]
        ctx.params["_active"] = 0
        # Which workers currently hold a popped-but-unretired item;
        # crash recovery uses this to keep the active count honest
        # when a worker dies mid-item (see on_node_failed).
        ctx.params["_working"] = [False] * ctx.nprocs
        ctx.params["_expansions"] = [0] * ctx.nprocs
        ctx.params["_best_tour"] = None

    # ------------------------------------------------------------------
    def _min_edges(self, dist: np.ndarray) -> np.ndarray:
        masked = dist.copy()
        np.fill_diagonal(masked, np.inf)
        return masked.min(axis=1)

    def _tables(self) -> Tuple[List[List[float]], List[float]]:
        """The (distance matrix, min-edge vector) as Python lists."""
        key = (self.cities, self.coord_seed)
        tables = _TABLE_CACHE.get(key)
        if tables is None:
            dist = self._distances()
            tables = (dist.tolist(), self._min_edges(dist).tolist())
            _TABLE_CACHE[key] = tables
        return tables

    def _lower_bound(self, dist: List[List[float]],
                     min_edge: List[float],
                     prefix: Tuple[int, ...], length: float) -> float:
        # Accumulates min_edge over the cities outside ``prefix`` in
        # ascending order — the exact addition order of the numpy
        # fancy-index + sequential-reduce formulation this replaces.
        total = 0.0
        free = 0
        for c in range(self.cities):
            if c not in prefix:
                total += min_edge[c]
                free += 1
        if not free:
            return length + dist[prefix[-1]][prefix[0]]
        return length + total + min_edge[prefix[0]]

    def _solve_local(self, dist: List[List[float]],
                     min_edge: List[float],
                     prefix: Tuple[int, ...], length: float,
                     bound: float) -> Tuple[int, float, Tuple[int, ...]]:
        """Depth-first solve of a small subproblem against ``bound``.

        Returns (expansions, best length found, best tour found).
        """
        expansions = 0
        best = bound
        best_tour: Tuple[int, ...] = ()
        stack = [(prefix, length)]
        while stack:
            pfx, plen = stack.pop()
            expansions += 1
            if len(pfx) == self.cities:
                total = plen + dist[pfx[-1]][pfx[0]]
                if total < best:
                    best = total
                    best_tour = pfx
                continue
            if self._lower_bound(dist, min_edge, pfx, plen) >= best:
                continue
            last = pfx[-1]
            row = dist[last]
            for city in range(self.cities):
                if city in pfx:
                    continue
                nlen = plen + row[city]
                child = pfx + (city,)
                if self._lower_bound(dist, min_edge, child, nlen) < best:
                    stack.append((child, nlen))
        return expansions, best, best_tour

    # ------------------------------------------------------------------
    def programs(self, ctx: AppContext) -> List[Program]:
        """One branch-and-bound worker per processor."""
        return [self._worker(ctx, p) for p in range(ctx.nprocs)]

    def _worker(self, ctx: AppContext, proc: int) -> Program:
        dist, min_edge = self._tables()
        queue: List[Tour] = ctx.params["_queue"]

        working = False
        backoff = IDLE_BACKOFF_MIN_CYCLES
        while True:
            # ---- pop one partial tour from the shared queue --------
            # The same critical section also retires the previous item
            # (decrements the active-worker count), so each unit of
            # work costs one queue-lock round trip.
            yield ops.Acquire(QUEUE_LOCK)
            if working:
                ctx.params["_active"] -= 1
                ctx.params["_working"][proc] = False
                working = False
            if not queue:
                idle = ctx.params["_active"] == 0
                yield ops.Release(QUEUE_LOCK)
                if idle:
                    break
                yield ops.Compute(backoff)
                backoff = min(backoff * 2, IDLE_BACKOFF_MAX_CYCLES)
                continue
            backoff = IDLE_BACKOFF_MIN_CYCLES
            prefix, length = queue.pop()
            ctx.params["_active"] += 1
            ctx.params["_working"][proc] = True
            working = True
            slot = len(queue) % self.queue_capacity
            yield ops.Read("tsp_queue", slot * SLOT_BYTES, SLOT_BYTES)
            yield ops.Release(QUEUE_LOCK)

            visible = yield ops.ReadBound()
            pruned = self._lower_bound(dist, min_edge, prefix,
                                       length) >= visible
            free = self.cities - len(prefix)

            if pruned:
                ctx.params["_expansions"][proc] += 1
                yield ops.Compute(CYCLES_PER_EXPANSION)
            elif free <= self.leaf_cutoff:
                yield from self._finish_subproblem(
                    ctx, proc, dist, min_edge, prefix, length, visible)
            else:
                yield from self._expand(ctx, proc, dist, min_edge, prefix,
                                        length, visible, queue)

        ctx.output[f"expansions_p{proc}"] = ctx.params["_expansions"][proc]

    def _expand(self, ctx: AppContext, proc: int, dist, min_edge, prefix,
                length, visible, queue) -> Program:
        """Push every viable child of ``prefix`` back to the queue."""
        last = prefix[-1]
        row = dist[last]
        children = []
        for city in range(self.cities):
            if city in prefix:
                continue
            nlen = length + row[city]
            child = prefix + (city,)
            if self._lower_bound(dist, min_edge, child, nlen) < visible:
                children.append((child, nlen))
        ctx.params["_expansions"][proc] += max(1, len(children))
        yield ops.Compute(CYCLES_PER_EXPANSION * max(1, len(children)))
        if children:
            yield ops.Acquire(QUEUE_LOCK)
            writes = []
            for child in children:
                queue.append(child)
                slot = (len(queue) - 1) % self.queue_capacity
                writes.append(
                    ops.Write("tsp_queue", slot * SLOT_BYTES, SLOT_BYTES))
            # The pushes form a synchronization-free run inside the
            # critical section: issue them as one chunk.
            yield writes[0] if len(writes) == 1 else ops.OpBlock(writes)
            yield ops.Release(QUEUE_LOCK)

    def _finish_subproblem(self, ctx: AppContext, proc: int, dist,
                           min_edge, prefix, length,
                           visible) -> Program:
        """Depth-first solve of a leaf subproblem, in chunks.

        Every ``BOUND_POLL_EXPANSIONS`` search nodes the worker
        re-reads the (unsynchronized) global bound and commits any
        improvement it has found.  On hardware the re-read returns the
        freshest committed value; under lazy release consistency it
        returns a value no newer than the worker's last sync point, so
        a lazy worker prunes against a staler bound and expands
        redundant nodes — the §2.4.3 effect.
        """
        best = visible
        pending: float = math.inf
        stack = [(prefix, length)]
        chunk = 0
        while True:
            while stack and chunk < BOUND_POLL_EXPANSIONS:
                pfx, plen = stack.pop()
                chunk += 1
                if len(pfx) == self.cities:
                    total = plen + dist[pfx[-1]][pfx[0]]
                    if total < best:
                        best = total
                        pending = total
                        ctx.params.setdefault("_tours", {})[total] = pfx
                    continue
                if self._lower_bound(dist, min_edge, pfx, plen) >= best:
                    continue
                last = pfx[-1]
                row = dist[last]
                for city in range(self.cities):
                    if city in pfx:
                        continue
                    nlen = plen + row[city]
                    child = pfx + (city,)
                    if self._lower_bound(dist, min_edge, child,
                                         nlen) < best:
                        stack.append((child, nlen))

            ctx.params["_expansions"][proc] += chunk
            yield ops.Compute(chunk * CYCLES_PER_EXPANSION)
            chunk = 0
            if pending < math.inf:
                yield ops.Acquire(BOUND_LOCK)
                improved = yield ops.UpdateBound(float(pending))
                if improved:
                    ctx.params["_best_tour"] = \
                        ctx.params["_tours"][pending]
                    yield ops.Write("tsp_bound", 0, 8)
                yield ops.Release(BOUND_LOCK)
                pending = math.inf
            if not stack:
                break
            fresh = yield ops.ReadBound()
            best = min(best, fresh)

    # ------------------------------------------------------------------
    def on_node_failed(self, ctx: AppContext, procs) -> None:
        """Retire dead workers' in-flight queue items.

        A worker that crashes between popping a partial tour and
        retiring it takes the subtree with it (crash-stop loses work —
        ``verify`` accepts that), but its increment of the shared
        active-worker count must not leak: the survivors' termination
        test is "queue empty and nobody active", so a leaked count
        turns completion into an infinite idle-poll loop.
        """
        working = ctx.params.get("_working")
        if not working:
            return
        for p in procs:
            if p < len(working) and working[p]:
                working[p] = False
                ctx.params["_active"] -= 1

    # ------------------------------------------------------------------
    def verify(self, ctx: AppContext) -> Dict[str, object]:
        """Check the parallel optimum against a sequential solve.

        A degraded run (``_failed_nodes`` set by crash recovery) gets
        relaxed acceptance: a crashed worker takes its unexplored
        subtrees with it, so the survivors' best tour only has to be a
        *valid* tour no better than the true optimum — crash-stop
        failures lose work, they must never invent a shorter tour.
        """
        dist, min_edge = self._tables()
        key = (self.cities, self.coord_seed)
        solved = _SEQ_SOLVE_CACHE.get(key)
        if solved is None:
            solved = self._solve_local(dist, min_edge, (0,), 0.0, math.inf)
            _SEQ_SOLVE_CACHE[key] = solved
        expansions, best, tour = solved
        degraded = bool(ctx.params.get("_failed_nodes"))
        best_tour = ctx.params.get("_best_tour")
        if best_tour is None:
            assert degraded, "parallel run found no tour"
            return {
                "optimal_length": float(best),
                "sequential_expansions": expansions,
                "parallel_expansions": sum(ctx.params["_expansions"]),
            }
        assert sorted(best_tour) == list(range(len(best_tour))), (
            "parallel best tour is not a permutation of the cities")
        par_len = sum(dist[best_tour[i]][best_tour[(i + 1) % len(best_tour)]]
                      for i in range(len(best_tour)))
        if degraded:
            assert par_len >= best - 1e-6, (
                f"degraded run produced an impossible tour: {par_len} "
                f"beats the sequential optimum {best}")
        else:
            assert abs(par_len - best) < 1e-6, (
                f"parallel optimum {par_len} != sequential optimum {best}")
        return {
            "optimal_length": float(best),
            "sequential_expansions": expansions,
            "parallel_expansions": sum(
                ctx.params["_expansions"]),
        }
