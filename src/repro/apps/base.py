"""Application base class and per-run context.

An :class:`Application` is a *description* of a workload: its regions,
its initial data, and one generator program per processor.  All run
state lives in the shared store or in generator locals, so one
application instance can be run repeatedly, on any machine, at any
processor count — which is exactly what the speedup experiments do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Iterator, List

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.store import SharedStore

Program = Generator[Any, Any, None]


@dataclass
class AppContext:
    """Everything one run hands its processor programs."""

    store: SharedStore
    nprocs: int
    seed: int = 42
    params: Dict[str, Any] = field(default_factory=dict)
    output: Dict[str, Any] = field(default_factory=dict)

    def rng(self, stream: int = 0) -> np.random.Generator:
        """A deterministic RNG; distinct streams stay independent."""
        return np.random.default_rng((self.seed, stream))


class Application:
    """Base class for workloads; subclasses implement three hooks."""

    #: Short identifier used in reports ("sor", "tsp", ...).
    name: str = "app"

    def regions(self, nprocs: int) -> Dict[str, int]:
        """Named shared regions and their sizes in bytes."""
        raise NotImplementedError

    def init_data(self, ctx: AppContext) -> None:
        """Populate the store's regions before the run (optional)."""

    def programs(self, ctx: AppContext) -> List[Program]:
        """One generator per processor, ``ctx.nprocs`` of them."""
        raise NotImplementedError

    def verify(self, ctx: AppContext) -> Dict[str, Any]:
        """Post-run invariant checks; returns result values (optional).

        Raise :class:`AssertionError` (or return diagnostics) if the
        computation produced wrong answers — timing models must never
        change results for data-race-free programs.
        """
        return {}

    def on_node_failed(self, ctx: AppContext, procs: List[int]) -> None:
        """Crash recovery declared the node owning ``procs`` dead.

        Called once per declared node failure (``repro.recover``),
        after the DSM stack repair.  Applications whose termination
        depends on shared run state that dead workers contribute to —
        an active-worker count, a work-stealing tally — must retire
        the dead procs' share here, or the survivors wait forever for
        work that will never finish.  The default is a no-op:
        barrier-structured programs need nothing (barrier membership
        shrinks in the DSM repair).
        """

    # ------------------------------------------------------------------
    def check_nprocs(self, nprocs: int) -> None:
        """Reject processor counts this program cannot split over."""
        if nprocs < 1:
            raise ConfigurationError(f"nprocs must be >= 1: {nprocs}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} '{self.name}'>"


def chunk_ranges(total: int, parts: int) -> List[range]:
    """Split ``range(total)`` into ``parts`` contiguous chunks.

    Sizes differ by at most one; the canonical band partitioning used
    by SOR and the molecule partitioning used by Water.
    """
    if parts <= 0:
        raise ConfigurationError(f"parts must be >= 1: {parts}")
    base = total // parts
    extra = total % parts
    out: List[range] = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


def interleaved(total: int, parts: int, which: int) -> Iterator[int]:
    """Indices ``which, which+parts, ...`` below ``total`` (round robin)."""
    return iter(range(which, total, parts))
