"""Red-Black Successive Over-Relaxation (§2.3).

The grid is divided into bands of consecutive rows, one per processor;
communication happens across band boundaries, and each of the two
half-iterations (red, black) ends in a barrier.  The computation is
real: every run relaxes an actual numpy grid, and the per-write
``changed_bytes`` counts come from comparing new values against the
store — which is how the paper's §2.4.2 effect appears: with the
default zero interior, early iterations change almost nothing in the
middle of the grid, so TreadMarks diffs stay tiny while hardware
coherence moves whole lines regardless.

``init="random"`` reproduces the paper's control experiment where the
grid is initialized so that every point changes every iteration,
equalizing data movement between the two systems.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.apps.base import AppContext, Application, Program, chunk_ranges
from repro.apps import ops
from repro.errors import ConfigurationError

FLOAT = np.float64
BYTES_PER_CELL = 8

#: Processor cycles per relaxed cell on a 1994 RISC CPU: 3 FP adds,
#: 1 FP multiply, 5 loads + 1 store through the primary cache, loop
#: overhead.  Shared-region traffic is charged separately by the
#: machine models via the Read/Write operations.
CYCLES_PER_CELL = 30


class SorApp(Application):
    """Red-Black SOR over an ``rows x cols`` interior grid."""

    name = "sor"

    def __init__(self, rows: int = 256, cols: int = 256,
                 iterations: int = 10, init: str = "zero",
                 edge_value: float = 1.0) -> None:
        if rows < 2 or cols < 2:
            raise ConfigurationError(
                f"SOR grid must be at least 2x2, got {rows}x{cols}")
        if init not in ("zero", "random"):
            raise ConfigurationError(f"unknown init mode '{init}'")
        self.rows = rows
        self.cols = cols
        self.iterations = iterations
        self.init = init
        self.edge_value = edge_value
        self.name = f"sor-{rows}x{cols}" + ("-alldirty"
                                            if init == "random" else "")

    # ------------------------------------------------------------------
    @property
    def total_rows(self) -> int:
        """Interior rows plus the two fixed boundary rows."""
        return self.rows + 2

    @property
    def row_bytes(self) -> int:
        """Bytes in one grid row — the false-sharing unit of §2.4.2."""
        return self.cols * BYTES_PER_CELL

    def regions(self, nprocs: int) -> Dict[str, int]:
        """A single shared grid, boundary rows included."""
        return {"grid": self.total_rows * self.row_bytes}

    def init_data(self, ctx: AppContext) -> None:
        """Zero interior with hot edges, or a random field."""
        grid = self._grid(ctx)
        if self.init == "zero":
            grid.fill(0.0)
            grid[0, :] = self.edge_value
            grid[-1, :] = self.edge_value
            grid[:, 0] = self.edge_value
            grid[:, -1] = self.edge_value
        else:
            rng = ctx.rng(stream=1)
            grid[:] = rng.random(grid.shape)

    def _grid(self, ctx: AppContext) -> np.ndarray:
        return ctx.store.view("grid", FLOAT)[
            : self.total_rows * self.cols].reshape(self.total_rows,
                                                   self.cols)

    # ------------------------------------------------------------------
    def programs(self, ctx: AppContext) -> List[Program]:
        """One worker per contiguous band of interior rows."""
        bands = chunk_ranges(self.rows, ctx.nprocs)
        return [self._worker(ctx, p, bands[p]) for p in range(ctx.nprocs)]

    def _worker(self, ctx: AppContext, proc: int,
                band: range) -> Program:
        grid = self._grid(ctx)
        # Interior row r lives at grid row r + 1.
        lo = band.start + 1
        hi = band.stop + 1
        band_rows = hi - lo
        if band_rows == 0:
            for _it in range(self.iterations):
                for _phase in range(2):
                    yield ops.Barrier()
            return

        row_bytes = self.row_bytes
        band_off = lo * row_bytes
        band_nbytes = band_rows * row_bytes
        cells_per_phase = band_rows * (self.cols - 2) // 2

        for it in range(self.iterations):
            for phase in range(2):
                # The whole half-iteration — halo fetches, band read,
                # relaxation compute, band write-back — is one
                # synchronization-free run, issued as a single fused
                # chunk per phase.  (The fixed boundary rows are never
                # written, so reading them is free of coherence
                # traffic after warm-up.)  Red-black coloring makes
                # the phase data-race free: the halo cells a band
                # reads are the color its neighbours are *not*
                # updating, so relaxing at chunk-issue time reads the
                # same values per-op issue would have.
                chunk = []
                if lo - 1 >= 1 and proc > 0:
                    chunk.append(
                        ops.Read("grid", (lo - 1) * row_bytes, row_bytes))
                if hi <= self.rows and proc < ctx.nprocs - 1:
                    chunk.append(
                        ops.Read("grid", hi * row_bytes, row_bytes))
                chunk.append(ops.Read("grid", band_off, band_nbytes))

                new_band = self._relax(grid, lo, hi, phase)
                changed = ctx.store.count_changed_bytes(
                    "grid", band_off, new_band)
                ctx.store.write("grid", band_off, new_band)
                chunk.append(ops.Compute(cells_per_phase * CYCLES_PER_CELL))
                chunk.append(ops.Write("grid", band_off, band_nbytes,
                                       changed_bytes=changed))
                yield ops.OpBlock(chunk)
                yield ops.Barrier()

    def _relax(self, grid: np.ndarray, lo: int, hi: int,
               phase: int) -> np.ndarray:
        """One red/black half-iteration over rows ``[lo, hi)``.

        Vectorized over whole parity groups rather than row-by-row;
        every output cell is still ``0.25 * (up + down + left +
        right)`` evaluated elementwise in that exact order, so the
        results are bit-identical to the per-row formulation (the
        checksum goldens pin this).
        """
        band = grid[lo:hi].copy()
        cols = self.cols
        for off in range(2):
            r0 = lo + off
            if r0 >= hi:
                continue
            start = 1 + ((r0 + phase) % 2)
            csel = slice(start, cols - 1, 2)
            band[off:hi - lo:2, csel] = 0.25 * (
                grid[r0 - 1:hi - 1:2, csel] +
                grid[r0 + 1:hi + 1:2, csel] +
                grid[r0:hi:2, start - 1:cols - 2:2] +
                grid[r0:hi:2, start + 1:cols:2])
        return band

    # ------------------------------------------------------------------
    def verify(self, ctx: AppContext) -> Dict[str, float]:
        """Grid checksum plus monotonicity checks for the zero init."""
        grid = self._grid(ctx)
        out = {
            "checksum": float(grid.sum()),
            "interior_max": float(grid[1:-1, 1:-1].max()),
        }
        if self.init == "zero":
            # Relaxation from a hot boundary can never exceed it.
            assert out["interior_max"] <= self.edge_value + 1e-9, out
        return out
