"""Applications: the paper's workload suite on a PARMACS-like API.

Programs are generators that perform *real* computation on the shared
store and yield operations (:mod:`repro.apps.ops`) describing their
shared accesses and synchronization.  The suite matches §2.3:

* :mod:`repro.apps.sor` — Red-Black Successive Over-Relaxation.
* :mod:`repro.apps.tsp` — branch-and-bound travelling salesman with an
  unsynchronized global bound.
* :mod:`repro.apps.water` — n-body molecular dynamics in two locking
  disciplines: per-update locks (Water) and accumulate-then-update
  (M-Water).
* :mod:`repro.apps.ilink` — a synthetic genetic-linkage workload with
  CLP-like and BAD-like presets (see DESIGN.md substitutions).
"""

from repro.apps.base import AppContext, Application
from repro.apps.ilink import IlinkApp
from repro.apps.ops import (Acquire, Barrier, Compute, OpBlock, Read,
                            ReadBound, Release, UpdateBound, Write,
                            fuse, unfuse)
from repro.apps.sor import SorApp
from repro.apps.tsp import TspApp
from repro.apps.water import WaterApp

__all__ = [
    "Application",
    "AppContext",
    "Compute",
    "Read",
    "Write",
    "Acquire",
    "Release",
    "Barrier",
    "ReadBound",
    "UpdateBound",
    "OpBlock",
    "fuse",
    "unfuse",
    "SorApp",
    "TspApp",
    "WaterApp",
    "IlinkApp",
]
