"""The append-only provenance ledger.

Every simulated run — serial, pooled, cache-served, faulted, or
checked — appends exactly one JSON line to a :class:`Ledger`.  Nothing
is ever overwritten or deleted: the ledger is the audit trail that
ties a regenerated figure, a golden speedup pin, or a BENCH file back
to the code version, machine fingerprint, fault plan, and checker
arming that produced it.

Run identity
------------

A record is keyed by its ``run_id``::

    <first 16 hex chars of the cache fingerprint> . <attempt number>

The fingerprint part is the content address from
:func:`repro.harness.cache.run_key` — stable across serial, pooled,
and warm-cache execution by the PR 2 determinism contract — and the
attempt number counts how many times this ledger has seen that
fingerprint, starting at 1.  A cache *hit* is an attempt like any
other: it appends a record with ``path="hit"`` and a ``produced_by``
pointer to the run_id that actually simulated, so lineage is a chain
of run_ids sharing one fingerprint.

Write safety
------------

Appends are one ``write`` of one line on an ``O_APPEND`` descriptor
under an exclusive ``flock``, so concurrent writers (pool parents,
parallel harness invocations sharing a cache directory) never
interleave partial records.  Readers tolerate a torn final line (a
killed writer) by skipping lines that fail to parse.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

try:
    import fcntl
except ImportError:                       # non-POSIX: flock unavailable
    fcntl = None                          # type: ignore[assignment]

from repro.ledger.provenance import git_revision, host_meta

#: Hex chars of the cache fingerprint that prefix a run_id.  16 chars
#: (64 bits) cannot collide within any realistic ledger; the full
#: fingerprint is in the record's ``key`` field.
RUN_ID_PREFIX = 16

#: Environment variable overriding the default ledger path.
LEDGER_ENV = "REPRO_LEDGER"


def make_run_id(key: str, attempt: int) -> str:
    """``<key prefix>.<attempt>`` — the stable identity of one attempt."""
    return f"{key[:RUN_ID_PREFIX]}.{attempt:04d}"


class Ledger:
    """An append-only JSONL file of per-run provenance records."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.appended = 0
        #: key -> highest attempt number seen (lazily loaded from disk)
        self._attempts: Optional[Dict[str, int]] = None

    # -- run identity ---------------------------------------------------
    def _load_attempts(self) -> Dict[str, int]:
        if self._attempts is None:
            attempts: Dict[str, int] = {}
            for record in self.records():
                key = record.get("key")
                if key:
                    attempts[key] = max(attempts.get(key, 0),
                                        int(record.get("attempt", 0)))
            self._attempts = attempts
        return self._attempts

    def next_run_id(self, key: str) -> Tuple[str, int]:
        """Allocate ``(run_id, attempt)`` for a new attempt at ``key``.

        Attempts number from 1 in allocation order within this ledger
        file; existing records (earlier invocations sharing the file)
        are counted, so re-running a plan yields fresh run_ids rather
        than reusing old ones.
        """
        attempts = self._load_attempts()
        attempt = attempts.get(key, 0) + 1
        attempts[key] = attempt
        return make_run_id(key, attempt), attempt

    # -- append-only writes ---------------------------------------------
    def append(self, record: Dict[str, Any]) -> None:
        """Append one record as a single locked write (never rewrites)."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        fd = os.open(self.path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            os.write(fd, data)
        finally:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                except OSError:
                    pass
            os.close(fd)
        self.appended += 1

    # -- reads ----------------------------------------------------------
    def records(self) -> Iterator[Dict[str, Any]]:
        """Parsed records in append order (torn/corrupt lines skipped)."""
        try:
            fh = open(self.path, encoding="utf-8")
        except OSError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue              # torn final line of a killed writer
                if isinstance(record, dict):
                    yield record

    def entries_for(self, key: str) -> List[Dict[str, Any]]:
        """Every attempt at one fingerprint, oldest first."""
        return [r for r in self.records() if r.get("key") == key]

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def __repr__(self) -> str:
        return f"<Ledger {self.path!r} appended={self.appended}>"


# ======================================================================
# Record construction
# ======================================================================
def run_record(*, run_id: str, key: str, attempt: int,
               machine: Any, app: Any, nprocs: int, seed: int,
               params: Optional[Dict[str, Any]],
               result: Any, path: str, executor: str,
               wall_s: Optional[float] = None,
               produced_by: Optional[str] = None,
               error: Optional[str] = None) -> Dict[str, Any]:
    """Build the full provenance record for one run attempt.

    ``machine``/``app``/``result`` are duck-typed (Machine,
    Application, RunResult) so this module stays import-cycle-free:
    ``repro.machines.base`` imports the ledger, not the reverse.

    ``path`` is the cache outcome (``"miss"`` — simulated; ``"hit"`` —
    served from the cache, ``produced_by`` naming the producing
    run_id; ``"fresh"`` — simulated with no cache in play) and
    ``executor`` is where it ran (``"serial"``, ``"pool"``,
    ``"cache"``, or ``"direct"`` for a bare ``Machine.run``).
    """
    # Lazy imports: machines.base and check.checker import this package.
    from repro.check.checker import active_check_config
    from repro.machines.base import fingerprint_value

    import repro

    record: Dict[str, Any] = {
        "run_id": run_id,
        "key": key,
        "attempt": int(attempt),
        "ts": time.time(),
        "pid": os.getpid(),
        "code": git_revision(),
        "host": host_meta(),
        "repro_version": getattr(repro, "__version__", "0"),
        "machine": getattr(machine, "name", str(machine)),
        "machine_fingerprint": machine.fingerprint(nprocs),
        "app": getattr(app, "name", str(app)),
        "workload": fingerprint_value(dict(vars(app))),
        "nprocs": int(nprocs),
        "seed": int(seed),
        "params": fingerprint_value(params or {}),
        "path": path,
        "executor": executor,
    }
    faults = getattr(machine, "faults", None)
    record["faults"] = (fingerprint_value(faults)
                        if faults is not None and faults.enabled else None)
    check_cfg = active_check_config()
    record["check"] = check_cfg.label() if check_cfg is not None else None
    if produced_by is not None:
        record["produced_by"] = produced_by
    if wall_s is not None:
        record["wall_s"] = round(float(wall_s), 6)
    if error is not None:
        # Failed attempts (a crashed pool worker) have no result; the
        # record preserves that the attempt happened and why it died.
        record["error"] = error
    if result is not None:
        record["cycles"] = int(result.cycles)
        record["events"] = int(result.events)
        record["sim_seconds"] = float(result.seconds)
    return record


# ======================================================================
# Ambient state: the active ledger and the current run_id
# ======================================================================
_LEDGER_STACK: List[Ledger] = []
_RUN_ID_STACK: List[str] = []


def active_ledger() -> Optional[Ledger]:
    """The innermost ledger installed by :func:`ledger_session`."""
    return _LEDGER_STACK[-1] if _LEDGER_STACK else None


@contextmanager
def ledger_session(ledger: Optional[Ledger]) -> Iterator[Optional[Ledger]]:
    """Scope within which every run appends a provenance record.

    The parallel runner writes the records for plan executions; a bare
    ``Machine.run`` inside the scope appends its own ``direct``
    record.  ``None`` is accepted and is a no-op scope, so callers can
    thread an optional ledger without branching.
    """
    if ledger is None:
        yield None
        return
    _LEDGER_STACK.append(ledger)
    try:
        yield ledger
    finally:
        _LEDGER_STACK.pop()


def current_run_id() -> Optional[str]:
    """The run_id of the run executing in this process, if any."""
    return _RUN_ID_STACK[-1] if _RUN_ID_STACK else None


@contextmanager
def run_scope(run_id: Optional[str]) -> Iterator[Optional[str]]:
    """Scope marking the currently-executing run attempt.

    Installed around each simulation by the execution layers so that
    everything produced inside — the ``RunResult``, tracer metadata,
    metrics lines, a raised ``ConsistencyViolation`` — can carry the
    run_id of the ledger record describing the run.  ``None`` is a
    no-op scope.
    """
    if run_id is None:
        yield None
        return
    _RUN_ID_STACK.append(run_id)
    try:
        yield run_id
    finally:
        _RUN_ID_STACK.pop()
