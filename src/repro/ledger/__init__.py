"""repro.ledger: append-only per-run provenance (see ledger.py).

Public surface::

    from repro.ledger import Ledger, ledger_session, run_scope

    ledger = Ledger(".repro-cache/ledger.jsonl")
    with ledger_session(ledger):
        machine.run(app, 8)          # appends one provenance record

The parallel runner (``repro.harness.parallel``) and the CLI install
the session themselves; ``repro-harness report`` replays the ledger +
result cache into reproducibility reports.
"""

from repro.ledger.ledger import (Ledger, active_ledger, current_run_id,
                                 ledger_session, make_run_id, run_record,
                                 run_scope)
from repro.ledger.provenance import git_revision, host_meta

__all__ = [
    "Ledger",
    "active_ledger",
    "current_run_id",
    "ledger_session",
    "make_run_id",
    "run_record",
    "run_scope",
    "git_revision",
    "host_meta",
]
