"""Code-version and host provenance for ledger records.

A ledger record is only auditable if it pins *which code* produced it
and *where* it ran.  These helpers gather that once per process:

* :func:`git_revision` — the repository HEAD SHA plus a dirty flag
  (uncommitted changes mean the SHA alone does not identify the code).
  Outside a git checkout — an installed package, a stripped CI
  artifact — both fields are ``None`` rather than an error: a record
  with unknown provenance is still worth appending.
* :func:`host_meta` — hostname, platform string, Python version, and
  CPU count, the fields that make wall-clock numbers comparable (or
  provably incomparable) across machines.

Both results are cached: provenance is per-process-invariant, and the
ledger appends one record per simulated run.
"""

from __future__ import annotations

import functools
import os
import platform
import socket
import subprocess
from typing import Any, Dict, Optional


def _git(args, cwd: Optional[str]) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git"] + args, cwd=cwd, capture_output=True, text=True,
            timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


@functools.lru_cache(maxsize=8)
def git_revision(cwd: Optional[str] = None) -> Dict[str, Any]:
    """``{"sha": <hex or None>, "dirty": <bool or None>}`` for ``cwd``.

    ``dirty`` is True when tracked files have uncommitted changes, so
    a drifted artifact can never be silently blamed on clean HEAD.
    """
    sha = _git(["rev-parse", "HEAD"], cwd)
    if sha is None:
        return {"sha": None, "dirty": None}
    status = _git(["status", "--porcelain", "--untracked-files=no"], cwd)
    return {"sha": sha, "dirty": None if status is None else bool(status)}


@functools.lru_cache(maxsize=1)
def host_meta() -> Dict[str, Any]:
    """Stable facts about the executing host (cached per process)."""
    try:
        hostname = socket.gethostname()
    except OSError:
        hostname = "unknown"
    return {
        "hostname": hostname,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
