"""Detection and repair orchestration for crash-stop node failures.

One :class:`RecoveryManager` is built per run (by the software
machines, when the fault plan carries crashes).  It owns the timeline
of each failure:

1. **Crash** (``CrashEvent.at``): the node's processors are killed
   mid-program and its host stops acknowledging frames.  Nothing else
   happens yet — survivors only ever learn about the crash through
   the network.
2. **Suspicion**: a survivor's retransmission chain to the dead host
   exhausts its retry budget.  The reliable layer asks
   :meth:`RecoveryManager.on_suspect` instead of raising
   :class:`~repro.errors.NetworkPartitionError`; if the destination
   really did crash, the failure is *declared*.  A keepalive backstop
   (``plan.detect_cycles`` after the crash) bounds detection latency
   even when no survivor happens to be talking to the dead node.
3. **Declaration** (:meth:`_declare`): idempotent repair of the whole
   software stack, delegated to
   :meth:`~repro.dsm.protocol.TreadMarksDsm.fail_node` — seal vector
   clocks, repair lock records, re-home or write off pages, shrink
   barrier membership — then the :class:`NodeFailure` record is
   appended and a :attr:`Category.RECOVERY
   <repro.trace.tracer.Category>` span covers crash→declaration.

The manager's :meth:`degraded_info` becomes
:attr:`RunResult.degraded <repro.stats.result.RunResult.degraded>`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.net.faults import CrashEvent, FaultPlan
from repro.trace.tracer import Category


@dataclass(frozen=True)
class NodeFailure:
    """One detected crash-stop failure, with its detection latency.

    ``via`` records which path declared the node dead:
    ``"timeout"`` (a retransmission chain exhausted its budget
    against the dead host) or ``"keepalive"`` (the
    ``detect_cycles`` backstop fired first).
    """

    node: int
    crashed_at: int
    detected_at: int
    via: str
    detail: str = ""

    @property
    def detection_cycles(self) -> int:
        """Cycles between the crash and its declaration."""
        return self.detected_at - self.crashed_at


class RecoveryManager:
    """Per-run failure detector and repair coordinator.

    Built by a software machine's ``build_runtime`` when the fault
    plan schedules crashes; hardware machines reject crash plans
    outright (there is no software recovery path to model).
    """

    def __init__(self, engine: Any, net: Any, dsm: Any,
                 plan: FaultPlan, counters: Any,
                 procs_of: Callable[[int], Sequence[int]]) -> None:
        self.engine = engine
        self.net = net
        self.dsm = dsm
        self.plan = plan
        self.counters = counters
        self.procs_of = procs_of
        #: Nodes whose crash time has passed (host may still look up
        #: until survivors notice).
        self.crashed: set = set()
        #: Nodes declared dead — repair has run, membership is n−1.
        self.dead: set = set()
        self.failures: List[NodeFailure] = []
        #: Application-level repair callbacks ``fn(node, procs, now)``,
        #: run after the DSM stack repair of each declaration.  The
        #: machine registers one per run so the application can retire
        #: a dead worker's contribution to shared run state (e.g.
        #: TSP's active-worker count) — without it, survivors of apps
        #: with work-stealing termination protocols would wait forever
        #: for the dead worker's work to finish.
        self.app_hooks: List[Callable[[int, Sequence[int], int],
                                      None]] = []

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule every crash and its keepalive backstop."""
        for crash in self.plan.crashes:
            self.engine.schedule_at(crash.at, self._crash, crash)
            self.engine.schedule_at(crash.at + self.plan.detect_cycles,
                                    self._keepalive, crash)

    # ------------------------------------------------------------------
    def _crash(self, crash: CrashEvent) -> None:
        """The node dies: halt its processors, go silent on the wire."""
        now = self.engine.now
        self.crashed.add(crash.node)
        victims = set(self.procs_of(crash.node))
        for task in self.engine.tasks:
            if task.proc_id in victims:
                task.kill(now)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(crash.node, Category.RECOVERY, "node_crash",
                           now, track=f"node{crash.node}.sw",
                           procs=len(victims))

    def _keepalive(self, crash: CrashEvent) -> None:
        """Backstop detection: declare the crash if nothing else did."""
        if crash.node not in self.dead:
            self._declare(crash.node, self.engine.now, "keepalive",
                          detail=f"no traffic pointed at node "
                                 f"{crash.node} for "
                                 f"{self.plan.detect_cycles} cycles")

    def on_suspect(self, tx: Any) -> bool:
        """A retry chain to ``tx.dst`` died; is that a real crash?

        Returns True when the destination actually crashed (the
        verdict is consumed and recovery proceeds); False leaves the
        reliable layer to raise its partition error — a falsely
        suspected *alive* node is not survivable and should fail
        loudly.
        """
        crash = self.plan.crash_of(tx.dst)
        now = self.engine.now
        if crash is None or now < crash.at:
            return False
        if tx.dst not in self.dead:
            self._declare(tx.dst, now, "timeout",
                          detail=f"{tx.kind.value} from node {tx.src} "
                                 f"lost {tx.attempt} times")
        return True

    # ------------------------------------------------------------------
    def _declare(self, node: int, now: int, via: str,
                 detail: str = "") -> None:
        """Idempotent: repair the stack and record the failure."""
        if node in self.dead:
            return
        self.dead.add(node)
        self.crashed.add(node)
        crash = self.plan.crash_of(node)
        crashed_at = crash.at if crash is not None else now
        self.counters.detection_cycles += now - crashed_at
        self.dsm.fail_node(node, now)
        procs = list(self.procs_of(node))
        for hook in self.app_hooks:
            hook(node, procs, now)
        failure = NodeFailure(node=node, crashed_at=crashed_at,
                              detected_at=now, via=via, detail=detail)
        self.failures.append(failure)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.complete(node, Category.RECOVERY,
                            f"node_failure:{via}", crashed_at, now,
                            track=f"node{node}.sw", detail=detail)

    # ------------------------------------------------------------------
    def host_down(self, node: int, time: int) -> bool:
        """Is ``node``'s host unreachable on the wire at ``time``?"""
        return self.plan.node_down_at(node, time)

    def is_dead(self, node: int) -> bool:
        """Has ``node`` been declared failed (membership excludes it)?"""
        return node in self.dead

    def degraded_info(self) -> Optional[Dict[str, Any]]:
        """The ``RunResult.degraded`` payload, or None if no failures."""
        if not self.failures:
            return None
        return {
            "failed_nodes": [f.node for f in self.failures],
            "crashed_at": [f.crashed_at for f in self.failures],
            "detected_at": [f.detected_at for f in self.failures],
            "detected_via": [f.via for f in self.failures],
        }
