"""Crash-stop node failures and DSM recovery.

The realistic failure mode of the paper's commodity ATM cluster is a
*dead node*, not a dropped cell.  This package turns the crash events
of a :class:`~repro.net.faults.FaultPlan` into a full
detection-and-recovery path: the crashed node's processors halt, the
reliable-delivery layer's exhausted retransmission chains (or a
keepalive backstop) promote the silence into a structured
:class:`NodeFailure` verdict, and the :class:`RecoveryManager` repairs
the software DSM stack — re-homing pages, regenerating lock tokens,
reconfiguring barrier membership from n to n−1 — so the run completes
*degraded* on the survivors with
:attr:`~repro.stats.result.RunResult.degraded` metadata instead of
dying with a bare partition error.

Everything is deterministic: crashes fire at fixed simulated cycles,
detection latency is a pure function of the plan and the message
schedule, and degraded results reproduce byte-identically serial vs
pool vs warm cache like every other run.
"""

from repro.recover.manager import NodeFailure, RecoveryManager

__all__ = ["NodeFailure", "RecoveryManager"]
