"""Memory-model conformance checking (``repro.check``).

Three layers, all zero-overhead when disabled:

* :mod:`repro.check.checker` — online invariant checkers hooked into
  the LRC protocol (:class:`~repro.check.checker.DsmChecker`), the
  snooping bus (:class:`~repro.check.checker.SnoopChecker`), and the
  directory (:class:`~repro.check.checker.DirectoryChecker`).  Enable
  with the :func:`~repro.check.checker.checking` context manager or by
  setting ``REPRO_CHECK=1`` (``REPRO_CHECK=history`` also records the
  LRC read/write/sync history and verifies it post-run).
* :mod:`repro.check.fuzz` — a seeded generator of small
  data-race-free programs plus a cross-machine differential runner
  and shrinker.
* :mod:`repro.check.conformance` — the ``repro-harness check``
  battery: fixed fuzz programs and paper workloads on every machine
  with the checkers armed.

This module stays import-light: ``fuzz`` and ``conformance`` import
the machine layer, so pull them in explicitly where needed.
"""

from repro.check.checker import (CheckConfig, DirectoryChecker, DsmChecker,
                                 SnoopChecker, active_check_config, checking)
from repro.check.events import ProtocolEvent
from repro.errors import ConsistencyViolation

__all__ = [
    "CheckConfig",
    "ConsistencyViolation",
    "DirectoryChecker",
    "DsmChecker",
    "ProtocolEvent",
    "SnoopChecker",
    "active_check_config",
    "checking",
]
