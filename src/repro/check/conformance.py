"""The ``repro-harness check`` battery: checked conformance runs.

Runs a fixed battery of workloads on all five machine models with the
online invariant checkers armed and reports PASS/FAIL per entry:

* three fixed differential fuzz programs (seeds 1001..1003) with the
  full LRC history checker — small, fast, and they cross every
  machine's protocol layer (the HS model uses 2-processor nodes so
  even 4-processor programs span nodes);
* the paper's applications (SOR, TSP, Water) at the requested scale
  with the online checkers but without history recording — the
  histories of real apps are large, and the online invariants are the
  part that scales.

A PASS means every machine completed without a
:class:`~repro.errors.ConsistencyViolation` and, for the differential
entries, that all five final memory images were byte-identical with
the expected lock totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.check.checker import checking
from repro.check.fuzz import default_machines, generate_program, run_program
from repro.errors import ReproError

#: Seeds of the fixed differential programs in the battery.
FIXED_FUZZ_SEEDS = (1001, 1002, 1003)

#: Paper applications exercised with the online checkers armed.
APP_BATTERY = ("sor_small", "tsp18", "water")


@dataclass
class CheckResult:
    name: str
    ok: bool
    detail: str = ""


@dataclass
class CheckReport:
    results: List[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def lines(self) -> List[str]:
        out = []
        for r in self.results:
            mark = "PASS" if r.ok else "FAIL"
            line = f"[{mark}] {r.name}"
            if r.detail:
                line += f" — {r.detail}"
            out.append(line)
        n_fail = sum(1 for r in self.results if not r.ok)
        out.append(f"{len(self.results) - n_fail}/{len(self.results)} "
                   "checks passed")
        return out


def run_conformance(scale: Any = None, *,
                    machines: Optional[Sequence[Any]] = None,
                    nprocs: int = 4,
                    jobs: Optional[int] = None,
                    log: Callable[[str], None] = lambda _msg: None
                    ) -> CheckReport:
    """Run the whole battery; returns per-entry PASS/FAIL results."""
    from repro.harness.parallel import RunPlan, execute_plan
    from repro.harness.workloads import Scale, make_app

    if scale is None:
        scale = Scale.TEST
    machines = list(machines) if machines is not None \
        else default_machines()
    report = CheckReport()

    for seed in FIXED_FUZZ_SEEDS:
        program = generate_program(seed)
        log(f"differential fuzz program seed={seed} "
            f"(nprocs={program['nprocs']}) ...")
        outcome = run_program(program, machines, jobs=jobs, history=True)
        report.results.append(CheckResult(
            name=f"fuzz-{seed} differential + LRC history",
            ok=outcome.ok, detail=outcome.reason))

    for name in APP_BATTERY:
        app = make_app(name, scale)
        log(f"checked run of {name} at scale={scale.value} "
            f"on {len(machines)} machines ...")
        with checking():
            plan = RunPlan()
            for machine in machines:
                plan.add(machine, app, nprocs)
            try:
                execute_plan(plan, jobs=jobs, cache=None)
                report.results.append(CheckResult(
                    name=f"{name} online invariants "
                         f"(p{nprocs}, all machines)", ok=True))
            except ReproError as exc:
                report.results.append(CheckResult(
                    name=f"{name} online invariants "
                         f"(p{nprocs}, all machines)",
                    ok=False, detail=f"{type(exc).__name__}: {exc}"))
    return report
