"""Cross-machine differential fuzzing of small data-race-free programs.

The simulator executes application values for real in one shared
store, so for a data-race-free program every machine model must
produce byte-identical final memory — the protocols only decide *when*
data moves and what it costs.  The fuzzer exploits that: a seeded
generator emits small random programs (a few pages, barrier phases
with per-phase slot ownership, commutative lock-protected counters,
read/write mixes whose written values depend on values read at
simulated time), runs each on all five machine models with the online
checkers armed, and diffs the final memory images and checker
verdicts.  Any divergence — differing digests, a wrong lock total, a
:class:`~repro.errors.ConsistencyViolation`, a deadlock — is a bug in
some protocol implementation.

Failing programs are shrunk greedily (drop phases, then per-processor
phase programs, then individual operations) to a minimal reproducer
and persisted as JSON regression seeds under ``tests/fuzz_seeds/``;
the test suite and CI replay those seeds forever after.

Program schema (JSON-able)::

    {"seed": ..., "nprocs": N, "slots": S, "locks": L,
     "phases": [{"ops": {"0": [op, ...], ...}}, ...]}

where each op is ``{"kind": "compute", "cycles": c}``,
``{"kind": "read"|"write", "slot": s, "off": o, "n": n}``, or
``{"kind": "lock", "lock": k, "delta": d}``.  Within a phase each slot
is either written by exactly one processor (which may also read it) or
read-only — data-race freedom by construction; phases are separated
by global barriers, and lock cells are only touched inside their own
lock's critical section.

A program may also carry ``"ablate": [mechanism, ...]`` — a list of
DSM mechanisms to switch off (see :mod:`repro.ablate`).  The
differential then additionally runs the software machines with that
spec: ablations change traffic and timing, never values, so the
ablated legs must produce the same digests and lock totals as the
stock machines.  Shrinking tries dropping toggles before anything
else, so a persisted reproducer carries the minimal toggle set.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.ablate import MECHANISMS, AblationSpec
from repro.apps import ops
from repro.apps.base import AppContext, Application
from repro.check.checker import checking
from repro.errors import ReproError

#: One slot is one DSM page (all five machines use 4096-byte pages).
SLOT_BYTES = 4096

#: Default location of persisted regression seeds, relative to the
#: repository root.
SEEDS_DIRNAME = os.path.join("tests", "fuzz_seeds")


# ----------------------------------------------------------------------
# program generation
# ----------------------------------------------------------------------
def generate_program(seed: Any) -> Dict[str, Any]:
    """One random DRF program; deterministic in ``seed``."""
    rng = np.random.default_rng(seed)
    nprocs = int(rng.choice([2, 2, 3, 4, 4, 6, 8]))
    slots = int(rng.integers(2, 7))
    locks = int(rng.integers(1, 4))
    n_phases = int(rng.integers(2, 5))
    phases: List[Dict[str, Any]] = []
    for _phase in range(n_phases):
        # Per-phase slot ownership: a slot is writable by exactly one
        # processor or by nobody (read-only this phase).
        writer = {s: int(rng.integers(0, nprocs))
                  for s in range(slots) if rng.random() < 0.6}
        per_proc: Dict[str, List[Dict[str, Any]]] = {}
        for proc in range(nprocs):
            plist: List[Dict[str, Any]] = []
            mine = [s for s, w in writer.items() if w == proc]
            readable = [s for s in range(slots)
                        if s not in writer or writer[s] == proc]
            for slot in mine:
                for _ in range(int(rng.integers(1, 3))):
                    off = int(rng.integers(0, SLOT_BYTES - 64))
                    n = int(rng.integers(1, min(256, SLOT_BYTES - off)))
                    plist.append({"kind": "write", "slot": slot,
                                  "off": off, "n": n})
            for _ in range(int(rng.integers(0, 4))):
                if not readable:
                    break
                slot = int(rng.choice(readable))
                off = int(rng.integers(0, SLOT_BYTES - 64))
                n = int(rng.integers(1, min(256, SLOT_BYTES - off)))
                plist.append({"kind": "read", "slot": slot,
                              "off": off, "n": n})
            for _ in range(int(rng.integers(0, 3))):
                plist.append({"kind": "lock",
                              "lock": int(rng.integers(0, locks)),
                              "delta": int(rng.integers(1, 100))})
            if rng.random() < 0.5:
                plist.append({"kind": "compute",
                              "cycles": int(rng.integers(0, 200))})
            rng.shuffle(plist)
            if plist:
                per_proc[str(proc)] = plist
        phases.append({"ops": per_proc})
    return {"seed": _seed_repr(seed), "nprocs": nprocs, "slots": slots,
            "locks": locks, "phases": phases}


def _seed_repr(seed: Any) -> Any:
    return list(seed) if isinstance(seed, tuple) else seed


def generate_ablation_program(seed: Any) -> Dict[str, Any]:
    """A random DRF program with a seeded random mechanism subset off."""
    program = generate_program(seed)
    entropy = (tuple(seed) if isinstance(seed, tuple) else (seed,))
    rng = np.random.default_rng(entropy + (0xAB,))
    k = int(rng.integers(1, 4))
    off = sorted(rng.choice(MECHANISMS, size=k, replace=False).tolist())
    program["ablate"] = off
    return program


def expected_lock_totals(program: Dict[str, Any]) -> List[int]:
    """Final value of each lock counter: the sum of all deltas."""
    totals = [0] * program["locks"]
    for phase in program["phases"]:
        for plist in phase["ops"].values():
            for op in plist:
                if op["kind"] == "lock":
                    totals[op["lock"]] += op["delta"]
    return totals


def program_digest(program: Dict[str, Any]) -> str:
    canonical = json.dumps(program, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the program as an Application
# ----------------------------------------------------------------------
def random_fuse(stream: Any, rng: np.random.Generator, *,
                cut: float = 0.35):
    """Re-chunk ``stream`` with seeded random fusion boundaries.

    Consecutive fusible operations (``Compute``/``Read``/``Write``)
    are grouped into :class:`~repro.apps.ops.OpBlock` chunks whose
    boundaries fall at seeded random points, so the fuzzer exercises
    block shapes no application would naturally emit — singletons,
    long runs, cuts straight through read-modify-write sequences.
    Synchronization and result-bearing operations pass through
    unchanged with their sent-back values forwarded.  For a DRF
    program chunking is semantics-free (see ``OpBlock``), so any
    digest divergence against per-op issue is an engine bug.
    """
    gen = iter(stream)
    run: List[Any] = []
    value: Any = None

    def flush():
        block = run[0] if len(run) == 1 else ops.OpBlock(run)
        run.clear()
        return block

    while True:
        try:
            op = ops._advance(gen, value)
        except StopIteration:
            break
        value = None
        if isinstance(op, ops.FUSIBLE):
            run.append(op)
            if rng.random() < cut:
                yield flush()
            continue
        if run:
            yield flush()
        value = yield op
    if run:
        yield flush()


class FuzzApp(Application):
    """Executes one generated program on the simulator.

    With ``chunk_seed`` set, every processor's operation stream is
    re-chunked through :func:`random_fuse`, turning the cross-machine
    differential into a fused-vs-per-op differential as well.
    """

    def __init__(self, program: Dict[str, Any],
                 chunk_seed: Optional[int] = None) -> None:
        self.program = program
        self.chunk_seed = chunk_seed
        self.name = f"fuzz-{program_digest(program)[:12]}"
        if chunk_seed is not None:
            self.name += f"-c{chunk_seed}"

    def regions(self, nprocs: int) -> Dict[str, int]:
        return {"fz": self.program["slots"] * SLOT_BYTES,
                "lk": SLOT_BYTES}

    def init_data(self, ctx: AppContext) -> None:
        ctx.store.view("fz", np.uint8)[:] = 0
        ctx.store.view("lk", np.uint8)[:] = 0

    def programs(self, ctx: AppContext):
        progs = [self._proc_program(ctx, proc)
                 for proc in range(ctx.nprocs)]
        if self.chunk_seed is None:
            return progs
        return [random_fuse(p, np.random.default_rng(
                    (self.chunk_seed, proc)))
                for proc, p in enumerate(progs)]

    def _proc_program(self, ctx: AppContext, proc: int):
        data = ctx.store.view("fz", np.uint8)
        lock_cells = ctx.store.view("lk", np.int64)
        # The accumulator folds in every value read *at simulated
        # completion time*, and written values derive from it — so a
        # protocol that mis-orders a write against a barrier changes
        # the bytes later phases write, and the final images diverge.
        acc = proc + 1
        for phase_no, phase in enumerate(self.program["phases"]):
            for op_no, op in enumerate(phase["ops"].get(str(proc), ())):
                kind = op["kind"]
                if kind == "compute":
                    yield ops.Compute(op["cycles"])
                elif kind == "read":
                    addr = op["slot"] * SLOT_BYTES + op["off"]
                    yield ops.Read("fz", addr, op["n"])
                    acc = (acc + int(data[addr:addr + op["n"]]
                                     .sum(dtype=np.int64))) & 0xFFFFFFFF
                elif kind == "write":
                    addr = op["slot"] * SLOT_BYTES + op["off"]
                    base = (acc * 2654435761 + phase_no * 97 +
                            proc * 31 + op_no) & 0xFFFFFFFF
                    values = ((base + np.arange(op["n"])) % 251
                              ).astype(np.uint8)
                    changed = ctx.store.write("fz", addr, values)
                    yield ops.Write("fz", addr, op["n"], changed)
                elif kind == "lock":
                    cell = op["lock"]
                    yield ops.Acquire(cell)
                    yield ops.Read("lk", 8 * cell, 8)
                    lock_cells[cell] += op["delta"]
                    yield ops.Write("lk", 8 * cell, 8)
                    yield ops.Release(cell)
                else:  # pragma: no cover - generator never emits this
                    raise ReproError(f"unknown fuzz op kind {kind!r}")
            yield ops.Barrier()

    def verify(self, ctx: AppContext) -> Dict[str, Any]:
        image = ctx.store.view("fz", np.uint8)
        locks = ctx.store.view("lk", np.int64)[:self.program["locks"]]
        return {
            "digest": hashlib.sha256(image.tobytes()).hexdigest(),
            "locks": [int(v) for v in locks],
        }


# ----------------------------------------------------------------------
# differential execution
# ----------------------------------------------------------------------
def default_machines() -> List[Any]:
    """The five paper machine models, fuzz-sized (max 8 processors).

    The HS machine runs with 2-processor nodes: the paper's hs8 would
    fit any fuzz program on one node and never cross the software DSM
    layer, while hs2 exercises intra-node snooping *and* inter-node
    LRC with as few as 4 processors.
    """
    from repro.machines import (AllHardwareMachine, AllSoftwareMachine,
                                DecTreadMarksMachine, HybridMachine,
                                SgiMachine)
    from repro.machines.params import HsParams
    return [DecTreadMarksMachine(), SgiMachine(), AllSoftwareMachine(),
            AllHardwareMachine(),
            HybridMachine(HsParams(procs_per_node=2))]


def ablated_machines(off: Sequence[str]) -> List[Any]:
    """The three software DSM machines with ``off`` mechanisms ablated.

    Hardware machines have no ablatable mechanisms, so the ablation
    differential only adds software legs; the stock hardware legs in
    the same run supply the ground-truth digests.
    """
    from repro.machines import (AllSoftwareMachine, DecTreadMarksMachine,
                                HybridMachine)
    from repro.machines.params import HsParams
    spec = AblationSpec.without(*off)
    return [DecTreadMarksMachine(ablate=spec),
            AllSoftwareMachine(ablate=spec),
            HybridMachine(HsParams(procs_per_node=2), ablate=spec)]


@dataclass
class MachineVerdict:
    machine: str
    ok: bool
    digest: Optional[str] = None
    locks: Optional[List[int]] = None
    error: Optional[str] = None


@dataclass
class FuzzOutcome:
    program: Dict[str, Any]
    verdicts: List[MachineVerdict] = field(default_factory=list)
    ok: bool = True
    reason: str = ""

    def failing_machines(self) -> List[str]:
        return [v.machine for v in self.verdicts if not v.ok]


def run_program(program: Dict[str, Any],
                machines: Optional[Sequence[Any]] = None, *,
                jobs: Optional[int] = None,
                history: bool = True,
                chunk_seed: Optional[int] = None) -> FuzzOutcome:
    """Run one program on every machine; diff images and verdicts.

    With ``chunk_seed`` set, one extra leg runs the program on the
    first machine with seeded-random :class:`~repro.apps.ops.OpBlock`
    boundaries (:func:`random_fuse`); its digest and lock totals join
    the differential, so fused issue is fuzzed against per-op issue
    on every campaign program.

    The fast path executes all legs through one
    :class:`~repro.harness.parallel.RunPlan`; if anything raises, each
    leg is re-run serially so the failure is attributed to the
    machine(s) that actually diverge.
    """
    from repro.harness.parallel import RunPlan, execute_plan

    machines = list(machines) if machines is not None \
        else default_machines()
    off = program.get("ablate") or ()
    if off:
        machines = machines + ablated_machines(off)
    app = FuzzApp(program)
    nprocs = program["nprocs"]
    legs = [(machine, machine.name, app) for machine in machines]
    if chunk_seed is not None:
        legs.append((machines[0], f"{machines[0].name}+chunked",
                     FuzzApp(program, chunk_seed=chunk_seed)))
    outcome = FuzzOutcome(program=program)

    with checking(history=history):
        plan = RunPlan()
        for machine, _label, leg_app in legs:
            plan.add(machine, leg_app, nprocs)
        try:
            results = execute_plan(plan, jobs=jobs, cache=None)
            for (_machine, label, _leg_app), result in zip(legs, results):
                outcome.verdicts.append(MachineVerdict(
                    machine=label, ok=True,
                    digest=result.app_output["digest"],
                    locks=result.app_output["locks"]))
        except ReproError:
            # Re-run serially to attribute the failure.
            outcome.verdicts = []
            for machine, label, leg_app in legs:
                try:
                    result = machine.run(leg_app, nprocs=nprocs)
                    outcome.verdicts.append(MachineVerdict(
                        machine=label, ok=True,
                        digest=result.app_output["digest"],
                        locks=result.app_output["locks"]))
                except ReproError as exc:
                    outcome.verdicts.append(MachineVerdict(
                        machine=label, ok=False,
                        error=f"{type(exc).__name__}: {exc}"))

    failed = outcome.failing_machines()
    if failed:
        outcome.ok = False
        outcome.reason = "checker/simulation failure on: " + \
            ", ".join(failed)
        return outcome

    expected = expected_lock_totals(program)
    digests = {v.digest for v in outcome.verdicts}
    if len(digests) > 1:
        outcome.ok = False
        outcome.reason = "final memory images diverge: " + ", ".join(
            f"{v.machine}={v.digest[:12]}" for v in outcome.verdicts)
    for verdict in outcome.verdicts:
        if verdict.locks != expected:
            outcome.ok = False
            outcome.reason = (
                f"lock totals wrong on {verdict.machine}: "
                f"{verdict.locks} != {expected} (lost update)")
    return outcome


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def _variants(program: Dict[str, Any]):
    """Candidate simplifications, largest cuts first.

    Ablation toggles are tried before structural cuts: a reproducer
    should carry the minimal mechanism set that still triggers the
    divergence (ideally none — i.e. the bug is not ablation-specific).
    """
    off = program.get("ablate") or []
    for i in range(len(off)):
        smaller = off[:i] + off[i + 1:]
        variant = {k: v for k, v in program.items() if k != "ablate"}
        if smaller:
            variant["ablate"] = smaller
        yield variant
    phases = program["phases"]
    for i in range(len(phases)):
        if len(phases) > 1:
            yield {**program,
                   "phases": phases[:i] + phases[i + 1:]}
    for i, phase in enumerate(phases):
        for proc in list(phase["ops"]):
            smaller = {p: v for p, v in phase["ops"].items()
                       if p != proc}
            yield {**program,
                   "phases": phases[:i] + [{"ops": smaller}] +
                   phases[i + 1:]}
    for i, phase in enumerate(phases):
        for proc, plist in phase["ops"].items():
            if len(plist) <= 1:
                continue
            for j in range(len(plist)):
                smaller = dict(phase["ops"])
                smaller[proc] = plist[:j] + plist[j + 1:]
                yield {**program,
                       "phases": phases[:i] + [{"ops": smaller}] +
                       phases[i + 1:]}


def shrink_program(program: Dict[str, Any],
                   still_fails: Callable[[Dict[str, Any]], bool],
                   max_attempts: int = 200) -> Dict[str, Any]:
    """Greedy shrink: keep any simplification that still fails."""
    attempts = 0
    current = program
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _variants(current):
            attempts += 1
            if attempts > max_attempts:
                break
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current


# ----------------------------------------------------------------------
# regression seeds
# ----------------------------------------------------------------------
def save_seed(program: Dict[str, Any], reason: str,
              seeds_dir: str) -> str:
    os.makedirs(seeds_dir, exist_ok=True)
    path = os.path.join(
        seeds_dir, f"seed-{program_digest(program)[:16]}.json")
    with open(path, "w") as fh:
        json.dump({"reason": reason, "program": program}, fh,
                  indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_seeds(seeds_dir: str) -> List[Dict[str, Any]]:
    """Persisted regression programs, oldest bug first (by filename)."""
    if not os.path.isdir(seeds_dir):
        return []
    programs = []
    for name in sorted(os.listdir(seeds_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(seeds_dir, name)) as fh:
            programs.append(json.load(fh)["program"])
    return programs


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------
@dataclass
class FuzzReport:
    iterations: int
    programs_run: int
    failures: List[FuzzOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz_run(seed: int, iters: int, *,
             machines: Optional[Sequence[Any]] = None,
             shrink: bool = True,
             seeds_dir: Optional[str] = None,
             jobs: Optional[int] = None,
             history: bool = True,
             regression_programs: Sequence[Dict[str, Any]] = (),
             ablation_iters: int = 0,
             log: Callable[[str], None] = lambda _msg: None
             ) -> FuzzReport:
    """Replay regression programs, then ``iters`` fresh ones.

    Every program (regression and fresh) also runs one chunked leg —
    seeded-random OpBlock boundaries derived from the program digest —
    differenced against the per-op legs; see :func:`run_program`.

    ``ablation_iters`` adds a random-ablation campaign after the
    regular iterations: each extra program carries a seeded random
    subset of DSM mechanisms switched off (``program["ablate"]``), so
    the differential also pits ablated software machines against the
    stock machines.  Shrinking minimizes the toggle set along with
    the program (see :func:`_variants`).
    """
    report = FuzzReport(iterations=iters + ablation_iters,
                        programs_run=0)

    def chunk_seed_of(program: Dict[str, Any]) -> int:
        return int(program_digest(program)[:8], 16)

    def run_one(program: Dict[str, Any], label: str) -> None:
        report.programs_run += 1
        outcome = run_program(program, machines, jobs=jobs,
                              history=history,
                              chunk_seed=chunk_seed_of(program))
        if outcome.ok:
            return
        log(f"FAIL {label}: {outcome.reason}")
        if shrink:
            minimal = shrink_program(
                outcome.program,
                lambda p: not run_program(
                    p, machines, jobs=jobs, history=history,
                    chunk_seed=chunk_seed_of(p)).ok)
            outcome = run_program(minimal, machines, jobs=jobs,
                                  history=history,
                                  chunk_seed=chunk_seed_of(minimal))
            if outcome.ok:  # shrink landed on a flaky boundary
                outcome = run_program(program, machines, jobs=jobs,
                                      history=history,
                                      chunk_seed=chunk_seed_of(program))
        if seeds_dir:
            path = save_seed(outcome.program, outcome.reason, seeds_dir)
            log(f"  minimal repro saved to {path}")
        report.failures.append(outcome)

    for i, program in enumerate(regression_programs):
        run_one(program, f"regression#{i}")
    for i in range(iters):
        program = generate_program((seed, i))
        run_one(program, f"iter#{i} (seed={seed})")
        if (i + 1) % 10 == 0:
            log(f"  ... {i + 1}/{iters} programs, "
                f"{len(report.failures)} failures")
    for i in range(ablation_iters):
        program = generate_ablation_program((seed, iters + i))
        run_one(program,
                f"ablate#{i} (seed={seed}, off={program['ablate']})")
        if (i + 1) % 10 == 0:
            log(f"  ... {i + 1}/{ablation_iters} ablation programs, "
                f"{len(report.failures)} failures")
    return report
