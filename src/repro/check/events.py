"""Structured protocol events, as seen by the online checkers.

Every hook call materialises one :class:`ProtocolEvent`; the checker
keeps a bounded trail of them so a :class:`~repro.errors.\
ConsistencyViolation` can carry the slice of protocol history that led
to the failure.  Events are plain frozen records — building one is a
tuple pack, cheap enough to do on every hooked protocol action.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class ProtocolEvent:
    """One observed protocol action.

    ``kind`` names the action (``interval_closed``, ``notice_applied``,
    ``fault_begin``, ``swmr_check``, ...); ``details`` holds
    kind-specific fields as a sorted tuple of pairs so the event stays
    hashable and cheap to format.
    """

    kind: str
    time: float
    node: int
    page: Optional[int] = None
    details: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        parts = [f"{self.kind}(node={self.node}"]
        if self.page is not None:
            parts.append(f", page={self.page}")
        for key, value in self.details:
            parts.append(f", {key}={value}")
        parts.append(f") @t={self.time:g}")
        return "".join(parts)


def make_event(kind: str, time: float, node: int,
               page: Optional[int] = None, **details: Any) -> ProtocolEvent:
    """Build an event; keyword arguments become sorted detail pairs."""
    return ProtocolEvent(kind=kind, time=time, node=node, page=page,
                         details=tuple(sorted(details.items())))
