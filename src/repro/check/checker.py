"""Online memory-model invariant checkers.

Enablement mirrors ``repro.trace``: disabled runs pay exactly one
``is not None`` test per hook site and build nothing.  Enable with::

    from repro.check import checking

    with checking():                # online invariants only
        machine.run(app, nprocs=8)
    with checking(history=True):    # + LRC/SC history verification
        machine.run(app, nprocs=8)

or ambiently via ``REPRO_CHECK=1`` / ``REPRO_CHECK=history`` in the
environment — the context manager sets the variable too, so worker
processes spawned by the parallel runner inherit the setting.

The protocol subsystems install their own checker in their
constructor when a configuration is active (``TreadMarksDsm`` →
:class:`DsmChecker`, ``SnoopingSystem`` → :class:`SnoopChecker`,
``DirectorySystem`` → :class:`DirectoryChecker`), so every machine
model — including the hybrid, which nests snooping systems inside DSM
nodes — is covered without per-machine wiring.

Checkers observe; they never change protocol behaviour or timing.  A
violated invariant raises :class:`~repro.errors.ConsistencyViolation`
carrying the offending :class:`~repro.check.events.ProtocolEvent`,
the simulated time, and a bounded trail of preceding events.
"""

from __future__ import annotations

import os
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.check.events import ProtocolEvent, make_event
from repro.check.history import verify_lrc_history
from repro.errors import ConsistencyViolation
from repro.mem.directcache import EXCLUSIVE, INVALID

#: Environment variable carrying the ambient check setting across
#: process boundaries ("" / "0" = off, "1" = online, "history" = full).
ENV_VAR = "REPRO_CHECK"


@dataclass(frozen=True)
class CheckConfig:
    """What to check: online invariants always; history optionally."""

    history: bool = False
    trail: int = 64

    def label(self) -> str:
        return "history" if self.history else "on"


_STACK: List[CheckConfig] = []


def active_check_config() -> Optional[CheckConfig]:
    """The ambient configuration, or ``None`` when checking is off.

    The innermost :func:`checking` context wins; otherwise the
    ``REPRO_CHECK`` environment variable is consulted, which is how
    parallel-runner worker processes and CI matrix legs opt in.
    """
    if _STACK:
        return _STACK[-1]
    env = os.environ.get(ENV_VAR, "").strip().lower()
    if env in ("", "0", "off", "false", "no"):
        return None
    return CheckConfig(history=(env == "history"))


@contextmanager
def checking(history: bool = False,
             trail: int = 64) -> Iterator[CheckConfig]:
    """Arm the checkers for every run started inside the context."""
    cfg = CheckConfig(history=history, trail=trail)
    _STACK.append(cfg)
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = "history" if history else "1"
    try:
        yield cfg
    finally:
        _STACK.pop()
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous


class BaseChecker:
    """Shared event-trail plumbing for the three checkers.

    Trail entries are buffered as raw ``(kind, time, node, page,
    details)`` tuples; they are materialised into
    :class:`~repro.check.events.ProtocolEvent` records only when a
    violation is actually raised.  A hook on the hot path therefore
    pays a tuple pack and a deque append, not a dataclass build plus
    detail sorting per observed action.
    """

    def __init__(self, config: CheckConfig) -> None:
        self.config = config
        self.trail: deque = deque(maxlen=config.trail)

    @property
    def _now(self) -> float:  # pragma: no cover - overridden
        return 0.0

    def _emit(self, kind: str, node: int, page: Optional[int] = None,
              **details: Any) -> Tuple[Any, ...]:
        record = (kind, self._now, node, page, details)
        self.trail.append(record)
        return record

    @staticmethod
    def _materialize(record: Any) -> ProtocolEvent:
        if isinstance(record, ProtocolEvent):
            return record
        kind, time, node, page, details = record
        return make_event(kind, time, node, page, **details)

    def _fail(self, reason: str, event: Any) -> None:
        raise ConsistencyViolation(
            reason, event=self._materialize(event), now=self._now,
            trail=tuple(self._materialize(r) for r in self.trail))


class DsmChecker(BaseChecker):
    """LRC invariants for :class:`repro.dsm.protocol.TreadMarksDsm`.

    Online checks (every hooked event):

    * interval indices per node are sequential and agree with the
      creator's own vector-clock entry; clocks never regress;
    * applying a write notice leaves the page copy invalid;
    * an acquirer's clock dominates the releaser's snapshot after a
      grant; a node's clock dominates the barrier-merged clock at
      departure;
    * reads/writes only complete on valid pages — an invalid page is
      tolerated only when an unconsumed write notice explains it (a
      co-resident processor on a multiprocessor node may apply
      notices between a peer's fault resolution and its access);
    * diffs cover the twin: a diff is cut only for pages inside the
      interval's write set, at most once per (interval, page), and
      never claims more changed bytes than a page holds;
    * a fault only applies diffs from intervals inside the faulting
      node's happens-before past, and completes only after every
      outstanding diff response arrived.

    With ``history=True`` the checker additionally records intervals,
    reads, and diff applications and replays them post-run through
    :func:`repro.check.history.verify_lrc_history`.
    """

    def __init__(self, dsm: Any, config: CheckConfig) -> None:
        super().__init__(config)
        self.dsm = dsm
        n = dsm.config.num_nodes
        self._closed_index = [0] * n
        self._closed_vc: List[Optional[Tuple[int, ...]]] = [None] * n
        self._diffs_created: set = set()
        self._fault_pending: dict = {}
        self._failed_nodes: set = set()
        self.history: Optional[list] = [] if config.history else None
        self.history_checks = 0

    @property
    def _now(self) -> float:
        return self.dsm.engine.now

    # -- intervals and clocks ------------------------------------------
    def on_interval_closed(self, interval: Any) -> None:
        node = interval.node
        event = self._emit("interval_closed", node,
                           index=interval.index,
                           pages=tuple(sorted(interval.pages)))
        if interval.index != self._closed_index[node] + 1:
            self._fail(
                f"interval indices not sequential: node {node} closed "
                f"#{interval.index} after #{self._closed_index[node]}",
                event)
        self._closed_index[node] = interval.index
        vc = interval.vc
        if vc[node] != interval.index:
            self._fail("interval index disagrees with the creator's "
                       "vector-clock entry", event)
        previous = self._closed_vc[node]
        if previous is not None and any(
                a < b for a, b in zip(vc, previous)):
            self._fail("vector clock regressed between consecutive "
                       "intervals", event)
        self._closed_vc[node] = vc
        if not interval.pages:
            self._fail("interval closed with an empty write set", event)
        if self.history is not None:
            self.history.append(("interval", node, interval.index,
                                 tuple(interval.pages), vc))

    def on_notice_applied(self, dst: int, interval: Any,
                          page: int) -> None:
        event = self._emit("notice_applied", dst, page,
                           creator=interval.node, index=interval.index)
        if interval.node == dst:
            self._fail("node applied a write notice from its own "
                       "interval", event)
        if page not in interval.pages:
            self._fail("write notice names a page outside the "
                       "interval's write set", event)
        if self.dsm.pages[dst].valid[page]:
            self._fail("write notice applied but the page copy stayed "
                       "valid (missed invalidation)", event)

    def on_notices_applied(self, dst: int,
                           intervals: List[Any]) -> None:
        """Batched form of :meth:`on_notice_applied`.

        ``_apply_notices`` applies every write notice of a batch of
        intervals and then reports the whole batch here at once.  The
        protocol iterates each interval's own write set, so the
        page-membership test of the unbatched hook is vacuous on this
        path; the remaining invariants — no self notices, every
        applied page ends invalid — are checked with the loop
        constants hoisted.  The trail gets one summarizing record per
        interval instead of one per page.
        """
        valid = self.dsm.pages[dst].valid
        now = self.dsm.engine.now
        trail = self.trail
        for interval in intervals:
            creator = interval.node
            index = interval.index
            pages = interval.pages
            record = ("notices_applied", now, dst, None,
                      {"creator": creator, "index": index,
                       "pages": len(pages)})
            trail.append(record)
            if creator == dst:
                self._fail("node applied a write notice from its own "
                           "interval", record)
            for page in pages:
                if valid[page]:
                    self._fail(
                        "write notice applied but the page copy "
                        "stayed valid (missed invalidation)",
                        ("notice_applied", now, dst, page,
                         {"creator": creator, "index": index}))

    def on_lock_granted(self, dst: int, src: int,
                        snapshot: Any) -> None:
        event = self._emit("lock_granted", dst, src=src)
        if not self.dsm.vcs[dst].dominates(snapshot):
            self._fail("acquirer's clock does not dominate the "
                       "releaser's snapshot after grant", event)

    def on_barrier_depart(self, node: int, merged: Any) -> None:
        event = self._emit("barrier_depart", node)
        if not self.dsm.vcs[node].dominates(merged):
            self._fail("clock at barrier departure misses the merged "
                       "clock", event)

    # -- accesses ------------------------------------------------------
    def on_write(self, node: int, page: int) -> None:
        table = self.dsm.pages[node]
        if not table.valid[page] and page not in table.pending:
            self._fail(
                "write recorded on an invalid page with no pending "
                "write notice to explain it",
                self._emit("write", node, page))

    def on_read_done(self, node: int, first: int, last: int) -> None:
        table = self.dsm.pages[node]
        for page in range(first, last):
            if not table.valid[page] and page not in table.pending:
                self._fail(
                    "read completed on an invalid page with no "
                    "pending write notice to explain it",
                    self._emit("read_done", node, page))
        if self.history is not None:
            self.history.append(
                ("read", node, first, last,
                 self.dsm.vcs[node].snapshot()))

    def wrap_read_done(self, node: int, first: int, last: int,
                       done: Any) -> Any:
        def wrapped(*args: Any, **kwargs: Any) -> None:
            self.on_read_done(node, first, last)
            done(*args, **kwargs)
        return wrapped

    # -- faults and diffs ----------------------------------------------
    def on_fault_begin(self, node: int, page: int, pend: Any) -> None:
        event = self._emit("fault_begin", node, page,
                           intervals=tuple(pend.intervals))
        vc = self.dsm.vcs[node]
        for creator, index in pend.intervals:
            if index > vc[creator]:
                self._fail(
                    f"fault would apply diff {creator}:{index} from "
                    "outside the node's happens-before past", event)
            interval = self.dsm.log.get(creator, index)
            if page not in interval.pages:
                self._fail("pending notice names a page the interval "
                           "never wrote", event)
        self._fault_pending[(node, page)] = tuple(pend.intervals)

    def on_fault_done(self, job: Any) -> None:
        event = self._emit("fault_done", job.node, job.page,
                           outstanding=job.outstanding,
                           remote=job.remote)
        if job.outstanding != 0:
            self._fail(
                f"fault completed with {job.outstanding} diff "
                "responses still outstanding (skipped diff "
                "application)", event)
        intervals = self._fault_pending.pop((job.node, job.page), ())
        if self.history is not None:
            self.history.append(("apply", job.node, job.page,
                                 intervals))

    def on_diff_created(self, interval: Any, page: int,
                        eager: bool = False) -> None:
        event = self._emit("diff_created", interval.node, page,
                           index=interval.index, eager=eager)
        if page not in interval.pages:
            self._fail("diff cut for a page outside the interval's "
                       "write set (diff does not cover the twin)",
                       event)
        key = (interval.node, interval.index, page)
        if key in self._diffs_created:
            self._fail("diff cut twice for the same (interval, page)",
                       event)
        self._diffs_created.add(key)
        if interval.pages[page] > self.dsm.config.page_bytes:
            self._fail("interval claims more changed bytes than a "
                       "page holds", event)

    def on_eager_push(self, other: int, interval: Any,
                      page: int) -> None:
        if self.history is not None:
            self.history.append(("eager", other, page,
                                 (interval.node, interval.index)))

    # -- crash-stop recovery -------------------------------------------
    def on_node_failed(self, node: int) -> None:
        """Recovery declared ``node`` dead and repaired the stack.

        The online invariants keep running on the survivors, but the
        run is marked degraded: the dead node's in-flight faults will
        never report ``fault_done``, and post-run history replay is
        skipped — crash-stop recovery deliberately loses the dead
        node's unpropagated intervals, which strict LRC replay would
        (correctly, but unhelpfully) flag.
        """
        self._emit("node_failed", node)
        self._failed_nodes.add(node)
        for key in [k for k in self._fault_pending if k[0] == node]:
            del self._fault_pending[key]

    # -- end of run ----------------------------------------------------
    def finish(self) -> None:
        if self.history is not None and not self._failed_nodes:
            self.history_checks = verify_lrc_history(
                self.history, self._history_fail)

    def _history_fail(self, reason: str, event: Any = None) -> None:
        raise ConsistencyViolation(
            reason, event=event, now=self._now,
            trail=tuple(self._materialize(r) for r in self.trail))


class SnoopChecker(BaseChecker):
    """SWMR for :class:`repro.hw.snoop.SnoopingSystem`.

    Bus operations pass the checker the set of lines they touched
    (miss/ownership sets); assuming the invariant held before the
    operation, only those lines can newly violate SWMR — a line held
    EXCLUSIVE or MODIFIED anywhere must be resident in exactly one
    cache — so the inline check probes just them across every cache.
    A full sweep of all resident lines (vectorized: sort + neighbour
    compare) still runs every :data:`SWEEP_INTERVAL` checked
    operations and at the end of the run, as a backstop for
    bookkeeping the touched sets don't cover (e.g. evictions).
    """

    #: Checked operations between full cross-cache sweeps.
    SWEEP_INTERVAL = 64

    def __init__(self, system: Any, config: CheckConfig) -> None:
        super().__init__(config)
        self.system = system
        self._last_now = 0.0
        self._ops_checked = 0

    @property
    def _now(self) -> float:
        return self._last_now

    def after_op(self, op: str, proc: int, now: float,
                 lines: Optional[np.ndarray] = None) -> None:
        self._last_now = now
        self._ops_checked += 1
        if lines is not None and self._ops_checked % self.SWEEP_INTERVAL:
            if lines.size == 0 or self._lines_clean(lines):
                return
            # Fall through: the sweep rediscovers the violation and
            # raises with exact holder diagnostics.
        self._sweep(op, proc)

    def _lines_clean(self, lines: np.ndarray) -> bool:
        present = np.zeros(lines.shape, dtype=np.int64)
        owned = np.zeros(lines.shape, dtype=np.int64)
        for cache in self.system.caches:
            sets = lines % cache.num_sets
            states = cache.states[sets]
            hit = (cache.tags[sets] == lines) & (states != INVALID)
            present += hit
            owned += hit & (states >= EXCLUSIVE)
        return not ((owned > 0) & (present > 1)).any()

    def _sweep(self, op: str, proc: int) -> None:
        caches = self.system.caches
        lines_parts, owned_parts, who_parts = [], [], []
        for q, cache in enumerate(caches):
            resident = cache.states != INVALID
            tags = cache.tags[resident]
            lines_parts.append(tags)
            owned_parts.append(cache.states[resident] >= EXCLUSIVE)
            who_parts.append(np.full(tags.shape, q, dtype=np.int64))
        lines = np.concatenate(lines_parts)
        if lines.size < 2:
            return
        owned = np.concatenate(owned_parts)
        who = np.concatenate(who_parts)
        order = np.argsort(lines, kind="stable")
        lines, owned, who = lines[order], owned[order], who[order]
        same = lines[1:] == lines[:-1]
        shared_any = np.zeros(lines.shape, dtype=bool)
        shared_any[1:] |= same
        shared_any[:-1] |= same
        bad = shared_any & owned
        if bad.any():
            i = int(np.argmax(bad))
            line = int(lines[i])
            holders = tuple(
                (int(q), cache.state_of(line))
                for q, cache in enumerate(caches)
                if cache.state_of(line) != INVALID)
            event = self._emit("swmr_check", proc, details_op=op,
                               line=line, holders=holders)
            self._fail(
                f"SWMR violated: line {line} is EXCLUSIVE/MODIFIED in "
                f"cache {int(who[i])} while another cache holds a "
                "copy", event)

    def finish(self) -> None:
        self._sweep("final_sweep", -1)


class DirectoryChecker(BaseChecker):
    """Directory/cache agreement + SWMR for ``DirectorySystem``.

    Invariants: owned lines register exactly their owner as sharer; a
    line owned by cache *p* is resident nowhere else; every resident
    copy is registered in the sharer bitmap; and EXCLUSIVE/MODIFIED
    copies coincide with directory ownership.  Like the snoop
    checker, accesses hand over the lines they touched and only those
    are probed inline; a full sweep of every cache and the whole
    directory runs every :data:`SWEEP_INTERVAL` checked operations
    and at the end of the run.
    """

    #: Checked operations between full directory/cache sweeps.
    SWEEP_INTERVAL = 64

    def __init__(self, system: Any, config: CheckConfig) -> None:
        super().__init__(config)
        self.system = system
        self._last_now = 0.0
        self._ops_checked = 0

    @property
    def _now(self) -> float:
        return self._last_now

    def after_op(self, op: str, proc: int, now: float,
                 lines: Optional[np.ndarray] = None) -> None:
        self._last_now = now
        self._ops_checked += 1
        if lines is not None and self._ops_checked % self.SWEEP_INTERVAL:
            if lines.size == 0 or self._lines_clean(lines):
                return
            # Fall through: the sweep rediscovers the violation and
            # raises with exact per-line diagnostics.
        self._sweep(op, proc)

    def _lines_clean(self, lines: np.ndarray) -> bool:
        system = self.system
        owner, sharers = system.owner, system.sharers
        own = owner[lines]
        owned = own >= 0
        if owned.any():
            bits = np.uint64(1) << own[owned].astype(np.uint64)
            if (sharers[lines[owned]] != bits).any():
                return False
        one = np.uint64(1)
        registered = sharers[lines]
        for q, cache in enumerate(system.caches):
            sets = lines % cache.num_sets
            states = cache.states[sets]
            resident = (cache.tags[sets] == lines) & (states != INVALID)
            if not resident.any():
                continue
            if (resident & owned & (own != q)).any():
                return False
            if (resident &
                    (((registered >> np.uint64(q)) & one) == 0)).any():
                return False
            if (resident & (states >= EXCLUSIVE) & (own != q)).any():
                return False
        return True

    def _sweep(self, op: str, proc: int) -> None:
        system = self.system
        owner, sharers = system.owner, system.sharers
        owned = owner >= 0
        if owned.any():
            bits = np.uint64(1) << owner[owned].astype(np.uint64)
            mismatched = sharers[owned] != bits
            if mismatched.any():
                line = int(np.flatnonzero(owned)[np.argmax(mismatched)])
                event = self._emit("directory_check", proc,
                                   details_op=op, line=line,
                                   owner=int(owner[line]),
                                   sharers=int(sharers[line]))
                self._fail(
                    f"directory: owned line {line} has sharers "
                    "besides its owner", event)
        one = np.uint64(1)
        for q, cache in enumerate(system.caches):
            resident = cache.states != INVALID
            lines = cache.tags[resident]
            if lines.size == 0:
                continue
            states = cache.states[resident]
            line_owner = owner[lines]
            foreign = (line_owner >= 0) & (line_owner != q)
            if foreign.any():
                line = int(lines[np.argmax(foreign)])
                event = self._emit("directory_check", q,
                                   details_op=op, line=line,
                                   owner=int(owner[line]))
                self._fail(
                    f"SWMR violated: line {line} is owned by cache "
                    f"{int(owner[line])} but resident in cache {q}",
                    event)
            unregistered = (sharers[lines] >> np.uint64(q)) & one == 0
            if unregistered.any():
                line = int(lines[np.argmax(unregistered)])
                event = self._emit("directory_check", q,
                                   details_op=op, line=line)
                self._fail(
                    f"directory: line {line} resident in cache {q} "
                    "but not registered in the sharer set", event)
            unowned_dirty = (states >= EXCLUSIVE) & (line_owner != q)
            if unowned_dirty.any():
                line = int(lines[np.argmax(unowned_dirty)])
                event = self._emit("directory_check", q,
                                   details_op=op, line=line,
                                   owner=int(owner[line]))
                self._fail(
                    f"cache {q} holds line {line} EXCLUSIVE/MODIFIED "
                    "without directory ownership", event)

    def finish(self) -> None:
        self._sweep("final_sweep", -1)
