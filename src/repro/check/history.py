"""Post-run LRC/SC history verification.

When history recording is on (``checking(history=True)`` or
``REPRO_CHECK=history``), the :class:`~repro.check.checker.DsmChecker`
logs every interval closing, shared read, diff application, and eager
update — each stamped with the acting node's vector clock at that
moment.  After the run drains, :func:`verify_lrc_history` replays the
log and checks the lazy-release-consistency contract:

* **Completeness** — every read observes all writes in its
  happens-before past: for each page the read touches, every remote
  interval covered by the reader's vector clock that wrote the page
  must have been applied (via diff fetch or eager push) before the
  read completed.  A gap means the read returned a stale value even
  though synchronization ordered the write before it.
* **No future reads** — checked *online* at fault time by the
  :class:`~repro.check.checker.DsmChecker`: a node never applies a
  diff from an interval outside its happens-before past, so reads
  cannot observe writes that are not yet ordered before them.  At sync
  points the two rules together give sequential consistency: the
  acquirer's clock dominates the releaser's, so the acquirer sees
  exactly the releaser's ordered history.

Eager (update-protocol) pushes may apply intervals *early* — before
the receiver's clock covers them.  That is legal under LRC (it only
narrows the window of staleness; TSP's unsynchronized bound read is
deliberately racy and benefits from it), so eagerly applied intervals
are permitted extras, never gaps.

Events are compact tuples (see the ``record_*`` calls in
``checker.py``) so recording stays cheap; all analysis cost is paid
once, post-run.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Sequence, Tuple

from repro.check.events import make_event
from repro.errors import ConsistencyViolation

# Event shapes (first element is the tag):
#   ("interval", node, index, pages, vc)    -- interval closed
#   ("read",     node, first, last, vc)     -- read of pages [first,last)
#   ("apply",    node, page, ((c, i), ...)) -- fault applied these diffs
#   ("eager",    node, page, (c, i))        -- eager push applied

HistoryEvent = Tuple


def verify_lrc_history(events: Sequence[HistoryEvent],
                       fail: Callable[..., None]) -> int:
    """Replay ``events``; call ``fail(reason, event=...)`` on a gap.

    Returns the number of read/page checks performed (useful for
    asserting the verification actually covered something).
    """
    # creator -> [(index, pages)] in closing order (indices ascend).
    per_creator: Dict[int, List[Tuple[int, frozenset]]] = defaultdict(list)
    # (node, page) -> set of (creator, index) intervals applied so far.
    applied: Dict[Tuple[int, int], set] = defaultdict(set)
    checks = 0

    for ev in events:
        tag = ev[0]
        if tag == "interval":
            _, node, index, pages, _vc = ev
            per_creator[node].append((index, frozenset(pages)))
        elif tag == "apply":
            _, node, page, intervals = ev
            applied[(node, page)].update(intervals)
        elif tag == "eager":
            _, node, page, interval = ev
            applied[(node, page)].add(interval)
        elif tag == "read":
            _, node, first, last, vc = ev
            for page in range(first, last):
                seen = applied.get((node, page), ())
                for creator, closed in per_creator.items():
                    if creator == node:
                        continue  # own writes are always visible
                    upto = vc[creator] if creator < len(vc) else 0
                    for index, pages in closed:
                        if index > upto:
                            break  # indices ascend; rest are future
                        if page in pages and (creator, index) not in seen:
                            fail(
                                "stale read: interval "
                                f"{creator}:{index} wrote page {page} "
                                "inside the reader's happens-before "
                                "past but was never applied at the "
                                "reader",
                                event=make_event(
                                    "history_read", 0.0, node, page,
                                    missing_interval=(creator, index),
                                    reader_vc=tuple(vc)))
                        checks += 1
        else:  # pragma: no cover - defensive
            raise ConsistencyViolation(
                f"unknown history event tag {tag!r}")
    return checks
