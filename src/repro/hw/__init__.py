"""Hardware shared-memory implementations.

* :mod:`repro.hw.snoop` — Illinois-protocol bus snooping (the SGI
  4D/480 and the inside of each HS node).
* :mod:`repro.hw.directory` — full-map directory coherence over a
  crossbar (the AH architecture).
* :mod:`repro.hw.sync` — hardware synchronization gadgets (shared
  memory locks and barriers) used by both.
"""

from repro.hw.directory import DirectorySystem
from repro.hw.snoop import SnoopingSystem
from repro.hw.sync import HwBarrier, HwLockTable

__all__ = ["SnoopingSystem", "DirectorySystem", "HwLockTable", "HwBarrier"]
