"""Illinois-protocol snooping coherence on a shared bus.

Models the SGI 4D/480's second-level caches (§2.2): write-back,
direct-mapped, kept coherent by bus snooping with cache-to-cache
supply of dirty lines (the Illinois protocol of Papamarcos & Patel).
The processor blocks on misses, and every miss, upgrade, and writeback
occupies the shared bus — so bus saturation emerges naturally when
several processors stream data, which is exactly the effect that lets
the TreadMarks network outperform the 4D/480 on SOR.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.check.checker import SnoopChecker, active_check_config
from repro.mem.directcache import DirectMappedCache, EXCLUSIVE
from repro.net.bus import BusModel
from repro.stats.counters import Counters
from repro.trace.tracer import Category


class SnoopingSystem:
    """A set of caches snooping one bus."""

    def __init__(self, caches: List[DirectMappedCache], bus: BusModel,
                 counters: Counters, *, line_bytes: int,
                 hit_cycles: float = 1.0,
                 memory_extra_cycles: int = 10,
                 hold_bus_during_memory: bool = True) -> None:
        self.caches = caches
        self.bus = bus
        self.counters = counters
        self.line_bytes = line_bytes
        self.hit_cycles = hit_cycles
        self.memory_extra_cycles = memory_extra_cycles
        #: Circuit-switched buses (the 4D/480) hold the bus while
        #: memory services the request; split-transaction buses (HS
        #: nodes, which the paper grants "sufficient bus bandwidth to
        #: avoid contention") release it and only the requester waits.
        self.hold_bus_during_memory = hold_bus_during_memory
        #: Online SWMR checker (repro.check); None unless armed.
        cfg = active_check_config()
        self.checker = SnoopChecker(self, cfg) if cfg is not None else None

    # ------------------------------------------------------------------
    def _others_with(self, proc: int, lines: np.ndarray):
        """(any_present, any_dirty) masks over ``lines`` across peers."""
        any_present = np.zeros(lines.size, dtype=bool)
        any_dirty = np.zeros(lines.size, dtype=bool)
        for q, cache in enumerate(self.caches):
            if q == proc:
                continue
            present, dirty = cache.probe_lines(lines)
            any_present |= present
            any_dirty |= dirty
        return any_present, any_dirty

    def _miss_service(self, now: int, n_fills: int, n_writebacks: int,
                      n_upgrades: int) -> int:
        """Charge the bus for a batch of transactions; returns end time.

        Fill and writeback transactions move a full line; upgrade
        (invalidate) transactions are address-only.  Memory service
        time is charged while the bus is held, 4D/480-style.
        """
        tracer = self.bus.tracer
        end = now
        if n_fills + n_writebacks:
            per = self.bus.timing.transaction_cycles(self.line_bytes)
            trailing = 0
            if self.hold_bus_during_memory:
                per += self.memory_extra_cycles
            else:
                trailing = self.memory_extra_cycles * n_fills
            occupancy = per * (n_fills + n_writebacks)
            _s, end = self.bus.resource.acquire(now, occupancy)
            if tracer.enabled:
                tracer.complete(0, Category.NETWORK, "miss_fill",
                                _s, end, track=self.bus.name,
                                fills=n_fills, writebacks=n_writebacks)
            end += trailing
            self.bus.counters.bus_transactions += n_fills + n_writebacks
            self.bus.counters.bus_data_bytes += (
                (n_fills + n_writebacks) * self.line_bytes)
        if n_upgrades:
            per = self.bus.timing.transaction_cycles(0)
            _s, end2 = self.bus.resource.acquire(max(now, end),
                                                 per * n_upgrades)
            if tracer.enabled:
                tracer.complete(0, Category.NETWORK, "upgrade",
                                _s, end2, track=self.bus.name,
                                upgrades=n_upgrades)
            self.bus.counters.bus_transactions += n_upgrades
            end = max(end, end2)
        return end

    # ------------------------------------------------------------------
    def read(self, proc: int, first_line: int, last_line: int,
             now: int) -> int:
        """Bulk read; returns the completion time."""
        cache = self.caches[proc]
        res = cache.read(first_line, last_line)
        self.counters.cache_hits += res.hits
        hit_cost = int(res.hits * self.hit_cycles)
        if res.misses == 0 and res.writebacks == 0:
            return now + hit_cost

        any_present, any_dirty = self._others_with(proc, res.miss_lines)
        n_c2c = int(np.count_nonzero(any_dirty))
        self.counters.cache_to_cache += n_c2c
        self.counters.cache_misses_local += res.misses

        # Every peer copy of a missed line is downgraded to SHARED:
        # dirty suppliers flush (memory is updated), and clean
        # EXCLUSIVE holders lose exclusivity — otherwise a later write
        # by them would silently hit on E and break single-writer.
        # Lines nobody else holds fill EXCLUSIVE.
        for q, other in enumerate(self.caches):
            if q == proc:
                continue
            other.downgrade_lines(res.miss_lines)
        exclusive_fill = res.miss_lines[~any_present]
        cache.promote(exclusive_fill, EXCLUSIVE)

        end = self._miss_service(now + hit_cost, res.misses,
                                 res.writebacks, 0)
        self.counters.writebacks += res.writebacks
        if self.checker is not None:
            self.checker.after_op("read", proc, end,
                                  lines=res.miss_lines)
        return end

    def write(self, proc: int, first_line: int, last_line: int,
              now: int) -> int:
        """Bulk write; returns the completion time."""
        cache = self.caches[proc]
        res = cache.write(first_line, last_line)
        self.counters.cache_hits += res.hits
        hit_cost = int(res.hits * self.hit_cycles)
        self.counters.cache_misses_local += res.misses

        # Invalidate every other copy of missed or upgraded lines;
        # dirty remote copies are flushed (one extra transaction each).
        need_own = (np.concatenate([res.miss_lines, res.upgrade_lines])
                    if res.upgrade_lines.size else res.miss_lines)
        n_flush = 0
        if need_own.size:
            for q, other in enumerate(self.caches):
                if q == proc:
                    continue
                present, dirty = other.invalidate_lines(need_own)
                self.counters.invalidations += present
                n_flush += dirty

        end = self._miss_service(now + hit_cost,
                                 res.misses + n_flush,
                                 res.writebacks,
                                 res.upgrades)
        self.counters.writebacks += res.writebacks
        if self.checker is not None:
            self.checker.after_op("write", proc, end, lines=need_own)
        return end
