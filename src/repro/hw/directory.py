"""Full-map directory coherence over a crossbar (the AH architecture).

Each node is home to an interleaved share of physical pages.  The
directory tracks, per line, an exclusive owner and a sharer bitmask.
Miss latencies fall into the paper's three classes (§3.1): satisfied
by local memory, by a clean remote home, or by a dirty line at a third
node — the 20 / 90..130-cycle range quoted for DASH/FLASH-class
machines.  Processors block on misses (in-order CPUs), so bulk-access
latency is the serial sum of per-line services; crossbar ports add
queueing when traffic converges on one node (e.g. TSP's shared queue).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.check.checker import DirectoryChecker, active_check_config
from repro.errors import ConfigurationError
from repro.mem.directcache import DirectMappedCache, EXCLUSIVE
from repro.net.crossbar import CrossbarNetwork
from repro.stats.counters import Counters

_BYTE_POPCOUNT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(axis=1)


def popcount(values: np.ndarray) -> np.ndarray:
    """Per-element population count of a uint64 array."""
    as_bytes = values.view(np.uint8).reshape(values.size, 8)
    return _BYTE_POPCOUNT[as_bytes].sum(axis=1)


class DirectorySystem:
    """Directory-based coherent memory across uniprocessor nodes."""

    def __init__(self, caches: List[DirectMappedCache],
                 network: CrossbarNetwork, counters: Counters, *,
                 total_lines: int, lines_per_page: int,
                 line_bytes: int,
                 hit_cycles: float = 1.0,
                 local_miss_cycles: int = 20,
                 remote_clean_cycles: int = 90,
                 remote_dirty_cycles: int = 130,
                 request_bytes: int = 16) -> None:
        if len(caches) > 64:
            raise ConfigurationError(
                "directory sharer bitmask supports at most 64 processors")
        self.caches = caches
        self.network = network
        self.counters = counters
        self.num_procs = len(caches)
        self.total_lines = total_lines
        self.lines_per_page = lines_per_page
        self.line_bytes = line_bytes
        self.hit_cycles = hit_cycles
        self.local_miss_cycles = local_miss_cycles
        self.remote_clean_cycles = remote_clean_cycles
        self.remote_dirty_cycles = remote_dirty_cycles
        self.request_bytes = request_bytes
        self.owner = np.full(total_lines, -1, dtype=np.int32)
        self.sharers = np.zeros(total_lines, dtype=np.uint64)
        total_pages = max(1, total_lines // lines_per_page)
        self._page_home = np.full(total_pages, -1, dtype=np.int32)
        #: Online directory/SWMR checker (repro.check); None unless
        #: armed.
        cfg = active_check_config()
        self.checker = (DirectoryChecker(self, cfg)
                        if cfg is not None else None)

    # ------------------------------------------------------------------
    def home_of(self, lines: np.ndarray) -> np.ndarray:
        """Home node of each line (first-touch page placement).

        A page's home is the first node that accesses it — the
        standard NUMA placement of the era, which lands
        band-partitioned data (SOR's grid, Water's molecule array) at
        its owner regardless of how partitions align with pages.
        """
        pages = lines // self.lines_per_page
        homes = self._page_home[pages]
        return homes

    def _claim_homes(self, proc: int, lines: np.ndarray) -> None:
        """First-touch: unplaced pages become local to the toucher."""
        if lines.size == 0:
            return
        pages = lines // self.lines_per_page
        unset = self._page_home[pages] < 0
        if unset.any():
            self._page_home[pages[unset]] = proc

    def _bit(self, proc: int) -> np.uint64:
        return np.uint64(1) << np.uint64(proc)

    def _charge_ports(self, proc: int, lines: np.ndarray,
                      now: int) -> int:
        """Occupy crossbar ports for a batch of line transfers.

        Requests leave the requester; responses converge on it; each
        involved home's output port carries its share.
        """
        if lines.size == 0:
            return now
        homes = self.home_of(lines)
        remote = homes != proc
        n_remote = int(np.count_nonzero(remote))
        if n_remote == 0:
            return now
        wire_line = self.network.wire_cycles(self.line_bytes)
        wire_req = self.network.wire_cycles(self.request_bytes)
        self.counters.network_hops += 2 * n_remote
        _s, out_end = self.network.out_ports[proc].acquire(
            now, wire_req * n_remote)
        end = out_end
        counts = np.bincount(homes[remote], minlength=self.num_procs)
        for home in np.flatnonzero(counts):
            _s, h_end = self.network.out_ports[home].acquire(
                now, wire_line * int(counts[home]))
            end = max(end, h_end)
        _s, in_end = self.network.in_ports[proc].acquire(
            now, wire_line * n_remote)
        return max(end, in_end)

    def _classify(self, proc: int, lines: np.ndarray):
        """Split miss lines into latency classes."""
        own = self.owner[lines]
        dirty_remote = (own >= 0) & (own != proc)
        homes = self.home_of(lines)
        local = (homes == proc) & ~dirty_remote
        remote_clean = (homes != proc) & ~dirty_remote
        return local, remote_clean, dirty_remote

    # ------------------------------------------------------------------
    def read(self, proc: int, first_line: int, last_line: int,
             now: int) -> int:
        cache = self.caches[proc]
        res = cache.read(first_line, last_line)
        self.counters.cache_hits += res.hits
        latency = int(res.hits * self.hit_cycles)
        if res.misses == 0 and res.writebacks == 0:
            return now + latency

        lines = res.miss_lines
        self._claim_homes(proc, lines)
        local, remote_clean, dirty_remote = self._classify(proc, lines)
        latency += (int(np.count_nonzero(local)) * self.local_miss_cycles +
                    int(np.count_nonzero(remote_clean)) *
                    self.remote_clean_cycles +
                    int(np.count_nonzero(dirty_remote)) *
                    self.remote_dirty_cycles)
        self.counters.cache_misses_local += int(np.count_nonzero(local))
        self.counters.cache_misses_remote += int(
            np.count_nonzero(remote_clean | dirty_remote))

        # Owned (E/M) third-party copies are downgraded to SHARED and
        # dirty data is supplied cache-to-cache / written back.
        owned_lines = lines[dirty_remote]
        if owned_lines.size:
            owners = self.owner[owned_lines]
            for q in np.unique(owners):
                q_lines = owned_lines[owners == q]
                _present, dirty = self.caches[int(q)].downgrade_lines(
                    q_lines)
                self.counters.writebacks += dirty
                self.counters.cache_to_cache += dirty
                self.sharers[q_lines] |= self._bit(int(q))
            self.owner[owned_lines] = -1

        # Register sharing; a line nobody else holds fills EXCLUSIVE
        # and takes directory ownership, so the later silent E -> M
        # upgrade is already covered.
        unshared = lines[(self.sharers[lines] == 0) &
                         (self.owner[lines] == -1)]
        self.sharers[lines] |= self._bit(proc)
        if unshared.size:
            cache.promote(unshared, EXCLUSIVE)
            self.owner[unshared] = proc
        self._handle_evictions(proc, res)

        end_ports = self._charge_ports(proc, lines, now + latency)
        end = max(now + latency, end_ports)
        if self.checker is not None:
            self.checker.after_op("read", proc, end, lines=lines)
        return end

    def write(self, proc: int, first_line: int, last_line: int,
              now: int) -> int:
        cache = self.caches[proc]
        res = cache.write(first_line, last_line)
        self.counters.cache_hits += res.hits
        latency = int(res.hits * self.hit_cycles)
        need_own = (np.concatenate([res.miss_lines, res.upgrade_lines])
                    if res.upgrade_lines.size else res.miss_lines)
        if need_own.size == 0 and res.writebacks == 0:
            return now + latency

        self._claim_homes(proc, need_own)
        local, remote_clean, dirty_remote = self._classify(proc, need_own)
        others = self.sharers[need_own] & ~self._bit(proc)
        n_inval = int(popcount(others).sum())
        has_sharers = others != 0

        # Lines with other sharers or a dirty owner pay the long
        # latency class; clean exclusive-to-us lines pay their home's.
        expensive = dirty_remote | has_sharers
        latency += (int(np.count_nonzero(expensive)) *
                    self.remote_dirty_cycles +
                    int(np.count_nonzero(local & ~expensive)) *
                    self.local_miss_cycles +
                    int(np.count_nonzero(remote_clean & ~expensive)) *
                    self.remote_clean_cycles)
        self.counters.cache_misses_local += int(
            np.count_nonzero(local & ~expensive))
        self.counters.cache_misses_remote += int(
            np.count_nonzero(expensive | (remote_clean & ~expensive)))
        self.counters.invalidations += n_inval

        # Invalidate every other copy.
        if n_inval or dirty_remote.any():
            for q in range(self.num_procs):
                if q == proc:
                    continue
                q_bit = self._bit(q)
                q_lines = need_own[(others & q_bit) != 0]
                if q_lines.size:
                    self.caches[q].invalidate_lines(q_lines)
            dirty_lines = need_own[dirty_remote]
            if dirty_lines.size:
                owners = self.owner[dirty_lines]
                for q in np.unique(owners):
                    if int(q) == proc:
                        continue
                    q_lines = dirty_lines[owners == q]
                    self.caches[int(q)].invalidate_lines(q_lines)
                    self.counters.writebacks += int(q_lines.size)

        self.owner[need_own] = proc
        self.sharers[need_own] = self._bit(proc)
        self._handle_evictions(proc, res)

        end_ports = self._charge_ports(proc, need_own, now + latency)
        end = max(now + latency, end_ports)
        if self.checker is not None:
            self.checker.after_op("write", proc, end, lines=need_own)
        return end

    # ------------------------------------------------------------------
    def _handle_evictions(self, proc: int, res) -> None:
        """Deregister evicted lines (dirty ones write back to home).

        A bulk access longer than the cache may evict a line in one
        chunk and refetch it in a later chunk of the same access; such
        a line ends the access resident, so its registration (done
        before this call) must survive even though the interim
        eviction's writeback traffic is real.
        """
        cache = self.caches[proc]
        if res.evicted_dirty_lines.size:
            self.counters.writebacks += int(res.evicted_dirty_lines.size)
            refetched, _dirty = cache.probe_lines(res.evicted_dirty_lines)
            gone = res.evicted_dirty_lines[~refetched]
            mine = gone[self.owner[gone] == proc]
            self.owner[mine] = -1
            self.sharers[gone] &= ~self._bit(proc)
        if res.evicted_clean_lines.size:
            # Clean EXCLUSIVE victims also drop directory ownership.
            refetched, _dirty = cache.probe_lines(res.evicted_clean_lines)
            gone = res.evicted_clean_lines[~refetched]
            mine = gone[self.owner[gone] == proc]
            self.owner[mine] = -1
            self.sharers[gone] &= ~self._bit(proc)

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Directory invariants (used by tests).

        A line with an owner has exactly that sharer bit set; a cache
        line in MODIFIED state must be registered as owned.
        """
        owned = self.owner >= 0
        if owned.any():
            bits = self.sharers[owned]
            expect = np.uint64(1) << self.owner[owned].astype(np.uint64)
            if not (bits == expect).all():
                raise AssertionError("owned lines must have a single sharer")
