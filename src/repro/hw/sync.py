"""Hardware synchronization gadgets: shared-memory locks and barriers.

On the SGI 4D/480 and the AH machine, locks and barriers are ordinary
shared-memory algorithms (test-and-set / counters); their cost is a
handful of coherence transactions rather than kernel-mediated
messages.  The gadgets here charge parametric per-operation costs and
serialize through a resource (the snooping bus, or the barrier
counter's home-node port), so contention behaves realistically without
simulating the spin loops instruction by instruction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.errors import ProtocolError
from repro.sim.engine import Engine
from repro.sim.resource import Resource

DoneCallback = Callable[[int], None]


@dataclass
class _HwLock:
    held: bool = False
    holder: Optional[int] = None
    last_owner: Optional[int] = None
    waiters: Deque = field(default_factory=deque)
    acquires: int = 0
    contended: int = 0
    migrations: int = 0


class HwLockTable:
    """Test-and-set style locks with FIFO handoff.

    The lock word lives in a cache line: a processor that reacquires a
    lock it released last (the line is still in its cache, EXCLUSIVE)
    pays only ``local_cycles``; acquiring a lock last held elsewhere
    migrates the line — a coherence transaction through ``serializer``
    costing ``acquire_cycles``.  This line-affinity behaviour is why
    mostly-private locks (Water's own-molecule updates) are nearly
    free on hardware while migrating locks pay bus/network latency.
    """

    def __init__(self, engine: Engine, *,
                 acquire_cycles: int,
                 release_cycles: int,
                 handoff_cycles: int,
                 local_cycles: int = 5,
                 serializer: Optional[Resource] = None) -> None:
        self.engine = engine
        self.acquire_cycles = acquire_cycles
        self.release_cycles = release_cycles
        self.handoff_cycles = handoff_cycles
        self.local_cycles = local_cycles
        self.serializer = serializer
        self._locks: Dict[int, _HwLock] = {}

    def _lock(self, lock_id: int) -> _HwLock:
        lock = self._locks.get(lock_id)
        if lock is None:
            lock = _HwLock()
            self._locks[lock_id] = lock
        return lock

    def _charge(self, now: int, cycles: int) -> int:
        if self.serializer is None:
            return now + cycles
        _s, end = self.serializer.acquire(now, cycles)
        return end

    # ------------------------------------------------------------------
    def acquire(self, lock_id: int, proc: int, done: DoneCallback) -> None:
        lock = self._lock(lock_id)
        lock.acquires += 1
        if not lock.held:
            lock.held = True
            lock.holder = proc
            if lock.last_owner == proc or lock.last_owner is None:
                at = self.engine.now + self.local_cycles
            else:
                lock.migrations += 1
                at = self._charge(self.engine.now, self.acquire_cycles)
            lock.last_owner = proc
            self.engine.schedule_at(at, done, at)
        else:
            lock.contended += 1
            lock.waiters.append((proc, done))

    def release(self, lock_id: int, proc: int, done: DoneCallback) -> None:
        lock = self._lock(lock_id)
        if not lock.held or lock.holder != proc:
            raise ProtocolError(
                f"hw lock {lock_id} released by {proc}, holder is "
                f"{lock.holder}")
        at = self.engine.now + self.release_cycles
        if lock.waiters:
            next_proc, next_done = lock.waiters.popleft()
            lock.holder = next_proc
            lock.last_owner = next_proc
            lock.migrations += 1
            grant_at = self._charge(at, self.handoff_cycles)
            self.engine.schedule_at(grant_at, next_done, grant_at)
        else:
            lock.held = False
            lock.holder = None
        self.engine.schedule_at(at, done, at)

    def stats(self) -> Dict[int, Dict[str, int]]:
        return {lid: {"acquires": lk.acquires, "contended": lk.contended}
                for lid, lk in self._locks.items()}


@dataclass
class _HwBarrierEpisode:
    waiting: Dict[int, DoneCallback] = field(default_factory=dict)


class HwBarrier:
    """Centralized counter barrier.

    Each arrival performs an atomic increment (serialized through the
    counter's line); the last arrival releases everyone, and each
    departure refetches the flag line (another serialized access), so
    barrier cost grows linearly with the processor count as on a real
    bus machine.
    """

    def __init__(self, engine: Engine, num_procs: int, *,
                 arrive_cycles: int,
                 depart_cycles: int,
                 serializer: Optional[Resource] = None) -> None:
        self.engine = engine
        self.num_procs = num_procs
        self.arrive_cycles = arrive_cycles
        self.depart_cycles = depart_cycles
        self.serializer = serializer
        self._episodes: Dict[int, _HwBarrierEpisode] = {}
        self.completed = 0

    def _charge(self, now: int, cycles: int) -> int:
        if self.serializer is None:
            return now + cycles
        _s, end = self.serializer.acquire(now, cycles)
        return end

    def arrive(self, barrier_id: int, proc: int, done: DoneCallback) -> None:
        episode = self._episodes.get(barrier_id)
        if episode is None:
            episode = _HwBarrierEpisode()
            self._episodes[barrier_id] = episode
        if proc in episode.waiting:
            raise ProtocolError(
                f"proc {proc} arrived twice at hw barrier {barrier_id}")
        episode.waiting[proc] = done
        counted_at = self._charge(self.engine.now, self.arrive_cycles)
        if len(episode.waiting) < self.num_procs:
            return
        # Last arrival: release everyone.
        del self._episodes[barrier_id]
        self.completed += 1
        for _p, cb in episode.waiting.items():
            at = self._charge(counted_at, self.depart_cycles)
            self.engine.schedule_at(at, cb, at)
