"""Hardware synchronization gadgets: shared-memory locks and barriers.

On the SGI 4D/480 and the AH machine, locks and barriers are ordinary
shared-memory algorithms (test-and-set / counters); their cost is a
handful of coherence transactions rather than kernel-mediated
messages.  The gadgets here charge parametric per-operation costs and
serialize through a resource (the snooping bus, or the barrier
counter's home-node port), so contention behaves realistically without
simulating the spin loops instruction by instruction.

The default gadgets are the paper's: a test-and-set lock with FIFO
handoff (:class:`HwLockTable`) and a centralized counter barrier
(:class:`HwBarrier`), both serializing every transaction through the
shared resource.  The scalable alternatives of the synchronization
design space (:mod:`repro.sync`) swap the coherence traffic pattern:

* ``mcs`` locks enqueue with one serialized swap but hand off
  cache-to-cache between waiters, off the shared resource;
* ``ticket`` locks add the invalidation storm a real ticket lock
  causes — every release makes all spinners refetch the now-serving
  counter through the serializer;
* ``combining`` locks and barriers push their fetch-and-ops through a
  :class:`~repro.net.crossbar.CombiningStage`, merging bursts in the
  interconnect before they reach the serializing home port;
* ``tree`` barriers replace the O(n) serialized counter with a
  radix-k software tree: per-arrival work is unserialized (each
  subtree counter lives in its own line/home) and the critical path
  is the tree depth, not the processor count.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.errors import ConfigurationError, ProtocolError
from repro.sim.engine import Engine
from repro.sim.resource import Resource

DoneCallback = Callable[[int], None]


@dataclass
class _HwLock:
    held: bool = False
    holder: Optional[int] = None
    last_owner: Optional[int] = None
    waiters: Deque = field(default_factory=deque)
    acquires: int = 0
    contended: int = 0
    migrations: int = 0


class HwLockTable:
    """Test-and-set style locks with FIFO handoff.

    The lock word lives in a cache line: a processor that reacquires a
    lock it released last (the line is still in its cache, EXCLUSIVE)
    pays only ``local_cycles``; acquiring a lock last held elsewhere
    migrates the line — a coherence transaction through ``serializer``
    costing ``acquire_cycles``.  This line-affinity behaviour is why
    mostly-private locks (Water's own-molecule updates) are nearly
    free on hardware while migrating locks pay bus/network latency.

    Subclasses vary the *contended* path only — what an enqueue costs
    and whether the handoff serializes — so the uncontended
    line-affinity fast path is identical across algorithms.
    """

    algorithm = "token"

    def __init__(self, engine: Engine, *,
                 acquire_cycles: int,
                 release_cycles: int,
                 handoff_cycles: int,
                 local_cycles: int = 5,
                 serializer: Optional[Resource] = None,
                 stage=None) -> None:
        self.engine = engine
        self.acquire_cycles = acquire_cycles
        self.release_cycles = release_cycles
        self.handoff_cycles = handoff_cycles
        self.local_cycles = local_cycles
        self.serializer = serializer
        self.stage = stage
        self._locks: Dict[int, _HwLock] = {}

    def _lock(self, lock_id: int) -> _HwLock:
        lock = self._locks.get(lock_id)
        if lock is None:
            lock = _HwLock()
            self._locks[lock_id] = lock
        return lock

    def _charge(self, now: int, cycles: int) -> int:
        if self.serializer is None:
            return now + cycles
        _s, end = self.serializer.acquire(now, cycles)
        return end

    # ------------------------------------------------------------------
    def acquire(self, lock_id: int, proc: int, done: DoneCallback) -> None:
        lock = self._lock(lock_id)
        lock.acquires += 1
        if not lock.held:
            lock.held = True
            lock.holder = proc
            if lock.last_owner == proc or lock.last_owner is None:
                at = self.engine.now + self.local_cycles
            else:
                lock.migrations += 1
                at = self._charge(self.engine.now, self.acquire_cycles)
            lock.last_owner = proc
            self.engine.schedule_at(at, done, at)
        else:
            lock.contended += 1
            self._enqueue(lock, lock_id, proc, done)

    def _enqueue(self, lock: _HwLock, lock_id: int, proc: int,
                 done: DoneCallback) -> None:
        """Contended arrival (default test-and-set: free spinning)."""
        lock.waiters.append((proc, done))

    def release(self, lock_id: int, proc: int, done: DoneCallback) -> None:
        lock = self._lock(lock_id)
        if not lock.held or lock.holder != proc:
            raise ProtocolError(
                f"hw lock {lock_id} released by {proc}, holder is "
                f"{lock.holder}")
        at = self.engine.now + self.release_cycles
        if lock.waiters:
            next_proc, next_done = lock.waiters.popleft()
            lock.holder = next_proc
            lock.last_owner = next_proc
            lock.migrations += 1
            grant_at = self._handoff(lock, lock_id, at)
            self.engine.schedule_at(grant_at, next_done, grant_at)
        else:
            lock.held = False
            lock.holder = None
        self.engine.schedule_at(at, done, at)

    def _handoff(self, lock: _HwLock, lock_id: int, at: int) -> int:
        """When the new holder may proceed (default: serialized)."""
        return self._charge(at, self.handoff_cycles)

    def stats(self) -> Dict[int, Dict[str, int]]:
        return {lid: {"acquires": lk.acquires, "contended": lk.contended}
                for lid, lk in self._locks.items()}


class HwMcsLockTable(HwLockTable):
    """MCS queue lock: serialized swap on enqueue, local handoff.

    The enqueue swap is one atomic transaction through the serializer
    (charged off the waiter's critical path — it spins locally after);
    the handoff writes the successor's own queue node, a direct
    cache-to-cache transfer that does *not* occupy the shared
    resource.  Under contention this diverts all handoff traffic off
    the bus/home port, which is the whole point of MCS.
    """

    algorithm = "mcs"

    def _enqueue(self, lock: _HwLock, lock_id: int, proc: int,
                 done: DoneCallback) -> None:
        self._charge(self.engine.now, self.acquire_cycles)  # tail swap
        lock.waiters.append((proc, done))

    def _handoff(self, lock: _HwLock, lock_id: int, at: int) -> int:
        return at + self.handoff_cycles  # successor's line: unserialized


class HwTicketLockTable(HwLockTable):
    """Ticket lock: fair, with the release-time invalidation storm.

    Enqueue grabs a ticket (serialized fetch-and-add).  Every release
    bumps the now-serving counter, invalidating the line *all*
    remaining spinners cache — each refetch is a serialized
    transaction, so release cost grows with the spinner count.  The
    granted waiter still pays the serialized handoff.
    """

    algorithm = "ticket"

    def _enqueue(self, lock: _HwLock, lock_id: int, proc: int,
                 done: DoneCallback) -> None:
        self._charge(self.engine.now, self.acquire_cycles)  # ticket F&A
        lock.waiters.append((proc, done))

    def _handoff(self, lock: _HwLock, lock_id: int, at: int) -> int:
        grant_at = self._charge(at, self.handoff_cycles)
        for _spinner in lock.waiters:  # popleft already removed the head
            self._charge(at, self.local_cycles)  # now-serving refetch
        return grant_at


class HwCombiningLockTable(HwLockTable):
    """Lock whose ticket fetch-and-add combines in the interconnect.

    Contended arrivals issue their fetch-and-add through a
    :class:`~repro.net.crossbar.CombiningStage`: bursts merge in the
    fabric and the serializing home port sees one transaction per
    combining window.  Handoff is a direct transfer to the successor,
    off the shared resource.
    """

    algorithm = "combining"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.stage is None:
            raise ConfigurationError(
                "combining hw locks need a CombiningStage (stage=...)")

    def _enqueue(self, lock: _HwLock, lock_id: int, proc: int,
                 done: DoneCallback) -> None:
        self.stage.fetch_op(("lock", lock_id), self.engine.now,
                            self.acquire_cycles)
        lock.waiters.append((proc, done))

    def _handoff(self, lock: _HwLock, lock_id: int, at: int) -> int:
        return at + self.handoff_cycles


@dataclass
class _HwBarrierEpisode:
    waiting: Dict[int, DoneCallback] = field(default_factory=dict)


class HwBarrier:
    """Centralized counter barrier.

    Each arrival performs an atomic increment (serialized through the
    counter's line); the last arrival releases everyone, and each
    departure refetches the flag line (another serialized access), so
    barrier cost grows linearly with the processor count as on a real
    bus machine.

    Subclasses override :meth:`_count_arrival` (what one arrival
    costs) and :meth:`_release` (how departures propagate).
    """

    algorithm = "central"

    def __init__(self, engine: Engine, num_procs: int, *,
                 arrive_cycles: int,
                 depart_cycles: int,
                 serializer: Optional[Resource] = None,
                 stage=None) -> None:
        self.engine = engine
        self.num_procs = num_procs
        self.arrive_cycles = arrive_cycles
        self.depart_cycles = depart_cycles
        self.serializer = serializer
        self.stage = stage
        self._episodes: Dict[int, _HwBarrierEpisode] = {}
        self.completed = 0

    def _charge(self, now: int, cycles: int) -> int:
        if self.serializer is None:
            return now + cycles
        _s, end = self.serializer.acquire(now, cycles)
        return end

    def arrive(self, barrier_id: int, proc: int, done: DoneCallback) -> None:
        episode = self._episodes.get(barrier_id)
        if episode is None:
            episode = _HwBarrierEpisode()
            self._episodes[barrier_id] = episode
        if proc in episode.waiting:
            raise ProtocolError(
                f"proc {proc} arrived twice at hw barrier {barrier_id}")
        episode.waiting[proc] = done
        counted_at = self._count_arrival(barrier_id)
        if len(episode.waiting) < self.num_procs:
            return
        # Last arrival: release everyone.
        del self._episodes[barrier_id]
        self.completed += 1
        self._release(episode, counted_at)

    def _count_arrival(self, barrier_id: int) -> int:
        return self._charge(self.engine.now, self.arrive_cycles)

    def _release(self, episode: _HwBarrierEpisode, counted_at: int) -> None:
        for _p, cb in episode.waiting.items():
            at = self._charge(counted_at, self.depart_cycles)
            self.engine.schedule_at(at, cb, at)


class HwTreeBarrier(HwBarrier):
    """Radix-k software combining tree barrier.

    Arrivals increment their subtree's counter — a distinct cache
    line / home per tree node, so arrival work does not serialize
    through the shared resource.  The last arrival propagates up the
    remaining levels and the release wave runs back down, so the
    critical path is ``depth * (arrive + depart)`` instead of
    ``n * depart`` serialized transactions.
    """

    algorithm = "tree"

    def __init__(self, *args, tree_radix: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if tree_radix < 2:
            raise ConfigurationError(
                f"tree barrier radix must be >= 2, got {tree_radix}")
        self.tree_radix = tree_radix

    @property
    def _depth(self) -> int:
        if self.num_procs <= 1:
            return 0
        return max(1, math.ceil(math.log(self.num_procs, self.tree_radix)))

    def _count_arrival(self, barrier_id: int) -> int:
        return self.engine.now + self.arrive_cycles  # own subtree line

    def _release(self, episode: _HwBarrierEpisode, counted_at: int) -> None:
        depth = self._depth
        up = depth * self.arrive_cycles           # propagate to the root
        down = max(1, depth) * self.depart_cycles  # wave back down
        at = counted_at + up + down
        for _p, cb in episode.waiting.items():
            self.engine.schedule_at(at, cb, at)


class HwCombiningBarrier(HwBarrier):
    """Counter barrier whose increments combine in the interconnect.

    Arrival fetch-and-adds travel through a
    :class:`~repro.net.crossbar.CombiningStage`; bursts merge before
    reaching the counter's serializing home port.  The release is a
    fabric multicast of the flag line: one serialized flag write, then
    every processor departs after its (unserialized) refetch.
    """

    algorithm = "combining"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.stage is None:
            raise ConfigurationError(
                "combining hw barrier needs a CombiningStage (stage=...)")

    def _count_arrival(self, barrier_id: int) -> int:
        return self.stage.fetch_op(("barrier", barrier_id),
                                   self.engine.now, self.arrive_cycles)

    def _release(self, episode: _HwBarrierEpisode, counted_at: int) -> None:
        flagged_at = self._charge(counted_at, self.depart_cycles)
        at = flagged_at + self.depart_cycles  # multicast refetch, parallel
        for _p, cb in episode.waiting.items():
            self.engine.schedule_at(at, cb, at)


#: Lock algorithm name -> hardware implementation class.
HW_LOCK_IMPLS: Dict[str, type] = {
    "token": HwLockTable,
    "mcs": HwMcsLockTable,
    "ticket": HwTicketLockTable,
    "combining": HwCombiningLockTable,
}

#: Barrier algorithm name -> hardware implementation class.
HW_BARRIER_IMPLS: Dict[str, type] = {
    "central": HwBarrier,
    "tree": HwTreeBarrier,
    "combining": HwCombiningBarrier,
}


def make_hw_locks(algorithm: str, engine: Engine, **kwargs) -> HwLockTable:
    """Build the hardware lock table for ``algorithm``."""
    impl = HW_LOCK_IMPLS.get(algorithm)
    if impl is None:
        raise ConfigurationError(
            f"unknown hw lock algorithm '{algorithm}' "
            f"(known: {', '.join(HW_LOCK_IMPLS)})")
    return impl(engine, **kwargs)


def make_hw_barrier(algorithm: str, engine: Engine, num_procs: int, *,
                    tree_radix: int = 4, **kwargs) -> HwBarrier:
    """Build the hardware barrier for ``algorithm``."""
    impl = HW_BARRIER_IMPLS.get(algorithm)
    if impl is None:
        raise ConfigurationError(
            f"unknown hw barrier algorithm '{algorithm}' "
            f"(known: {', '.join(HW_BARRIER_IMPLS)})")
    if algorithm == "tree":
        return impl(engine, num_procs, tree_radix=tree_radix, **kwargs)
    return impl(engine, num_procs, **kwargs)
