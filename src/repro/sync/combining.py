"""In-network combining for software DSM synchronization traffic.

The NYU-Ultracomputer idea: when several processors issue the *same*
fetch-and-op (a lock-ticket grab, a barrier-arrival increment) toward
the same destination at nearly the same time, a combining switch
merges them in the fabric and presents the destination with one
operation.  The win is not wire time — the requests are tiny — it is
the destination's *handler CPU*, which on the software machines
charges thousands of cycles per message received and is exactly the
serialization the paper measures behind its ~2 ms 8-node barrier.

:class:`SwitchCombiner` models this on top of any
:class:`~repro.net.atm.AtmNetwork`-shaped transport:

* **fan-in** — messages to the same ``(dst, key)`` whose *sends*
  fall inside one combining window ride the fabric together: the
  window opener pays the normal receive cost, followers charge only
  ``combine_cycles`` (the switch's merge stage) instead of occupying
  the destination handler, and each bumps ``combining_hits``.
* **fan-out** — the mirror image for multicasts (barrier departure
  waves): the first copy pays the full sender CPU cost, replicas of
  the same ``(src, key)`` within the window charge ``combine_cycles``
  on the send side while every destination still pays its own
  receive cost (each node's CPU must process its departure).

Windows are keyed by simulated time only — fully deterministic, no
randomness, no wall clock.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.stats.counters import DataKind, MsgKind
from repro.trace.tracer import Category


class SwitchCombiner:
    """Deterministic combining windows over a point-to-point network."""

    def __init__(self, net, *, window_cycles: int,
                 combine_cycles: int) -> None:
        if window_cycles < 0 or combine_cycles < 0:
            raise ValueError("combining windows/cycles must be >= 0")
        self.net = net
        self.window_cycles = window_cycles
        self.combine_cycles = combine_cycles
        self._in_windows: Dict[Tuple[int, object], int] = {}
        self._out_windows: Dict[Tuple[int, object], int] = {}

    # ------------------------------------------------------------------
    def _combines(self, windows: Dict[Tuple[int, object], int],
                  wkey: Tuple[int, object], now: int) -> bool:
        """True when ``now`` falls inside an open window for ``wkey``
        (a combining hit); otherwise opens a fresh window."""
        end = windows.get(wkey)
        if end is not None and now <= end:
            return True
        windows[wkey] = now + self.window_cycles
        return False

    def _hit(self, node: int, key: object) -> None:
        counters = self.net.counters
        counters.combining_hits += 1
        tracer = self.net.engine.tracer
        if tracer.enabled:
            tracer.instant(node, Category.SYNC, "combining_hit",
                           self.net.engine.now, track="switch",
                           key=str(key))

    # ------------------------------------------------------------------
    def fan_in(self, src: int, dst: int, payload_bytes: int, *,
               kind: MsgKind, key: object,
               data_kind: DataKind = DataKind.CONSISTENCY,
               on_delivered: Optional[Callable[[int], None]] = None) -> int:
        """Send toward a combining point; followers skip the dst CPU."""
        now = self.net.engine.now
        if self._combines(self._in_windows, (dst, key), now):
            self._hit(dst, key)
            return self.net.send(src, dst, payload_bytes, kind=kind,
                                 data_kind=data_kind,
                                 recv_cpu_cycles=self.combine_cycles,
                                 on_delivered=on_delivered)
        return self.net.send(src, dst, payload_bytes, kind=kind,
                             data_kind=data_kind,
                             on_delivered=on_delivered)

    def fan_out(self, src: int, dst: int, payload_bytes: int, *,
                kind: MsgKind, key: object,
                data_kind: DataKind = DataKind.CONSISTENCY,
                on_delivered: Optional[Callable[[int], None]] = None) -> int:
        """Send one leg of a fabric multicast; replicas skip the src
        CPU (the fabric duplicates the frame past the first copy)."""
        now = self.net.engine.now
        if self._combines(self._out_windows, (src, key), now):
            self._hit(src, key)
            return self.net.send(src, dst, payload_bytes, kind=kind,
                                 data_kind=data_kind,
                                 send_cpu_cycles=self.combine_cycles,
                                 on_delivered=on_delivered)
        return self.net.send(src, dst, payload_bytes, kind=kind,
                             data_kind=data_kind,
                             on_delivered=on_delivered)
