"""repro.sync: the pluggable synchronization design space.

This package owns the *policy* layer: :class:`SyncPolicy` names a
(lock algorithm, barrier algorithm) pair, :func:`parse_sync` coerces
user-facing specs (``"mcs+tree"``), and :class:`SwitchCombiner`
models in-network combining for the software machines.  The
algorithm *implementations* live with their families —
:mod:`repro.dsm.locks` / :mod:`repro.dsm.barriers` for the software
DSM, :mod:`repro.hw.sync` plus the
:class:`~repro.net.crossbar.CombiningStage` for the hardware
machines — and are selected per machine through
``make_machine(sync=...)``.
"""

from repro.sync.combining import SwitchCombiner
from repro.sync.policy import (BARRIER_ALGORITHMS, DEFAULT_SYNC,
                               LOCK_ALGORITHMS, SyncPolicy, SyncSpec,
                               parse_sync)

__all__ = [
    "SyncPolicy",
    "SyncSpec",
    "parse_sync",
    "DEFAULT_SYNC",
    "LOCK_ALGORITHMS",
    "BARRIER_ALGORITHMS",
    "SwitchCombiner",
]
