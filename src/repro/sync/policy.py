"""The synchronization design space: one policy, many algorithms.

The paper's machines ship with exactly one synchronization style each:
token-forwarding locks + a centralized barrier manager on the software
DSM side (§2.1), test-and-set locks + a counter barrier on the
hardware side (§2.2, §3.1).  The paper's own headline result — sync
rate decides where software loses to hardware — makes that axis worth
varying, so :class:`SyncPolicy` names a (lock algorithm, barrier
algorithm) pair that every machine model accepts via
``make_machine(sync=...)``:

==========  =====================================================
lock        algorithm
==========  =====================================================
token       static manager + migrating token (TreadMarks default)
mcs         MCS-style distributed queue (swap at home, direct
            predecessor→successor handoff)
ticket      centralized ticket counter at the lock's home
combining   ticket order taken by a combining fetch-and-add in
            the network fabric
==========  =====================================================

==========  =====================================================
barrier     algorithm
==========  =====================================================
central     all arrivals serialize at one manager (paper default)
tree        radix-``tree_radix`` software combining tree
combining   in-network reduction: arrivals combine in the fabric,
            departures fan out as a multicast
==========  =====================================================

The default policy reproduces the paper bit-for-bit: machines built
with ``SyncPolicy()`` are fingerprint-identical to machines built
with no policy at all, so golden pins and cached results are
untouched.  Non-default policies suffix the machine name and join
the fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError

#: Lock algorithm names, in design-space order.
LOCK_ALGORITHMS: Tuple[str, ...] = ("token", "mcs", "ticket", "combining")

#: Barrier algorithm names, in design-space order.
BARRIER_ALGORITHMS: Tuple[str, ...] = ("central", "tree", "combining")


@dataclass(frozen=True)
class SyncPolicy:
    """An immutable (lock algorithm, barrier algorithm) selection.

    ``tree_radix`` shapes the ``tree`` barrier's fan-in (and the
    fan-out of its departure wave); it is inert for the other barrier
    algorithms and therefore excluded from labels and fingerprints
    unless the tree barrier is selected.
    """

    lock: str = "token"
    barrier: str = "central"
    tree_radix: int = 4

    def __post_init__(self) -> None:
        if self.lock not in LOCK_ALGORITHMS:
            raise ConfigurationError(
                f"unknown lock algorithm '{self.lock}' "
                f"(known: {', '.join(LOCK_ALGORITHMS)})")
        if self.barrier not in BARRIER_ALGORITHMS:
            raise ConfigurationError(
                f"unknown barrier algorithm '{self.barrier}' "
                f"(known: {', '.join(BARRIER_ALGORITHMS)})")
        if self.tree_radix < 2:
            raise ConfigurationError(
                f"tree_radix must be >= 2, got {self.tree_radix}")

    @property
    def is_default(self) -> bool:
        """True when this policy is the paper's 1994 configuration."""
        return self.lock == "token" and self.barrier == "central"

    def label(self) -> str:
        """Short stable label, e.g. ``mcs+tree`` (``parse_sync`` form)."""
        text = f"{self.lock}+{self.barrier}"
        if self.barrier == "tree" and self.tree_radix != 4:
            text += f"@r{self.tree_radix}"
        return text


#: The paper's configuration; behaviourally identical to passing no
#: policy at all.
DEFAULT_SYNC = SyncPolicy()

SyncSpec = Union[None, str, Mapping[str, Any], SyncPolicy]
"""Anything :func:`parse_sync` accepts."""


def parse_sync(spec: SyncSpec) -> SyncPolicy:
    """Coerce a user-facing sync spec into a :class:`SyncPolicy`.

    Accepts ``None`` (the default policy), an existing policy, a
    mapping of field overrides (``{"barrier": "tree"}``), or a string
    in the ``label()`` grammar: ``"mcs+tree"``, a bare lock name
    (``"mcs"``), a bare barrier prefixed with ``+`` (``"+tree"``),
    and an optional ``@r<k>`` radix suffix (``"token+tree@r8"``).
    """
    if spec is None:
        return DEFAULT_SYNC
    if isinstance(spec, SyncPolicy):
        return spec
    if isinstance(spec, Mapping):
        try:
            return SyncPolicy(**dict(spec))
        except TypeError as exc:
            raise ConfigurationError(f"bad sync spec {spec!r}: {exc}") \
                from None
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"sync spec must be a string, mapping, or SyncPolicy, "
            f"got {type(spec).__name__}")

    text = spec.strip().lower()
    radix: Optional[int] = None
    if "@r" in text:
        text, _, radix_text = text.partition("@r")
        try:
            radix = int(radix_text)
        except ValueError:
            raise ConfigurationError(
                f"bad tree radix in sync spec '{spec}'") from None
    if "+" in text:
        lock_text, _, barrier_text = text.partition("+")
    else:
        lock_text, barrier_text = text, ""
    if not lock_text and not barrier_text:
        raise ConfigurationError(f"empty sync spec '{spec}'")
    kwargs: dict = {}
    if lock_text:
        kwargs["lock"] = lock_text
    if barrier_text:
        kwargs["barrier"] = barrier_text
    if radix is not None:
        kwargs["tree_radix"] = radix
    return SyncPolicy(**kwargs)
