"""Distributed DSM locks: the pluggable lock-algorithm family.

TreadMarks' own algorithm (§2.1) — the ``token`` default — assigns
each lock a static manager; the token rests at the last releaser.  An
acquire sends a request to the manager, which forwards it to the
probable owner; the holder responds directly to the requester with a
grant carrying the write notices the requester lacks.  The minimum
remote acquisition is therefore three messages (two when the manager
still holds the token) and zero when the token already rests at the
requesting node — which is also how the HS architecture gets its free
intra-node lock handoffs (§3.1).

Three alternatives from the scalable-synchronization literature share
that consistency plumbing (every grant still flows releaser→acquirer,
because LRC rides on it) and differ in how the releaser learns its
successor:

* ``mcs`` (:class:`McsLocks`) — an MCS-style distributed queue: the
  requester swaps itself onto a tail pointer at the lock's home, the
  swap reply names its predecessor, and a set-next message links it
  into the predecessor's queue node.  One extra (off-critical-path)
  message per contended acquire, but the handoff is a single direct
  predecessor→successor grant and enqueue traffic lands on the
  *predecessor* instead of piling onto the current holder.
* ``ticket`` (:class:`TicketLocks`) — a centralized ticket counter:
  acquires take a ticket at the home, and every contended handoff is
  home-mediated (release notify → home reply → grant), putting two
  extra messages on the handoff critical path.  Perfectly fair, and
  exactly why ticket locks are a poor fit for message-passing DSM.
* ``combining`` (:class:`CombiningLocks`) — ticket order taken by a
  combining fetch-and-add: home-bound request/release traffic merges
  in the fabric (:class:`~repro.sync.combining.SwitchCombiner`), so
  request bursts stop serializing through the home node's handler
  CPU.

All algorithms keep two shared fast paths: a token resting at the
requesting node with nobody waiting grants locally for
``local_grant_cycles``, and requests from the token-resident node
join the queue locally (the HS intra-node behaviour).  Waiters form a
global FIFO queue; grants to a co-resident waiter are local and
message-free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.errors import ConfigurationError, ProtocolError
from repro.stats.counters import DataKind, MsgKind
from repro.trace.tracer import Category

GrantCallback = Callable[[int, bool], None]
"""Called as ``cb(time, was_remote)`` when the lock is held."""


@dataclass
class _Waiter:
    node: int
    proc: int
    vc_bytes_hint: int
    done: GrantCallback
    remote: bool
    requested: int = 0  # acquire-call time (queue-wait accounting)


@dataclass
class LockRecord:
    """Global state of one lock (placement lives in the accounting)."""

    lock_id: int
    manager: int
    token_node: int
    held: bool = False
    in_transit: bool = False
    holder_proc: Optional[int] = None
    queue: Deque[_Waiter] = field(default_factory=deque)
    grants: int = 0
    local_grants: int = 0
    granted_at: int = 0  # last grant time (hold-cycle accounting)
    #: Waiter whose grant is in flight (crash repair needs to know who
    #: would strand if the grant dies with a crashed endpoint).
    pending_grant: Optional[_Waiter] = None
    #: Node the in-flight grant departed from.
    grant_src: Optional[int] = None
    #: Releaser node of an in-flight ticket release-notify handshake.
    notify_node: Optional[int] = None
    #: Bumped by :meth:`DsmLocks.remove_node` whenever it rewrites this
    #: record; in-flight completion closures captured the old epoch and
    #: turn into no-ops, so a straggler delivery cannot double-grant.
    repair_epoch: int = 0

    @property
    def available(self) -> bool:
        """True when the token is at rest and nobody holds the lock."""
        return not self.held and not self.in_transit and not self.queue


class DsmLocks:
    """All DSM locks of one machine (shared machinery, one algorithm).

    The owning protocol supplies:

    * ``net.send(...)`` for messages,
    * ``grant_payload(from_node, to_node)`` returning the consistency
      bytes a grant carries (vector clock + write notices),
    * ``on_granted(to_node, from_node)`` applying those notices, and
    * ``local_grant_cycles`` for token-resident acquisitions.

    Subclasses implement :meth:`_remote_acquire` (how a request finds
    the current holder/queue) and may override :meth:`_after_release`
    (how the releaser learns its successor).
    """

    algorithm = "base"

    def __init__(self, net, num_nodes: int, *,
                 grant_payload: Callable[[int, int], int],
                 on_granted: Callable[[int, int], None],
                 request_payload_bytes: int,
                 local_grant_cycles: int = 100,
                 combiner=None) -> None:
        self.net = net
        self.num_nodes = num_nodes
        self.grant_payload = grant_payload
        self.on_granted = on_granted
        self.request_payload_bytes = request_payload_bytes
        self.local_grant_cycles = local_grant_cycles
        self.combiner = combiner
        self._locks: Dict[int, LockRecord] = {}
        # Manager-side probable-owner pointers: lock -> node the manager
        # last directed the token toward (used by the token algorithm).
        self._probable_owner: Dict[int, int] = {}
        #: Nodes declared dead by recovery; excluded from homing,
        #: queues, and grants.
        self.dead: set = set()

    # ------------------------------------------------------------------
    def record(self, lock_id: int) -> LockRecord:
        """The (lazily created) global record of ``lock_id``."""
        rec = self._locks.get(lock_id)
        if rec is None:
            manager = self._fallback_home(lock_id)
            rec = LockRecord(lock_id, manager, token_node=manager)
            self._locks[lock_id] = rec
            self._probable_owner[lock_id] = manager
        return rec

    def _fallback_home(self, lock_id: int) -> int:
        """First surviving node cycling up from the static home."""
        for step in range(self.num_nodes):
            cand = (lock_id + step) % self.num_nodes
            if cand not in self.dead:
                return cand
        raise ProtocolError(
            f"no surviving node left to home lock {lock_id}")

    # ------------------------------------------------------------------
    def acquire(self, lock_id: int, node: int, proc: int,
                done: GrantCallback) -> None:
        """Request the lock for ``proc`` on ``node``."""
        rec = self.record(lock_id)
        engine = self.net.engine
        if rec.token_node == node and rec.available:
            # Token already rests here and nobody is waiting: free.
            rec.held = True
            rec.holder_proc = proc
            rec.grants += 1
            rec.local_grants += 1
            at = engine.now + self.local_grant_cycles
            rec.granted_at = at
            self.net.counters.lock_wait_cycles += self.local_grant_cycles
            engine.schedule_at(at, done, at, False)
            return

        waiter = _Waiter(node, proc, self.request_payload_bytes, done,
                         remote=(rec.token_node != node),
                         requested=engine.now)
        if rec.token_node == node and not rec.in_transit:
            # Token is here but held (or others queued): wait locally.
            rec.queue.append(waiter)
            return

        # Remote path: algorithm-specific routing to the holder/queue.
        self.net.counters.remote_lock_acquires += 1
        tracer = engine.tracer
        if tracer.enabled:
            tracer.instant(node, Category.SYNC, "lock_request",
                           engine.now, track=f"node{node}.dsm",
                           lock=lock_id)
        self._remote_acquire(rec, waiter)

    def _remote_acquire(self, rec: LockRecord, waiter: _Waiter) -> None:
        raise NotImplementedError

    def _enqueue_at_holder(self, rec: LockRecord, waiter: _Waiter) -> None:
        if waiter.node in self.dead:
            # The requester died while its request was on the wire;
            # its processors are gone, so the request simply vanishes.
            return
        if rec.available:
            self._grant(rec, waiter)
        else:
            rec.queue.append(waiter)

    # ------------------------------------------------------------------
    def release(self, lock_id: int, node: int, proc: int,
                done: Callable[[int], None]) -> None:
        """Release the lock; hands off to the head waiter if any."""
        rec = self.record(lock_id)
        if not rec.held or rec.token_node != node:
            raise ProtocolError(
                f"release of lock {lock_id} by node {node} which does not "
                f"hold it (token at {rec.token_node}, held={rec.held})")
        if rec.holder_proc != proc:
            raise ProtocolError(
                f"release of lock {lock_id} by proc {proc}, held by "
                f"{rec.holder_proc}")
        engine = self.net.engine
        self.net.counters.lock_hold_cycles += engine.now - rec.granted_at
        rec.held = False
        rec.holder_proc = None
        self._after_release(rec, node)
        engine.schedule(self.local_grant_cycles, done,
                        engine.now + self.local_grant_cycles)

    def _after_release(self, rec: LockRecord, node: int) -> None:
        """Hand off to the next waiter; the releaser knows its queue."""
        if rec.queue:
            self._grant(rec, rec.queue.popleft())

    # ------------------------------------------------------------------
    def _grant(self, rec: LockRecord, waiter: _Waiter) -> None:
        rec.grants += 1
        engine = self.net.engine
        counters = self.net.counters
        if waiter.node == rec.token_node:
            # Intra-node handoff: shared memory within the node, no
            # messages, no consistency actions.
            rec.held = True
            rec.holder_proc = waiter.proc
            rec.local_grants += 1
            at = engine.now + self.local_grant_cycles
            rec.granted_at = at
            counters.lock_wait_cycles += at - waiter.requested
            engine.schedule_at(at, waiter.done, at, False)
            return

        src = rec.token_node
        payload = self.grant_payload(src, waiter.node)
        rec.token_node = waiter.node  # token (plus queue) migrates
        rec.in_transit = True
        rec.pending_grant = waiter
        rec.grant_src = src
        epoch = rec.repair_epoch
        tracer = engine.tracer
        if tracer.enabled:
            tracer.instant(src, Category.SYNC, "lock_grant",
                           engine.now, track=f"node{src}.dsm",
                           lock=rec.lock_id, to=waiter.node)

        def delivered(time: int, w=waiter, s=src, r=rec) -> None:
            if r.repair_epoch != epoch:
                return  # crash repair superseded this grant
            r.in_transit = False
            r.pending_grant = None
            r.grant_src = None
            r.held = True
            r.holder_proc = w.proc
            r.granted_at = time
            counters.lock_wait_cycles += time - w.requested
            self.on_granted(w.node, s)
            w.done(time, True)

        self.net.send(src, waiter.node, payload,
                      kind=MsgKind.LOCK_GRANT,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=delivered)

    # ------------------------------------------------------------------
    def total_grants(self) -> int:
        """Total grants (local + remote) across all locks."""
        return sum(r.grants for r in self._locks.values())

    def holder_of(self, lock_id: int) -> Optional[int]:
        """The node holding ``lock_id``, or None if free."""
        rec = self._locks.get(lock_id)
        if rec is None or not rec.held:
            return None
        return rec.token_node

    # ------------------------------------------------------------------
    # crash-stop recovery (repro.recover)
    # ------------------------------------------------------------------
    def remove_node(self, node: int, now: int) -> int:
        """Regenerate lock state after ``node`` is declared dead.

        Purges dead waiters, moves manager seats and resting/held
        tokens off the dead node, and restarts handoffs whose in-flight
        message involved it.  Every rewritten record's ``repair_epoch``
        is bumped so straggler deliveries of superseded grants become
        no-ops.  Returns the number of locks regenerated (the
        ``locks_regenerated`` counter contribution).
        """
        self.dead.add(node)
        engine = self.net.engine
        tracer = engine.tracer
        repaired = 0
        for rec in self._locks.values():
            changed = False

            # Waiters from dead nodes will never consume a grant.
            survivors = [w for w in rec.queue if w.node not in self.dead]
            if len(survivors) != len(rec.queue):
                rec.queue = deque(survivors)
                changed = True

            # A ticket release-notify handshake stuck at a dead peer
            # (home or releaser): cancel it; the handoff restarts
            # below.  Checked before the manager seat moves.
            if (rec.in_transit and rec.pending_grant is None
                    and (rec.manager in self.dead
                         or rec.notify_node in self.dead)):
                rec.repair_epoch += 1
                rec.in_transit = False
                rec.notify_node = None
                changed = True

            if rec.manager in self.dead:
                rec.manager = self._fallback_home(rec.lock_id)
                changed = True

            if rec.in_transit and rec.pending_grant is not None and (
                    rec.token_node in self.dead
                    or rec.grant_src in self.dead):
                # The in-flight grant dies with one of its endpoints.
                # A surviving acquirer goes back to the head of the
                # queue; the token rematerializes at the manager.
                waiter = rec.pending_grant
                rec.repair_epoch += 1
                rec.in_transit = False
                rec.pending_grant = None
                rec.grant_src = None
                rec.held = False
                rec.holder_proc = None
                rec.token_node = rec.manager
                if waiter.node not in self.dead:
                    rec.queue.appendleft(waiter)
                changed = True
            elif not rec.in_transit and rec.token_node in self.dead:
                # Token resting at (or held by) the dead node: the
                # holder can never release, so the token is reminted
                # at the manager.
                rec.repair_epoch += 1
                rec.token_node = rec.manager
                rec.held = False
                rec.holder_proc = None
                changed = True

            if self._probable_owner.get(rec.lock_id) in self.dead:
                self._probable_owner[rec.lock_id] = rec.token_node
                changed = True

            if changed:
                repaired += 1
                if tracer.enabled:
                    tracer.instant(rec.manager, Category.RECOVERY,
                                   "lock_regenerated", now,
                                   track=f"node{rec.manager}.dsm",
                                   lock=rec.lock_id, dead=node)
                if not rec.held and not rec.in_transit and rec.queue:
                    # Restart the handoff from the repaired state.
                    self._grant(rec, rec.queue.popleft())
        return repaired

    def _reroute(self, rec: LockRecord, waiter: _Waiter) -> None:
        """Re-issue a remote acquire whose routing message was
        abandoned because its destination was declared dead.

        By the time a send is abandoned the declaration has already
        run :meth:`remove_node`, so the record's manager and token
        placement are repaired; the waiter simply retries against the
        new topology.
        """
        if waiter.node in self.dead:
            return
        self._remote_acquire(rec, waiter)


class DistributedLocks(DsmLocks):
    """The paper's token-forwarding lock (TreadMarks §2.1)."""

    algorithm = "token"

    def _remote_acquire(self, rec: LockRecord, waiter: _Waiter) -> None:
        # Request -> manager -> probable owner.
        self.net.send(waiter.node, rec.manager, self.request_payload_bytes,
                      kind=MsgKind.LOCK_REQUEST,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t, r=rec, w=waiter:
                      self._at_manager(r, w),
                      on_abandoned=lambda _t, r=rec, w=waiter:
                      self._reroute(r, w))

    def _at_manager(self, rec: LockRecord, waiter: _Waiter) -> None:
        target = self._probable_owner[rec.lock_id]
        self._probable_owner[rec.lock_id] = waiter.node
        if target == rec.manager:
            self._enqueue_at_holder(rec, waiter)
            return
        self.net.send(rec.manager, target, self.request_payload_bytes,
                      kind=MsgKind.LOCK_FORWARD,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t:
                      self._enqueue_at_holder(rec, waiter),
                      on_abandoned=lambda _t, r=rec, w=waiter:
                      self._reroute(r, w))


#: Back-compat alias: the token algorithm is the historical class.
TokenLocks = DistributedLocks


class McsLocks(DsmLocks):
    """MCS-style distributed queue lock (swap at home, direct handoff).

    A contended acquire is three small messages — swap request to the
    home, swap reply naming the predecessor, set-next to the
    predecessor — of which none sits on the handoff critical path:
    the release is still a single direct grant to the successor.
    Compared to ``token``, enqueue traffic is spread over predecessor
    nodes instead of concentrating at the current holder.
    """

    algorithm = "mcs"

    def _remote_acquire(self, rec: LockRecord, waiter: _Waiter) -> None:
        # The swap on the tail pointer at the lock's home.
        self.net.send(waiter.node, rec.manager, self.request_payload_bytes,
                      kind=MsgKind.LOCK_REQUEST,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t, r=rec, w=waiter:
                      self._swap_at_home(r, w),
                      on_abandoned=lambda _t, r=rec, w=waiter:
                      self._reroute(r, w))

    def _swap_at_home(self, rec: LockRecord, waiter: _Waiter) -> None:
        if waiter.node in self.dead:
            return  # requester crashed while the swap was in flight
        if rec.available:
            # Lock at rest: the home redirects to the resting token,
            # exactly like the token algorithm's forward.
            target = rec.token_node
            if target == rec.manager:
                self._enqueue_at_holder(rec, waiter)
                return
            self.net.send(rec.manager, target, self.request_payload_bytes,
                          kind=MsgKind.LOCK_FORWARD,
                          data_kind=DataKind.CONSISTENCY,
                          on_delivered=lambda _t:
                          self._enqueue_at_holder(rec, waiter),
                          on_abandoned=lambda _t, r=rec, w=waiter:
                          self._reroute(r, w))
            return

        # Busy: the swap appoints the previous tail as predecessor.
        pred_node = rec.queue[-1].node if rec.queue else rec.token_node
        rec.queue.append(waiter)

        def swap_returned(_t: int) -> None:
            if pred_node != waiter.node:
                # set-next: link into the predecessor's queue node
                # (fire-and-forget; cost only, off the critical path).
                self.net.send(waiter.node, pred_node,
                              self.request_payload_bytes,
                              kind=MsgKind.LOCK_FORWARD,
                              data_kind=DataKind.CONSISTENCY)

        self.net.send(rec.manager, waiter.node, self.request_payload_bytes,
                      kind=MsgKind.LOCK_FORWARD,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=swap_returned)


class TicketLocks(DsmLocks):
    """Centralized ticket lock at the lock's home node.

    Acquire order is the order requests reach the home (a ticket
    grab); the queue lives there.  The price appears at release: the
    releaser does not know its successor, so every contended handoff
    is release-notify → home → reply → grant — two extra messages on
    the critical path, all serialized through the home's handler CPU.
    """

    algorithm = "ticket"

    def _remote_acquire(self, rec: LockRecord, waiter: _Waiter) -> None:
        self._send_take_ticket(rec, waiter)

    def _send_take_ticket(self, rec: LockRecord, waiter: _Waiter) -> None:
        self.net.send(waiter.node, rec.manager, self.request_payload_bytes,
                      kind=MsgKind.LOCK_REQUEST,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t, r=rec, w=waiter:
                      self._at_home(r, w),
                      on_abandoned=lambda _t, r=rec, w=waiter:
                      self._reroute(r, w))

    def _at_home(self, rec: LockRecord, waiter: _Waiter) -> None:
        if waiter.node in self.dead:
            return  # requester crashed while its ticket was in flight
        if rec.available:
            target = rec.token_node
            if target == rec.manager:
                self._enqueue_at_holder(rec, waiter)
                return
            self.net.send(rec.manager, target, self.request_payload_bytes,
                          kind=MsgKind.LOCK_FORWARD,
                          data_kind=DataKind.CONSISTENCY,
                          on_delivered=lambda _t:
                          self._enqueue_at_holder(rec, waiter),
                          on_abandoned=lambda _t, r=rec, w=waiter:
                          self._reroute(r, w))
            return
        rec.queue.append(waiter)

    def _after_release(self, rec: LockRecord, node: int) -> None:
        if not rec.queue:
            return  # token rests at the releaser, as in `token`
        # Home-mediated handoff: notify home, home names the next
        # ticket holder, the releaser grants.
        rec.in_transit = True
        rec.notify_node = node
        epoch = rec.repair_epoch

        def home_replied(_t: int) -> None:
            if rec.repair_epoch != epoch:
                return  # crash repair restarted this handoff
            rec.in_transit = False
            rec.notify_node = None
            if rec.queue:
                self._grant(rec, rec.queue.popleft())

        def at_home(_t: int) -> None:
            if rec.repair_epoch != epoch:
                return
            self.net.send(rec.manager, node, self.request_payload_bytes,
                          kind=MsgKind.LOCK_FORWARD,
                          data_kind=DataKind.CONSISTENCY,
                          on_delivered=home_replied)

        self._send_release_notify(rec, node, at_home)

    def _send_release_notify(self, rec: LockRecord, node: int,
                             on_delivered: Callable[[int], None]) -> None:
        self.net.send(node, rec.manager, self.request_payload_bytes,
                      kind=MsgKind.LOCK_RELEASE,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=on_delivered)


class CombiningLocks(TicketLocks):
    """Ticket order taken by an in-network combining fetch-and-add.

    Identical to :class:`TicketLocks` except that the two home-bound
    hops — the ticket grab and the release notify — travel through
    the combining switch: concurrent requests for the same lock merge
    in the fabric and stop serializing through the home node's
    handler CPU.  ``combining_hits`` counts the merges.
    """

    algorithm = "combining"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.combiner is None:
            raise ConfigurationError(
                "combining locks need a SwitchCombiner (combiner=...)")

    def _send_take_ticket(self, rec: LockRecord, waiter: _Waiter) -> None:
        self.combiner.fan_in(waiter.node, rec.manager,
                             self.request_payload_bytes,
                             kind=MsgKind.LOCK_REQUEST,
                             key=("lock", rec.lock_id),
                             on_delivered=lambda _t, r=rec, w=waiter:
                             self._at_home(r, w))

    def _send_release_notify(self, rec: LockRecord, node: int,
                             on_delivered: Callable[[int], None]) -> None:
        self.combiner.fan_in(node, rec.manager, self.request_payload_bytes,
                             kind=MsgKind.LOCK_RELEASE,
                             key=("lock-release", rec.lock_id),
                             on_delivered=on_delivered)


#: Lock algorithm name -> implementation class.
DSM_LOCK_IMPLS: Dict[str, type] = {
    "token": DistributedLocks,
    "mcs": McsLocks,
    "ticket": TicketLocks,
    "combining": CombiningLocks,
}


def make_dsm_locks(algorithm: str, net, num_nodes: int, **kwargs) -> DsmLocks:
    """Build the DSM lock table for ``algorithm`` (see DSM_LOCK_IMPLS)."""
    impl = DSM_LOCK_IMPLS.get(algorithm)
    if impl is None:
        raise ConfigurationError(
            f"unknown DSM lock algorithm '{algorithm}' "
            f"(known: {', '.join(DSM_LOCK_IMPLS)})")
    return impl(net, num_nodes, **kwargs)
