"""Distributed DSM locks: the pluggable lock-algorithm family.

TreadMarks' own algorithm (§2.1) — the ``token`` default — assigns
each lock a static manager; the token rests at the last releaser.  An
acquire sends a request to the manager, which forwards it to the
probable owner; the holder responds directly to the requester with a
grant carrying the write notices the requester lacks.  The minimum
remote acquisition is therefore three messages (two when the manager
still holds the token) and zero when the token already rests at the
requesting node — which is also how the HS architecture gets its free
intra-node lock handoffs (§3.1).

Three alternatives from the scalable-synchronization literature share
that consistency plumbing (every grant still flows releaser→acquirer,
because LRC rides on it) and differ in how the releaser learns its
successor:

* ``mcs`` (:class:`McsLocks`) — an MCS-style distributed queue: the
  requester swaps itself onto a tail pointer at the lock's home, the
  swap reply names its predecessor, and a set-next message links it
  into the predecessor's queue node.  One extra (off-critical-path)
  message per contended acquire, but the handoff is a single direct
  predecessor→successor grant and enqueue traffic lands on the
  *predecessor* instead of piling onto the current holder.
* ``ticket`` (:class:`TicketLocks`) — a centralized ticket counter:
  acquires take a ticket at the home, and every contended handoff is
  home-mediated (release notify → home reply → grant), putting two
  extra messages on the handoff critical path.  Perfectly fair, and
  exactly why ticket locks are a poor fit for message-passing DSM.
* ``combining`` (:class:`CombiningLocks`) — ticket order taken by a
  combining fetch-and-add: home-bound request/release traffic merges
  in the fabric (:class:`~repro.sync.combining.SwitchCombiner`), so
  request bursts stop serializing through the home node's handler
  CPU.

All algorithms keep two shared fast paths: a token resting at the
requesting node with nobody waiting grants locally for
``local_grant_cycles``, and requests from the token-resident node
join the queue locally (the HS intra-node behaviour).  Waiters form a
global FIFO queue; grants to a co-resident waiter are local and
message-free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.errors import ConfigurationError, ProtocolError
from repro.stats.counters import DataKind, MsgKind
from repro.trace.tracer import Category

GrantCallback = Callable[[int, bool], None]
"""Called as ``cb(time, was_remote)`` when the lock is held."""


@dataclass
class _Waiter:
    node: int
    proc: int
    vc_bytes_hint: int
    done: GrantCallback
    remote: bool
    requested: int = 0  # acquire-call time (queue-wait accounting)


@dataclass
class LockRecord:
    """Global state of one lock (placement lives in the accounting)."""

    lock_id: int
    manager: int
    token_node: int
    held: bool = False
    in_transit: bool = False
    holder_proc: Optional[int] = None
    queue: Deque[_Waiter] = field(default_factory=deque)
    grants: int = 0
    local_grants: int = 0
    granted_at: int = 0  # last grant time (hold-cycle accounting)

    @property
    def available(self) -> bool:
        """True when the token is at rest and nobody holds the lock."""
        return not self.held and not self.in_transit and not self.queue


class DsmLocks:
    """All DSM locks of one machine (shared machinery, one algorithm).

    The owning protocol supplies:

    * ``net.send(...)`` for messages,
    * ``grant_payload(from_node, to_node)`` returning the consistency
      bytes a grant carries (vector clock + write notices),
    * ``on_granted(to_node, from_node)`` applying those notices, and
    * ``local_grant_cycles`` for token-resident acquisitions.

    Subclasses implement :meth:`_remote_acquire` (how a request finds
    the current holder/queue) and may override :meth:`_after_release`
    (how the releaser learns its successor).
    """

    algorithm = "base"

    def __init__(self, net, num_nodes: int, *,
                 grant_payload: Callable[[int, int], int],
                 on_granted: Callable[[int, int], None],
                 request_payload_bytes: int,
                 local_grant_cycles: int = 100,
                 combiner=None) -> None:
        self.net = net
        self.num_nodes = num_nodes
        self.grant_payload = grant_payload
        self.on_granted = on_granted
        self.request_payload_bytes = request_payload_bytes
        self.local_grant_cycles = local_grant_cycles
        self.combiner = combiner
        self._locks: Dict[int, LockRecord] = {}
        # Manager-side probable-owner pointers: lock -> node the manager
        # last directed the token toward (used by the token algorithm).
        self._probable_owner: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def record(self, lock_id: int) -> LockRecord:
        """The (lazily created) global record of ``lock_id``."""
        rec = self._locks.get(lock_id)
        if rec is None:
            manager = lock_id % self.num_nodes
            rec = LockRecord(lock_id, manager, token_node=manager)
            self._locks[lock_id] = rec
            self._probable_owner[lock_id] = manager
        return rec

    # ------------------------------------------------------------------
    def acquire(self, lock_id: int, node: int, proc: int,
                done: GrantCallback) -> None:
        """Request the lock for ``proc`` on ``node``."""
        rec = self.record(lock_id)
        engine = self.net.engine
        if rec.token_node == node and rec.available:
            # Token already rests here and nobody is waiting: free.
            rec.held = True
            rec.holder_proc = proc
            rec.grants += 1
            rec.local_grants += 1
            at = engine.now + self.local_grant_cycles
            rec.granted_at = at
            self.net.counters.lock_wait_cycles += self.local_grant_cycles
            engine.schedule_at(at, done, at, False)
            return

        waiter = _Waiter(node, proc, self.request_payload_bytes, done,
                         remote=(rec.token_node != node),
                         requested=engine.now)
        if rec.token_node == node and not rec.in_transit:
            # Token is here but held (or others queued): wait locally.
            rec.queue.append(waiter)
            return

        # Remote path: algorithm-specific routing to the holder/queue.
        self.net.counters.remote_lock_acquires += 1
        tracer = engine.tracer
        if tracer.enabled:
            tracer.instant(node, Category.SYNC, "lock_request",
                           engine.now, track=f"node{node}.dsm",
                           lock=lock_id)
        self._remote_acquire(rec, waiter)

    def _remote_acquire(self, rec: LockRecord, waiter: _Waiter) -> None:
        raise NotImplementedError

    def _enqueue_at_holder(self, rec: LockRecord, waiter: _Waiter) -> None:
        if rec.available:
            self._grant(rec, waiter)
        else:
            rec.queue.append(waiter)

    # ------------------------------------------------------------------
    def release(self, lock_id: int, node: int, proc: int,
                done: Callable[[int], None]) -> None:
        """Release the lock; hands off to the head waiter if any."""
        rec = self.record(lock_id)
        if not rec.held or rec.token_node != node:
            raise ProtocolError(
                f"release of lock {lock_id} by node {node} which does not "
                f"hold it (token at {rec.token_node}, held={rec.held})")
        if rec.holder_proc != proc:
            raise ProtocolError(
                f"release of lock {lock_id} by proc {proc}, held by "
                f"{rec.holder_proc}")
        engine = self.net.engine
        self.net.counters.lock_hold_cycles += engine.now - rec.granted_at
        rec.held = False
        rec.holder_proc = None
        self._after_release(rec, node)
        engine.schedule(self.local_grant_cycles, done,
                        engine.now + self.local_grant_cycles)

    def _after_release(self, rec: LockRecord, node: int) -> None:
        """Hand off to the next waiter; the releaser knows its queue."""
        if rec.queue:
            self._grant(rec, rec.queue.popleft())

    # ------------------------------------------------------------------
    def _grant(self, rec: LockRecord, waiter: _Waiter) -> None:
        rec.grants += 1
        engine = self.net.engine
        counters = self.net.counters
        if waiter.node == rec.token_node:
            # Intra-node handoff: shared memory within the node, no
            # messages, no consistency actions.
            rec.held = True
            rec.holder_proc = waiter.proc
            rec.local_grants += 1
            at = engine.now + self.local_grant_cycles
            rec.granted_at = at
            counters.lock_wait_cycles += at - waiter.requested
            engine.schedule_at(at, waiter.done, at, False)
            return

        src = rec.token_node
        payload = self.grant_payload(src, waiter.node)
        rec.token_node = waiter.node  # token (plus queue) migrates
        rec.in_transit = True
        tracer = engine.tracer
        if tracer.enabled:
            tracer.instant(src, Category.SYNC, "lock_grant",
                           engine.now, track=f"node{src}.dsm",
                           lock=rec.lock_id, to=waiter.node)

        def delivered(time: int, w=waiter, s=src, r=rec) -> None:
            r.in_transit = False
            r.held = True
            r.holder_proc = w.proc
            r.granted_at = time
            counters.lock_wait_cycles += time - w.requested
            self.on_granted(w.node, s)
            w.done(time, True)

        self.net.send(src, waiter.node, payload,
                      kind=MsgKind.LOCK_GRANT,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=delivered)

    # ------------------------------------------------------------------
    def total_grants(self) -> int:
        """Total grants (local + remote) across all locks."""
        return sum(r.grants for r in self._locks.values())

    def holder_of(self, lock_id: int) -> Optional[int]:
        """The node holding ``lock_id``, or None if free."""
        rec = self._locks.get(lock_id)
        if rec is None or not rec.held:
            return None
        return rec.token_node


class DistributedLocks(DsmLocks):
    """The paper's token-forwarding lock (TreadMarks §2.1)."""

    algorithm = "token"

    def _remote_acquire(self, rec: LockRecord, waiter: _Waiter) -> None:
        # Request -> manager -> probable owner.
        self.net.send(waiter.node, rec.manager, self.request_payload_bytes,
                      kind=MsgKind.LOCK_REQUEST,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t, r=rec, w=waiter:
                      self._at_manager(r, w))

    def _at_manager(self, rec: LockRecord, waiter: _Waiter) -> None:
        target = self._probable_owner[rec.lock_id]
        self._probable_owner[rec.lock_id] = waiter.node
        if target == rec.manager:
            self._enqueue_at_holder(rec, waiter)
            return
        self.net.send(rec.manager, target, self.request_payload_bytes,
                      kind=MsgKind.LOCK_FORWARD,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t:
                      self._enqueue_at_holder(rec, waiter))


#: Back-compat alias: the token algorithm is the historical class.
TokenLocks = DistributedLocks


class McsLocks(DsmLocks):
    """MCS-style distributed queue lock (swap at home, direct handoff).

    A contended acquire is three small messages — swap request to the
    home, swap reply naming the predecessor, set-next to the
    predecessor — of which none sits on the handoff critical path:
    the release is still a single direct grant to the successor.
    Compared to ``token``, enqueue traffic is spread over predecessor
    nodes instead of concentrating at the current holder.
    """

    algorithm = "mcs"

    def _remote_acquire(self, rec: LockRecord, waiter: _Waiter) -> None:
        # The swap on the tail pointer at the lock's home.
        self.net.send(waiter.node, rec.manager, self.request_payload_bytes,
                      kind=MsgKind.LOCK_REQUEST,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t, r=rec, w=waiter:
                      self._swap_at_home(r, w))

    def _swap_at_home(self, rec: LockRecord, waiter: _Waiter) -> None:
        if rec.available:
            # Lock at rest: the home redirects to the resting token,
            # exactly like the token algorithm's forward.
            target = rec.token_node
            if target == rec.manager:
                self._enqueue_at_holder(rec, waiter)
                return
            self.net.send(rec.manager, target, self.request_payload_bytes,
                          kind=MsgKind.LOCK_FORWARD,
                          data_kind=DataKind.CONSISTENCY,
                          on_delivered=lambda _t:
                          self._enqueue_at_holder(rec, waiter))
            return

        # Busy: the swap appoints the previous tail as predecessor.
        pred_node = rec.queue[-1].node if rec.queue else rec.token_node
        rec.queue.append(waiter)

        def swap_returned(_t: int) -> None:
            if pred_node != waiter.node:
                # set-next: link into the predecessor's queue node
                # (fire-and-forget; cost only, off the critical path).
                self.net.send(waiter.node, pred_node,
                              self.request_payload_bytes,
                              kind=MsgKind.LOCK_FORWARD,
                              data_kind=DataKind.CONSISTENCY)

        self.net.send(rec.manager, waiter.node, self.request_payload_bytes,
                      kind=MsgKind.LOCK_FORWARD,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=swap_returned)


class TicketLocks(DsmLocks):
    """Centralized ticket lock at the lock's home node.

    Acquire order is the order requests reach the home (a ticket
    grab); the queue lives there.  The price appears at release: the
    releaser does not know its successor, so every contended handoff
    is release-notify → home → reply → grant — two extra messages on
    the critical path, all serialized through the home's handler CPU.
    """

    algorithm = "ticket"

    def _remote_acquire(self, rec: LockRecord, waiter: _Waiter) -> None:
        self._send_take_ticket(rec, waiter)

    def _send_take_ticket(self, rec: LockRecord, waiter: _Waiter) -> None:
        self.net.send(waiter.node, rec.manager, self.request_payload_bytes,
                      kind=MsgKind.LOCK_REQUEST,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t, r=rec, w=waiter:
                      self._at_home(r, w))

    def _at_home(self, rec: LockRecord, waiter: _Waiter) -> None:
        if rec.available:
            target = rec.token_node
            if target == rec.manager:
                self._enqueue_at_holder(rec, waiter)
                return
            self.net.send(rec.manager, target, self.request_payload_bytes,
                          kind=MsgKind.LOCK_FORWARD,
                          data_kind=DataKind.CONSISTENCY,
                          on_delivered=lambda _t:
                          self._enqueue_at_holder(rec, waiter))
            return
        rec.queue.append(waiter)

    def _after_release(self, rec: LockRecord, node: int) -> None:
        if not rec.queue:
            return  # token rests at the releaser, as in `token`
        # Home-mediated handoff: notify home, home names the next
        # ticket holder, the releaser grants.
        rec.in_transit = True

        def home_replied(_t: int) -> None:
            rec.in_transit = False
            if rec.queue:
                self._grant(rec, rec.queue.popleft())

        def at_home(_t: int) -> None:
            self.net.send(rec.manager, node, self.request_payload_bytes,
                          kind=MsgKind.LOCK_FORWARD,
                          data_kind=DataKind.CONSISTENCY,
                          on_delivered=home_replied)

        self._send_release_notify(rec, node, at_home)

    def _send_release_notify(self, rec: LockRecord, node: int,
                             on_delivered: Callable[[int], None]) -> None:
        self.net.send(node, rec.manager, self.request_payload_bytes,
                      kind=MsgKind.LOCK_RELEASE,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=on_delivered)


class CombiningLocks(TicketLocks):
    """Ticket order taken by an in-network combining fetch-and-add.

    Identical to :class:`TicketLocks` except that the two home-bound
    hops — the ticket grab and the release notify — travel through
    the combining switch: concurrent requests for the same lock merge
    in the fabric and stop serializing through the home node's
    handler CPU.  ``combining_hits`` counts the merges.
    """

    algorithm = "combining"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.combiner is None:
            raise ConfigurationError(
                "combining locks need a SwitchCombiner (combiner=...)")

    def _send_take_ticket(self, rec: LockRecord, waiter: _Waiter) -> None:
        self.combiner.fan_in(waiter.node, rec.manager,
                             self.request_payload_bytes,
                             kind=MsgKind.LOCK_REQUEST,
                             key=("lock", rec.lock_id),
                             on_delivered=lambda _t, r=rec, w=waiter:
                             self._at_home(r, w))

    def _send_release_notify(self, rec: LockRecord, node: int,
                             on_delivered: Callable[[int], None]) -> None:
        self.combiner.fan_in(node, rec.manager, self.request_payload_bytes,
                             kind=MsgKind.LOCK_RELEASE,
                             key=("lock-release", rec.lock_id),
                             on_delivered=on_delivered)


#: Lock algorithm name -> implementation class.
DSM_LOCK_IMPLS: Dict[str, type] = {
    "token": DistributedLocks,
    "mcs": McsLocks,
    "ticket": TicketLocks,
    "combining": CombiningLocks,
}


def make_dsm_locks(algorithm: str, net, num_nodes: int, **kwargs) -> DsmLocks:
    """Build the DSM lock table for ``algorithm`` (see DSM_LOCK_IMPLS)."""
    impl = DSM_LOCK_IMPLS.get(algorithm)
    if impl is None:
        raise ConfigurationError(
            f"unknown DSM lock algorithm '{algorithm}' "
            f"(known: {', '.join(DSM_LOCK_IMPLS)})")
    return impl(net, num_nodes, **kwargs)
