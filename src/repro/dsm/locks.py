"""Distributed locks with a static manager and a migrating token.

TreadMarks assigns each lock a static manager; the token rests at the
last releaser.  An acquire sends a request to the manager, which
forwards it to the probable owner (the last node it directed the token
toward); the holder responds directly to the requester with a grant
carrying the write notices the requester lacks (§2.1, §2.2).  The
minimum remote acquisition is therefore three messages (two when the
manager still holds the token) and zero when the token already rests
at the requesting node — which is also how the HS architecture gets
its free intra-node lock handoffs (§3.1).

Waiters form a FIFO queue that conceptually travels with the token;
grants to a co-resident waiter are local and message-free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.errors import ProtocolError
from repro.stats.counters import DataKind, MsgKind
from repro.trace.tracer import Category

GrantCallback = Callable[[int, bool], None]
"""Called as ``cb(time, was_remote)`` when the lock is held."""


@dataclass
class _Waiter:
    node: int
    proc: int
    vc_bytes_hint: int
    done: GrantCallback
    remote: bool


@dataclass
class LockRecord:
    """Global state of one lock (placement lives in the accounting)."""

    lock_id: int
    manager: int
    token_node: int
    held: bool = False
    in_transit: bool = False
    holder_proc: Optional[int] = None
    queue: Deque[_Waiter] = field(default_factory=deque)
    grants: int = 0
    local_grants: int = 0

    @property
    def available(self) -> bool:
        """True when the token is at rest and nobody holds the lock."""
        return not self.held and not self.in_transit and not self.queue


class DistributedLocks:
    """All DSM locks of one machine.

    The owning protocol supplies:

    * ``net.send(...)`` for messages,
    * ``grant_payload(from_node, to_node)`` returning the consistency
      bytes a grant carries (vector clock + write notices),
    * ``on_granted(to_node, from_node)`` applying those notices, and
    * ``local_grant_cycles`` for token-resident acquisitions.
    """

    def __init__(self, net, num_nodes: int, *,
                 grant_payload: Callable[[int, int], int],
                 on_granted: Callable[[int, int], None],
                 request_payload_bytes: int,
                 local_grant_cycles: int = 100) -> None:
        self.net = net
        self.num_nodes = num_nodes
        self.grant_payload = grant_payload
        self.on_granted = on_granted
        self.request_payload_bytes = request_payload_bytes
        self.local_grant_cycles = local_grant_cycles
        self._locks: Dict[int, LockRecord] = {}
        # Manager-side probable-owner pointers: lock -> node the manager
        # last directed the token toward.
        self._probable_owner: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def record(self, lock_id: int) -> LockRecord:
        rec = self._locks.get(lock_id)
        if rec is None:
            manager = lock_id % self.num_nodes
            rec = LockRecord(lock_id, manager, token_node=manager)
            self._locks[lock_id] = rec
            self._probable_owner[lock_id] = manager
        return rec

    # ------------------------------------------------------------------
    def acquire(self, lock_id: int, node: int, proc: int,
                done: GrantCallback) -> None:
        """Request the lock for ``proc`` on ``node``."""
        rec = self.record(lock_id)
        engine = self.net.engine
        if rec.token_node == node and rec.available:
            # Token already rests here and nobody is waiting: free.
            rec.held = True
            rec.holder_proc = proc
            rec.grants += 1
            rec.local_grants += 1
            engine.schedule(self.local_grant_cycles, done,
                            engine.now + self.local_grant_cycles, False)
            return

        waiter = _Waiter(node, proc, self.request_payload_bytes, done,
                         remote=(rec.token_node != node))
        if rec.token_node == node and not rec.in_transit:
            # Token is here but held (or others queued): wait locally.
            rec.queue.append(waiter)
            return

        # Remote path: request -> manager -> probable owner.
        self.net.counters.remote_lock_acquires += 1
        tracer = engine.tracer
        if tracer.enabled:
            tracer.instant(node, Category.SYNC, "lock_request",
                           engine.now, track=f"node{node}.dsm",
                           lock=lock_id)
        self.net.send(node, rec.manager, self.request_payload_bytes,
                      kind=MsgKind.LOCK_REQUEST,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t, r=rec, w=waiter:
                      self._at_manager(r, w))

    def _at_manager(self, rec: LockRecord, waiter: _Waiter) -> None:
        target = self._probable_owner[rec.lock_id]
        self._probable_owner[rec.lock_id] = waiter.node
        if target == rec.manager:
            self._enqueue_at_holder(rec, waiter)
            return
        self.net.send(rec.manager, target, self.request_payload_bytes,
                      kind=MsgKind.LOCK_FORWARD,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t:
                      self._enqueue_at_holder(rec, waiter))

    def _enqueue_at_holder(self, rec: LockRecord, waiter: _Waiter) -> None:
        if rec.available:
            self._grant(rec, waiter)
        else:
            rec.queue.append(waiter)

    # ------------------------------------------------------------------
    def release(self, lock_id: int, node: int, proc: int,
                done: Callable[[int], None]) -> None:
        """Release the lock; hands off to the head waiter if any."""
        rec = self.record(lock_id)
        if not rec.held or rec.token_node != node:
            raise ProtocolError(
                f"release of lock {lock_id} by node {node} which does not "
                f"hold it (token at {rec.token_node}, held={rec.held})")
        if rec.holder_proc != proc:
            raise ProtocolError(
                f"release of lock {lock_id} by proc {proc}, held by "
                f"{rec.holder_proc}")
        rec.held = False
        rec.holder_proc = None
        if rec.queue:
            self._grant(rec, rec.queue.popleft())
        engine = self.net.engine
        engine.schedule(self.local_grant_cycles, done,
                        engine.now + self.local_grant_cycles)

    # ------------------------------------------------------------------
    def _grant(self, rec: LockRecord, waiter: _Waiter) -> None:
        rec.grants += 1
        engine = self.net.engine
        if waiter.node == rec.token_node:
            # Intra-node handoff: shared memory within the node, no
            # messages, no consistency actions.
            rec.held = True
            rec.holder_proc = waiter.proc
            rec.local_grants += 1
            at = engine.now + self.local_grant_cycles
            engine.schedule_at(at, waiter.done, at, False)
            return

        src = rec.token_node
        payload = self.grant_payload(src, waiter.node)
        rec.token_node = waiter.node  # token (plus queue) migrates
        rec.in_transit = True
        tracer = engine.tracer
        if tracer.enabled:
            tracer.instant(src, Category.SYNC, "lock_grant",
                           engine.now, track=f"node{src}.dsm",
                           lock=rec.lock_id, to=waiter.node)

        def delivered(time: int, w=waiter, s=src, r=rec) -> None:
            r.in_transit = False
            r.held = True
            r.holder_proc = w.proc
            self.on_granted(w.node, s)
            w.done(time, True)

        self.net.send(src, waiter.node, payload,
                      kind=MsgKind.LOCK_GRANT,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=delivered)

    # ------------------------------------------------------------------
    def total_grants(self) -> int:
        return sum(r.grants for r in self._locks.values())

    def holder_of(self, lock_id: int) -> Optional[int]:
        rec = self._locks.get(lock_id)
        if rec is None or not rec.held:
            return None
        return rec.token_node
