"""Run-length-encoded page diffs.

A diff is "a run-length encoding of the changes made to a single
virtual memory page" (§2.1).  This module implements a real
encoder/applier over byte arrays — exercised by unit and property
tests — plus the sizing helpers the protocol uses when it only needs
to know how many bytes a diff would occupy on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ProtocolError

RUN_HEADER_BYTES = 8
"""Per-run wire overhead: 16-bit offset + 16-bit length + alignment."""

DIFF_HEADER_BYTES = 16
"""Per-diff wire overhead: page id, creator, interval timestamp."""


@dataclass
class Diff:
    """A diff of one page: ordered, non-overlapping runs of new bytes."""

    page: int
    runs: List[Tuple[int, bytes]] = field(default_factory=list)

    @property
    def changed_bytes(self) -> int:
        return sum(len(data) for _off, data in self.runs)

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    def wire_bytes(self) -> int:
        """Bytes this diff occupies in a message."""
        return (DIFF_HEADER_BYTES +
                self.num_runs * RUN_HEADER_BYTES + self.changed_bytes)

    def is_empty(self) -> bool:
        return not self.runs


def encode_diff(page: int, twin: np.ndarray, current: np.ndarray) -> Diff:
    """Diff ``current`` against its ``twin`` (both uint8, same length).

    Contiguous changed byte runs become diff runs, exactly like the
    word-grain scan TreadMarks performs at diff-creation time.
    """
    twin = np.asarray(twin, dtype=np.uint8)
    current = np.asarray(current, dtype=np.uint8)
    if twin.shape != current.shape:
        raise ProtocolError(
            f"twin/current shape mismatch: {twin.shape} vs {current.shape}")
    changed = twin != current
    if not changed.any():
        return Diff(page)
    # Boundaries of runs of consecutive True values.
    padded = np.concatenate(([False], changed, [False]))
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = edges[0::2], edges[1::2]
    runs = [(int(s), current[s:e].tobytes()) for s, e in zip(starts, ends)]
    return Diff(page, runs)


def apply_diff(base: np.ndarray, diff: Diff) -> None:
    """Patch ``base`` (uint8) in place with ``diff``'s runs."""
    for offset, data in diff.runs:
        if offset < 0 or offset + len(data) > base.size:
            raise ProtocolError(
                f"diff run [{offset}, {offset + len(data)}) outside page "
                f"of {base.size} bytes")
        base[offset:offset + len(data)] = np.frombuffer(data, dtype=np.uint8)


def merge_diffs(diffs: List[Diff]) -> Diff:
    """Merge ordered diffs of the same page (later diffs win).

    Used by the HS model where modifications made by processors on the
    same node coalesce into a single diff (§3.1).  Implemented by
    replaying runs onto a sparse overlay.
    """
    if not diffs:
        raise ProtocolError("cannot merge an empty diff list")
    page = diffs[0].page
    if any(d.page != page for d in diffs):
        raise ProtocolError("cannot merge diffs of different pages")
    size = 0
    for d in diffs:
        for off, data in d.runs:
            size = max(size, off + len(data))
    if size == 0:
        return Diff(page)
    overlay = np.zeros(size, dtype=np.uint8)
    mask = np.zeros(size, dtype=bool)
    for d in diffs:
        for off, data in d.runs:
            overlay[off:off + len(data)] = np.frombuffer(data, np.uint8)
            mask[off:off + len(data)] = True
    padded = np.concatenate(([False], mask, [False]))
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = edges[0::2], edges[1::2]
    runs = [(int(s), overlay[s:e].tobytes()) for s, e in zip(starts, ends)]
    return Diff(page, runs)


def estimate_wire_bytes(changed_bytes: int, runs: int = 1) -> int:
    """Wire size of a diff known only by its changed-byte count.

    The protocol's fast path tracks only how many bytes of a page an
    interval changed; this converts that to a message size consistent
    with :meth:`Diff.wire_bytes`.
    """
    if changed_bytes < 0:
        raise ProtocolError(f"changed_bytes must be >= 0: {changed_bytes}")
    if changed_bytes == 0:
        return DIFF_HEADER_BYTES
    runs = max(1, runs)
    return DIFF_HEADER_BYTES + runs * RUN_HEADER_BYTES + changed_bytes
