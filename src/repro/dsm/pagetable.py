"""Per-node page state for the DSM protocol.

Each node tracks, for every shared page:

* whether its copy is *valid* (invalid copies fault on access),
* whether the page has been *twinned* in the current interval (first
  write creates a twin so a diff can be computed later),
* how many bytes the node has dirtied in the current interval, and
* which remote intervals' diffs are *pending* — announced by write
  notices but not yet fetched (TreadMarks fetches diffs lazily, at
  access-fault time).

Validity is a numpy bool array so bulk accesses resolve in one
vectorized probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import numpy as np


@dataclass
class PendingDiffs:
    """Diffs a node must fetch before revalidating one page."""

    # creator node -> (wire bytes to fetch, interval refs)
    by_creator: Dict[int, int] = field(default_factory=dict)
    intervals: List[Tuple[int, int]] = field(default_factory=list)

    def add(self, creator: int, wire_bytes: int, interval_index: int) -> None:
        self.by_creator[creator] = (self.by_creator.get(creator, 0) +
                                    wire_bytes)
        self.intervals.append((creator, interval_index))

    @property
    def total_bytes(self) -> int:
        return sum(self.by_creator.values())


class NodePages:
    """Page table of one DSM node."""

    def __init__(self, node: int, num_pages: int) -> None:
        self.node = node
        self.num_pages = num_pages
        # Runs start "warm": every node has a valid copy of every page,
        # matching the paper's methodology of excluding the initial
        # data distribution from measurements (§2.4.2, §3.2.1).
        self.valid = np.ones(num_pages, dtype=bool)
        self.twinned: Set[int] = set()
        self.dirty: Dict[int, int] = {}
        self.pending: Dict[int, PendingDiffs] = {}

    # ------------------------------------------------------------------
    # access-side queries
    # ------------------------------------------------------------------
    def invalid_in(self, first_page: int, last_page: int) -> np.ndarray:
        """Global page numbers in ``[first, last)`` that would fault."""
        window = self.valid[first_page:last_page]
        return first_page + np.flatnonzero(~window)

    def is_valid(self, page: int) -> bool:
        return bool(self.valid[page])

    # ------------------------------------------------------------------
    # write tracking
    # ------------------------------------------------------------------
    def record_write(self, page: int, changed_bytes: int) -> bool:
        """Account a write; returns True if this twinned the page."""
        first_write = page not in self.twinned
        if first_write:
            self.twinned.add(page)
        self.dirty[page] = self.dirty.get(page, 0) + changed_bytes
        return first_write

    def take_dirty(self, page_bytes: int) -> Dict[int, int]:
        """End the current interval: return and reset dirty pages.

        Per-page changed bytes are capped at the page size (a diff can
        never exceed one page).  Twins persist across interval ends —
        a page is only re-twinned after its twin is consumed by diff
        creation (see :meth:`consume_twin`), matching TreadMarks'
        lazy write-protection.
        """
        dirty = {page: min(changed, page_bytes)
                 for page, changed in self.dirty.items()}
        self.dirty = {}
        return dirty

    def consume_twin(self, page: int) -> None:
        """Diff creation used up the twin; next write re-twins."""
        self.twinned.discard(page)

    @property
    def has_dirty(self) -> bool:
        return bool(self.dirty)

    # ------------------------------------------------------------------
    # invalidation / revalidation
    # ------------------------------------------------------------------
    def apply_notice(self, page: int, creator: int, wire_bytes: int,
                     interval_index: int) -> bool:
        """Process one incoming write notice.

        Returns True if this invalidated a previously valid copy.
        Notices from this node itself are ignored (a node always sees
        its own writes).
        """
        if creator == self.node:
            return False
        pend = self.pending.get(page)
        if pend is None:
            pend = PendingDiffs()
            self.pending[page] = pend
        pend.add(creator, wire_bytes, interval_index)
        was_valid = bool(self.valid[page])
        self.valid[page] = False
        return was_valid

    def begin_fault(self, page: int) -> PendingDiffs:
        """Claim the pending-diff work for a faulting page."""
        return self.pending.pop(page, PendingDiffs())

    def revalidate(self, page: int) -> None:
        self.valid[page] = True

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "valid_pages": int(np.count_nonzero(self.valid)),
            "invalid_pages": int(np.count_nonzero(~self.valid)),
            "dirty_pages": len(self.dirty),
            "pending_pages": len(self.pending),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (f"<NodePages node={self.node} valid={s['valid_pages']} "
                f"dirty={s['dirty_pages']} pending={s['pending_pages']}>")
