"""Visibility of unsynchronized shared scalars (the TSP bound).

TSP updates its global minimum-tour bound under a lock but *reads* it
without synchronization (§2.4.3).  The value a processor observes
therefore depends on the shared-memory implementation:

* ``HARDWARE`` — the snooping/directory protocol invalidates cached
  copies on update, so readers see new bounds almost immediately.
* ``LAZY`` — TreadMarks propagates modifications only at acquires, so
  a reader sees the best bound released no later than its own last
  synchronization point.
* ``EAGER`` — the eager-release variant pushes the update out at
  release time; readers see it one message latency later.

Because a worse (higher) visible bound prunes less of the search tree,
this is the mechanism behind TSP's redundant work on TreadMarks, and
the model is queried *during* execution — the visible bound steers the
application's actual branch-and-bound decisions.
"""

from __future__ import annotations

import bisect
import math
from enum import Enum
from typing import List


class BoundMode(Enum):
    HARDWARE = "hardware"
    LAZY = "lazy"
    EAGER = "eager"


class SharedBound:
    """A monotonically improving (decreasing) shared bound."""

    def __init__(self, mode: BoundMode, num_procs: int, *,
                 initial: float = math.inf,
                 push_latency_cycles: int = 0) -> None:
        self.mode = mode
        self.num_procs = num_procs
        self.initial = initial
        self.push_latency = push_latency_cycles
        self._times: List[int] = []
        self._best_prefix: List[float] = []
        self._own_best = [initial] * num_procs
        self._sync_time = [0] * num_procs
        self.updates = 0

    # ------------------------------------------------------------------
    def update(self, proc: int, value: float, now: int) -> bool:
        """Commit a new bound (caller holds the bound lock).

        Returns True if the value improved on the globally best
        committed value (callers skip the write otherwise).
        """
        current = self._best_prefix[-1] if self._best_prefix else self.initial
        self._own_best[proc] = min(self._own_best[proc], value)
        if value >= current:
            return False
        self._times.append(now)
        self._best_prefix.append(value)
        self.updates += 1
        return True

    def on_sync(self, proc: int, now: int) -> None:
        """Record that ``proc`` passed a synchronization point.

        Under lazy release consistency this is the moment the
        processor's view of unsynchronized data catches up.
        """
        self._sync_time[proc] = max(self._sync_time[proc], now)

    # ------------------------------------------------------------------
    def read(self, proc: int, now: int) -> float:
        """The bound value visible to ``proc`` at time ``now``."""
        horizon = self._visible_horizon(proc, now)
        idx = bisect.bisect_right(self._times, horizon) - 1
        global_best = self._best_prefix[idx] if idx >= 0 else self.initial
        return min(global_best, self._own_best[proc])

    def _visible_horizon(self, proc: int, now: int) -> int:
        if self.mode is BoundMode.HARDWARE:
            return now
        if self.mode is BoundMode.EAGER:
            return now - self.push_latency
        return self._sync_time[proc]

    # ------------------------------------------------------------------
    @property
    def committed_best(self) -> float:
        return self._best_prefix[-1] if self._best_prefix else self.initial

    def staleness(self, proc: int, now: int) -> float:
        """How far ``proc``'s visible bound lags the committed best."""
        return self.read(proc, now) - self.committed_best
