"""The TreadMarks node runtime: lazy release consistency over a LAN.

:class:`TreadMarksDsm` exposes node-granularity operations to machine
models (``read``, ``write``, ``acquire``, ``release``,
``barrier_arrive``) and implements the LRC protocol of §2.1:

* **Intervals & write notices** — a node's dirty pages between
  synchronization points form an interval; acquirers and barrier
  departers receive notices for intervals they have not seen and
  invalidate their copies of the named pages.
* **Lazy diffs** — a faulting node requests diffs from the notice
  creators; creators build diffs on first request (twin comparison)
  and cache them.
* **Multiple-writer** — concurrent writers of one page each twin it
  and produce disjoint diffs; nobody is invalidated by their own
  writes.
* **Eager release** (optional, per lock) — at release time the
  releaser pushes diffs of its dirty pages to every node holding a
  valid copy, instead of invalidating lazily at the next acquire
  (the §2.4.3 TSP experiment).

For multiprocessor nodes (the HS architecture), everything here is
already node-granularity: co-resident processors share the page table,
their writes merge into one per-node diff, and concurrent faults on
one page coalesce into a single fetch (§3.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.ablate import ALL_ON, AblationSpec
from repro.check.checker import DsmChecker, active_check_config
from repro.dsm.diff import estimate_wire_bytes
from repro.dsm.interval import Interval, IntervalLog
from repro.dsm.locks import make_dsm_locks
from repro.dsm.barriers import make_dsm_barrier
from repro.dsm.pagetable import NodePages
from repro.dsm.vectorclock import VectorClock
from repro.errors import ConfigurationError, ProtocolError
from repro.mem.layout import AddressSpace
from repro.net.atm import AtmNetwork
from repro.net.overhead import SoftwareOverhead
from repro.stats.counters import Counters, DataKind, MsgKind
from repro.sync import DEFAULT_SYNC, SwitchCombiner, SyncPolicy
from repro.trace.tracer import Category

DoneCallback = Callable[[int], None]


@dataclass(frozen=True)
class DsmConfig:
    """Static protocol configuration."""

    num_nodes: int
    page_bytes: int = 4096
    request_payload_bytes: int = 16
    local_grant_cycles: int = 40
    barrier_local_cycles: int = 100
    eager_locks: Optional[frozenset] = None   # None, or lock ids; "all" ok
    barrier_manager_node: int = 0
    #: False disables run-length diffs: faults transfer whole pages
    #: (Ivy-style single-writer data movement; the A1 ablation).
    use_diffs: bool = True
    #: Which lock/barrier algorithms implement acquire/release and
    #: barrier_arrive (see :mod:`repro.sync`); the default is the
    #: paper's token lock + centralized barrier.
    sync: SyncPolicy = DEFAULT_SYNC
    #: Mechanism on/off selection (see :mod:`repro.ablate`); the
    #: all-on default is byte-identical to the pre-ablation protocol.
    ablate: AblationSpec = ALL_ON

    def lock_is_eager(self, lock_id: int) -> bool:
        if self.eager_locks is None:
            return False
        if self.eager_locks == "all":
            return True
        return lock_id in self.eager_locks


@dataclass
class _FaultJob:
    node: int
    page: int
    waiters: List[DoneCallback] = field(default_factory=list)
    outstanding: int = 0
    apply_cycles: int = 0
    started: int = 0      # fault start time (for tracing)
    remote: bool = False  # needed remote diffs (for tracing)
    #: Creators with a diff response still owed; recovery strikes a
    #: dead creator from this set, and a straggler response from a
    #: struck creator must not double-decrement ``outstanding``.
    creators: Set[int] = field(default_factory=set)


class TreadMarksDsm:
    """One machine's software DSM layer."""

    def __init__(self, net: AtmNetwork, space: AddressSpace,
                 overhead: SoftwareOverhead, config: DsmConfig) -> None:
        if config.num_nodes != net.num_nodes:
            raise ConfigurationError(
                f"DSM configured for {config.num_nodes} nodes but network "
                f"has {net.num_nodes}")
        if config.page_bytes != space.geometry.page_bytes:
            raise ConfigurationError(
                f"DSM page size {config.page_bytes} != address-space page "
                f"size {space.geometry.page_bytes}")
        self.net = net
        self.engine = net.engine
        self.counters: Counters = net.counters
        self.space = space
        self.overhead = overhead
        self.config = config
        self.ablate = config.ablate
        n = config.num_nodes
        self.vcs = [VectorClock(n) for _ in range(n)]
        self.log = IntervalLog(n)
        self.pages = [NodePages(i, space.total_pages) for i in range(n)]
        self._grant_snapshots: Dict[Tuple[int, int], Deque[VectorClock]] = {}
        self._inflight: Dict[Tuple[int, int], _FaultJob] = {}
        #: Nodes declared failed by recovery; excluded from clock
        #: merges, eager pushes, and fault targets.
        self.dead: Set[int] = set()
        #: Mutable barrier-manager seat; starts at the configured node
        #: and moves to the lowest-id survivor if that node dies.
        self.barrier_manager = config.barrier_manager_node
        #: Optional hook called as ``hook(node, page)`` whenever a
        #: node's copy of a page is refreshed with remote data; the HS
        #: machine uses it to invalidate stale lines in node caches.
        self.page_refreshed_hook: Optional[Callable[[int, int], None]] = None

        sync = config.sync
        combiner = None
        if "combining" in (sync.lock, sync.barrier):
            # Window ≈ the handler time a message would have cost (the
            # burst the fabric can merge); merge stage ≈ one switch
            # transit.
            combiner = SwitchCombiner(
                net,
                window_cycles=overhead.recv_cost(0),
                combine_cycles=max(1, net.switch_latency))
        self.combiner = combiner
        self.locks = make_dsm_locks(
            sync.lock, net, n,
            grant_payload=self._grant_payload,
            on_granted=self._on_granted,
            request_payload_bytes=config.request_payload_bytes,
            local_grant_cycles=config.local_grant_cycles,
            combiner=combiner,
        )
        self.barrier = make_dsm_barrier(
            sync.barrier, net, n,
            manager_node=config.barrier_manager_node,
            arrive_payload=self._arrive_payload,
            depart_payload=self._depart_payload,
            on_all_arrived=self._merge_all_clocks,
            on_depart=self._on_depart,
            local_cycles=config.barrier_local_cycles,
            combiner=combiner,
            tree_radix=sync.tree_radix,
        )
        self._merged_vc: Optional[VectorClock] = None
        #: Online invariant checker (repro.check); None unless a check
        #: configuration is ambient, so the disabled path costs one
        #: ``is not None`` test per hooked event.
        cfg = active_check_config()
        self.checker: Optional[DsmChecker] = (
            DsmChecker(self, cfg) if cfg is not None else None)

    # ==================================================================
    # interval bookkeeping
    # ==================================================================
    def end_interval(self, node: int) -> Optional[Interval]:
        """Close the node's current interval if it dirtied any pages."""
        if self.config.num_nodes == 1:
            return None  # nobody to notify: no interval bookkeeping
        table = self.pages[node]
        if not table.has_dirty:
            return None
        dirty = table.take_dirty(self.config.page_bytes)
        vc = self.vcs[node]
        index = vc.tick(node)
        interval = Interval(node, index, vc.snapshot(), dirty)
        if self.checker is not None:
            self.checker.on_interval_closed(interval)
        self.log.append(interval)
        return interval

    # ==================================================================
    # lock grant consistency plumbing
    # ==================================================================
    def _grant_payload(self, src: int, dst: int) -> int:
        self.end_interval(src)
        snapshot = self.vcs[src].copy()
        key = (src, dst)
        self._grant_snapshots.setdefault(key, deque()).append(snapshot)
        self.counters.write_notices_sent += self.log.notices_between(
            self.vcs[dst], snapshot)
        nbytes = self.log.consistency_bytes(self.vcs[dst], snapshot)
        return self._consistency_payload(src, dst, nbytes)

    def _consistency_payload(self, src: int, dst: int,
                             nbytes: int) -> int:
        """Consistency bytes a sync message carries — or, with
        write-notice piggybacking ablated off, zero: the notices then
        travel as one standalone ``WRITE_NOTICE`` message on the same
        edge, paying its own header and handler occupancy.  The
        notices still *apply* when the sync message is delivered (the
        omniscient-log simplification of DESIGN.md §4.4); the ablation
        models the transport cost of not piggybacking, not a weaker
        ordering."""
        if self.ablate.piggyback or nbytes == 0 or src == dst:
            return nbytes
        self.net.send(src, dst, nbytes, kind=MsgKind.WRITE_NOTICE,
                      data_kind=DataKind.CONSISTENCY)
        return 0

    def _on_granted(self, dst: int, src: int) -> None:
        queue = self._grant_snapshots.get((src, dst))
        if not queue:
            raise ProtocolError(
                f"grant delivered from {src} to {dst} without a snapshot")
        snapshot = queue.popleft()
        self._apply_notices(dst, snapshot)
        if self.checker is not None:
            self.checker.on_lock_granted(dst, src, snapshot)

    def _apply_notices(self, dst: int, upto: VectorClock) -> None:
        table = self.pages[dst]
        checker = self.checker
        applied = [] if checker is not None else None
        touched: Set[int] = set()
        for interval in self.log.newer_than(self.vcs[dst], upto):
            for page, changed in interval.pages.items():
                wire = estimate_wire_bytes(changed)
                if table.apply_notice(page, interval.node, wire,
                                      interval.index):
                    self.counters.pages_invalidated += 1
                touched.add(page)
            if applied is not None:
                applied.append(interval)
        if applied:
            # One batched checker call per merge instead of one hook
            # call per (interval, page) write notice.
            checker.on_notices_applied(dst, applied)
        self.vcs[dst].merge(upto)
        if not self.ablate.lazy_fetch and touched:
            self._eager_fetch(dst, touched)

    def _eager_fetch(self, dst: int, pages: Set[int]) -> None:
        """Lazy-fetch ablation: fault invalidated pages immediately.

        The paper's protocol waits for the next access fault to pull a
        page's diffs; with ``lazy_fetch`` off the node fetches every
        page the just-applied notices invalidated right at the sync
        point, overlapping the fetches with whatever it does next (the
        access that would have faulted finds the page valid or
        coalesces onto the in-flight fetch)."""
        for page in sorted(pages):
            if page not in self.pages[dst].pending:
                continue  # re-validated or already fetched
            if (dst, page) in self._inflight:
                continue  # a fetch is already in flight: coalescing
            self.counters.eager_fetches += 1
            self._fault(dst, page, lambda _t: None)

    # ==================================================================
    # barrier consistency plumbing
    # ==================================================================
    def _arrive_payload(self, node: int) -> int:
        mgr = self.barrier_manager
        self.counters.write_notices_sent += self.log.notices_between(
            self.vcs[mgr], self.vcs[node])
        nbytes = self.log.consistency_bytes(self.vcs[mgr],
                                            self.vcs[node])
        return self._consistency_payload(node, mgr, nbytes)

    def _merge_all_clocks(self) -> None:
        self.counters.barriers += 1
        merged = self.vcs[self.barrier_manager].copy()
        for i, vc in enumerate(self.vcs):
            if i in self.dead:
                continue
            merged.merge(vc)
        self._merged_vc = merged

    def _depart_payload(self, node: int) -> int:
        if self._merged_vc is None:
            raise ProtocolError("departure before all arrivals merged")
        self.counters.write_notices_sent += self.log.notices_between(
            self.vcs[node], self._merged_vc)
        nbytes = self.log.consistency_bytes(self.vcs[node],
                                            self._merged_vc)
        return self._consistency_payload(self.barrier_manager, node,
                                         nbytes)

    def _on_depart(self, node: int) -> None:
        if self._merged_vc is None:
            raise ProtocolError("departure before all arrivals merged")
        self._apply_notices(node, self._merged_vc)
        if self.checker is not None:
            self.checker.on_barrier_depart(node, self._merged_vc)

    # ==================================================================
    # public node-level operations
    # ==================================================================
    def acquire(self, lock_id: int, node: int, proc: int,
                done: Callable[[int, bool], None]) -> None:
        """Acquire a lock for ``proc`` on ``node``."""
        self.counters.lock_acquires += 1
        self.locks.acquire(lock_id, node, proc, done)

    def release(self, lock_id: int, node: int, proc: int,
                done: DoneCallback) -> None:
        """Release a lock, closing the node's interval first."""
        interval = self.end_interval(node)
        if interval is not None:
            if self.config.lock_is_eager(lock_id):
                self._eager_push(node, interval)
            elif not self.ablate.lazy_release:
                # Lazy-release ablation: §2.4.3's eager release
                # applied to every lock, not just ``eager_locks``.
                self.counters.eager_releases += 1
                self._eager_push(node, interval)
        self.locks.release(lock_id, node, proc, done)

    def barrier_arrive(self, barrier_id: int, node: int,
                       done: DoneCallback) -> None:
        """Node-level barrier arrival (machine aggregates processors)."""
        self.end_interval(node)
        self.barrier.arrive(barrier_id, node, done)

    # ------------------------------------------------------------------
    def read(self, node: int, addr: int, nbytes: int,
             done: DoneCallback) -> None:
        """Validate all pages under ``[addr, addr+nbytes)`` for reading."""
        if self.config.num_nodes == 1:
            self.engine.schedule(0, done, self.engine.now)
            return
        first, last = self.space.geometry.page_span(addr, nbytes)
        faulting = self.pages[node].invalid_in(first, last)
        if self.checker is not None:
            done = self.checker.wrap_read_done(node, first, last, done)
        self._resolve_faults(node, list(faulting), done)

    def write(self, node: int, addr: int, nbytes: int, changed_bytes: int,
              done: DoneCallback) -> None:
        """Validate + twin pages under a write of ``changed_bytes``."""
        if self.config.num_nodes == 1:
            # With a single node there is never a reader elsewhere:
            # TreadMarks does no write trapping, twinning, or diffing.
            self.engine.schedule(0, done, self.engine.now)
            return
        first, last = self.space.geometry.page_span(addr, nbytes)
        faulting = self.pages[node].invalid_in(first, last)

        def after_faults(time: int) -> None:
            cost = self._record_writes(node, addr, nbytes, changed_bytes,
                                       first, last)
            tracer = self.engine.tracer
            if tracer.enabled and cost:
                base = max(time, self.engine.now)
                tracer.complete(node, Category.PROTOCOL, "twin",
                                base, base + cost,
                                track=f"node{node}.dsm")
            self.engine.schedule_at(max(time, self.engine.now) + cost,
                                    done, time + cost)

        self._resolve_faults(node, list(faulting), after_faults)

    def _record_writes(self, node: int, addr: int, nbytes: int,
                       changed_bytes: int, first: int, last: int) -> int:
        """Distribute changed bytes over pages; twin on first write."""
        table = self.pages[node]
        page_bytes = self.config.page_bytes
        cost = 0
        for page in range(first, last):
            if self.checker is not None:
                self.checker.on_write(node, page)
            page_lo = page * page_bytes
            page_hi = page_lo + page_bytes
            overlap = min(addr + nbytes, page_hi) - max(addr, page_lo)
            if self.config.use_diffs and self.ablate.diffs:
                share = int(round(changed_bytes * overlap / nbytes))
            else:
                share = page_bytes  # whole-page transfer on fault
            if table.record_write(page, share):
                if self.ablate.twins:
                    cost += self.overhead.twin_cost(page_bytes)
                    self.counters.twins_created += 1
                # Twins off: the first write still opens the page's
                # dirty entry (interval bookkeeping), but no twin copy
                # is made — faulting nodes will receive whole pages.
        return cost

    # ==================================================================
    # fault handling
    # ==================================================================
    def _resolve_faults(self, node: int, faulting: List[int],
                        done: DoneCallback) -> None:
        """Fault pages in sequentially (as touch order would)."""
        if not faulting:
            self.engine.schedule(0, done, self.engine.now)
            return
        page = faulting[0]
        rest = faulting[1:]
        self._fault(node, page,
                    lambda _t: self._resolve_faults(node, rest, done))

    def _fault(self, node: int, page: int, done: DoneCallback) -> None:
        key = (node, page)
        job = self._inflight.get(key)
        if job is not None:
            # Another processor of this node is already fetching the
            # page: coalesce (the HS merged-fault behaviour, §3.1).
            job.waiters.append(done)
            return

        self.counters.page_faults += 1
        table = self.pages[node]
        if table.is_valid(page):
            self.engine.schedule(0, done, self.engine.now)
            return

        pend = table.begin_fault(page)
        if self.checker is not None:
            self.checker.on_fault_begin(node, page, pend)
        job = _FaultJob(node, page, waiters=[done],
                        started=self.engine.now)
        self._inflight[key] = job
        fault_cost = self.overhead.fault_cost()
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(node, Category.MISS, "page_fault",
                           self.engine.now, track=f"node{node}.dsm",
                           page=page)

        creators = {c: b for c, b in pend.by_creator.items()
                    if c != node and c not in self.dead}
        if not self.ablate.twins:
            # No twins, no diffs to cut: each creator ships its whole
            # current copy of the page exactly once, however many of
            # its intervals the fault covers.
            creators = {c: self.config.page_bytes for c in creators}
        if not creators:
            # Invalidated only by own stale state; revalidate locally.
            self._finish_fault(job, self.engine.now + fault_cost)
            return

        self.counters.remote_page_faults += 1
        job.remote = True
        by_creator_intervals: Dict[int, List[int]] = {}
        for creator, index in pend.intervals:
            by_creator_intervals.setdefault(creator, []).append(index)

        job.outstanding = len(creators)
        job.creators = set(creators)
        request_time = self.engine.now + fault_cost
        for creator, wire_bytes in creators.items():
            indices = by_creator_intervals.get(creator, [])
            self.net.send(
                node, creator, self.config.request_payload_bytes,
                kind=MsgKind.DIFF_REQUEST, data_kind=DataKind.CONSISTENCY,
                now=request_time,
                on_delivered=lambda _t, c=creator, w=wire_bytes, ix=indices:
                self._serve_diffs(job, c, w, ix))

    def _serve_diffs(self, job: _FaultJob, creator: int, wire_bytes: int,
                     indices: List[int]) -> None:
        """At the creator: lazily build the diffs, then respond."""
        if not self.ablate.twins:
            # Twin ablation: with no twin there is nothing to diff
            # against, so the creator ships its whole current copy of
            # the page in one message (``wire_bytes`` was overridden
            # to ``page_bytes`` at fault time).  No diff-creation cost
            # and no ``on_diff_created`` events — the page copy is not
            # a diff.
            self.counters.pages_shipped_whole += 1
            _start, ready = self.net.handlers[creator].acquire(
                self.engine.now, 0)
            self.net.send(creator, job.node, wire_bytes,
                          kind=MsgKind.DIFF_RESPONSE,
                          data_kind=DataKind.MISS, now=ready,
                          on_delivered=lambda t, c=creator, w=wire_bytes:
                          self._diff_arrived(job, c, w, t))
            return
        create_cost = 0
        for index in indices:
            interval = self.log.get(creator, index)
            if interval.diff_pending(job.page):
                if self.checker is not None:
                    self.checker.on_diff_created(interval, job.page)
                interval.diffs_made.add(job.page)
                create_cost += self.overhead.diff_create_cost(
                    self.config.page_bytes)
                self.counters.diffs_created += 1
                self.counters.diff_bytes_created += interval.pages[job.page]
                self.pages[creator].consume_twin(job.page)
        _start, ready = self.net.handlers[creator].acquire(
            self.engine.now, create_cost)
        tracer = self.engine.tracer
        if tracer.enabled and ready > _start:
            tracer.complete(creator, Category.PROTOCOL, "diff_create",
                            _start, ready, track=f"node{creator}.dsm",
                            page=job.page, for_node=job.node)
        if self.ablate.diff_merge or len(indices) <= 1:
            if len(indices) > 1:
                self.counters.diffs_merged += len(indices) - 1
            self.net.send(creator, job.node, wire_bytes,
                          kind=MsgKind.DIFF_RESPONSE,
                          data_kind=DataKind.MISS, now=ready,
                          on_delivered=lambda t, c=creator, w=wire_bytes:
                          self._diff_arrived(job, c, w, t))
            return
        # Diff-merge ablation: one response message per covered
        # interval instead of one merged response.  The per-interval
        # wires sum to the merged total (``pend.by_creator``
        # accumulates the same per-notice estimates), so the ablation
        # pays extra headers and handler occupancy, not extra diff
        # bytes.  Only the last message carries the completion
        # callback — with the *full* wire total, so the receiver's
        # apply cost matches the merged path.
        for i, index in enumerate(indices):
            interval = self.log.get(creator, index)
            wire_i = estimate_wire_bytes(interval.pages[job.page])
            done = None
            if i == len(indices) - 1:
                done = (lambda t, c=creator, w=wire_bytes:
                        self._diff_arrived(job, c, w, t))
            self.net.send(creator, job.node, wire_i,
                          kind=MsgKind.DIFF_RESPONSE,
                          data_kind=DataKind.MISS, now=ready,
                          on_delivered=done)

    def _diff_arrived(self, job: _FaultJob, creator: int,
                      wire_bytes: int, time: int) -> None:
        if creator not in job.creators:
            # Straggler: recovery already struck this creator from the
            # job (it was declared dead with the response in flight).
            # The decrement happened then; doing it again would let the
            # fault finish before a still-owed survivor responds.
            return
        job.creators.discard(creator)
        apply_cost = self.overhead.diff_apply_cost(wire_bytes)
        job.apply_cycles += apply_cost
        tracer = self.engine.tracer
        if tracer.enabled and apply_cost:
            tracer.complete(job.node, Category.PROTOCOL, "diff_apply",
                            time, time + apply_cost,
                            track=f"node{job.node}.dsm", page=job.page)
        job.outstanding -= 1
        if job.outstanding == 0:
            self._finish_fault(job, time + job.apply_cycles)

    def _finish_fault(self, job: _FaultJob, at: int) -> None:
        if self.checker is not None:
            self.checker.on_fault_done(job)
        tracer = self.engine.tracer
        if tracer.enabled and at > job.started:
            tracer.complete(job.node, Category.MISS,
                            "remote_fault" if job.remote else "local_fault",
                            job.started, at,
                            track=f"node{job.node}.dsm", page=job.page)
        table = self.pages[job.node]
        del self._inflight[(job.node, job.page)]
        if job.page in table.pending:
            # New write notices landed while this fault was in flight:
            # a co-resident processor synchronized (multiprocessor
            # nodes only — a uniprocessor node applies notices only
            # during its own sync operations).  Revalidating now would
            # leave the page missing those intervals' diffs and serve
            # stale data.  On a real SMP node the notice application
            # re-protects the page and the retried access faults
            # again, so model exactly that: fault once more, and only
            # then release the waiters.
            waiters = list(job.waiters)

            def resume_all(time: int) -> None:
                for waiter in waiters:
                    waiter(time)

            self._fault(job.node, job.page, resume_all)
            return
        table.revalidate(job.page)
        if self.page_refreshed_hook is not None:
            self.page_refreshed_hook(job.node, job.page)
        for waiter in job.waiters:
            self.engine.schedule_at(max(at, self.engine.now), waiter, at)

    # ==================================================================
    # eager release (§2.4.3)
    # ==================================================================
    def _eager_push(self, node: int, interval: Interval) -> None:
        """Push this interval's diffs to every node with a valid copy."""
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(node, Category.PROTOCOL, "eager_push",
                           self.engine.now, track=f"node{node}.dsm",
                           pages=len(interval.pages))
        wires: Dict[int, int] = {}
        for page, changed in interval.pages.items():
            if self.ablate.twins:
                wires[page] = estimate_wire_bytes(changed)
                if self.checker is not None:
                    self.checker.on_diff_created(interval, page, eager=True)
                interval.diffs_made.add(page)
                self.counters.diffs_created += 1
                self.counters.diff_bytes_created += changed
                self.pages[node].consume_twin(page)
            else:
                # Twin ablation: no twin, no diff — push the whole
                # current page copy to each holder instead.
                wires[page] = self.config.page_bytes
        for other in range(self.config.num_nodes):
            if other == node or other in self.dead:
                continue
            held = [page for page in interval.pages
                    if self.pages[other].is_valid(page)]
            if not held:
                continue
            # The receiver's copies are updated in place: it will not
            # fault on these pages for this interval.  Only when the
            # push covers *every* page the interval wrote may the
            # interval be marked seen — a partial receiver must still
            # apply the interval's write notices at its next sync, or
            # a later read of an unheld page would be stale.
            covers_all = len(held) == len(interval.pages)
            for page in held:
                if self.checker is not None:
                    self.checker.on_eager_push(other, interval, page)
                if not self.ablate.twins:
                    self.counters.pages_shipped_whole += 1
                if covers_all:
                    on_delivered = (lambda _t, o=other,
                                    iv=interval: self._eager_applied(o, iv))
                else:
                    on_delivered = (lambda _t, o=other,
                                    pg=page: self._eager_refreshed(o, pg))
                self.net.send(
                    node, other, wires[page],
                    kind=MsgKind.DIFF_RESPONSE, data_kind=DataKind.MISS,
                    on_delivered=on_delivered)

    def _eager_applied(self, other: int, interval: Interval) -> None:
        vc = self.vcs[other]
        if vc[interval.node] == interval.index - 1:
            vc[interval.node] = interval.index
        if self.page_refreshed_hook is not None:
            for page in interval.pages:
                self.page_refreshed_hook(other, page)

    def _eager_refreshed(self, other: int, page: int) -> None:
        if self.page_refreshed_hook is not None:
            self.page_refreshed_hook(other, page)

    # ==================================================================
    # crash-stop recovery (repro.recover)
    # ==================================================================
    def fail_node(self, node: int, now: int) -> None:
        """Repair the protocol after ``node`` is declared dead.

        Invoked (once per node) by the
        :class:`~repro.recover.RecoveryManager` at declaration time.
        Repair order matters: clocks are sealed first so no later step
        can re-introduce a dependency on the dead node's intervals,
        then lock records are regenerated, pages re-homed or written
        off, and finally barrier membership shrinks to the survivors.
        """
        n = self.config.num_nodes
        self.dead.add(node)
        alive = [i for i in range(n) if i not in self.dead]
        tracer = self.engine.tracer

        # 1. Seal vector clocks: every survivor marks the dead node's
        # closed intervals as seen.  Notices for those intervals will
        # never be applied again — updates the dead node had not yet
        # made visible through a sync operation are lost, exactly the
        # crash-stop guarantee LRC can offer (nothing weaker than what
        # an acquirer had already been granted).
        final_index = self.vcs[node][node]
        for x in alive:
            if self.vcs[x][node] < final_index:
                self.vcs[x][node] = final_index

        # 2. Regenerate lock state (token relocation, queue repair).
        self.counters.locks_regenerated += self.locks.remove_node(
            node, now)

        # 3. Strip the dead creator from every survivor's pending-diff
        # sets; pages left with no other source are re-homed from a
        # surviving valid copy, or written off as lost.
        emptied: List[Tuple[int, int]] = []
        for x in alive:
            table = self.pages[x]
            for page in list(table.pending):
                pend = table.pending[page]
                if node not in pend.by_creator:
                    continue
                del pend.by_creator[node]
                pend.intervals = [(c, i) for c, i in pend.intervals
                                  if c != node]
                if not pend.by_creator:
                    del table.pending[page]
                    emptied.append((x, page))
        for x, page in emptied:
            source = next((y for y in alive
                           if y != x and self.pages[y].is_valid(page)),
                          None)
            self.pages[x].revalidate(page)
            if source is None:
                # The only reconstruction source died with the node.
                self.counters.pages_lost += 1
                if tracer.enabled:
                    tracer.instant(x, Category.RECOVERY, "page_lost",
                                   now, track=f"node{x}.dsm",
                                   page=page, creator=node)
                continue
            self.counters.pages_rehomed += 1
            self.net.send(
                x, source, self.config.request_payload_bytes,
                kind=MsgKind.PAGE_REQUEST,
                data_kind=DataKind.CONSISTENCY, now=now,
                on_delivered=lambda t, s=source, d=x, p=page:
                self.net.send(s, d, self.config.page_bytes,
                              kind=MsgKind.PAGE_RESPONSE,
                              data_kind=DataKind.MISS, now=t,
                              on_delivered=lambda t2, d2=d, p2=p:
                              self._rehomed(d2, p2)))

        # 4. In-flight fault jobs: drop the dead node's own, strike it
        # from survivors' outstanding sets.
        for key in [k for k in self._inflight if k[0] == node]:
            del self._inflight[key]
        for job in list(self._inflight.values()):
            if node in job.creators:
                job.creators.discard(node)
                job.outstanding -= 1
                if job.outstanding == 0:
                    self._finish_fault(job, now)

        # 5. Shrink barrier membership n → n−1 (and move the manager
        # seat off the dead node).
        if self.barrier_manager == node and alive:
            self.barrier_manager = min(alive)
        self.counters.barrier_reconfigs += self.barrier.remove_node(
            node, now)

        if self.checker is not None:
            self.checker.on_node_failed(node)

    def _rehomed(self, node: int, page: int) -> None:
        """A re-homed page copy landed in node memory."""
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(node, Category.RECOVERY, "page_rehomed",
                           self.engine.now, track=f"node{node}.dsm",
                           page=page)
        if self.page_refreshed_hook is not None:
            self.page_refreshed_hook(node, page)

    # ==================================================================
    def node_stats(self) -> List[Dict[str, int]]:
        return [table.stats() for table in self.pages]
