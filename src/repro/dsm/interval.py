"""Intervals, write notices, and the interval log.

A node's execution is divided into *intervals* delimited by its
synchronization operations.  Each interval records which pages the
node modified and how many bytes of each actually changed; a *write
notice* is the (page, creator, interval) triple that travels with
lock grants and barrier departures (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.dsm.vectorclock import VectorClock

WRITE_NOTICE_BYTES = 12
"""Wire size of one *uncompressed* write notice (page id + creator +
interval index); used for per-notice statistics."""

INTERVAL_HEADER_BYTES = 8
"""Wire size of one interval record (creator + index)."""

NOTICE_RUN_BYTES = 6
"""Wire size of one compressed notice run (start page + count).

TreadMarks-style protocols send the write notices of an interval as
runs of consecutive page numbers; a band-structured application like
SOR dirties hundreds of *contiguous* pages per interval, which
compress to a single run, while scattered writers (M-Water) see
little compression — exactly the asymmetry visible in the paper's
consistency-data volumes (Figure 13)."""


@dataclass
class Interval:
    """One interval of one node: its timestamp and its dirty pages."""

    node: int
    index: int                      # this node's interval counter
    vc: Tuple[int, ...]             # clock snapshot at interval end
    pages: Dict[int, int] = field(default_factory=dict)  # page -> bytes
    diffs_made: Set[int] = field(default_factory=set)

    @property
    def num_notices(self) -> int:
        return len(self.pages)

    def notice_runs(self) -> int:
        """Number of maximal runs of consecutive dirty page numbers."""
        if not self.pages:
            return 0
        pages = sorted(self.pages)
        runs = 1
        for prev, cur in zip(pages, pages[1:]):
            if cur != prev + 1:
                runs += 1
        return runs

    def wire_bytes(self) -> int:
        """Bytes this interval's notices occupy in a message."""
        return INTERVAL_HEADER_BYTES + self.notice_runs() * NOTICE_RUN_BYTES

    def diff_pending(self, page: int) -> bool:
        """True if the diff for ``page`` has not been created yet
        (TreadMarks creates diffs lazily, on first request)."""
        return page in self.pages and page not in self.diffs_made


class IntervalLog:
    """All intervals of all nodes, ordered per node by index.

    The log is the oracle both lock grantors and the barrier manager
    consult to answer "which intervals does node X not know about?"
    (everything with an index above X's vector-clock entry for the
    creator).  Real TreadMarks garbage-collects old intervals; we keep
    them all — documented simplification, memory only.
    """

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self._per_node: List[List[Interval]] = [[] for _ in range(num_nodes)]

    def append(self, interval: Interval) -> None:
        log = self._per_node[interval.node]
        expected = len(log) + 1
        if interval.index != expected:
            raise ValueError(
                f"interval index {interval.index} out of order for node "
                f"{interval.node}; expected {expected}")
        log.append(interval)

    def node_count(self, node: int) -> int:
        return len(self._per_node[node])

    def get(self, node: int, index: int) -> Interval:
        return self._per_node[node][index - 1]

    # ------------------------------------------------------------------
    def newer_than(self, vc: VectorClock,
                   upto: VectorClock) -> Iterator[Interval]:
        """Intervals with ``vc < index <= upto`` per creator node.

        This is exactly the set of write notices a releaser with
        knowledge ``upto`` sends to an acquirer with knowledge ``vc``.
        """
        for node in range(self.num_nodes):
            lo = vc[node]
            hi = min(upto[node], len(self._per_node[node]))
            for index in range(lo + 1, hi + 1):
                yield self._per_node[node][index - 1]

    def notices_between(self, vc: VectorClock, upto: VectorClock) -> int:
        """Number of write notices in :meth:`newer_than`."""
        return sum(iv.num_notices for iv in self.newer_than(vc, upto))

    def consistency_bytes(self, vc: VectorClock, upto: VectorClock) -> int:
        """Wire bytes of the notice set plus one vector clock.

        Notices travel run-compressed per interval (see
        :data:`NOTICE_RUN_BYTES`).
        """
        total = upto.wire_bytes()
        for interval in self.newer_than(vc, upto):
            total += interval.wire_bytes()
        return total
