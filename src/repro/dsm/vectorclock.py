"""Vector timestamps over DSM nodes.

TreadMarks represents the happened-before-1 partial order with vector
timestamps (§2.1): entry ``i`` counts the intervals of node ``i`` the
owner has seen.  Clocks are small (one entry per *node*, not per
processor), so a plain list is fast enough and keeps semantics obvious.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import ConfigurationError

ENTRY_BYTES = 4
"""Wire size of one vector-clock entry (32-bit interval index)."""


class VectorClock:
    """A mutable vector timestamp of fixed width."""

    __slots__ = ("entries",)

    def __init__(self, num_nodes: int = 0,
                 entries: Iterable[int] = ()) -> None:
        if entries:
            self.entries: List[int] = list(entries)
        else:
            if num_nodes <= 0:
                raise ConfigurationError(
                    f"vector clock needs at least one node: {num_nodes}")
            self.entries = [0] * num_nodes

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.entries)

    def __getitem__(self, node: int) -> int:
        return self.entries[node]

    def __setitem__(self, node: int, value: int) -> None:
        self.entries[node] = value

    def tick(self, node: int) -> int:
        """Advance ``node``'s own component; returns the new value."""
        self.entries[node] += 1
        return self.entries[node]

    def copy(self) -> "VectorClock":
        return VectorClock(entries=self.entries)

    def snapshot(self) -> Tuple[int, ...]:
        """Immutable snapshot (hashable, for interval records)."""
        return tuple(self.entries)

    # ------------------------------------------------------------------
    def merge(self, other: "VectorClock") -> None:
        """Pointwise maximum (the join of the partial order)."""
        self._check(other)
        self.entries = [max(a, b) for a, b in zip(self.entries,
                                                  other.entries)]

    def dominates(self, other: "VectorClock") -> bool:
        """True when self >= other pointwise."""
        self._check(other)
        return all(a >= b for a, b in zip(self.entries, other.entries))

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other."""
        return not self.dominates(other) and not other.dominates(self)

    def _check(self, other: "VectorClock") -> None:
        if len(self.entries) != len(other.entries):
            raise ConfigurationError(
                f"vector clock width mismatch: {len(self.entries)} vs "
                f"{len(other.entries)}")

    # ------------------------------------------------------------------
    def wire_bytes(self) -> int:
        """Bytes this clock occupies in a message."""
        return ENTRY_BYTES * len(self.entries)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, VectorClock) and
                self.entries == other.entries)

    def __hash__(self) -> int:
        return hash(tuple(self.entries))

    def __repr__(self) -> str:
        return f"VC{self.entries}"
