"""DSM barriers: centralized manager plus scalable alternatives.

The paper's barrier (§2.1, the ``central`` default): every node sends
its arrival (carrying the intervals the manager has not yet seen) to a
manager node; once all have arrived the manager broadcasts departures,
each carrying the write notices that particular node lacks.  Arrival
processing serializes through the manager's handler CPU, which is what
makes the measured 8-processor barrier take ~2 ms on the ATM network —
and what makes it O(n) in the per-message software overhead.

Two alternatives attack that serialization:

* ``tree`` (:class:`TreeBarrier`) — a software combining tree of radix
  ``tree_radix`` rooted at the manager: each node reports to its
  parent only when its whole subtree has arrived, and departures fan
  back down the same tree.  The same 2(n-1) messages, but handler
  work spreads over the internal nodes and the critical path shrinks
  from O(n) to O(radix · log n) message handling times.
* ``combining`` (:class:`CombiningBarrier`) — the centralized
  protocol carried by an in-network combining stage
  (:class:`~repro.sync.combining.SwitchCombiner`): arrival increments
  merge in the fabric on the way up and the departure wave is a
  fabric multicast on the way down, so the manager CPU is charged for
  a handful of messages instead of n-1.

Consistency approximation (documented): all variants invoke the same
``on_all_arrived`` global merge once everyone is in, and every
departure carries ``depart_payload(dst)`` — the omniscient-log
simplification of DESIGN.md §4.4.  Tree *arrival* payloads use the
arriving node's own ``arrive_payload`` even though the message targets
the parent rather than the manager; interval bytes are what they are
regardless of the hop that carries them.

Crash-stop recovery (:mod:`repro.recover`): when a node is declared
dead, :meth:`DsmBarrierBase.remove_node` shrinks membership from n to
n−1.  Completion becomes set-based (*every surviving node has
arrived*), open episodes are re-checked immediately, and all
algorithms degrade to central-style routing through the (possibly
reassigned) manager for the rest of the run — a tree with a dead
internal node or a combining fabric aimed at a dead home is no longer
sound, and correctness beats topology once the machine is degraded.
Episode ``departed`` sets make departure delivery idempotent, so
repair re-sends can never double-release a waiter.

The HS machine arranges for only the *last* processor of each node to
trigger the node-level arrival (§3.1); that logic lives in the machine
layer — this module works purely at node granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.stats.counters import DataKind, MsgKind
from repro.trace.tracer import Category

DepartCallback = Callable[[int], None]
"""Called as ``cb(time)`` when the node may leave the barrier."""


@dataclass
class _Episode:
    barrier_id: int
    index: int
    waiting: Dict[int, DepartCallback] = field(default_factory=dict)
    #: Nodes whose arrival has reached the completion authority
    #: (manager-side knowledge, or recovery's resync seeding).
    arrived_nodes: Set[int] = field(default_factory=set)
    #: True once the episode completed; stale in-flight arrivals and
    #: up-ticks against a completed episode become no-ops.
    done: bool = False
    #: Nodes whose departure has been handed to them (idempotence
    #: guard: a repair re-send racing the original cannot double
    #: release).
    departed: Set[int] = field(default_factory=set)
    #: Manager node at completion time (the departure source the
    #: release wave depends on).
    release_src: int = -1
    first_arrival: int = -1  # time of first node arrival (for tracing)
    up: Dict[int, int] = field(default_factory=dict)  # tree up-counters


class DsmBarrierBase:
    """Shared machinery of all DSM barrier algorithms.

    Episode bookkeeping, double-arrival detection, the global
    consistency merge at completion, and departure dispatch are
    common; subclasses implement :meth:`_on_arrival` (how an arrival
    propagates) and completion triggers :meth:`_release` (how
    departures propagate).  After any crash-stop failure
    (:meth:`remove_node`) the base class takes over routing entirely:
    arrivals and departures flow central-style through the current
    manager regardless of algorithm.
    """

    algorithm = "base"

    def __init__(self, net, num_nodes: int, *,
                 manager_node: int = 0,
                 arrive_payload: Callable[[int], int],
                 depart_payload: Callable[[int], int],
                 on_all_arrived: Callable[[], None],
                 on_depart: Callable[[int], None],
                 local_cycles: int = 100) -> None:
        self.net = net
        self.num_nodes = num_nodes
        self.manager_node = manager_node
        self.arrive_payload = arrive_payload
        self.depart_payload = depart_payload
        self.on_all_arrived = on_all_arrived
        self.on_depart = on_depart
        self.local_cycles = local_cycles
        self._episodes: Dict[int, _Episode] = {}
        self._counts: Dict[int, int] = {}
        #: Episodes that completed but whose departure wave may still
        #: be in flight (crash repair re-sends lost departures).
        self._releasing: Dict[Tuple[int, int], _Episode] = {}
        #: Nodes declared dead by recovery; excluded from membership.
        self.dead: Set[int] = set()
        self.completed: int = 0

    def _alive(self) -> Set[int]:
        """Current membership: all nodes not declared dead."""
        return {i for i in range(self.num_nodes) if i not in self.dead}

    # ------------------------------------------------------------------
    def arrive(self, barrier_id: int, node: int,
               done: DepartCallback) -> None:
        """Node-level arrival; ``done(time)`` fires at departure."""
        episode = self._episodes.get(barrier_id)
        if episode is None:
            episode = _Episode(barrier_id, self._counts.get(barrier_id, 0))
            self._episodes[barrier_id] = episode
        if node in episode.waiting:
            raise ProtocolError(
                f"node {node} arrived twice at barrier {barrier_id} "
                f"episode {episode.index}")
        episode.waiting[node] = done
        engine = self.net.engine
        if episode.first_arrival < 0:
            episode.first_arrival = engine.now
        tracer = engine.tracer
        if tracer.enabled:
            tracer.instant(node, Category.SYNC, "barrier_arrive",
                           engine.now, track=f"node{node}.dsm",
                           barrier=barrier_id, episode=episode.index)
        if self.dead:
            self._degraded_arrival(barrier_id, episode, node)
        else:
            self._on_arrival(barrier_id, episode, node)

    def _on_arrival(self, barrier_id: int, episode: _Episode,
                    node: int) -> None:
        raise NotImplementedError

    def _degraded_arrival(self, barrier_id: int, episode: _Episode,
                          node: int) -> None:
        """Post-failure arrival: central-style to the current manager."""
        if node == self.manager_node:
            self._arrived(barrier_id, episode, node)
            return
        self.net.send(node, self.manager_node, self.arrive_payload(node),
                      kind=MsgKind.BARRIER_ARRIVE,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t:
                      self._arrived(barrier_id, episode, node))

    def _arrived(self, barrier_id: int, episode: _Episode,
                 node: int) -> None:
        """An arrival reached the completion authority."""
        if episode.done:
            return  # stale delivery against a completed episode
        episode.arrived_nodes.add(node)
        self._check_complete(barrier_id, episode)

    def _check_complete(self, barrier_id: int, episode: _Episode) -> None:
        """Complete the episode once every *surviving* node is in."""
        if episode.done:
            return
        if self._alive() <= episode.arrived_nodes:
            self._complete(barrier_id, episode)

    # ------------------------------------------------------------------
    def _complete(self, barrier_id: int, episode: _Episode) -> None:
        """All (surviving) nodes are in: merge, retire the episode."""
        episode.done = True
        self.on_all_arrived()
        self.completed += 1
        self._counts[barrier_id] = episode.index + 1
        del self._episodes[barrier_id]
        episode.release_src = self.manager_node
        self._releasing[(barrier_id, episode.index)] = episode
        engine = self.net.engine
        tracer = engine.tracer
        if tracer.enabled and engine.now > episode.first_arrival:
            tracer.complete(
                self.manager_node, Category.SYNC,
                f"barrier{barrier_id}#{episode.index}",
                episode.first_arrival, engine.now, track="barrier",
                nodes=self.num_nodes - len(self.dead))
        if self.dead:
            self._release_degraded(episode)
        else:
            self._release(episode)

    def _release(self, episode: _Episode) -> None:
        raise NotImplementedError

    def _release_degraded(self, episode: _Episode) -> None:
        """Post-failure departure wave: manager to each survivor."""
        for dst, done in episode.waiting.items():
            if dst in self.dead:
                continue
            if dst == self.manager_node:
                self._local_depart(episode, dst, done)
            else:
                self._send_depart_from_manager(episode, dst, done)

    def _send_depart_from_manager(self, episode: _Episode, dst: int,
                                  done: DepartCallback) -> None:
        """One departure message from the current manager to ``dst``."""
        self.net.send(self.manager_node, dst, self.depart_payload(dst),
                      kind=MsgKind.BARRIER_DEPART,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda t, d=dst, cb=done:
                      self._episode_depart(episode, d, cb, t))

    def _local_depart(self, episode: _Episode, node: int,
                      done: DepartCallback) -> None:
        episode.departed.add(node)
        engine = self.net.engine
        at = engine.now + self.local_cycles
        engine.schedule_at(at, self._depart, node, done, at)
        self._maybe_retire(episode)

    def _episode_depart(self, episode: _Episode, node: int,
                        done: DepartCallback, time: int) -> None:
        """Idempotent departure delivery (repair re-sends may race)."""
        if node in episode.departed:
            return
        episode.departed.add(node)
        self._depart(node, done, time)
        self._maybe_retire(episode)

    def _depart(self, node: int, done: DepartCallback, time: int) -> None:
        self.on_depart(node)
        done(time)

    def _maybe_retire(self, episode: _Episode) -> None:
        """Drop release bookkeeping once every survivor departed."""
        if all(d in episode.departed or d in self.dead
               for d in episode.waiting):
            self._releasing.pop((episode.barrier_id, episode.index), None)

    # ------------------------------------------------------------------
    # crash-stop recovery (repro.recover)
    # ------------------------------------------------------------------
    def remove_node(self, node: int, now: int) -> int:
        """Shrink barrier membership after ``node`` is declared dead.

        Reassigns the manager seat if it died, seeds every open
        episode's arrival knowledge from the survivors already waiting
        (the recovery resync), re-checks completion with the reduced
        membership, and re-sends departures the dead node would have
        carried.  Returns the number of episodes reconfigured (the
        ``barrier_reconfigs`` counter contribution).
        """
        self.dead.add(node)
        alive = self._alive()
        if not alive:
            raise ProtocolError("no surviving node left to run barriers")
        if self.manager_node in self.dead:
            self.manager_node = min(alive)
        engine = self.net.engine
        tracer = engine.tracer
        reconfigs = 0
        for barrier_id, episode in list(self._episodes.items()):
            reconfigs += 1
            # Recovery resync: survivors that already arrived locally
            # are known to the (new) manager even if their arrival
            # message died with the old topology.
            episode.arrived_nodes |= set(episode.waiting) - self.dead
            if tracer.enabled:
                tracer.instant(self.manager_node, Category.RECOVERY,
                               "barrier_reconfig", now,
                               track=f"node{self.manager_node}.dsm",
                               barrier=barrier_id, episode=episode.index,
                               dead=node)
            self._check_complete(barrier_id, episode)
        for episode in list(self._releasing.values()):
            if self._repair_release(episode, node):
                reconfigs += 1
        return reconfigs

    def _repair_release(self, episode: _Episode, dead_node: int) -> bool:
        """Re-send departures that may have died with ``dead_node``."""
        resent = False
        for dst, done in episode.waiting.items():
            if (dst in self.dead or dst in episode.departed
                    or dead_node not in self._depart_path(episode, dst)):
                continue
            self._send_depart_from_manager(episode, dst, done)
            resent = True
        self._maybe_retire(episode)
        return resent

    def _depart_path(self, episode: _Episode, dst: int) -> Set[int]:
        """Nodes the departure for ``dst`` travels through (source
        included, ``dst`` excluded); a crash on this path may have
        lost the departure."""
        return {episode.release_src}


class BarrierManager(DsmBarrierBase):
    """The paper's centralized barrier (one manager node for all)."""

    algorithm = "central"

    def _on_arrival(self, barrier_id: int, episode: _Episode,
                    node: int) -> None:
        if node == self.manager_node:
            self._arrived(barrier_id, episode, node)
        else:
            self._send_arrival(barrier_id, episode, node)

    def _send_arrival(self, barrier_id: int, episode: _Episode,
                      node: int) -> None:
        self.net.send(node, self.manager_node,
                      self.arrive_payload(node),
                      kind=MsgKind.BARRIER_ARRIVE,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t:
                      self._arrived(barrier_id, episode, node))

    def _release(self, episode: _Episode) -> None:
        for dst, done in episode.waiting.items():
            if dst in self.dead:
                continue
            if dst == self.manager_node:
                self._local_depart(episode, dst, done)
            else:
                self._send_depart(episode, dst, done)

    def _send_depart(self, episode: _Episode, dst: int,
                     done: DepartCallback) -> None:
        self.net.send(self.manager_node, dst,
                      self.depart_payload(dst),
                      kind=MsgKind.BARRIER_DEPART,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda t, d=dst, cb=done:
                      self._episode_depart(episode, d, cb, t))


class CombiningBarrier(BarrierManager):
    """Centralized counting carried by an in-network combining stage.

    Protocol-identical to :class:`BarrierManager`; the transport
    differs.  Arrival increments toward the manager merge in the
    fabric (followers within a combining window charge the switch's
    merge stage instead of the manager's handler CPU), and the
    departure broadcast is a fabric multicast (replicas skip the
    manager's send CPU).  ``combining_hits`` counts the merges.
    """

    algorithm = "combining"

    def __init__(self, *args, combiner=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if combiner is None:
            raise ConfigurationError(
                "combining barrier needs a SwitchCombiner (combiner=...)")
        self.combiner = combiner

    def _send_arrival(self, barrier_id: int, episode: _Episode,
                      node: int) -> None:
        self.combiner.fan_in(node, self.manager_node,
                             self.arrive_payload(node),
                             kind=MsgKind.BARRIER_ARRIVE,
                             key=("barrier", barrier_id, episode.index),
                             on_delivered=lambda _t:
                             self._arrived(barrier_id, episode, node))

    def _send_depart(self, episode: _Episode, dst: int,
                     done: DepartCallback) -> None:
        self.combiner.fan_out(self.manager_node, dst,
                              self.depart_payload(dst),
                              kind=MsgKind.BARRIER_DEPART,
                              key=("barrier-release", episode.index),
                              on_delivered=lambda t, d=dst, cb=done:
                              self._episode_depart(episode, d, cb, t))


class TreeBarrier(DsmBarrierBase):
    """Software combining tree (MCS-style tournament) barrier.

    Nodes form a static radix-``tree_radix`` tree rooted at the
    manager.  Logical index of ``node`` is ``(node - root) mod n``;
    logical index 0 is the root and index ``i`` has children
    ``radix*i + 1 .. radix*i + radix``.  A node reports to its parent
    only when it has seen its own arrival plus one report per child
    subtree; the root completing triggers a departure wave back down
    the same edges.
    """

    algorithm = "tree"

    def __init__(self, *args, tree_radix: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if tree_radix < 2:
            raise ConfigurationError(
                f"tree barrier radix must be >= 2, got {tree_radix}")
        self.tree_radix = tree_radix

    # -- static topology ------------------------------------------------
    def _node_of(self, li: int, root: int) -> int:
        return (root + li) % self.num_nodes

    def _index_of(self, node: int, root: int) -> int:
        return (node - root) % self.num_nodes

    def _children(self, li: int) -> List[int]:
        first = self.tree_radix * li + 1
        return [c for c in range(first, first + self.tree_radix)
                if c < self.num_nodes]

    # -- up phase --------------------------------------------------------
    def _on_arrival(self, barrier_id: int, episode: _Episode,
                    node: int) -> None:
        self._up_tick(barrier_id, episode,
                      self._index_of(node, self.manager_node))

    def _up_tick(self, barrier_id: int, episode: _Episode,
                 li: int) -> None:
        if episode.done:
            return  # recovery completed the episode with n−1 members
        episode.up[li] = episode.up.get(li, 0) + 1
        if episode.up[li] < 1 + len(self._children(li)):
            return
        if li == 0:
            # The root has its whole tree: all members arrived.
            root = self.manager_node
            for member in range(self.num_nodes):
                episode.arrived_nodes.add(member)
            self._check_complete(barrier_id, episode)
            return
        parent = (li - 1) // self.tree_radix
        root = self.manager_node
        src = self._node_of(li, root)
        self.net.send(src, self._node_of(parent, root),
                      self.arrive_payload(src),
                      kind=MsgKind.BARRIER_ARRIVE,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t:
                      self._up_tick(barrier_id, episode, parent))

    # -- down phase ------------------------------------------------------
    def _release(self, episode: _Episode) -> None:
        self._wave(episode, 0)
        root = self._node_of(0, episode.release_src)
        self._local_depart(episode, root, episode.waiting[root])

    def _wave(self, episode: _Episode, li: int) -> None:
        root = episode.release_src
        src = self._node_of(li, root)
        for child in self._children(li):
            dst = self._node_of(child, root)
            self.net.send(src, dst, self.depart_payload(dst),
                          kind=MsgKind.BARRIER_DEPART,
                          data_kind=DataKind.CONSISTENCY,
                          on_delivered=lambda t, c=child, d=dst:
                          self._tree_depart(episode, c, d, t))

    def _tree_depart(self, episode: _Episode, li: int, node: int,
                     time: int) -> None:
        if node in episode.departed:
            return  # repair re-send already released this node
        episode.departed.add(node)
        self._wave(episode, li)  # forward first, then release locally
        self._depart(node, episode.waiting[node], time)
        self._maybe_retire(episode)

    def _depart_path(self, episode: _Episode, dst: int) -> Set[int]:
        """All ancestors of ``dst`` in the release tree (root first)."""
        root = episode.release_src
        path: Set[int] = set()
        li = self._index_of(dst, root)
        while li != 0:
            li = (li - 1) // self.tree_radix
            path.add(self._node_of(li, root))
        return path


#: Barrier algorithm name -> implementation class.
DSM_BARRIER_IMPLS: Dict[str, type] = {
    "central": BarrierManager,
    "tree": TreeBarrier,
    "combining": CombiningBarrier,
}


def make_dsm_barrier(algorithm: str, net, num_nodes: int, *,
                     combiner=None, tree_radix: int = 4,
                     **kwargs) -> DsmBarrierBase:
    """Build the DSM barrier for ``algorithm`` (see DSM_BARRIER_IMPLS)."""
    impl = DSM_BARRIER_IMPLS.get(algorithm)
    if impl is None:
        raise ConfigurationError(
            f"unknown DSM barrier algorithm '{algorithm}' "
            f"(known: {', '.join(DSM_BARRIER_IMPLS)})")
    if algorithm == "tree":
        return impl(net, num_nodes, tree_radix=tree_radix, **kwargs)
    if algorithm == "combining":
        return impl(net, num_nodes, combiner=combiner, **kwargs)
    return impl(net, num_nodes, **kwargs)
