"""Centralized barrier manager.

At a barrier, every node sends its arrival (carrying the intervals the
manager has not yet seen) to a manager node; once all have arrived the
manager broadcasts departures, each carrying the write notices that
particular node lacks (§2.1).  Arrival processing serializes through
the manager's handler CPU, which is what makes the measured
8-processor barrier take ~2 ms on the ATM network.

The HS machine arranges for only the *last* processor of each node to
trigger the node-level arrival (§3.1); that logic lives in the machine
layer — this module works purely at node granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.errors import ProtocolError
from repro.stats.counters import DataKind, MsgKind
from repro.trace.tracer import Category

DepartCallback = Callable[[int], None]
"""Called as ``cb(time)`` when the node may leave the barrier."""


@dataclass
class _Episode:
    index: int
    waiting: Dict[int, DepartCallback] = field(default_factory=dict)
    arrived: int = 0
    first_arrival: int = -1  # time of first node arrival (for tracing)


class BarrierManager:
    """All DSM barriers of one machine (one manager node for all)."""

    def __init__(self, net, num_nodes: int, *,
                 manager_node: int = 0,
                 arrive_payload: Callable[[int], int],
                 depart_payload: Callable[[int], int],
                 on_all_arrived: Callable[[], None],
                 on_depart: Callable[[int], None],
                 local_cycles: int = 100) -> None:
        self.net = net
        self.num_nodes = num_nodes
        self.manager_node = manager_node
        self.arrive_payload = arrive_payload
        self.depart_payload = depart_payload
        self.on_all_arrived = on_all_arrived
        self.on_depart = on_depart
        self.local_cycles = local_cycles
        self._episodes: Dict[int, _Episode] = {}
        self._counts: Dict[int, int] = {}
        self.completed: int = 0

    # ------------------------------------------------------------------
    def arrive(self, barrier_id: int, node: int,
               done: DepartCallback) -> None:
        """Node-level arrival; ``done(time)`` fires at departure."""
        episode = self._episodes.get(barrier_id)
        if episode is None:
            episode = _Episode(self._counts.get(barrier_id, 0))
            self._episodes[barrier_id] = episode
        if node in episode.waiting:
            raise ProtocolError(
                f"node {node} arrived twice at barrier {barrier_id} "
                f"episode {episode.index}")
        episode.waiting[node] = done
        engine = self.net.engine
        if episode.first_arrival < 0:
            episode.first_arrival = engine.now
        tracer = engine.tracer
        if tracer.enabled:
            tracer.instant(node, Category.SYNC, "barrier_arrive",
                           engine.now, track=f"node{node}.dsm",
                           barrier=barrier_id, episode=episode.index)

        if node == self.manager_node:
            self._arrived(barrier_id, node)
        else:
            self.net.send(node, self.manager_node,
                          self.arrive_payload(node),
                          kind=MsgKind.BARRIER_ARRIVE,
                          data_kind=DataKind.CONSISTENCY,
                          on_delivered=lambda _t:
                          self._arrived(barrier_id, node))

    def _arrived(self, barrier_id: int, node: int) -> None:
        episode = self._episodes[barrier_id]
        episode.arrived += 1
        if episode.arrived < self.num_nodes:
            return

        # Everyone is in: merge knowledge, then broadcast departures.
        self.on_all_arrived()
        self.completed += 1
        self._counts[barrier_id] = episode.index + 1
        del self._episodes[barrier_id]
        engine = self.net.engine
        tracer = engine.tracer
        if tracer.enabled and engine.now > episode.first_arrival:
            tracer.complete(
                self.manager_node, Category.SYNC,
                f"barrier{barrier_id}#{episode.index}",
                episode.first_arrival, engine.now, track="barrier",
                nodes=self.num_nodes)
        for dst, done in episode.waiting.items():
            if dst == self.manager_node:
                at = engine.now + self.local_cycles
                engine.schedule_at(at, self._depart, dst, done, at)
            else:
                self.net.send(self.manager_node, dst,
                              self.depart_payload(dst),
                              kind=MsgKind.BARRIER_DEPART,
                              data_kind=DataKind.CONSISTENCY,
                              on_delivered=lambda t, d=dst, cb=done:
                              self._depart(d, cb, t))

    def _depart(self, node: int, done: DepartCallback, time: int) -> None:
        self.on_depart(node)
        done(time)
