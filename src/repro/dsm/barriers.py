"""DSM barriers: centralized manager plus scalable alternatives.

The paper's barrier (§2.1, the ``central`` default): every node sends
its arrival (carrying the intervals the manager has not yet seen) to a
manager node; once all have arrived the manager broadcasts departures,
each carrying the write notices that particular node lacks.  Arrival
processing serializes through the manager's handler CPU, which is what
makes the measured 8-processor barrier take ~2 ms on the ATM network —
and what makes it O(n) in the per-message software overhead.

Two alternatives attack that serialization:

* ``tree`` (:class:`TreeBarrier`) — a software combining tree of radix
  ``tree_radix`` rooted at the manager: each node reports to its
  parent only when its whole subtree has arrived, and departures fan
  back down the same tree.  The same 2(n-1) messages, but handler
  work spreads over the internal nodes and the critical path shrinks
  from O(n) to O(radix · log n) message handling times.
* ``combining`` (:class:`CombiningBarrier`) — the centralized
  protocol carried by an in-network combining stage
  (:class:`~repro.sync.combining.SwitchCombiner`): arrival increments
  merge in the fabric on the way up and the departure wave is a
  fabric multicast on the way down, so the manager CPU is charged for
  a handful of messages instead of n-1.

Consistency approximation (documented): all variants invoke the same
``on_all_arrived`` global merge once everyone is in, and every
departure carries ``depart_payload(dst)`` — the omniscient-log
simplification of DESIGN.md §4.4.  Tree *arrival* payloads use the
arriving node's own ``arrive_payload`` even though the message targets
the parent rather than the manager; interval bytes are what they are
regardless of the hop that carries them.

The HS machine arranges for only the *last* processor of each node to
trigger the node-level arrival (§3.1); that logic lives in the machine
layer — this module works purely at node granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.errors import ConfigurationError, ProtocolError
from repro.stats.counters import DataKind, MsgKind
from repro.trace.tracer import Category

DepartCallback = Callable[[int], None]
"""Called as ``cb(time)`` when the node may leave the barrier."""


@dataclass
class _Episode:
    index: int
    waiting: Dict[int, DepartCallback] = field(default_factory=dict)
    arrived: int = 0
    first_arrival: int = -1  # time of first node arrival (for tracing)
    up: Dict[int, int] = field(default_factory=dict)  # tree up-counters


class DsmBarrierBase:
    """Shared machinery of all DSM barrier algorithms.

    Episode bookkeeping, double-arrival detection, the global
    consistency merge at completion, and departure dispatch are
    common; subclasses implement :meth:`_on_arrival` (how an arrival
    propagates) and completion triggers :meth:`_release` (how
    departures propagate).
    """

    algorithm = "base"

    def __init__(self, net, num_nodes: int, *,
                 manager_node: int = 0,
                 arrive_payload: Callable[[int], int],
                 depart_payload: Callable[[int], int],
                 on_all_arrived: Callable[[], None],
                 on_depart: Callable[[int], None],
                 local_cycles: int = 100) -> None:
        self.net = net
        self.num_nodes = num_nodes
        self.manager_node = manager_node
        self.arrive_payload = arrive_payload
        self.depart_payload = depart_payload
        self.on_all_arrived = on_all_arrived
        self.on_depart = on_depart
        self.local_cycles = local_cycles
        self._episodes: Dict[int, _Episode] = {}
        self._counts: Dict[int, int] = {}
        self.completed: int = 0

    # ------------------------------------------------------------------
    def arrive(self, barrier_id: int, node: int,
               done: DepartCallback) -> None:
        """Node-level arrival; ``done(time)`` fires at departure."""
        episode = self._episodes.get(barrier_id)
        if episode is None:
            episode = _Episode(self._counts.get(barrier_id, 0))
            self._episodes[barrier_id] = episode
        if node in episode.waiting:
            raise ProtocolError(
                f"node {node} arrived twice at barrier {barrier_id} "
                f"episode {episode.index}")
        episode.waiting[node] = done
        engine = self.net.engine
        if episode.first_arrival < 0:
            episode.first_arrival = engine.now
        tracer = engine.tracer
        if tracer.enabled:
            tracer.instant(node, Category.SYNC, "barrier_arrive",
                           engine.now, track=f"node{node}.dsm",
                           barrier=barrier_id, episode=episode.index)
        self._on_arrival(barrier_id, episode, node)

    def _on_arrival(self, barrier_id: int, episode: _Episode,
                    node: int) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _complete(self, barrier_id: int, episode: _Episode) -> None:
        """All nodes are in: merge knowledge, retire the episode."""
        self.on_all_arrived()
        self.completed += 1
        self._counts[barrier_id] = episode.index + 1
        del self._episodes[barrier_id]
        engine = self.net.engine
        tracer = engine.tracer
        if tracer.enabled and engine.now > episode.first_arrival:
            tracer.complete(
                self.manager_node, Category.SYNC,
                f"barrier{barrier_id}#{episode.index}",
                episode.first_arrival, engine.now, track="barrier",
                nodes=self.num_nodes)
        self._release(episode)

    def _release(self, episode: _Episode) -> None:
        raise NotImplementedError

    def _local_depart(self, node: int, done: DepartCallback) -> None:
        engine = self.net.engine
        at = engine.now + self.local_cycles
        engine.schedule_at(at, self._depart, node, done, at)

    def _depart(self, node: int, done: DepartCallback, time: int) -> None:
        self.on_depart(node)
        done(time)


class BarrierManager(DsmBarrierBase):
    """The paper's centralized barrier (one manager node for all)."""

    algorithm = "central"

    def _on_arrival(self, barrier_id: int, episode: _Episode,
                    node: int) -> None:
        if node == self.manager_node:
            self._arrived(barrier_id, node)
        else:
            self._send_arrival(barrier_id, episode, node)

    def _send_arrival(self, barrier_id: int, episode: _Episode,
                      node: int) -> None:
        self.net.send(node, self.manager_node,
                      self.arrive_payload(node),
                      kind=MsgKind.BARRIER_ARRIVE,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t:
                      self._arrived(barrier_id, node))

    def _arrived(self, barrier_id: int, node: int) -> None:
        episode = self._episodes[barrier_id]
        episode.arrived += 1
        if episode.arrived < self.num_nodes:
            return
        self._complete(barrier_id, episode)

    def _release(self, episode: _Episode) -> None:
        for dst, done in episode.waiting.items():
            if dst == self.manager_node:
                self._local_depart(dst, done)
            else:
                self._send_depart(episode, dst, done)

    def _send_depart(self, episode: _Episode, dst: int,
                     done: DepartCallback) -> None:
        self.net.send(self.manager_node, dst,
                      self.depart_payload(dst),
                      kind=MsgKind.BARRIER_DEPART,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda t, d=dst, cb=done:
                      self._depart(d, cb, t))


class CombiningBarrier(BarrierManager):
    """Centralized counting carried by an in-network combining stage.

    Protocol-identical to :class:`BarrierManager`; the transport
    differs.  Arrival increments toward the manager merge in the
    fabric (followers within a combining window charge the switch's
    merge stage instead of the manager's handler CPU), and the
    departure broadcast is a fabric multicast (replicas skip the
    manager's send CPU).  ``combining_hits`` counts the merges.
    """

    algorithm = "combining"

    def __init__(self, *args, combiner=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if combiner is None:
            raise ConfigurationError(
                "combining barrier needs a SwitchCombiner (combiner=...)")
        self.combiner = combiner

    def _send_arrival(self, barrier_id: int, episode: _Episode,
                      node: int) -> None:
        self.combiner.fan_in(node, self.manager_node,
                             self.arrive_payload(node),
                             kind=MsgKind.BARRIER_ARRIVE,
                             key=("barrier", barrier_id, episode.index),
                             on_delivered=lambda _t:
                             self._arrived(barrier_id, node))

    def _send_depart(self, episode: _Episode, dst: int,
                     done: DepartCallback) -> None:
        self.combiner.fan_out(self.manager_node, dst,
                              self.depart_payload(dst),
                              kind=MsgKind.BARRIER_DEPART,
                              key=("barrier-release", episode.index),
                              on_delivered=lambda t, d=dst, cb=done:
                              self._depart(d, cb, t))


class TreeBarrier(DsmBarrierBase):
    """Software combining tree (MCS-style tournament) barrier.

    Nodes form a static radix-``tree_radix`` tree rooted at the
    manager.  Logical index of ``node`` is ``(node - root) mod n``;
    logical index 0 is the root and index ``i`` has children
    ``radix*i + 1 .. radix*i + radix``.  A node reports to its parent
    only when it has seen its own arrival plus one report per child
    subtree; the root completing triggers a departure wave back down
    the same edges.
    """

    algorithm = "tree"

    def __init__(self, *args, tree_radix: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if tree_radix < 2:
            raise ConfigurationError(
                f"tree barrier radix must be >= 2, got {tree_radix}")
        self.tree_radix = tree_radix

    # -- static topology ------------------------------------------------
    def _node_of(self, li: int) -> int:
        return (self.manager_node + li) % self.num_nodes

    def _index_of(self, node: int) -> int:
        return (node - self.manager_node) % self.num_nodes

    def _children(self, li: int) -> List[int]:
        first = self.tree_radix * li + 1
        return [c for c in range(first, first + self.tree_radix)
                if c < self.num_nodes]

    # -- up phase --------------------------------------------------------
    def _on_arrival(self, barrier_id: int, episode: _Episode,
                    node: int) -> None:
        self._up_tick(barrier_id, episode, self._index_of(node))

    def _up_tick(self, barrier_id: int, episode: _Episode,
                 li: int) -> None:
        episode.up[li] = episode.up.get(li, 0) + 1
        if episode.up[li] < 1 + len(self._children(li)):
            return
        if li == 0:
            self._complete(barrier_id, episode)
            return
        parent = (li - 1) // self.tree_radix
        src = self._node_of(li)
        self.net.send(src, self._node_of(parent),
                      self.arrive_payload(src),
                      kind=MsgKind.BARRIER_ARRIVE,
                      data_kind=DataKind.CONSISTENCY,
                      on_delivered=lambda _t:
                      self._up_tick(barrier_id, episode, parent))

    # -- down phase ------------------------------------------------------
    def _release(self, episode: _Episode) -> None:
        self._wave(episode, 0)
        root = self._node_of(0)
        self._local_depart(root, episode.waiting[root])

    def _wave(self, episode: _Episode, li: int) -> None:
        src = self._node_of(li)
        for child in self._children(li):
            dst = self._node_of(child)
            self.net.send(src, dst, self.depart_payload(dst),
                          kind=MsgKind.BARRIER_DEPART,
                          data_kind=DataKind.CONSISTENCY,
                          on_delivered=lambda t, c=child, d=dst:
                          self._tree_depart(episode, c, d, t))

    def _tree_depart(self, episode: _Episode, li: int, node: int,
                     time: int) -> None:
        self._wave(episode, li)  # forward first, then release locally
        self._depart(node, episode.waiting[node], time)


#: Barrier algorithm name -> implementation class.
DSM_BARRIER_IMPLS: Dict[str, type] = {
    "central": BarrierManager,
    "tree": TreeBarrier,
    "combining": CombiningBarrier,
}


def make_dsm_barrier(algorithm: str, net, num_nodes: int, *,
                     combiner=None, tree_radix: int = 4,
                     **kwargs) -> DsmBarrierBase:
    """Build the DSM barrier for ``algorithm`` (see DSM_BARRIER_IMPLS)."""
    impl = DSM_BARRIER_IMPLS.get(algorithm)
    if impl is None:
        raise ConfigurationError(
            f"unknown DSM barrier algorithm '{algorithm}' "
            f"(known: {', '.join(DSM_BARRIER_IMPLS)})")
    if algorithm == "tree":
        return impl(net, num_nodes, tree_radix=tree_radix, **kwargs)
    if algorithm == "combining":
        return impl(net, num_nodes, combiner=combiner, **kwargs)
    return impl(net, num_nodes, **kwargs)
