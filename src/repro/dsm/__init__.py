"""TreadMarks-style software distributed shared memory.

The modules in this package implement the lazy release consistency
(LRC) machinery described in §2.1 of the paper and in Keleher et al.
(1992, 1994):

* :mod:`repro.dsm.vectorclock` — vector timestamps over nodes.
* :mod:`repro.dsm.interval` — intervals and write notices, plus the
  global interval log both acquirers and barrier managers consult.
* :mod:`repro.dsm.diff` — run-length-encoded page diffs (a real
  encoder/decoder, used for sizing and verified by property tests).
* :mod:`repro.dsm.pagetable` — per-node page state: validity, twins,
  per-interval dirty bytes, and pending (not yet fetched) diffs.
* :mod:`repro.dsm.locks` — distributed locks with a static manager and
  a migrating token, forwarding requests along the grant chain.
* :mod:`repro.dsm.barriers` — the centralized barrier manager.
* :mod:`repro.dsm.bound` — visibility model for unsynchronized shared
  scalars (the TSP global bound) under hardware coherence, lazy
  release, and eager release.
* :mod:`repro.dsm.protocol` — :class:`TreadMarksDsm`, the node runtime
  that glues all of the above to a network and an engine.
"""

from repro.dsm.bound import BoundMode, SharedBound
from repro.dsm.diff import Diff, apply_diff, encode_diff
from repro.dsm.interval import Interval, IntervalLog
from repro.dsm.pagetable import NodePages
from repro.dsm.protocol import DsmConfig, TreadMarksDsm
from repro.dsm.vectorclock import VectorClock

__all__ = [
    "VectorClock",
    "Interval",
    "IntervalLog",
    "Diff",
    "encode_diff",
    "apply_diff",
    "NodePages",
    "SharedBound",
    "BoundMode",
    "TreadMarksDsm",
    "DsmConfig",
]
