"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A machine, application, or experiment was configured inconsistently."""


class SimulationError(ReproError):
    """The simulation engine reached an impossible state."""


class DeadlockError(SimulationError):
    """No runnable task remains but some tasks have not finished.

    Raised by the engine when the event queue drains while simulated
    processors are still blocked (e.g. on a lock or barrier), which
    indicates a protocol bug or an application synchronization bug.
    """

    def __init__(self, blocked: list) -> None:
        self.blocked = list(blocked)
        names = ", ".join(str(b) for b in self.blocked)
        super().__init__(f"simulation deadlocked; blocked tasks: {names}")


class ProtocolError(SimulationError):
    """A coherence or consistency protocol invariant was violated."""


class AddressError(ReproError):
    """An access fell outside the allocated shared regions."""
