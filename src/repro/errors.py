"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A machine, application, or experiment was configured inconsistently."""


class SimulationError(ReproError):
    """The simulation engine reached an impossible state."""


class DeadlockError(SimulationError):
    """No runnable task remains but some tasks have not finished.

    Raised by the engine when the event queue drains while simulated
    processors are still blocked (e.g. on a lock or barrier), which
    indicates a protocol bug or an application synchronization bug.
    The progress watchdog raises it too, for the silent variant: events
    keep firing but no processor has issued an operation for a long
    window of simulated time.  ``now`` and ``reason`` carry the
    diagnostics (sim time of detection, what tripped); on a
    fault-injected run, ``suspect`` names the node the reliable layer
    was retransmitting to hardest when progress stopped, and ``trail``
    carries a bounded, replayable slice of its recent delivery events
    (parity with :class:`ConsistencyViolation`).  ``run_id`` correlates
    with the provenance ledger when a session is active.
    """

    def __init__(self, blocked: list, *, now: int = None,
                 reason: str = None, suspect: int = None,
                 trail=()) -> None:
        self.blocked = list(blocked)
        self.now = now
        self.reason = reason
        self.suspect = suspect
        self.trail = tuple(trail)
        # Lazy import: errors is imported by everything, including the
        # ledger package itself.
        from repro.ledger import current_run_id
        self.run_id = current_run_id()
        names = ", ".join(str(b) for b in self.blocked)
        msg = "simulation deadlocked"
        if reason:
            msg += f" ({reason})"
        msg += f"; blocked tasks: {names or 'none registered'}"
        if now is not None:
            msg += f" at cycle {now}"
        if suspect is not None:
            msg += f"; suspected node: {suspect}"
        if self.run_id is not None:
            msg += f" [run {self.run_id}]"
        if self.trail:
            msg += (f" (trail: {len(self.trail)} preceding network "
                    f"events attached)")
        super().__init__(msg)


class NetworkPartitionError(SimulationError):
    """A message exhausted its retransmission budget.

    Raised by :class:`repro.net.reliable.ReliableNetwork` when every
    attempt to deliver one message was dropped by the fault plane: the
    destination is treated as unreachable and the run fails loudly
    instead of retrying forever.  (When a crash plan is armed and the
    destination really did crash, ``repro.recover`` intercepts this
    verdict and the run continues degraded instead.)  ``suspect``
    duplicates ``dst`` under the common diagnostic name, and ``trail``
    carries a bounded slice of the reliable layer's recent delivery
    events — the replayable context of the exhausted retry chain.
    """

    def __init__(self, src: int, dst: int, kind: str, attempts: int,
                 now: int, *, trail=()) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.attempts = attempts
        self.now = now
        self.suspect = dst
        self.trail = tuple(trail)
        from repro.ledger import current_run_id
        self.run_id = current_run_id()
        msg = (f"node {dst} unreachable from node {src}: {kind} message "
               f"lost {attempts} times (retries exhausted) at cycle {now}")
        if self.run_id is not None:
            msg += f" [run {self.run_id}]"
        if self.trail:
            msg += (f" (trail: {len(self.trail)} preceding network "
                    f"events attached)")
        super().__init__(msg)


class WorkerCrashError(ReproError):
    """Pool worker processes died repeatedly on the same run specs.

    Raised by :func:`repro.harness.parallel.execute_plan` after the
    self-healing pool respawned workers and retried each suspect spec
    individually up to its retry budget; ``labels`` names the specs
    still crashing (quarantined), which is the set a human needs to
    reproduce the failure serially.
    """

    def __init__(self, labels, retries: int) -> None:
        self.labels = list(labels)
        self.retries = retries
        super().__init__(
            f"pool workers crashed on {len(self.labels)} spec(s) even "
            f"after {retries} isolated attempt(s) each; quarantined: "
            + ", ".join(self.labels))


class ProtocolError(SimulationError):
    """A coherence or consistency protocol invariant was violated."""


class ConsistencyViolation(ProtocolError):
    """An online memory-model check failed.

    Raised by the checkers in :mod:`repro.check` when a protocol event
    breaks an invariant of the memory model the machine claims to
    implement (SWMR for hardware coherence, interval/vector-clock and
    page-state rules for LRC).  Carries the offending event, the
    simulated time, and a bounded trail of the protocol events that
    preceded it — enough to replay the failing slice by hand.  Inside
    a provenance-ledger session, ``run_id`` names the ledger record of
    the violating run, so the report correlates with the exact code
    version, fault plan, and workload that produced it.
    """

    def __init__(self, reason, *, event=None, now=None, trail=()):
        self.reason = reason
        self.event = event
        self.now = now
        self.trail = tuple(trail)
        # Lazy import: errors is imported by everything, including the
        # ledger package itself.
        from repro.ledger import current_run_id
        self.run_id = current_run_id()
        msg = reason
        if event is not None:
            msg += f" [event: {event}]"
        if now is not None:
            msg += f" at cycle {now}"
        if self.run_id is not None:
            msg += f" [run {self.run_id}]"
        if self.trail:
            msg += (f" (trail: {len(self.trail)} preceding protocol "
                    f"events attached)")
        super().__init__(msg)


class AddressError(ReproError):
    """An access fell outside the allocated shared regions."""
