"""Experiment harness: regenerate every table and figure of the paper.

The registry in :mod:`repro.harness.experiments` maps experiment ids
(``t1``, ``t2``, ``fig1`` .. ``fig16``, ``x1`` .. ``x3``, ``a1`` ..
``a3``) to runnable experiment definitions at three scales:

* ``test`` — seconds-long configurations for CI,
* ``bench`` — the default, preserving the paper's shape claims,
* ``paper`` — full problem sizes (slow).

Run from the command line::

    repro-harness list
    repro-harness run fig3 t2 --scale bench
"""

from repro.harness.experiments import REGISTRY, Report, Scale, get_experiment

__all__ = ["REGISTRY", "Scale", "Report", "get_experiment"]
