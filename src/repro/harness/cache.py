"""Content-addressed on-disk cache for simulation results.

Every simulated run is a pure function of (machine configuration,
application configuration, processor count, seed, run params) — the
engine is deterministic and applications derive all randomness from
the seed.  That makes results cacheable by a *fingerprint* of those
inputs: repeated ``repro-harness run`` / ``validate`` invocations skip
already-simulated points entirely.

Key construction
----------------

:func:`run_key` hashes, with SHA-256 over canonical JSON:

* the machine's :meth:`~repro.machines.base.Machine.fingerprint_data`
  (class + display name + every parameter field — editing any value in
  ``machines/params.py`` changes the key and invalidates old entries),
* the application's class, name, and constructor state (which encodes
  the workload scale — grid sizes, city counts, molecule counts),
* the processor count, the seed, and any run params,
* :data:`CACHE_VERSION`, a manual salt for *code* changes.  Parameter
  changes invalidate automatically; a change to simulation *semantics*
  (protocol logic, timing formulas) must bump ``CACHE_VERSION`` so
  stale results cannot leak across code versions.  The installed
  package version is mixed in as a second guard.

Storage layout
--------------

``<root>/<key[:2]>/<key>.json`` — one JSON document per result, in
:meth:`~repro.stats.result.RunResult.to_jsonable` form, fanned out
over 256 subdirectories.  Writes are atomic (temp file + ``rename``),
so concurrent harness invocations sharing a cache directory are safe.
Unreadable or corrupt entries are treated as misses and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

import repro
from repro.apps.base import Application
from repro.machines.base import Machine, fingerprint_value
from repro.stats.result import RunResult

#: Bump when a change alters simulation *behaviour* without touching
#: any machine/application parameter (protocol logic, timing math).
#: v2: reliable-delivery/fault-injection layer — fault params joined
#: the machine fingerprint, so pre-fault entries must not be reused.
#: v3: synchronization design space — the Counters schema grew
#: lock-wait/hold and combining-hit fields, so pre-sync entries would
#: replay with silently-zero counters.
#: v4: crash-stop recovery — Counters grew detection/recovery fields
#: and RunResult grew ``degraded``; pre-recovery entries would replay
#: with silently-zero recovery metadata.
#: v5: ablation engine — Counters grew pages_shipped_whole /
#: eager_fetches / eager_releases plus the WRITE_NOTICE message kind,
#: and the default path now counts diffs_merged; pre-ablation entries
#: would replay with silently-zero or missing counters.
CACHE_VERSION = 5

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the invoking directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


def default_ledger_path(cache_dir: Optional[str] = None) -> str:
    """Where the provenance ledger lives: ``$REPRO_LEDGER`` or
    ``<cache root>/ledger.jsonl``.

    The ledger sits beside the cache because the two describe the
    same content-addressed runs: cache entries are the *results*,
    ledger records the *attempts* (including hits) that produced or
    served them.
    """
    from repro.ledger.ledger import LEDGER_ENV
    explicit = os.environ.get(LEDGER_ENV)
    if explicit:
        return explicit
    return os.path.join(cache_dir or default_cache_dir(),
                        "ledger.jsonl")


def app_fingerprint_data(app: Application) -> Dict[str, Any]:
    """Stable data identifying a workload (class + configuration).

    Applications are descriptions — all run state lives in the store
    or in generator locals — so instance attributes *are* the
    configuration (rows/cols/iterations, cities/seed, molecules, ...).
    """
    return {
        "class": type(app).__qualname__,
        "name": getattr(app, "name", "?"),
        "state": {key: fingerprint_value(value)
                  for key, value in sorted(vars(app).items())},
    }


def run_key(machine: Machine, app: Application, nprocs: int, *,
            seed: int = 42,
            params: Optional[Dict[str, Any]] = None) -> str:
    """The content address of one simulated run."""
    payload = {
        "cache_version": CACHE_VERSION,
        "repro_version": getattr(repro, "__version__", "0"),
        "machine": machine.fingerprint_data(nprocs),
        "app": app_fingerprint_data(app),
        "nprocs": int(nprocs),
        "seed": int(seed),
        "params": fingerprint_value(params or {}),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A content-addressed store of :class:`RunResult` documents."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        """On-disk location for ``key`` (two-level fan-out)."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or None (counted as a miss)."""
        try:
            with open(self.path_for(key)) as fh:
                payload = json.load(fh)
            result = RunResult.from_jsonable(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Store ``result`` under ``key`` (atomic, last writer wins)."""
        directory = os.path.dirname(self.path_for(key))
        os.makedirs(directory, exist_ok=True)
        payload = {
            "key": key,
            "cache_version": CACHE_VERSION,
            "result": result.to_jsonable(),
        }
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp_path, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stores += 1

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Hit/miss/store tallies since this cache was opened."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}

    def format_stats(self) -> str:
        """One deterministic, greppable line (used by the CLI and CI)."""
        return (f"[cache] hits={self.hits} misses={self.misses} "
                f"stores={self.stores} dir={self.root}")

    def __repr__(self) -> str:
        return f"<ResultCache {self.root!r} {self.stats()}>"
