"""Plain-text table and series formatting for experiment reports."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> List[str]:
    """Render rows as an aligned text table (list of lines)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) if i else
                               cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return lines


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_speedups(series: Dict[str, Dict[int, float]],
                    procs: Sequence[int]) -> List[str]:
    """Render one speedup line per machine over processor counts."""
    headers = ["machine"] + [f"p={p}" for p in procs]
    rows = []
    for name, points in series.items():
        rows.append([name] + [points.get(p, float("nan")) for p in procs])
    return format_table(headers, rows)


def format_percent_breakdown(title: str, parts: Dict[str, float],
                             total: float) -> List[str]:
    """Render components of ``total`` as percentages."""
    lines = [title]
    for name, value in parts.items():
        pct = 100.0 * value / total if total else 0.0
        lines.append(f"  {name:<24s} {value:>14,.0f}  ({pct:5.1f}%)")
    return lines
