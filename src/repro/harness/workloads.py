"""Workload factories at the three harness scales.

``paper`` matches the paper's problem sizes (where our scaled TSP
instances stand in for 18/19 cities — see DESIGN.md); ``bench`` keeps
the shape claims at a fraction of the wall-clock cost; ``test`` is for
CI smoke coverage only.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict

from repro.apps import IlinkApp, SorApp, TspApp, WaterApp
from repro.apps.base import Application
from repro.errors import ConfigurationError


class Scale(Enum):
    """Problem-size tier: quick tests, CI benches, or paper scale."""

    TEST = "test"
    BENCH = "bench"
    PAPER = "paper"


AppFactory = Callable[[Scale], Application]


def sor_large(scale: Scale) -> Application:
    """SOR on the paper's 2000x1000 grid (zero interior).

    The defining property is that per-processor bands exceed the SGI's
    1 MB L2 even at 8 processors, so the bench scale keeps the grid
    above 8 MB.
    """
    sizes = {Scale.TEST: (128, 128, 3), Scale.BENCH: (1200, 1000, 4),
             Scale.PAPER: (2000, 1000, 8)}
    rows, cols, iters = sizes[scale]
    return SorApp(rows=rows, cols=cols, iterations=iters)


def sor_small(scale: Scale) -> Application:
    """SOR on the 1000x1000 grid (fits the SGI L2 at 8 processors)."""
    sizes = {Scale.TEST: (96, 96, 3), Scale.BENCH: (500, 500, 4),
             Scale.PAPER: (1000, 1000, 8)}
    rows, cols, iters = sizes[scale]
    return SorApp(rows=rows, cols=cols, iterations=iters)


def sor_alldirty(scale: Scale) -> Application:
    """The §2.4.2 control: every point changes every iteration.

    Sized like :func:`sor_large` so the bus-bandwidth effect stays in
    play — the paper's point is that TreadMarks wins even after its
    data-movement advantage is taken away.
    """
    sizes = {Scale.TEST: (96, 96, 3), Scale.BENCH: (1200, 1000, 4),
             Scale.PAPER: (2000, 1000, 8)}
    rows, cols, iters = sizes[scale]
    return SorApp(rows=rows, cols=cols, iterations=iters, init="random")


def sor_sim(scale: Scale) -> Application:
    """SOR sized for the >8-processor simulations.

    Power-of-two dimensions so a 64-way band partition page-aligns
    with the AH machine's block page placement (a tuned NUMA layout),
    and large enough that per-processor bands still exceed the 64 KB
    simulated caches (avoiding cache-fit superlinearity).
    """
    sizes = {Scale.TEST: (192, 192, 3), Scale.BENCH: (1024, 1024, 3),
             Scale.PAPER: (1024, 1024, 8)}
    rows, cols, iters = sizes[scale]
    return SorApp(rows=rows, cols=cols, iterations=iters)


def tsp19(scale: Scale) -> Application:
    """The 19-city problem's scaled equivalent (13 cities).

    coord_seed=3 gives an instance where the hardware's fresher bound
    visibly prunes better; seed 11 instead reproduces the paper's
    occasional super-linear hardware speedup (§2.4.3).
    """
    cities = {Scale.TEST: 10, Scale.BENCH: 12, Scale.PAPER: 13}[scale]
    return TspApp(cities=cities, leaf_cutoff=8, coord_seed=3)


def tsp18(scale: Scale) -> Application:
    """The 18-city problem's scaled equivalent (12 cities)."""
    cities = {Scale.TEST: 9, Scale.BENCH: 11, Scale.PAPER: 12}[scale]
    return TspApp(cities=cities, leaf_cutoff=7 if cities < 12 else 8,
                  coord_seed=3)


def water(scale: Scale) -> Application:
    """Original per-update-lock Water."""
    mols = {Scale.TEST: 24, Scale.BENCH: 96, Scale.PAPER: 216}[scale]
    return WaterApp(molecules=mols, steps=2)


def mwater(scale: Scale) -> Application:
    """M-Water: accumulate locally, one locked update per molecule."""
    mols = {Scale.TEST: 24, Scale.BENCH: 216, Scale.PAPER: 288}[scale]
    return WaterApp(molecules=mols, steps=2, modified=True)


def ilink_clp(scale: Scale) -> Application:
    """Synthetic ILINK on the well-behaved CLP-like preset."""
    iters = {Scale.TEST: 2, Scale.BENCH: 6, Scale.PAPER: 8}[scale]
    return IlinkApp("clp", iterations=iters)


def ilink_bad(scale: Scale) -> Application:
    """Synthetic ILINK on the fine-grained, imbalanced BAD preset."""
    iters = {Scale.TEST: 3, Scale.BENCH: 12, Scale.PAPER: 24}[scale]
    return IlinkApp("bad", iterations=iters)


WORKLOADS: Dict[str, AppFactory] = {
    "sor_large": sor_large,
    "sor_small": sor_small,
    "sor_sim": sor_sim,
    "sor_alldirty": sor_alldirty,
    "tsp19": tsp19,
    "tsp18": tsp18,
    "water": water,
    "mwater": mwater,
    "ilink_clp": ilink_clp,
    "ilink_bad": ilink_bad,
}


def make_app(name: str, scale: Scale) -> Application:
    """Instantiate the named workload at the requested scale."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload '{name}'; choose from "
            f"{sorted(WORKLOADS)}") from None
    return factory(scale)


#: Processor counts for the experimental (≤ 8) comparison.
EXPERIMENTAL_PROCS = (1, 2, 4, 8)

#: Processor counts for the simulated (> 8) comparison.
SIMULATED_PROCS = {
    Scale.TEST: (8, 16),
    Scale.BENCH: (8, 16, 32, 64),
    Scale.PAPER: (8, 16, 32, 64),
}
