"""Parallel, cached execution of independent simulation runs.

The paper's figures are sweeps — one run per (machine, workload,
processor count) — and every run is independent and deterministic.
This module turns a declared grid (:class:`RunPlan`) into results with
three orthogonal accelerations, none of which may change a single
number:

* **fan-out** — independent runs execute in a process pool
  (``jobs > 1``); results are merged back in plan order, so output is
  byte-identical to a serial execution;
* **dedup** — specs with the same content address
  (:func:`~repro.harness.cache.run_key`) execute once per plan; this
  is how a speedup series reuses its 1-processor baseline, and how
  software-DSM variants (user/kernel-level, lazy/eager, diff/nodiff)
  share one baseline run between *machines*;
* **cache** — a :class:`~repro.harness.cache.ResultCache` skips
  already-simulated points across invocations.

Determinism contract
--------------------

``execute_plan(plan, jobs=1)``, ``execute_plan(plan, jobs=N)`` and a
warm-cache execution all return results whose ``summary()``
dictionaries — and derived speedups — are identical (pinned by
``tests/test_parallel.py``).  The only rewrite the layer ever performs
is the machine *display name* on a shared result (a cached TreadMarks
baseline returned for the kernel-level variant reports the variant's
name, exactly as a fresh run would have).

Tracing interacts specially: inside a ``trace_session(trace=True)``
scope, spans must be collected live in this process, so plans execute
serially and bypass the cache (the deduplicated work list is
unchanged, keeping traced and untraced run counts equal).
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.apps.base import Application
from repro.harness.cache import ResultCache, run_key
from repro.machines.base import Machine
from repro.stats.result import RunResult
from repro.trace import session as trace_session


@dataclass(frozen=True)
class RunSpec:
    """One simulation point: an app on a machine at a processor count."""

    machine: Machine
    app: Application
    nprocs: int
    seed: int = 42
    params: Optional[Dict[str, Any]] = None

    def key(self) -> str:
        """The spec's content address (dedup + cache lookup)."""
        return run_key(self.machine, self.app, self.nprocs,
                       seed=self.seed, params=self.params)


@dataclass
class RunPlan:
    """An ordered grid of runs; indices are stable result handles."""

    specs: List[RunSpec] = field(default_factory=list)

    def add(self, machine: Machine, app: Application, nprocs: int, *,
            seed: int = 42,
            params: Optional[Dict[str, Any]] = None) -> int:
        """Append one run; returns its index into the results list."""
        self.specs.append(RunSpec(machine, app, nprocs,
                                  seed=seed, params=params))
        return len(self.specs) - 1

    def add_series(self, machine: Machine, app: Application,
                   procs: Sequence[int], *, seed: int = 42,
                   params: Optional[Dict[str, Any]] = None) -> List[int]:
        """Append one run per processor count; returns their indices."""
        return [self.add(machine, app, p, seed=seed, params=params)
                for p in procs]

    def __len__(self) -> int:
        return len(self.specs)


# ======================================================================
# Ambient execution context
# ======================================================================
@dataclass
class RunContext:
    """Execution defaults installed by the CLI (or tests)."""

    jobs: int = 1
    cache: Optional[ResultCache] = None


_CONTEXT_STACK: List[RunContext] = []


@contextmanager
def run_context(*, jobs: int = 1,
                cache: Optional[ResultCache] = None
                ) -> Iterator[RunContext]:
    """Scope within which plans default to ``jobs`` workers + ``cache``.

    The experiment registry calls :func:`execute_plan` without
    threading options through every figure function; the CLI installs
    one context around a whole command instead.
    """
    ctx = RunContext(jobs=jobs, cache=cache)
    _CONTEXT_STACK.append(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT_STACK.pop()


def current_context() -> RunContext:
    """The innermost active context (a serial default otherwise)."""
    return _CONTEXT_STACK[-1] if _CONTEXT_STACK else RunContext()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value (None = ambient, 0 = all cores)."""
    if jobs is None:
        jobs = current_context().jobs
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


# ======================================================================
# Execution
# ======================================================================
def _run_spec(spec: RunSpec) -> RunResult:
    """Execute one spec with session auto-record suppressed."""
    with trace_session.no_session():
        return spec.machine.run(spec.app, spec.nprocs,
                                seed=spec.seed, params=spec.params)


def _localize(result: RunResult, spec: RunSpec) -> RunResult:
    """Stamp a shared/cached result with the requesting machine's name."""
    if result.machine == spec.machine.name:
        return result
    return dataclasses.replace(result, machine=spec.machine.name)


def _execute_traced(specs: Sequence[RunSpec],
                    keys: Sequence[str]) -> List[RunResult]:
    """Serial execution inside a live tracing session.

    Runs the deduplicated work list in plan order; ``Machine.run``
    records each (result, tracer) pair into the session itself.
    """
    by_key: Dict[str, RunResult] = {}
    results: List[Optional[RunResult]] = [None] * len(specs)
    for i, spec in enumerate(specs):
        produced = by_key.get(keys[i])
        if produced is None:
            produced = spec.machine.run(spec.app, spec.nprocs,
                                        seed=spec.seed, params=spec.params)
            by_key[keys[i]] = produced
        results[i] = _localize(produced, spec)
    return results  # type: ignore[return-value]


def execute_plan(plan: RunPlan, *, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None
                 ) -> List[RunResult]:
    """Execute every spec of ``plan``; results in plan order.

    ``jobs``/``cache`` default to the ambient :func:`run_context`.
    Inside a metrics-collecting session, exactly one result per
    *unique* run is recorded, in plan order — identical whether the
    run executed serially, in the pool, or came from the cache.
    """
    specs = plan.specs
    if not specs:
        return []
    keys = [spec.key() for spec in specs]

    session = trace_session.active_session()
    if session is not None and session.trace:
        return _execute_traced(specs, keys)

    jobs = resolve_jobs(jobs)
    if cache is None:
        cache = current_context().cache

    results: List[Optional[RunResult]] = [None] * len(specs)
    unique_order: List[str] = []          # first-appearance key order
    pending: Dict[str, List[int]] = {}    # key -> spec indices to run
    produced: Dict[str, RunResult] = {}   # key -> canonical result

    for i, key in enumerate(keys):
        if key not in pending:
            unique_order.append(key)
            pending[key] = []
            if cache is not None:
                hit = cache.get(key)
                if hit is not None:
                    produced[key] = hit
        if key not in produced:
            pending[key].append(i)

    work: List[Tuple[str, RunSpec]] = [
        (key, specs[indices[0]])
        for key, indices in pending.items() if indices]

    if len(work) > 1 and jobs > 1:
        workers = min(jobs, len(work))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [(key, pool.submit(_run_spec, spec))
                       for key, spec in work]
            for key, future in futures:
                produced[key] = future.result()
    else:
        for key, spec in work:
            produced[key] = _run_spec(spec)

    if cache is not None:
        for key, _spec in work:
            cache.put(key, produced[key])

    for i, key in enumerate(keys):
        results[i] = _localize(produced[key], specs[i])

    if session is not None:
        first_index = {key: keys.index(key) for key in unique_order}
        for key in unique_order:
            session.record(results[first_index[key]], None)

    return results  # type: ignore[return-value]


def run_grid(entries: Sequence[Tuple[str, Machine, Application, int]], *,
             jobs: Optional[int] = None,
             cache: Optional[ResultCache] = None
             ) -> Dict[str, RunResult]:
    """Execute tagged runs; returns ``{tag: result}``.

    Convenience over :class:`RunPlan` for experiments whose grids are
    naturally keyed (workload names, machine labels) rather than
    positional.  Tags must be unique.
    """
    plan = RunPlan()
    tags: List[str] = []
    for tag, machine, app, nprocs in entries:
        if tag in tags:
            raise ValueError(f"duplicate grid tag {tag!r}")
        tags.append(tag)
        plan.add(machine, app, nprocs)
    results = execute_plan(plan, jobs=jobs, cache=cache)
    return dict(zip(tags, results))
